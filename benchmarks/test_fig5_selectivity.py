"""Figure 5 — runtime vs predicate selectivity at 4 workers (paper §4.2).

Shape claims:
* Query 3's intermediate results grow superlinearly with selected persons:
  its low-selectivity runtime is roughly double the high-selectivity one;
* Query 1's intermediate results grow only linearly: selectivity has
  almost no impact on its runtime.
"""

import pytest

from repro.harness import SCALE_FACTOR_LARGE, format_table, selectivity_series

WORKERS = 4


@pytest.mark.benchmark(group="fig5")
def test_fig5_selectivity(benchmark, dataset_cache, report):
    def run():
        return selectivity_series(
            ["Q1", "Q2", "Q3"], WORKERS, SCALE_FACTOR_LARGE, dataset_cache
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for query, runs in table.items():
        for selectivity in ("high", "medium", "low"):
            run_result = runs[selectivity]
            rows.append(
                (
                    query,
                    selectivity,
                    run_result.simulated_seconds,
                    run_result.result_count,
                )
            )
    report.add(
        "Figure 5 — query runtime by predicate selectivity (4 workers, SF-large)",
        format_table(["query", "selectivity", "sim seconds", "results"], rows),
    )
    report.write("fig5_selectivity")

    def seconds(query, selectivity):
        return table[query][selectivity].simulated_seconds

    # runtimes ordered with selectivity for every query
    for query in ("Q1", "Q2", "Q3"):
        assert seconds(query, "high") <= seconds(query, "medium") * 1.05
        assert seconds(query, "medium") <= seconds(query, "low") * 1.05

    # Q3: low roughly doubles high; Q1: almost flat
    q3_ratio = seconds("Q3", "low") / seconds("Q3", "high")
    q1_ratio = seconds("Q1", "low") / seconds("Q1", "high")
    assert q3_ratio > 1.5, q3_ratio
    assert q1_ratio < 1.25, q1_ratio
    assert q3_ratio > q1_ratio

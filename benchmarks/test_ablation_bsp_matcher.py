"""Ablation E13 — join-based engine vs PSgL-style vertex-centric matching.

The paper's related work suggests PSgL's vertex-centric ideas could
improve the join-based implementation.  We compare the two architectures
on the triangle query (Q5): the engine's cost is join shuffle, PSgL's is
partial-embedding message traffic; both must produce identical matches.
"""

import pytest

from repro.bsp import PSgLMatcher
from repro.engine import CypherRunner, canonical_rows_from_embeddings
from repro.harness import ALL_QUERIES, SCALE_FACTOR_SMALL, format_table

QUERY = ALL_QUERIES["Q5"]


def _engine_run(setup):
    _, environment, graph, statistics = setup
    environment.reset_metrics("engine")
    runner = CypherRunner(graph, statistics=statistics)
    embeddings, meta = runner.execute_embeddings(QUERY)
    return {
        "rows": sorted(canonical_rows_from_embeddings(embeddings, meta)),
        "shuffled_records": environment.metrics.total_shuffled_records,
        "seconds": environment.simulated_runtime_seconds(),
    }


def _psgl_run(setup):
    _, environment, graph, _ = setup
    environment.reset_metrics("psgl")
    rows = PSgLMatcher(graph).match(QUERY)
    message_records = sum(
        run.records_in
        for run in environment.metrics.runs
        if run.name == "pregel-deliver"
    )
    return {
        "rows": sorted(rows),
        "shuffled_records": environment.metrics.total_shuffled_records,
        "messages": message_records,
        "seconds": environment.simulated_runtime_seconds(),
    }


@pytest.mark.benchmark(group="ablation-bsp")
def test_ablation_engine_vs_psgl(benchmark, graph_cache, report):
    setup = graph_cache.get(SCALE_FACTOR_SMALL)

    def run():
        return {"engine": _engine_run(setup), "psgl": _psgl_run(setup)}

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    engine, psgl = outcome["engine"], outcome["psgl"]
    report.add(
        "Ablation E13 — join-based engine vs PSgL (Q5 triangles, SF-small)",
        format_table(
            ["matcher", "matches", "shuffled records", "messages", "sim s"],
            [
                ("engine", len(engine["rows"]), engine["shuffled_records"], "-",
                 engine["seconds"]),
                ("psgl", len(psgl["rows"]), psgl["shuffled_records"],
                 psgl["messages"], psgl["seconds"]),
            ],
        ),
    )
    report.write("ablation_bsp_matcher")

    # identical answers from two architecturally different matchers
    assert engine["rows"] == psgl["rows"]
    assert len(engine["rows"]) > 0

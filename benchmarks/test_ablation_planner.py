"""Ablation E8 — greedy planner vs textual-order baseline (paper §3.2).

The greedy planner orders joins to minimize intermediate cardinality; the
baseline folds query edges in the order they appear in the query text.
We compare total records processed (the intermediate-result volume).

Findings mirror the paper's discussion: with the basic statistics of §3.2
the greedy order helps most when the textual order is poor (the
``BAD_ORDER`` query and low-selectivity Q3/Q4) and can even lose slightly
when the crude estimates mislead (Q6) — which is exactly why the authors
name "more sophisticated estimation methods" as ongoing work.
"""

import pytest

from repro.engine import CypherRunner, GreedyPlanner, LeftDeepPlanner
from repro.harness import (
    ALL_QUERIES,
    SCALE_FACTOR_SMALL,
    format_table,
    instantiate,
)

#: A query whose textual order is deliberately terrible: it starts from the
#: unselective forum-membership edge and names the highly selective person
#: predicate last.  A statistics-driven planner must start from the rare
#: person instead.
BAD_ORDER_QUERY = """
MATCH (forum:Forum)-[:hasMember]->(person:Person),
      (person)-[:isLocatedIn]->(city:City),
      (rare:Person)-[:knows]->(person)
WHERE rare.firstName = '{firstName}'
RETURN *
"""


def _run(setup, query, planner_cls, selectivity=None):
    dataset, environment, graph, statistics = setup
    first_name = dataset.first_name(selectivity) if selectivity else None
    query = instantiate(query, first_name)
    environment.reset_metrics("ablation")
    runner = CypherRunner(graph, statistics=statistics, planner_cls=planner_cls)
    embeddings, _ = runner.execute_embeddings(query)
    intermediate = sum(
        run.records_in
        for run in environment.metrics.runs
        if run.name.startswith(
            ("JoinEmbeddings", "SelectEmbeddings", "ExpandEmbeddings", "Cartesian")
        )
    )
    return {
        "results": len(embeddings),
        "records": intermediate,
        "shuffled": environment.metrics.total_shuffled_records,
    }


@pytest.mark.benchmark(group="ablation-planner")
def test_ablation_greedy_vs_left_deep(benchmark, graph_cache, report):
    setup = graph_cache.get(SCALE_FACTOR_SMALL)
    cases = [
        ("BAD_ORDER", BAD_ORDER_QUERY, "high"),
        ("Q3", ALL_QUERIES["Q3"], "low"),
        ("Q4", ALL_QUERIES["Q4"], None),
        ("Q6", ALL_QUERIES["Q6"], None),
    ]

    def run():
        outcome = {}
        for name, query, selectivity in cases:
            outcome[name] = {
                "greedy": _run(setup, query, GreedyPlanner, selectivity),
                "left-deep": _run(setup, query, LeftDeepPlanner, selectivity),
            }
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, variants in outcome.items():
        ratio = variants["left-deep"]["records"] / max(
            variants["greedy"]["records"], 1
        )
        for planner, result in variants.items():
            rows.append(
                (name, planner, result["results"], result["records"],
                 result["shuffled"])
            )
        rows.append((name, "ratio", "-", round(ratio, 2), "-"))
    report.add(
        "Ablation E8 — greedy vs left-deep planner (SF-small); "
        "ratio = left-deep records / greedy records",
        format_table(
            ["query", "planner", "results", "intermediate records", "shuffled"], rows
        ),
    )
    report.write("ablation_planner")

    for name, variants in outcome.items():
        # identical answers regardless of plan
        assert variants["greedy"]["results"] == variants["left-deep"]["results"], name

    # statistics-driven ordering clearly wins when the textual order is bad
    bad = outcome["BAD_ORDER"]
    assert bad["greedy"]["records"] * 1.3 < bad["left-deep"]["records"], bad

    # and stays competitive overall (crude estimates may lose a little, §5)
    total_greedy = sum(v["greedy"]["records"] for v in outcome.values())
    total_left = sum(v["left-deep"]["records"] for v in outcome.values())
    assert total_greedy <= total_left * 1.1

"""Figure 4 — runtime vs data volume at 16 workers (paper §4.1).

Shape claim: "the runtime increases almost linearly with the data volume"
— a 10x scale-factor increase costs roughly 10x in the data-dependent part
of the runtime (the fixed per-job overhead does not scale, so total ratios
land somewhat below 10).
"""

import pytest

from repro.harness import (
    SCALE_FACTOR_LARGE,
    SCALE_FACTOR_SMALL,
    datasize_series,
    default_cost_model,
    format_table,
)

QUERIES = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]
WORKERS = 16
SCALE_FACTOR_MID = 0.3
_OVERHEAD = default_cost_model(WORKERS).job_overhead_seconds


@pytest.mark.benchmark(group="fig4")
def test_fig4_datasize(benchmark, dataset_cache, report):
    def run():
        return datasize_series(
            QUERIES,
            WORKERS,
            [SCALE_FACTOR_SMALL, SCALE_FACTOR_MID, SCALE_FACTOR_LARGE],
            dataset_cache,
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    ratios = {}
    for query, series in table.items():
        small, mid, large = (point["seconds"] for point in series)
        work_ratio = (large - _OVERHEAD) / max(small - _OVERHEAD, 1e-9)
        ratios[query] = work_ratio
        rows.append(
            (query, small, mid, large, round(large / small, 1), round(work_ratio, 1))
        )
    report.add(
        "Figure 4 — runtime over data volume (SF 0.1 / 0.3 / 1.0) at 16 workers",
        format_table(
            ["query", "SF 0.1 [s]", "SF 0.3 [s]", "SF 1.0 [s]", "total ratio",
             "work ratio"],
            rows,
        ),
    )
    report.write("fig4_datasize")

    for query, series in table.items():
        seconds = [point["seconds"] for point in series]
        assert seconds == sorted(seconds), (query, "not monotone in data size")
    for query, ratio in ratios.items():
        # near-linear: a 10x data increase costs 4x..14x in query work
        assert 4.0 < ratio < 14.0, (query, ratio)

"""Figure 3 — speedup over workers (paper §4.1).

Paper shape claims under test:
* operational queries (Q1-Q3, low selectivity, large SF) speed up
  near-linearly to 16 workers;
* analytical queries (Q4-Q6, small SF) scale clearly worse — large result
  sets and power-law skew limit their speedup.
"""

import pytest

from repro.harness import (
    SCALE_FACTOR_LARGE,
    SCALE_FACTOR_SMALL,
    format_table,
    paper_speedup,
    speedup_series,
)

WORKERS = [1, 2, 4, 8, 16]

#: which (selectivity, size) the paper's Figure 3 uses per query
_PAPER_CELLS = {
    "Q1": ("low", "large"),
    "Q2": ("low", "large"),
    "Q3": ("low", "large"),
    "Q4": (None, "small"),
    "Q5": (None, "small"),
    "Q6": (None, "small"),
}


def _series_rows(name, series):
    selectivity, size = _PAPER_CELLS[name]
    rows = []
    for point in series:
        reference = paper_speedup(name, selectivity, size, point["workers"])
        rows.append(
            (
                name,
                point["workers"],
                point["seconds"],
                round(point["speedup"], 1),
                reference if reference is not None else "-",
            )
        )
    return rows


@pytest.mark.benchmark(group="fig3")
def test_fig3_speedup(benchmark, dataset_cache, report):
    def run():
        results = {}
        for query in ("Q1", "Q2", "Q3"):
            results[query] = speedup_series(
                query, SCALE_FACTOR_LARGE, WORKERS, "low", dataset_cache
            )
        for query in ("Q4", "Q5", "Q6"):
            results[query] = speedup_series(
                query, SCALE_FACTOR_SMALL, WORKERS, cache=dataset_cache
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for query, series in results.items():
        rows.extend(_series_rows(query, series))
    report.add(
        "Figure 3 — speedup over workers "
        "(Q1-Q3 on SF-large/low selectivity, Q4-Q6 on SF-small)",
        format_table(
            ["query", "workers", "sim seconds", "speedup", "paper speedup"], rows
        ),
    )
    report.write("fig3_speedup")

    # Shape: all queries benefit from more resources
    for query, series in results.items():
        speedups = [point["speedup"] for point in series]
        assert speedups == sorted(speedups), "%s speedup not monotone" % query

    # Shape: operational near-linear at 16 workers; analytical clearly worse
    operational = [results[q][-1]["speedup"] for q in ("Q1", "Q2", "Q3")]
    analytical = [results[q][-1]["speedup"] for q in ("Q4", "Q5", "Q6")]
    assert min(operational) > 9.0, operational
    assert max(analytical) < min(operational), (operational, analytical)
    assert all(s < 9.0 for s in analytical), analytical

"""Ablation E12 — graph data partitioning strategies (paper §5 outlook).

"We want to investigate how different join implementations and data
partitioning as well as replication strategies can further reduce
runtimes."  We compare Flink-style round-robin block placement with
hash co-partitioning (vertices by id, edges by source id) on the
analytical queries: co-partitioning leaves one side of every
vertex-to-outgoing-edge join in place.
"""

import pytest

from repro.dataflow import ExecutionEnvironment, JoinStrategy
from repro.engine import CypherRunner, GraphStatistics, GreedyPlanner
from repro.epgm import GraphPartitioning
from repro.harness import (
    ALL_QUERIES,
    SCALE_FACTOR_SMALL,
    default_cost_model,
    format_table,
)


class _RepartitionPlanner(GreedyPlanner):
    """Force repartition joins: placement effects are invisible under
    broadcast joins, which replicate one side regardless."""

    def __init__(self, *args, **kwargs):
        kwargs["join_strategy"] = JoinStrategy.REPARTITION_HASH
        super().__init__(*args, **kwargs)


def _run(dataset, query_name, partitioning):
    environment = ExecutionEnvironment(cost_model=default_cost_model(8))
    graph = dataset.to_logical_graph(environment, partitioning=partitioning)
    statistics = GraphStatistics.from_graph(graph)
    environment.reset_metrics(query_name)
    runner = CypherRunner(
        graph, statistics=statistics, planner_cls=_RepartitionPlanner
    )
    embeddings, _ = runner.execute_embeddings(ALL_QUERIES[query_name])
    return {
        "results": len(embeddings),
        "shuffled_records": environment.metrics.total_shuffled_records,
        "shuffled_bytes": environment.metrics.total_shuffled_bytes,
        "seconds": environment.simulated_runtime_seconds(),
    }


@pytest.mark.benchmark(group="ablation-partitioning")
def test_ablation_partitioning(benchmark, dataset_cache, report):
    dataset = dataset_cache.dataset(SCALE_FACTOR_SMALL)

    def run():
        outcome = {}
        for query_name in ("Q4", "Q5", "Q6"):
            outcome[query_name] = {
                "round-robin": _run(
                    dataset, query_name, GraphPartitioning.ROUND_ROBIN
                ),
                "hash": _run(dataset, query_name, GraphPartitioning.HASH),
            }
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for query_name, variants in outcome.items():
        for placement, result in variants.items():
            rows.append(
                (
                    query_name,
                    placement,
                    result["results"],
                    result["shuffled_records"],
                    result["seconds"],
                )
            )
    report.add(
        "Ablation E12 — data placement: round-robin vs hash co-partitioning "
        "(8 workers, SF-small)",
        format_table(
            ["query", "placement", "results", "shuffled records", "sim s"], rows
        ),
    )
    report.write("ablation_partitioning")

    for query_name, variants in outcome.items():
        assert variants["hash"]["results"] == variants["round-robin"]["results"]
        assert (
            variants["hash"]["shuffled_records"]
            < variants["round-robin"]["shuffled_records"]
        ), query_name

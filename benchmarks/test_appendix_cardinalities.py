"""Appendix — result cardinalities per query, scale factor, selectivity.

Shape claims:
* per operational query: high < medium < low result counts;
* cardinalities grow with the scale factor;
* analytical queries produce far larger result sets than operational ones
  at matching selectivity (they consider large parts of the graph).
"""

import pytest

from repro.harness import (
    SCALE_FACTOR_LARGE,
    SCALE_FACTOR_SMALL,
    format_table,
    result_cardinalities,
)


@pytest.mark.benchmark(group="appendix")
def test_appendix_cardinalities(benchmark, dataset_cache, report):
    def run():
        return result_cardinalities(
            [SCALE_FACTOR_SMALL, SCALE_FACTOR_LARGE], dataset_cache
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for query, by_sf in table.items():
        for scale_factor, counts in by_sf.items():
            if isinstance(counts, dict):
                rows.append(
                    (
                        query,
                        scale_factor,
                        counts["high"],
                        counts["medium"],
                        counts["low"],
                    )
                )
            else:
                rows.append((query, scale_factor, "-", "-", counts))
    report.add(
        "Appendix — result cardinalities",
        format_table(["query", "SF", "high", "medium", "low/total"], rows),
    )
    report.write("appendix_cardinalities")

    for query in ("Q1", "Q2", "Q3"):
        for scale_factor in (SCALE_FACTOR_SMALL, SCALE_FACTOR_LARGE):
            counts = table[query][scale_factor]
            assert counts["high"] <= counts["medium"] <= counts["low"], (
                query,
                scale_factor,
                counts,
            )

    for query in ("Q4", "Q5", "Q6"):
        assert table[query][SCALE_FACTOR_LARGE] > table[query][SCALE_FACTOR_SMALL]

    # analytical queries dwarf the operational low-selectivity results
    operational_low = max(
        table[q][SCALE_FACTOR_LARGE]["low"] for q in ("Q1", "Q2", "Q3")
    )
    analytical = min(table[q][SCALE_FACTOR_LARGE] for q in ("Q4", "Q5", "Q6"))
    assert analytical > operational_low

"""Ablation E7 — IndexedLogicalGraph vs plain label scans (paper §3.4).

The paper added per-label datasets so that a label predicate loads only
its label's dataset.  We measure the records processed and the simulated
runtime of Query 1 on both representations.
"""

import pytest

from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner, GraphStatistics
from repro.harness import (
    ALL_QUERIES,
    SCALE_FACTOR_LARGE,
    default_cost_model,
    format_table,
    instantiate,
)


def _run(dataset, indexed):
    environment = ExecutionEnvironment(cost_model=default_cost_model(4))
    graph = dataset.to_logical_graph(environment, indexed=indexed)
    query = instantiate(ALL_QUERIES["Q1"], dataset.first_name("low"))
    statistics = GraphStatistics.from_graph(graph)
    environment.reset_metrics("q1")
    runner = CypherRunner(graph, statistics=statistics)
    embeddings, _ = runner.execute_embeddings(query)
    return {
        "results": len(embeddings),
        "records": environment.metrics.total_records_processed,
        "seconds": environment.simulated_runtime_seconds(),
    }


@pytest.mark.benchmark(group="ablation-indexed")
def test_ablation_indexed_logical_graph(benchmark, dataset_cache, report):
    dataset = dataset_cache.dataset(SCALE_FACTOR_LARGE)

    def run():
        return {"plain": _run(dataset, False), "indexed": _run(dataset, True)}

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (name, result["results"], result["records"], result["seconds"])
        for name, result in outcome.items()
    ]
    report.add(
        "Ablation E7 — plain vs label-indexed logical graph (Q1, SF-large)",
        format_table(["representation", "results", "records processed", "sim s"], rows),
    )
    report.write("ablation_indexed_graph")

    plain, indexed = outcome["plain"], outcome["indexed"]
    assert indexed["results"] == plain["results"]  # same answer
    assert indexed["records"] < plain["records"]  # fewer records scanned
    assert indexed["seconds"] <= plain["seconds"] * 1.01

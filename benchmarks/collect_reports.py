"""Assemble all benchmark reports into one markdown file.

Usage::

    pytest benchmarks/ --benchmark-only   # writes benchmarks/_reports/*.txt
    python benchmarks/collect_reports.py  # writes benchmarks/_reports/ALL_REPORTS.md
"""

import os
import sys

REPORT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_reports")

ORDER = [
    "fig3_speedup",
    "fig4_datasize",
    "fig5_selectivity",
    "table3_intermediate",
    "table4_runtimes",
    "appendix_cardinalities",
    "ablation_indexed_graph",
    "ablation_planner",
    "ablation_join_strategy",
    "ablation_embedding",
    "ablation_leaf_reuse",
    "ablation_partitioning",
    "ablation_bsp_matcher",
]


def main():
    if not os.path.isdir(REPORT_DIR):
        print("no reports found — run: pytest benchmarks/ --benchmark-only")
        return 1
    available = {
        name[:-4] for name in os.listdir(REPORT_DIR) if name.endswith(".txt")
    }
    sections = ["# Measured experiment reports\n"]
    for name in ORDER + sorted(available - set(ORDER)):
        path = os.path.join(REPORT_DIR, name + ".txt")
        if not os.path.exists(path):
            continue
        with open(path, encoding="utf-8") as handle:
            body = handle.read().strip()
        sections.append("```\n%s\n```\n" % body)
    target = os.path.join(REPORT_DIR, "ALL_REPORTS.md")
    with open(target, "w", encoding="utf-8") as handle:
        handle.write("\n".join(sections))
    print("wrote", target)
    return 0


if __name__ == "__main__":
    sys.exit(main())

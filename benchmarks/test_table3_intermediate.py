"""Table 3 — intermediate result sizes per selectivity (paper §4.2).

Shape claims:
* every pattern's cardinality grows by orders of magnitude from high to
  low selectivity;
* the two-join pattern (knows + hasCreator) grows *superlinearly* in the
  number of selected persons, while the single-join patterns grow roughly
  linearly — this is what makes Q3 selectivity-sensitive in Figure 5.
"""

import pytest

from repro.harness import (
    SCALE_FACTOR_LARGE,
    format_table,
    intermediate_result_sizes,
)

PERSON = "(:Person)"
TWO_JOIN = "(:Person)-[:knows]->(:Person)<-[:hasCreator]-(:Comment)"


@pytest.mark.benchmark(group="table3")
def test_table3_intermediate_results(benchmark, dataset_cache, report):
    def run():
        return intermediate_result_sizes(SCALE_FACTOR_LARGE, dataset_cache)

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (pattern, counts["high"], counts["medium"], counts["low"])
        for pattern, counts in table.items()
    ]
    report.add(
        "Table 3 — intermediate result sizes (SF-large)",
        format_table(["pattern", "high", "medium", "low"], rows),
    )
    report.write("table3_intermediate")

    for pattern, counts in table.items():
        assert counts["high"] <= counts["medium"] <= counts["low"], pattern
        # orders of magnitude between high and low
        assert counts["low"] >= 20 * max(counts["high"], 1), pattern

    # superlinear growth of the two-join pattern relative to selected persons
    person_growth = table[PERSON]["low"] / max(table[PERSON]["medium"], 1)
    two_join_growth = table[TWO_JOIN]["low"] / max(table[TWO_JOIN]["medium"], 1)
    assert two_join_growth > person_growth * 0.7
    # the deep pattern has far more rows than the persons that seed it
    assert table[TWO_JOIN]["low"] > 10 * table[PERSON]["low"]

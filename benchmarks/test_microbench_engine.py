"""Engine micro-benchmarks: parse, plan, execute throughput.

Unlike the experiment benchmarks (simulated runtimes), these measure real
wall-clock performance of the Python implementation with pytest-benchmark's
statistical machinery — the numbers an OSS maintainer watches for
regressions.
"""

import pytest

from repro.cypher import QueryHandler, parse
from repro.engine import CypherRunner, GraphStatistics, GreedyPlanner
from repro.harness import ALL_QUERIES, instantiate

QUERY = instantiate(ALL_QUERIES["Q3"], "Jan")

# the medium_graph fixture is session-scoped in benchmarks/conftest.py,
# shared with the ablation benchmarks


@pytest.mark.benchmark(group="micro")
def test_parse_throughput(benchmark):
    query = benchmark(parse, QUERY)
    assert query.patterns


@pytest.mark.benchmark(group="micro")
def test_compile_throughput(benchmark, medium_graph):
    _, graph, statistics = medium_graph

    def compile_query():
        handler = QueryHandler(QUERY)
        return GreedyPlanner(graph, handler, statistics).plan()

    root = benchmark(compile_query)
    assert root.meta.variables


@pytest.mark.benchmark(group="micro")
def test_execute_q1_throughput(benchmark, medium_graph):
    dataset, graph, statistics = medium_graph
    runner = CypherRunner(graph, statistics=statistics)
    query = instantiate(ALL_QUERIES["Q1"], dataset.first_name("low"))

    def execute():
        embeddings, _ = runner.execute_embeddings(query)
        return embeddings

    embeddings = benchmark(execute)
    assert embeddings


@pytest.mark.benchmark(group="micro")
def test_execute_q5_throughput(benchmark, medium_graph):
    _, graph, statistics = medium_graph
    runner = CypherRunner(graph, statistics=statistics)

    def execute():
        embeddings, _ = runner.execute_embeddings(ALL_QUERIES["Q5"])
        return embeddings

    embeddings = benchmark(execute)
    assert embeddings


@pytest.mark.benchmark(group="sanitizer-overhead")
def test_execute_q1_plain(benchmark, medium_graph):
    """Baseline for the sanitizer pair: identical query, sanitize off.

    With the sanitizer disabled no per-embedding work happens — the only
    cost is one ``is None`` test per operator *build*, so this case should
    be statistically indistinguishable from ``test_execute_q1_throughput``.
    """
    dataset, graph, statistics = medium_graph
    runner = CypherRunner(graph, statistics=statistics)
    query = instantiate(ALL_QUERIES["Q1"], dataset.first_name("low"))

    def execute():
        embeddings, _ = runner.execute_embeddings(query)
        return embeddings

    embeddings = benchmark(execute)
    assert embeddings


@pytest.mark.benchmark(group="sanitizer-overhead")
def test_execute_q1_sanitized(benchmark, medium_graph):
    """Full instrumented execution: every operator boundary validated."""
    dataset, graph, statistics = medium_graph
    runner = CypherRunner(graph, statistics=statistics, sanitize=True)
    query = instantiate(ALL_QUERIES["Q1"], dataset.first_name("low"))

    def execute():
        embeddings, _ = runner.execute_embeddings(query)
        return embeddings

    embeddings = benchmark(execute)
    assert embeddings
    assert runner.last_sanitizer is not None
    assert runner.last_sanitizer.checked >= len(embeddings)
    assert not runner.last_sanitizer.diagnostics


@pytest.mark.benchmark(group="sanitizer-overhead")
def test_execute_q1_sampled(benchmark, medium_graph):
    """Sampled instrumentation: one embedding in 16 validated.

    ``sanitize="sample"`` keeps the instrument wrappers (so execution
    stays per-record, like the fully sanitized case) but skips the
    byte-level validation on all but every ``DEFAULT_SAMPLE_EVERY``-th
    embedding — recovering most of the sanitizer's ~2.5x overhead while
    retaining a statistical smoke check.  Compare against
    ``test_execute_q1_plain`` / ``test_execute_q1_sanitized``; the gap
    this case closes is the per-embedding validation cost that a
    flowcheck-proven plan (``repro flowcheck``) makes redundant.
    """
    dataset, graph, statistics = medium_graph
    runner = CypherRunner(graph, statistics=statistics, sanitize="sample")
    query = instantiate(ALL_QUERIES["Q1"], dataset.first_name("low"))

    def execute():
        embeddings, _ = runner.execute_embeddings(query)
        return embeddings

    embeddings = benchmark(execute)
    assert embeddings
    assert runner.last_sanitizer is not None
    # the sampler saw every embedding but validated only a fraction
    assert runner.last_sanitizer.seen > runner.last_sanitizer.checked
    assert not runner.last_sanitizer.diagnostics


@pytest.mark.benchmark(group="plan-cache")
def test_parameterized_q1_plan_cache_cold(benchmark, medium_graph):
    """Baseline for the plan-cache pair: every run pays parse+lint+plan.

    The cache is cleared inside the measured function, so each execution
    of the ``$firstName``-parameterized Q1 compiles from scratch — the
    cost a service without a plan cache would pay on every request.
    """
    dataset, graph, statistics = medium_graph
    runner = CypherRunner(graph, statistics=statistics)
    query = ALL_QUERIES["Q1"].replace("'{firstName}'", "$firstName")
    parameters = {"firstName": dataset.first_name("low")}

    def execute_cold():
        runner.plan_cache.clear()
        embeddings, _ = runner.execute_embeddings(query, parameters)
        return embeddings

    embeddings = benchmark(execute_cold)
    assert embeddings
    assert runner.plan_cache.stats.hits == 0  # truly cold every round


@pytest.mark.benchmark(group="plan-cache")
def test_parameterized_q1_plan_cache_warm(benchmark, medium_graph):
    """Warm half of the pair: the compiled plan is reused across runs.

    Same query, same binding — after the first compile every execution is
    a plan-cache hit, which is the serving layer's hot path.
    """
    dataset, graph, statistics = medium_graph
    runner = CypherRunner(graph, statistics=statistics)
    query = ALL_QUERIES["Q1"].replace("'{firstName}'", "$firstName")
    parameters = {"firstName": dataset.first_name("low")}
    runner.execute_embeddings(query, parameters)  # populate the cache

    def execute_warm():
        embeddings, _ = runner.execute_embeddings(query, parameters)
        return embeddings

    embeddings = benchmark(execute_warm)
    assert embeddings
    # exactly one miss (the warm-up compile); every measured run hit
    assert runner.plan_cache.stats.misses == 1
    assert runner.plan_cache.stats.hits >= 1


@pytest.mark.benchmark(group="plan-cache")
def test_prepared_statement_rebind_throughput(benchmark, medium_graph):
    """One prepared plan, new binding each run: no cache lookup at all."""
    dataset, graph, statistics = medium_graph
    runner = CypherRunner(graph, statistics=statistics)
    query = ALL_QUERIES["Q1"].replace("'{firstName}'", "$firstName")
    statement = runner.prepare(query)
    names = [dataset.first_name("low"), dataset.first_name("medium")]
    state = {"round": 0}

    def execute_rebound():
        state["round"] += 1
        parameters = {"firstName": names[state["round"] % len(names)]}
        embeddings, _ = statement.execute_embeddings(parameters)
        return embeddings

    embeddings = benchmark(execute_rebound)
    assert embeddings
    assert statement.executions >= 1


@pytest.mark.benchmark(group="micro")
def test_statistics_computation(benchmark, medium_graph):
    _, graph, _ = medium_graph
    statistics = benchmark(GraphStatistics.from_graph, graph)
    assert statistics.vertex_count > 0

"""Table 4 — the full runtime/speedup grid (paper appendix).

Regenerates every row of the paper's Table 4: operational queries across
selectivities, scale factors and worker counts; analytical queries across
scale factors and worker counts.
"""

import pytest

from repro.harness import format_table, runtime_grid

WORKERS = [1, 2, 4, 8, 16]


@pytest.mark.benchmark(group="table4")
def test_table4_runtime_grid(benchmark, dataset_cache, report):
    def run():
        return runtime_grid(WORKERS, cache=dataset_cache)

    grid = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for entry in grid:
        for point in entry["series"]:
            rows.append(
                (
                    entry["query"],
                    entry["selectivity"] or "-",
                    entry["scale_factor"],
                    point["workers"],
                    point["seconds"],
                    round(point["speedup"], 1),
                )
            )
    report.add(
        "Table 4 — query runtimes in simulated seconds (speedup)",
        format_table(
            ["query", "selectivity", "SF", "workers", "seconds", "speedup"], rows
        ),
    )
    report.write("table4_runtimes")

    # Shape checks over the whole grid ------------------------------------

    for entry in grid:
        series = entry["series"]
        # runtime decreases monotonically with workers
        seconds = [point["seconds"] for point in series]
        assert seconds == sorted(seconds, reverse=True), entry["query"]

    def final_speedup(query, scale_factor, selectivity=None):
        for entry in grid:
            if (
                entry["query"] == query
                and entry["scale_factor"] == scale_factor
                and entry["selectivity"] == selectivity
            ):
                return entry["series"][-1]["speedup"]
        raise KeyError((query, scale_factor, selectivity))

    # large SF scales better than small SF for the operational queries
    from repro.harness import SCALE_FACTOR_LARGE, SCALE_FACTOR_SMALL

    for query in ("Q1", "Q2", "Q3"):
        assert final_speedup(query, SCALE_FACTOR_LARGE, "low") > final_speedup(
            query, SCALE_FACTOR_SMALL, "low"
        )

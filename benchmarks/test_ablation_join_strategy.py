"""Ablation E9 — physical join strategy (paper §3.2 discussion).

Flink's optimizer chooses between partitioning and broadcast joins.  We
measure shuffle volume for a small⋈large join under both strategies plus
the AUTO heuristic, at two cluster sizes: broadcasting a small build side
beats repartitioning the large probe side, but its cost grows with the
worker count.
"""

import pytest

from repro.dataflow import ClusterCostModel, ExecutionEnvironment, JoinStrategy
from repro.harness import format_table


def _run_join(strategy, workers, small_count=200, big_count=20_000):
    environment = ExecutionEnvironment(
        cost_model=ClusterCostModel(workers=workers)
    )
    small = environment.from_collection([(i % 97, "s") for i in range(small_count)])
    big = environment.from_collection([(i % 97, "b") for i in range(big_count)])
    environment.reset_metrics("join")
    small.join(big, lambda l: l[0], lambda r: r[0], strategy=strategy).collect()
    metrics = environment.metrics
    return {
        "shuffled_records": metrics.total_shuffled_records,
        "shuffled_bytes": metrics.total_shuffled_bytes,
    }


@pytest.mark.benchmark(group="ablation-join")
def test_ablation_join_strategies(benchmark, report):
    def run():
        outcome = {}
        for workers in (4, 16):
            for strategy in (
                JoinStrategy.REPARTITION_HASH,
                JoinStrategy.BROADCAST_FIRST,
                JoinStrategy.AUTO,
            ):
                outcome[(workers, strategy.value)] = _run_join(strategy, workers)
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (workers, strategy, result["shuffled_records"], result["shuffled_bytes"])
        for (workers, strategy), result in outcome.items()
    ]
    report.add(
        "Ablation E9 — shuffle volume by join strategy (small ⋈ large)",
        format_table(["workers", "strategy", "shuffled records", "bytes"], rows),
    )
    report.write("ablation_join_strategy")

    for workers in (4, 16):
        repartition = outcome[(workers, "repartition-hash")]
        broadcast = outcome[(workers, "broadcast-first")]
        auto = outcome[(workers, "auto")]
        # broadcasting the small side moves far less data
        assert broadcast["shuffled_records"] < repartition["shuffled_records"]
        # AUTO matches the better choice
        assert auto["shuffled_records"] <= repartition["shuffled_records"]

    # broadcast cost grows with cluster size; repartition does not
    assert (
        outcome[(16, "broadcast-first")]["shuffled_records"]
        > outcome[(4, "broadcast-first")]["shuffled_records"]
    )

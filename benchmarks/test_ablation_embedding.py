"""Ablation — the byte-array embedding vs a naive dict representation.

The paper motivates the three-array layout (§3.3) with (de)serialization
and merge efficiency.  We compare wire size and merge throughput against
a straightforward dict-of-lists embedding.
"""

import pytest

from repro.dataflow import estimate_size
from repro.engine import Embedding
from repro.epgm import GradoopId, PropertyValue
from repro.harness import format_table


def _byte_embeddings(count):
    rows = []
    for index in range(count):
        embedding = (
            Embedding.of_ids(GradoopId(index + 1))
            .append_path([GradoopId(index + 2), GradoopId(index + 3)])
            .append_id(GradoopId(index + 4))
            .append_properties([PropertyValue("name%d" % index), PropertyValue(index)])
        )
        rows.append(embedding)
    return rows


def _dict_embeddings(count):
    rows = []
    for index in range(count):
        rows.append(
            {
                "ids": {"a": index + 1, "b": index + 4},
                "paths": {"e": [index + 2, index + 3]},
                "props": {"a.name": "name%d" % index, "a.rank": index},
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation-embedding")
def test_embedding_wire_size(benchmark, report):
    byte_rows = _byte_embeddings(1000)
    dict_rows = _dict_embeddings(1000)

    def measure():
        return (
            sum(estimate_size(row) for row in byte_rows),
            sum(estimate_size(row) for row in dict_rows),
        )

    byte_size, dict_size = benchmark.pedantic(measure, rounds=1, iterations=1)
    report.add(
        "Ablation — embedding wire size (1000 rows, 2 ids + path + 2 props)",
        format_table(
            ["representation", "total bytes", "bytes/row"],
            [
                ("byte-array (paper §3.3)", byte_size, byte_size // 1000),
                ("dict-of-lists", dict_size, dict_size // 1000),
            ],
        ),
    )
    report.write("ablation_embedding")
    assert byte_size < dict_size


@pytest.mark.benchmark(group="ablation-embedding")
def test_embedding_merge_throughput(benchmark):
    left = _byte_embeddings(2000)
    right = _byte_embeddings(2000)

    def merge_all():
        return [l.merge(r, frozenset([0])) for l, r in zip(left, right)]

    merged = benchmark(merge_all)
    assert len(merged) == 2000
    assert merged[0].column_count == 3 + 2  # 3 kept + (3 - 1 dropped)


@pytest.mark.benchmark(group="ablation-embedding")
def test_embedding_column_access(benchmark):
    rows = _byte_embeddings(2000)

    def read_all():
        return [row.raw_id_at(2) for row in rows]

    values = benchmark(read_all)
    assert len(values) == 2000

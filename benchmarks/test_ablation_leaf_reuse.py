"""Ablation E11 — recurring-subquery reuse (paper §5 "ongoing work").

The triangle query Q5 references ``:knows`` three times; with leaf-scan
sharing the edge relation is selected and transformed once instead of
three times.  Measures scan volume and simulated runtime on Q5 and Q6.
"""

import pytest

from repro.engine import CypherRunner, GreedyPlanner
from repro.harness import ALL_QUERIES, SCALE_FACTOR_SMALL, format_table


class _NoReusePlanner(GreedyPlanner):
    def __init__(self, *args, **kwargs):
        kwargs["reuse_leaf_scans"] = False
        super().__init__(*args, **kwargs)


def _run(setup, query_name, planner_cls):
    _, environment, graph, statistics = setup
    environment.reset_metrics(query_name)
    runner = CypherRunner(graph, statistics=statistics, planner_cls=planner_cls)
    embeddings, _ = runner.execute_embeddings(ALL_QUERIES[query_name])
    leaf_scans = sum(
        run.records_in
        for run in environment.metrics.runs
        if run.name.startswith(("SelectAndProject", "vertices", "edges"))
    )
    return {
        "results": len(embeddings),
        "leaf_records": leaf_scans,
        "seconds": environment.simulated_runtime_seconds(),
    }


@pytest.mark.benchmark(group="ablation-leaf-reuse")
def test_ablation_leaf_scan_reuse(benchmark, graph_cache, report):
    setup = graph_cache.get(SCALE_FACTOR_SMALL)

    def run():
        outcome = {}
        for query_name in ("Q5", "Q6"):
            outcome[query_name] = {
                "shared": _run(setup, query_name, GreedyPlanner),
                "separate": _run(setup, query_name, _NoReusePlanner),
            }
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for query_name, variants in outcome.items():
        for mode, result in variants.items():
            rows.append(
                (
                    query_name,
                    mode,
                    result["results"],
                    result["leaf_records"],
                    result["seconds"],
                )
            )
    report.add(
        "Ablation E11 — leaf-scan reuse (recurring subqueries, §5)",
        format_table(
            ["query", "leaf scans", "results", "leaf records", "sim s"], rows
        ),
    )
    report.write("ablation_leaf_reuse")

    for query_name, variants in outcome.items():
        assert variants["shared"]["results"] == variants["separate"]["results"]
        assert (
            variants["shared"]["leaf_records"] < variants["separate"]["leaf_records"]
        ), query_name
        assert variants["shared"]["seconds"] <= variants["separate"]["seconds"]

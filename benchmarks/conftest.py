"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md §4).  Rendered outputs are written to ``benchmarks/_reports/``
so EXPERIMENTS.md can quote measured numbers, and printed (visible with
``pytest -s``).
"""

import os

import pytest

from repro.harness import DatasetCache

REPORT_DIR = os.path.join(os.path.dirname(__file__), "_reports")


@pytest.fixture(scope="session")
def dataset_cache():
    """Generate each scale factor's dataset once for the whole session."""
    return DatasetCache(seed=42)


@pytest.fixture
def report():
    """Collects rendered text and writes it to the report directory."""

    class Report:
        def __init__(self):
            self.sections = []

        def add(self, title, body):
            self.sections.append("## %s\n\n%s\n" % (title, body))

        def write(self, name):
            os.makedirs(REPORT_DIR, exist_ok=True)
            text = "\n".join(self.sections)
            with open(os.path.join(REPORT_DIR, name + ".txt"), "w") as handle:
                handle.write(text)
            print("\n" + text)

    return Report()

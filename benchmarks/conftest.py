"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md §4).  Rendered outputs are written to ``benchmarks/_reports/``
so EXPERIMENTS.md can quote measured numbers, and printed (visible with
``pytest -s``).
"""

import os

import pytest

from repro.dataflow import ExecutionEnvironment
from repro.engine import GraphStatistics
from repro.harness import DatasetCache, default_cost_model

REPORT_DIR = os.path.join(os.path.dirname(__file__), "_reports")


@pytest.fixture(scope="session")
def dataset_cache():
    """Generate each scale factor's dataset once for the whole session."""
    return DatasetCache(seed=42)


class GraphCache:
    """Build each (scale_factor, workers, kwargs) logical graph once.

    ``get`` returns ``(dataset, environment, graph, statistics)``; the
    environment is shared, so benchmarks call ``reset_metrics`` before a
    measured region instead of building a fresh environment per run —
    ``to_logical_graph`` and ``GraphStatistics.from_graph`` dominate the
    setup cost of every ablation and are paid once per configuration.
    """

    def __init__(self, dataset_cache):
        self._dataset_cache = dataset_cache
        self._graphs = {}

    def get(self, scale_factor, workers=4, **kwargs):
        key = (scale_factor, workers, tuple(sorted(kwargs.items())))
        if key not in self._graphs:
            dataset = self._dataset_cache.dataset(scale_factor)
            environment = ExecutionEnvironment(
                cost_model=default_cost_model(workers)
            )
            graph = dataset.to_logical_graph(environment, **kwargs)
            statistics = GraphStatistics.from_graph(graph)
            self._graphs[key] = (dataset, environment, graph, statistics)
        return self._graphs[key]


@pytest.fixture(scope="session")
def graph_cache(dataset_cache):
    """Session-wide logical-graph cache shared by every benchmark module."""
    return GraphCache(dataset_cache)


@pytest.fixture(scope="session")
def medium_graph(graph_cache):
    """The SF-0.1 graph on a 4-worker environment (the microbench setup)."""
    dataset, _, graph, statistics = graph_cache.get(0.1)
    return dataset, graph, statistics


@pytest.fixture
def report():
    """Collects rendered text and writes it to the report directory."""

    class Report:
        def __init__(self):
            self.sections = []

        def add(self, title, body):
            self.sections.append("## %s\n\n%s\n" % (title, body))

        def write(self, name):
            os.makedirs(REPORT_DIR, exist_ok=True)
            text = "\n".join(self.sections)
            with open(os.path.join(REPORT_DIR, name + ".txt"), "w") as handle:
                handle.write(text)
            print("\n" + text)

    return Report()

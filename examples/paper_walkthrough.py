"""A guided tour through the paper, concept by concept.

Walks sections 2-4 of *Cypher-based Graph Pattern Matching in Gradoop*
(GRADES'17) on the paper's own running example, printing each artifact the
paper shows: the EPGM datasets of Table 1, the embeddings of Table 2a/2b,
a query plan like Figure 2, and a miniature scalability run like Figure 3.
"""

from repro.dataflow import ClusterCostModel, ExecutionEnvironment
from repro.engine import CypherRunner, GraphStatistics, MatchStrategy
from repro.epgm.io import parse_gdl

FIGURE_1 = """
community:Community {area: 'Leipzig'} [
    (alice:Person {name: 'Alice', gender: 'female'})
    (eve:Person {name: 'Eve', gender: 'female', yob: 1984})
    (bob:Person {name: 'Bob', gender: 'male'})
    (uni:University {name: 'Uni Leipzig'})
    (city:City {name: 'Leipzig'})
    (bob)-[:studyAt {classYear: 2014}]->(uni)
    (uni)-[:isLocatedIn]->(city)
    (alice)-[:studyAt {classYear: 2015}]->(uni)
    (eve)-[:studyAt {classYear: 2015}]->(uni)
    (alice)-[:knows]->(eve)
    (eve)-[:knows]->(alice)
    (eve)-[:knows]->(bob)
    (bob)-[:knows]->(eve)
]
"""


def section(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    environment = ExecutionEnvironment(parallelism=4)
    graph = parse_gdl(environment, FIGURE_1)

    section("§2.1  The Extended Property Graph Model (Table 1)")
    print("graph head:", graph.graph_head)
    for vertex in graph.collect_vertices():
        print("  V:", vertex)
    for edge in graph.collect_edges()[:4]:
        print("  E:", edge)
    print("  ... (%d edges total)" % graph.edge_count())

    section("§2.5  Embeddings as rows of a relation (Table 2a)")
    runner = CypherRunner(graph)
    query_2a = (
        "MATCH (p1:Person)-[s:studyAt]->(u:University) "
        "WHERE s.classYear > 2014 RETURN p1.name, u.name"
    )
    embeddings, meta = runner.execute_embeddings(query_2a)
    print("columns:", meta.variables, "properties:", meta.property_entries())
    for embedding in embeddings:
        print("  ", embedding)
    for row in runner.execute_table(query_2a):
        print("  row:", row)

    section("§2.5  Variable-length paths (Table 2b)")
    query_2b = (
        "MATCH (p1:Person {name: 'Alice'})-[e:knows*1..3]->(p2:Person) RETURN *"
    )
    iso_runner = CypherRunner(
        graph, vertex_strategy=MatchStrategy.ISOMORPHISM
    )
    embeddings, meta = iso_runner.execute_embeddings(query_2b)
    for embedding in embeddings:
        path = embedding.path_at(meta.entry_column("e"))
        print(
            "  f(p1)=%s via=%s f(p2)=%s"
            % (
                embedding.raw_id_at(meta.entry_column("p1")),
                [g.value for g in path],
                embedding.raw_id_at(meta.entry_column("p2")),
            )
        )

    section("§3.3  The embedding byte layout")
    embedding = embeddings[0]
    print("  idData  :", list(embedding.id_data))
    print("  pathData:", list(embedding.path_data))
    print("  propData:", list(embedding.prop_data))
    print("  (meta data lives outside the embedding: %r)" % meta)

    section("§3  The query plan (like Figure 2)")
    query = """
        MATCH (p1:Person)-[s:studyAt]->(u:University),
              (p2:Person)-[:studyAt]->(u),
              (p1)-[e:knows*1..3]->(p2)
        WHERE p1.gender <> p2.gender
          AND u.name = 'Uni Leipzig'
          AND s.classYear > 2014
        RETURN *
    """
    print(runner.explain(query))
    matches = graph.cypher(query)
    print("matches (graph collection):", matches.graph_count())
    for head in matches.collect_graph_heads():
        print("  bindings:", head.properties.to_dict())

    section("§3.2  Statistics driving the greedy planner")
    statistics = GraphStatistics.from_graph(graph)
    print("  ", statistics)
    print("   distinct studyAt sources:",
          statistics.distinct_source_by_label["studyAt"])

    section("§4  A miniature scalability experiment (like Figure 3)")
    baseline = None
    for workers in (1, 2, 4, 8):
        env = ExecutionEnvironment(
            cost_model=ClusterCostModel(
                workers=workers,
                cpu_seconds_per_record=1e-3,
                job_overhead_seconds=0.01,
                barrier_overhead_seconds=0.0,
            )
        )
        g = parse_gdl(env, FIGURE_1)
        stats = GraphStatistics.from_graph(g)
        env.reset_metrics("walkthrough")
        CypherRunner(g, statistics=stats).execute_embeddings(query)
        seconds = env.simulated_runtime_seconds()
        baseline = baseline or seconds
        print(
            "  %2d workers: %6.3f simulated s (speedup %.1f)"
            % (workers, seconds, baseline / seconds)
        )


if __name__ == "__main__":
    main()

"""Query planning in depth: EXPLAIN, EXPLAIN ANALYZE, planner comparison.

Shows the cost-based optimization of paper §3.2 at work: the statistics,
the plan a greedy/left-deep/exhaustive planner picks for the same query,
and how the estimates compare to actual cardinalities.
"""

from repro.dataflow import ExecutionEnvironment
from repro.engine import (
    CypherRunner,
    ExhaustivePlanner,
    GraphStatistics,
    GreedyPlanner,
    LeftDeepPlanner,
)
from repro.ldbc import LDBCGenerator

# textual order starts from the unselective membership edge on purpose;
# $name is bound to a rare first name at run time
QUERY = """
MATCH (forum:Forum)-[:hasMember]->(person:Person),
      (person)-[:isLocatedIn]->(city:City),
      (sel:Person {firstName: $name})-[:knows]->(person)
RETURN person.firstName, city.name
"""


def main():
    environment = ExecutionEnvironment(parallelism=4)
    dataset = LDBCGenerator(scale_factor=0.2, seed=42).generate()
    graph = dataset.to_logical_graph(environment)
    statistics = GraphStatistics.from_graph(graph)
    parameters = {"name": dataset.first_name("high")}

    print("=== Statistics the planner sees (paper §3.2) ===")
    for label in ("knows", "hasMember", "isLocatedIn"):
        print(
            "  :%-12s %5d edges, %4d distinct sources"
            % (
                label,
                statistics.edge_count_by_label.get(label, 0),
                statistics.distinct_source_by_label.get(label, 0),
            )
        )

    for name, planner_cls in [
        ("greedy (the paper's planner)", GreedyPlanner),
        ("left-deep textual order", LeftDeepPlanner),
        ("exhaustive enumeration", ExhaustivePlanner),
    ]:
        runner = CypherRunner(graph, statistics=statistics, planner_cls=planner_cls)
        environment.reset_metrics(name)
        rows = runner.execute_table(QUERY, parameters=parameters)
        intermediate = sum(
            run.records_in
            for run in environment.metrics.runs
            if run.name.startswith(("JoinEmbeddings", "SelectEmbeddings"))
        )
        print("\n=== %s ===" % name)
        print(runner.explain(QUERY, parameters=parameters))
        print(
            "results=%d  intermediate join records=%d  simulated=%.2fs"
            % (len(rows), intermediate, environment.simulated_runtime_seconds())
        )

    print("\n=== EXPLAIN ANALYZE (estimates vs reality) ===")
    runner = CypherRunner(graph, statistics=statistics)
    print(runner.explain_analyze(QUERY, parameters=parameters))


if __name__ == "__main__":
    main()

"""Inspect the synthetic LDBC-like dataset's distributions.

Shows why the evaluation behaves like the paper's: Zipf-skewed first
names (the selectivity classes of Figure 5) and power-law `knows` degrees
(the load imbalance of Figure 3).
"""

from repro.dataflow import ExecutionEnvironment
from repro.engine import GraphStatistics
from repro.epgm.algorithms import degree_distribution
from repro.ldbc import LDBCGenerator


def bar(value, scale=1.0, width=50):
    return "#" * min(int(value * scale), width)


def main():
    dataset = LDBCGenerator(scale_factor=0.5, seed=42).generate()
    environment = ExecutionEnvironment(parallelism=4)
    graph = dataset.to_logical_graph(environment)

    print("=== Element counts ===")
    for label, count in sorted(dataset.counts_by_label().items()):
        print("  %-14s %6d" % (label, count))

    print("\n=== firstName frequency (top 12, Zipf-skewed) ===")
    ranked = sorted(dataset.first_name_ranks.items(), key=lambda item: -item[1])
    for name, count in ranked[:12]:
        print("  %-8s %4d %s" % (name, count, bar(count, 0.5)))
    print("  ... %d distinct names total" % len(ranked))
    for selectivity in ("high", "medium", "low"):
        name = dataset.first_name(selectivity)
        print(
            "  %-6s selectivity -> %-8s (%d persons)"
            % (selectivity, name, dataset.first_name_ranks[name])
        )

    print("\n=== knows in-degree distribution (power law) ===")
    histogram = degree_distribution(
        graph.edge_induced_subgraph(lambda e: e.label == "knows"), mode="in"
    )
    for degree in sorted(histogram)[:15]:
        print("  degree %3d: %4d %s" % (degree, histogram[degree], bar(histogram[degree], 0.5)))
    print("  max in-degree:", max(histogram))

    print("\n=== Planner statistics (paper §3.2) ===")
    statistics = GraphStatistics.from_graph(graph)
    print("  |V| = %d, |E| = %d" % (statistics.vertex_count, statistics.edge_count))
    for label in sorted(statistics.edge_count_by_label):
        print(
            "  :%-13s %6d edges, %5d distinct sources, %5d distinct targets"
            % (
                label,
                statistics.edge_count_by_label[label],
                statistics.distinct_source_by_label[label],
                statistics.distinct_target_by_label[label],
            )
        )


if __name__ == "__main__":
    main()

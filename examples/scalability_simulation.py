"""Simulated cluster scalability, Figure-3 style.

Runs one operational and one analytical query over 1..16 simulated
workers and prints runtime/speedup series, illustrating how the cost
model reproduces the paper's scalability shapes (near-linear for
selective operational queries, stagnating for analytical ones).
"""

from repro.harness import (
    SCALE_FACTOR_LARGE,
    SCALE_FACTOR_SMALL,
    format_table,
    speedup_series,
)

WORKERS = [1, 2, 4, 8, 16]


def main():
    print("operational query Q2 (low selectivity) on the large scale factor:")
    series = speedup_series("Q2", SCALE_FACTOR_LARGE, WORKERS, "low")
    print(
        format_table(
            ["workers", "sim seconds", "speedup"],
            [(p["workers"], p["seconds"], round(p["speedup"], 1)) for p in series],
        )
    )

    print("\nanalytical query Q6 on the small scale factor:")
    series = speedup_series("Q6", SCALE_FACTOR_SMALL, WORKERS)
    print(
        format_table(
            ["workers", "sim seconds", "speedup"],
            [(p["workers"], p["seconds"], round(p["speedup"], 1)) for p in series],
        )
    )

    print(
        "\nNote the contrast: the selective query keeps scaling to 16 workers"
        "\nwhile the analytical one flattens — large intermediate results and"
        "\npower-law skew limit its speedup, as in the paper's Figure 3."
    )


if __name__ == "__main__":
    main()

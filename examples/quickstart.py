"""Quickstart: build a property graph, run Cypher pattern matching.

Recreates the paper's running example: the social network of Figure 1 and
the query of Section 2.3 (pairs of persons studying at Uni Leipzig, with
different genders, knowing each other by at most three friendships).
"""

from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner, MatchStrategy
from repro.epgm import Edge, GradoopId, GraphHead, LogicalGraph, Vertex


def build_figure1_graph(environment):
    """The Figure 1 community graph: persons, a university, a city."""
    head = GraphHead(GradoopId(100), label="Community", properties={"area": "Leipzig"})
    vertices = [
        Vertex(GradoopId(10), "Person", {"name": "Alice", "gender": "female"}),
        Vertex(GradoopId(20), "Person", {"name": "Eve", "gender": "female", "yob": 1984}),
        Vertex(GradoopId(30), "Person", {"name": "Bob", "gender": "male"}),
        Vertex(GradoopId(40), "University", {"name": "Uni Leipzig"}),
        Vertex(GradoopId(50), "City", {"name": "Leipzig"}),
    ]
    edges = [
        Edge(GradoopId(1), "studyAt", GradoopId(30), GradoopId(40), {"classYear": 2014}),
        Edge(GradoopId(2), "isLocatedIn", GradoopId(40), GradoopId(50)),
        Edge(GradoopId(3), "studyAt", GradoopId(10), GradoopId(40), {"classYear": 2015}),
        Edge(GradoopId(4), "studyAt", GradoopId(20), GradoopId(40), {"classYear": 2015}),
        Edge(GradoopId(5), "knows", GradoopId(10), GradoopId(20)),
        Edge(GradoopId(6), "knows", GradoopId(20), GradoopId(10)),
        Edge(GradoopId(7), "knows", GradoopId(20), GradoopId(30)),
        Edge(GradoopId(8), "knows", GradoopId(30), GradoopId(20)),
    ]
    return LogicalGraph.from_collections(environment, vertices, edges, graph_head=head)


QUERY = """
MATCH (p1:Person)-[s:studyAt]->(u:University),
      (p2:Person)-[:studyAt]->(u),
      (p1)-[e:knows*1..3]->(p2)
WHERE p1.gender <> p2.gender
  AND u.name = 'Uni Leipzig'
  AND s.classYear > 2014
RETURN *
"""


def main():
    environment = ExecutionEnvironment(parallelism=4)
    graph = build_figure1_graph(environment)

    print("=== EXPLAIN ===")
    runner = CypherRunner(graph)
    print(runner.explain(QUERY))

    print("\n=== Matches as a graph collection (the EPGM operator) ===")
    matches = graph.cypher(QUERY)
    for head in matches.collect_graph_heads():
        print("match:", head.properties.to_dict())

    print("\n=== The same with isomorphism semantics for vertices ===")
    iso_matches = graph.cypher(QUERY, vertex_strategy=MatchStrategy.ISOMORPHISM)
    print("homomorphic matches:", matches.graph_count())
    print("isomorphic matches: ", iso_matches.graph_count())

    print("\n=== Tabular results (Table 2a of the paper) ===")
    rows = runner.execute_table(
        "MATCH (p1:Person)-[s:studyAt]->(u:University) "
        "WHERE s.classYear > 2014 RETURN p1.name, u.name"
    )
    for row in rows:
        print(row)

    print("\n=== Dataflow metrics ===")
    print(environment.metrics.summary())


if __name__ == "__main__":
    main()

"""Graph I/O and the label-indexed graph representation.

Writes a generated social network to the Gradoop-style CSV format, reads
it back, and compares query scan volume between a plain LogicalGraph and
the IndexedLogicalGraph of paper §3.4.
"""

import os
import tempfile

from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner
from repro.epgm import IndexedLogicalGraph
from repro.epgm.io import CSVDataSink, CSVDataSource
from repro.ldbc import generate_graph

QUERY = "MATCH (p:Person)-[:studyAt]->(u:University) RETURN p.firstName, u.name"


def main():
    environment = ExecutionEnvironment(parallelism=4)
    graph = generate_graph(environment, scale_factor=0.1, seed=7)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "social-network")
        CSVDataSink(path).write_logical_graph(graph)
        print("wrote graph to", path)
        print("files:", sorted(os.listdir(path)))

        restored = CSVDataSource(path).get_logical_graph(environment)
        print(
            "restored: %d vertices, %d edges"
            % (restored.vertex_count(), restored.edge_count())
        )

        # plain representation: every query vertex scans all vertices
        environment.reset_metrics("plain")
        plain_rows = CypherRunner(restored).execute_table(QUERY)
        plain_scanned = environment.metrics.total_records_processed

        # label-indexed representation: per-label datasets (paper §3.4)
        indexed = IndexedLogicalGraph.from_logical_graph(restored)
        environment.reset_metrics("indexed")
        indexed_rows = CypherRunner(indexed).execute_table(QUERY)
        indexed_scanned = environment.metrics.total_records_processed

        assert len(plain_rows) == len(indexed_rows)
        print("\nquery:", QUERY)
        print("results:", len(plain_rows))
        print("records processed, plain graph:  ", plain_scanned)
        print("records processed, indexed graph:", indexed_scanned)
        print(
            "indexed representation scanned %.1fx fewer records"
            % (plain_scanned / indexed_scanned)
        )


if __name__ == "__main__":
    main()

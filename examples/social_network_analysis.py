"""Analytical pipeline on a synthetic LDBC-like social network.

Demonstrates what the paper's §1 motivates: declarative pattern matching
*combined with* the other EPGM operators in one analytical program.  We
find friend-recommendation candidates with Cypher (paper Query 6), then
post-process the match collection with EPGM grouping and aggregation.
"""

from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner
from repro.epgm.operators.aggregation import Count
from repro.ldbc import generate_graph


RECOMMENDATION_QUERY = """
MATCH (p1:Person)-[:knows]->(p2:Person),
      (p1)-[:hasInterest]->(t1:Tag),
      (p2)-[:hasInterest]->(t1),
      (p2)-[:hasInterest]->(t2:Tag)
RETURN p1.firstName, p1.lastName, t2.name
"""

CLOSE_FRIENDS_QUERY = """
MATCH (p1:Person)-[:knows]->(p2:Person),
      (p2)-[:knows]->(p3:Person),
      (p1)-[:knows]->(p3)
RETURN p1.firstName, p2.firstName, p3.firstName
"""


def main():
    environment = ExecutionEnvironment(parallelism=4)
    graph = generate_graph(environment, scale_factor=0.2, seed=42)
    print(
        "generated network: %d vertices, %d edges"
        % (graph.vertex_count(), graph.edge_count())
    )

    runner = CypherRunner(graph)

    print("\n=== Close-friend triangles (paper Query 5) ===")
    triangles = runner.execute_table(CLOSE_FRIENDS_QUERY)
    print("triangles found:", len(triangles))
    for row in triangles[:5]:
        print("  ", row)

    print("\n=== Tag recommendations (paper Query 6) ===")
    recommendations = runner.execute_table(RECOMMENDATION_QUERY)
    print("recommendation rows:", len(recommendations))
    by_tag = {}
    for row in recommendations:
        by_tag[row["t2.name"]] = by_tag.get(row["t2.name"], 0) + 1
    top = sorted(by_tag.items(), key=lambda item: -item[1])[:5]
    print("most recommended tags:", top)

    print("\n=== Combining with EPGM operators ===")
    # the matches are a graph collection: post-process one of them
    matches = graph.cypher(CLOSE_FRIENDS_QUERY)
    print("match graphs:", matches.graph_count())
    if matches.graph_count() > 0:
        one_match = matches.graphs()[0]
        annotated = one_match.aggregate("personCount", Count("vertices"))
        print(
            "one match graph annotated:",
            annotated.graph_head.properties.to_dict(),
        )

    # structural grouping of the whole network: a summary graph
    summary = graph.group_by()
    print("\n=== Schema summary via EPGM grouping ===")
    for vertex in summary.collect_vertices():
        print(
            "  %-12s %5d vertices" % (vertex.label, vertex.get_property("count").raw())
        )


if __name__ == "__main__":
    main()

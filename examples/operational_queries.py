"""The paper's operational queries with parameterized selectivity.

Runs queries 1-3 of the evaluation (appendix) with high/medium/low
selectivity firstName predicates, showing how predicate selectivity drives
result cardinality and simulated runtime (paper §4.2, Figure 5).
"""

from repro.harness import (
    OPERATIONAL_QUERIES,
    SCALE_FACTOR_SMALL,
    format_table,
    instantiate,
    run_query,
)
from repro.ldbc import LDBCGenerator


def main():
    dataset = LDBCGenerator(scale_factor=SCALE_FACTOR_SMALL, seed=42).generate()
    print("selectivity classes for this dataset:")
    for selectivity in ("high", "medium", "low"):
        name = dataset.first_name(selectivity)
        print(
            "  %-6s -> firstName=%-8s (%d persons)"
            % (selectivity, name, dataset.first_name_ranks[name])
        )

    print("\nexample query text (Q1, low selectivity):")
    print(instantiate(OPERATIONAL_QUERIES["Q1"], dataset.first_name("low")))

    rows = []
    for query_name in ("Q1", "Q2", "Q3"):
        for selectivity in ("high", "medium", "low"):
            run = run_query(query_name, SCALE_FACTOR_SMALL, 4, selectivity)
            rows.append(
                (
                    query_name,
                    selectivity,
                    run.result_count,
                    round(run.simulated_seconds, 1),
                    run.metrics["shuffled_records"],
                )
            )
    print(
        "\n"
        + format_table(
            ["query", "selectivity", "results", "sim seconds", "shuffled"], rows
        )
    )


if __name__ == "__main__":
    main()

"""Pattern matching combined with iterative graph algorithms.

Builds a small network with the GDL reader, then runs the classic
analytical algorithms on the same dataflow substrate the Cypher engine
uses: connected components, BFS distances, degree statistics and a
Cypher-powered triangle count.
"""

from repro.dataflow import ExecutionEnvironment
from repro.epgm.algorithms import (
    bfs_distances,
    degree_distribution,
    triangle_count,
    weakly_connected_components,
)
from repro.epgm.io import parse_gdl
from repro.epgm.io.dot import to_dot

NETWORK = """
community:Community {area: 'Leipzig'} [
    (alice:Person {name: 'Alice'})-[:knows]->(bob:Person {name: 'Bob'})
    (bob)-[:knows]->(carol:Person {name: 'Carol'})
    (alice)-[:knows]->(carol)
    (carol)-[:knows]->(dave:Person {name: 'Dave'})
    (erin:Person {name: 'Erin'})-[:knows]->(frank:Person {name: 'Frank'})
]
"""


def main():
    environment = ExecutionEnvironment(parallelism=4)
    graph = parse_gdl(environment, NETWORK)
    names = {
        v.id: v.get_property("name").raw() for v in graph.collect_vertices()
    }

    print("=== The graph (DOT) ===")
    print(to_dot(graph, vertex_label_key="name"))

    print("\n=== Weakly connected components ===")
    components = weakly_connected_components(graph)
    by_component = {}
    for vid, component in components.items():
        by_component.setdefault(component, []).append(names[vid])
    for component, members in sorted(by_component.items()):
        print("  component %d: %s" % (component, sorted(members)))

    print("\n=== BFS distances from Alice ===")
    alice = [vid for vid, name in names.items() if name == "Alice"][0]
    for vid, distance in sorted(
        bfs_distances(graph, alice).items(), key=lambda item: item[1]
    ):
        print("  %-6s %d" % (names[vid], distance))

    print("\n=== Degree distribution (both directions) ===")
    for degree, count in sorted(degree_distribution(graph, "both").items()):
        print("  degree %d: %d vertices" % (degree, count))

    print("\n=== Triangles (via the Cypher engine) ===")
    print("  triangle count:", triangle_count(graph, edge_label="knows"))


if __name__ == "__main__":
    main()

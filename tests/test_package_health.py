"""Package-wide health checks: imports, docstrings, public API."""

import importlib
import pkgutil

import repro


def _walk_modules():
    for module in pkgutil.walk_packages(repro.__path__, "repro."):
        if module.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield module.name


def test_every_module_imports():
    for name in _walk_modules():
        importlib.import_module(name)


def test_every_module_has_a_docstring():
    undocumented = [
        name
        for name in _walk_modules()
        if not (importlib.import_module(name).__doc__ or "").strip()
    ]
    assert not undocumented, undocumented


def test_all_exports_resolve():
    for name in _walk_modules():
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), "%s.%s" % (name, symbol)


def test_top_level_convenience_imports():
    from repro import (  # noqa: F401
        CypherRunner,
        ExecutionEnvironment,
        LogicalGraph,
        MatchStrategy,
    )

    assert repro.__version__

"""Tests for the openCypher extension features: string predicates,
aggregates with implicit grouping, ORDER BY / SKIP."""

import pytest

from repro.cypher import CypherSemanticError, CypherSyntaxError, parse
from repro.cypher.ast import FunctionCall, OrderItem, PropertyAccess
from repro.engine import CypherRunner


class TestParsing:
    def test_starts_with(self):
        where = parse("MATCH (a) WHERE a.name STARTS WITH 'Al'").where
        assert where.operator == "STARTS WITH"

    def test_ends_with(self):
        where = parse("MATCH (a) WHERE a.name ENDS WITH 'ce'").where
        assert where.operator == "ENDS WITH"

    def test_contains(self):
        where = parse("MATCH (a) WHERE a.name CONTAINS 'li'").where
        assert where.operator == "CONTAINS"

    def test_count_star(self):
        returns = parse("MATCH (a) RETURN count(*)").returns
        assert returns.items[0].expression == FunctionCall("count", None)
        assert returns.has_aggregates

    def test_aggregate_with_argument(self):
        returns = parse("MATCH (a) RETURN min(a.age) AS youngest").returns
        expression = returns.items[0].expression
        assert expression == FunctionCall("min", PropertyAccess("a", "age"))

    def test_star_only_for_count(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (a) RETURN sum(*)")

    def test_non_aggregate_function_is_unknown(self):
        """An identifier followed by '(' that is not an aggregate fails."""
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (a) RETURN shenanigans(a.x)")

    def test_order_by(self):
        returns = parse("MATCH (a) RETURN a.name ORDER BY a.name DESC, a.age").returns
        assert returns.order_by == [
            OrderItem(PropertyAccess("a", "name"), True),
            OrderItem(PropertyAccess("a", "age"), False),
        ]

    def test_order_by_asc_explicit(self):
        returns = parse("MATCH (a) RETURN a.x ORDER BY a.x ASC").returns
        assert not returns.order_by[0].descending

    def test_skip_and_limit(self):
        returns = parse("MATCH (a) RETURN a.x SKIP 5 LIMIT 3").returns
        assert returns.skip == 5
        assert returns.limit == 3

    def test_order_by_unbound_variable_rejected(self):
        from repro.cypher import QueryHandler

        with pytest.raises(CypherSemanticError):
            QueryHandler("MATCH (a) RETURN a.x ORDER BY ghost.y")


class TestStringPredicateExecution:
    def test_starts_with(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) WHERE p.name STARTS WITH 'A' RETURN p.name"
        )
        assert [row["p.name"] for row in rows] == ["Alice"]

    def test_ends_with(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) WHERE p.name ENDS WITH 'e' RETURN p.name"
        )
        assert sorted(row["p.name"] for row in rows) == ["Alice", "Eve"]

    def test_contains(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) WHERE p.name CONTAINS 'o' RETURN p.name"
        )
        assert [row["p.name"] for row in rows] == ["Bob"]

    def test_string_predicate_on_non_string_is_unknown(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) WHERE p.yob STARTS WITH '19' RETURN p.name"
        )
        assert rows == []  # yob is an int: unknown, filtered

    def test_negated_contains(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) WHERE NOT p.name CONTAINS 'o' RETURN p.name"
        )
        assert sorted(row["p.name"] for row in rows) == ["Alice", "Eve"]


class TestAggregation:
    def test_count_star(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) RETURN count(*) AS n"
        )
        assert rows == [{"n": 3}]

    def test_count_skips_nulls(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) RETURN count(p.yob) AS n"
        )
        assert rows == [{"n": 1}]  # only Eve has yob

    def test_implicit_grouping(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person)-[s:studyAt]->(u:University) "
            "RETURN u.name, count(*) AS students"
        )
        assert rows == [{"u.name": "Uni Leipzig", "students": 3}]

    def test_grouping_by_property(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) RETURN p.gender, count(*) AS n ORDER BY p.gender"
        )
        assert rows == [
            {"p.gender": "female", "n": 2},
            {"p.gender": "male", "n": 1},
        ]

    def test_min_max_sum_avg(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person)-[s:studyAt]->(u) "
            "RETURN min(s.classYear) AS lo, max(s.classYear) AS hi, "
            "sum(s.classYear) AS total, avg(s.classYear) AS mean"
        )
        assert rows == [
            {"lo": 2014, "hi": 2015, "total": 6044, "mean": pytest.approx(6044 / 3)}
        ]

    def test_collect(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person {name: 'Eve'})-[:knows]->(q:Person) "
            "RETURN p.name, collect(q.name) AS friends"
        )
        assert sorted(rows[0]["friends"]) == ["Alice", "Bob"]

    def test_aggregates_over_empty_input(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person {name: 'Nobody'}) RETURN count(*) AS n, min(p.yob) AS m"
        )
        assert rows == []  # no groups at all (Cypher would return one row
        # for a global aggregate; grouping over zero embeddings yields none)


class TestOrderSkipLimit:
    def test_order_ascending(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) RETURN p.name ORDER BY p.name"
        )
        assert [row["p.name"] for row in rows] == ["Alice", "Bob", "Eve"]

    def test_order_descending(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) RETURN p.name ORDER BY p.name DESC"
        )
        assert [row["p.name"] for row in rows] == ["Eve", "Bob", "Alice"]

    def test_nulls_sort_last(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) RETURN p.yob ORDER BY p.yob"
        )
        assert rows[0]["p.yob"] == 1984
        assert rows[1]["p.yob"] is None

    def test_skip_then_limit(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) RETURN p.name ORDER BY p.name SKIP 1 LIMIT 1"
        )
        assert rows == [{"p.name": "Bob"}]

    def test_order_by_aggregate_alias_column(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person)-[:knows]->(q:Person) "
            "RETURN p.name, count(*) AS degree ORDER BY p.name"
        )
        assert [row["p.name"] for row in rows] == ["Alice", "Bob", "Eve"]
        assert [row["degree"] for row in rows] == [1, 1, 2]

    def test_order_by_unreturned_column_rejected(self, figure1_graph):
        from repro.cypher.errors import CypherSemanticError

        with pytest.raises(CypherSemanticError):
            CypherRunner(figure1_graph).execute_table(
                "MATCH (p:Person) RETURN p.name ORDER BY p.gender"
            )

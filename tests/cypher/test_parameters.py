"""Tests for ``$parameter`` binding."""

import pytest

from repro.cypher import (
    CypherSemanticError,
    CypherSyntaxError,
    QueryHandler,
    bind_parameters,
    find_parameters,
    parse,
)
from repro.cypher.ast import Literal, Parameter
from repro.engine import CypherRunner


class TestParsing:
    def test_parameter_in_where(self):
        where = parse("MATCH (p) WHERE p.name = $name").where
        assert where.right == Parameter("name")

    def test_parameter_in_property_map(self):
        node = parse("MATCH (p:Person {firstName: $fn})").patterns[0].nodes[0]
        assert node.properties == [("firstName", Parameter("fn"))]

    def test_whole_list_parameter(self):
        where = parse("MATCH (p) WHERE p.name IN $names").where
        assert where.operator == "IN"
        assert where.right == Parameter("names")

    def test_parameter_inside_list_literal_rejected(self):
        with pytest.raises(CypherSyntaxError) as excinfo:
            parse("MATCH (p) WHERE p.name IN [$a, 'x']")
        assert "whole list" in str(excinfo.value)

    def test_in_list_parameter_executes(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) WHERE p.name IN $names RETURN p.name",
            parameters={"names": ["Alice", "Bob"]},
        )
        assert sorted(row["p.name"] for row in rows) == ["Alice", "Bob"]

    def test_bare_dollar_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (p) WHERE p.x = $")


class TestBinding:
    def test_bind_in_where(self):
        query = bind_parameters(
            parse("MATCH (p) WHERE p.name = $name"), {"name": "Jan"}
        )
        assert query.where.right == Literal("Jan")

    def test_bind_in_property_map(self):
        query = bind_parameters(
            parse("MATCH (p:Person {firstName: $fn, age: $age})"),
            {"fn": "Jan", "age": 30},
        )
        node = query.patterns[0].nodes[0]
        assert node.properties == [
            ("firstName", Literal("Jan")),
            ("age", Literal(30)),
        ]

    def test_unbound_parameter_rejected_at_compile(self):
        with pytest.raises(CypherSemanticError) as excinfo:
            QueryHandler("MATCH (p) WHERE p.name = $name")
        assert "$name" in str(excinfo.value)

    def test_unused_parameters_ignored(self):
        handler = QueryHandler(
            "MATCH (p:Person) RETURN *", parameters={"unused": 1}
        )
        assert handler.vertices

    def test_find_parameters(self):
        query = parse(
            "MATCH (p {x: $a})-[e {y: $b}]->(q) WHERE p.z = $c RETURN p.w"
        )
        assert find_parameters(query) == {"a", "b", "c"}

    def test_original_query_not_mutated(self):
        query = parse("MATCH (p) WHERE p.name = $name")
        bind_parameters(query, {"name": "Jan"})
        assert query.where.right == Parameter("name")


class TestExecution:
    def test_parameterized_query_end_to_end(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        rows = runner.execute_table(
            "MATCH (p:Person {name: $who}) RETURN p.gender",
            parameters={"who": "Alice"},
        )
        assert rows == [{"p.gender": "female"}]

    def test_same_query_different_parameters(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        query = "MATCH (p:Person) WHERE p.name = $who RETURN count(*) AS n"
        for who, expected in [("Alice", 1), ("Eve", 1), ("Nobody", 0)]:
            rows = runner.execute_table(query, parameters={"who": who})
            count = rows[0]["n"] if rows else 0
            assert count == expected, who

    def test_graph_cypher_accepts_parameters(self, figure1_graph):
        collection = figure1_graph.cypher(
            "MATCH (p:Person)-[s:studyAt]->(u) WHERE s.classYear > $year RETURN *",
            parameters={"year": 2014},
        )
        assert collection.graph_count() == 2

    def test_numeric_parameter_in_comparison(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) WHERE p.yob >= $min RETURN p.name",
            parameters={"min": 1900},
        )
        assert [row["p.name"] for row in rows] == ["Eve"]

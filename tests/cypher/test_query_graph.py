"""Tests for QueryHandler: query graph construction and predicate push-down."""

import pytest

from repro.cypher import (
    CypherSemanticError,
    DEFAULT_UPPER_BOUND,
    QueryHandler,
)


class TestStructure:
    def test_simple_edge(self):
        handler = QueryHandler("MATCH (a:Person)-[e:knows]->(b:Person)")
        assert set(handler.vertices) == {"a", "b"}
        assert set(handler.edges) == {"e"}
        edge = handler.edges["e"]
        assert edge.source == "a" and edge.target == "b"

    def test_incoming_edge_normalized(self):
        handler = QueryHandler("MATCH (p:Person)<-[c:hasCreator]-(m:Comment)")
        edge = handler.edges["c"]
        assert edge.source == "m" and edge.target == "p"

    def test_anonymous_elements_get_variables(self):
        handler = QueryHandler("MATCH (:Person)-[:knows]->()")
        assert len(handler.vertices) == 2
        assert len(handler.edges) == 1
        assert all(v.startswith("__") for v in handler.vertices)

    def test_shared_vertex_variable_merges(self):
        handler = QueryHandler(
            "MATCH (a:Person)-[e1:knows]->(b), (a)-[e2:studyAt]->(u)"
        )
        assert len(handler.vertices) == 3
        assert handler.edges["e1"].source == "a"
        assert handler.edges["e2"].source == "a"

    def test_edge_variable_reuse_rejected(self):
        with pytest.raises(CypherSemanticError):
            QueryHandler("MATCH (a)-[e]->(b), (b)-[e]->(c)")

    def test_variable_as_both_vertex_and_edge_rejected(self):
        with pytest.raises(CypherSemanticError):
            QueryHandler("MATCH (x)-[y]->(z), (y)-[w]->(z)")

    def test_undirected_edge_flag(self):
        handler = QueryHandler("MATCH (a)-[e:knows]-(b)")
        assert handler.edges["e"].undirected

    def test_triangle(self):
        handler = QueryHandler(
            "MATCH (p1:Person)-[:knows]->(p2:Person),"
            " (p2)-[:knows]->(p3:Person), (p1)-[:knows]->(p3)"
        )
        assert len(handler.vertices) == 3
        assert len(handler.edges) == 3


class TestVariableLengthEdges:
    def test_bounds_recorded(self):
        handler = QueryHandler("MATCH (a)-[e:knows*1..3]->(b)")
        edge = handler.edges["e"]
        assert edge.is_variable_length
        assert (edge.lower, edge.upper) == (1, 3)

    def test_zero_lower_bound(self):
        handler = QueryHandler("MATCH (m)-[e:replyOf*0..10]->(p)")
        assert handler.edges["e"].lower == 0

    def test_unbounded_upper_gets_default(self):
        handler = QueryHandler("MATCH (a)-[e:knows*2..]->(b)")
        assert handler.edges["e"].upper == DEFAULT_UPPER_BOUND


class TestPredicates:
    def test_label_becomes_predicate(self):
        handler = QueryHandler("MATCH (p:Person)")
        assert not handler.vertices["p"].predicates.is_trivial
        assert handler.vertices["p"].labels == ["Person"]

    def test_inline_properties_become_predicates(self):
        handler = QueryHandler("MATCH (p:Person {name: 'Alice'})")
        cnf = handler.vertices["p"].predicates
        assert len(cnf) == 2  # label clause + property clause

    def test_single_variable_where_pushed_down(self):
        handler = QueryHandler(
            "MATCH (p:Person)-[e]->(q) WHERE p.age > 30 AND q.age < 20"
        )
        assert handler.global_predicates.is_trivial
        # p: label + age; q: age only
        assert len(handler.vertices["p"].predicates) == 2
        assert len(handler.vertices["q"].predicates) == 1

    def test_cross_variable_where_stays_global(self):
        handler = QueryHandler(
            "MATCH (a:Person)-[e]->(b:Person) WHERE a.gender <> b.gender"
        )
        assert len(handler.global_predicates) == 1

    def test_edge_property_predicate_pushed_to_edge(self):
        handler = QueryHandler(
            "MATCH (p)-[s:studyAt]->(u) WHERE s.classYear > 2014"
        )
        cnf = handler.edges["s"].predicates
        assert len(cnf) == 2  # type + classYear

    def test_unbound_variable_in_where_rejected(self):
        with pytest.raises(CypherSemanticError):
            QueryHandler("MATCH (a) WHERE ghost.x = 1")

    def test_unbound_variable_in_return_rejected(self):
        with pytest.raises(CypherSemanticError):
            QueryHandler("MATCH (a) RETURN ghost.x")

    def test_mixed_clause_with_or_not_pushed(self):
        handler = QueryHandler(
            "MATCH (a)-[e]->(b) WHERE a.x = 1 OR b.y = 2"
        )
        # the OR clause spans two variables -> global
        assert len(handler.global_predicates) == 1
        assert handler.vertices["a"].predicates.is_trivial


class TestPropertyKeys:
    def test_keys_from_predicates_and_return(self):
        handler = QueryHandler(
            "MATCH (p:Person)-[s:studyAt]->(u:University) "
            "WHERE s.classYear > 2014 RETURN p.name, u.name"
        )
        assert handler.property_keys("p") == {"name"}
        assert handler.property_keys("u") == {"name"}
        assert handler.property_keys("s") == {"classYear"}

    def test_keys_from_global_predicates(self):
        handler = QueryHandler(
            "MATCH (a:Person)-[e]->(b:Person) WHERE a.gender <> b.gender"
        )
        assert handler.property_keys("a") == {"gender"}
        assert handler.property_keys("b") == {"gender"}

    def test_no_keys_needed(self):
        handler = QueryHandler("MATCH (a)-[e]->(b) RETURN *")
        assert handler.property_keys("a") == set()


class TestPaperQueries:
    """All six appendix queries must compile to query graphs."""

    QUERIES = [
        # Q1
        """MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post)
           WHERE person.firstName = 'John'
           RETURN message.creationDate, message.content""",
        # Q2
        """MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post),
                 (message)-[:replyOf*0..10]->(post:Post)
           WHERE person.firstName = 'John'
           RETURN message.creationDate, message.content,
                  post.creationDate, post.content""",
        # Q3
        """MATCH (p1:Person)-[:knows]->(p2:Person),
                 (p2)<-[:hasCreator]-(comment:Comment),
                 (comment)-[:replyOf*1..10]->(post:Post),
                 (post)-[:hasCreator]->(p1)
           WHERE p1.firstName = 'John'
           RETURN p1.firstName, p1.lastName, p2.firstName, p2.lastName,
                  post.content""",
        # Q4
        """MATCH (person:Person)-[:isLocatedIn]->(city:City),
                 (person)-[:hasInterest]->(tag:Tag),
                 (person)-[:studyAt]->(uni:University),
                 (person)<-[:hasMember|hasModerator]-(forum:Forum)
           RETURN person.firstName, person.lastName,
                  city.name, tag.name, uni.name, forum.title""",
        # Q5
        """MATCH (p1:Person)-[:knows]->(p2:Person),
                 (p2)-[:knows]->(p3:Person),
                 (p1)-[:knows]->(p3)
           RETURN p1.firstName, p1.lastName, p2.firstName, p2.lastName,
                  p3.firstName, p3.lastName""",
        # Q6
        """MATCH (p1:Person)-[:knows]->(p2:Person),
                 (p1)-[:hasInterest]->(t1:Tag),
                 (p2)-[:hasInterest]->(t1),
                 (p2)-[:hasInterest]->(t2:Tag)
           RETURN p1.firstName, p1.lastName, t2.name""",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_compiles(self, query):
        handler = QueryHandler(query)
        assert handler.vertices
        assert handler.edges

    def test_q4_vertex_edge_counts(self):
        handler = QueryHandler(self.QUERIES[3])
        assert len(handler.vertices) == 5  # person, city, tag, uni, forum
        assert len(handler.edges) == 4

"""Tests for CNF normalization and ternary predicate evaluation."""

import pytest

from repro.cypher import (
    CNF,
    Comparison,
    CypherSemanticError,
    LabelRef,
    Literal,
    PropertyAccess,
    VariableRef,
    evaluate_cnf,
    evaluate_comparison,
    parse,
    to_cnf,
)
from repro.cypher.predicates import evaluate_clause, label_predicate
from repro.epgm import GradoopId, PropertyValue


def cnf_of(condition):
    return to_cnf(parse("MATCH (a)-[e]->(b) WHERE " + condition).where)


class FakeBindings:
    """Minimal bindings object for predicate evaluation tests."""

    def __init__(self, properties=None, labels=None, ids=None):
        self._properties = properties or {}
        self._labels = labels or {}
        self._ids = ids or {}

    def property_value(self, variable, key):
        return PropertyValue(self._properties.get((variable, key)))

    def label(self, variable):
        return self._labels.get(variable, "")

    def element_id(self, variable):
        return self._ids[variable]


class TestCNFConversion:
    def test_single_comparison_one_clause(self):
        cnf = cnf_of("a.x = 1")
        assert len(cnf) == 1
        assert len(cnf.clauses[0].atoms) == 1

    def test_and_splits_clauses(self):
        cnf = cnf_of("a.x = 1 AND b.y = 2")
        assert len(cnf) == 2

    def test_or_single_clause_two_atoms(self):
        cnf = cnf_of("a.x = 1 OR a.x = 2")
        assert len(cnf) == 1
        assert len(cnf.clauses[0].atoms) == 2

    def test_distribution_or_over_and(self):
        # x OR (y AND z) -> (x OR y) AND (x OR z)
        cnf = cnf_of("a.x = 1 OR (a.y = 2 AND a.z = 3)")
        assert len(cnf) == 2
        assert all(len(clause.atoms) == 2 for clause in cnf.clauses)

    def test_not_flips_comparison_operator(self):
        cnf = cnf_of("NOT a.x > 1")
        atom = cnf.clauses[0].atoms[0]
        assert atom.comparison.operator == "<="
        assert not atom.negated

    def test_de_morgan(self):
        # NOT (x AND y) -> (NOT x) OR (NOT y): one clause, two atoms
        cnf = cnf_of("NOT (a.x = 1 AND a.y = 2)")
        assert len(cnf) == 1
        assert len(cnf.clauses[0].atoms) == 2

    def test_double_negation(self):
        cnf = cnf_of("NOT NOT a.x = 1")
        assert cnf.clauses[0].atoms[0].comparison.operator == "="

    def test_xor_expands(self):
        cnf = cnf_of("a.x = 1 XOR a.y = 2")
        assert len(cnf) == 2  # (x OR y) AND (NOT x OR NOT y)

    def test_none_is_trivial(self):
        assert to_cnf(None).is_trivial

    def test_in_negation_keeps_negated_atom(self):
        cnf = cnf_of("NOT a.name IN ['x']")
        atom = cnf.clauses[0].atoms[0]
        assert atom.comparison.operator == "IN"
        assert atom.negated

    def test_variables_and_property_keys(self):
        cnf = cnf_of("a.gender <> b.gender AND e.weight > 2")
        assert cnf.variables() == {"a", "b", "e"}
        keys = cnf.property_keys()
        assert keys["a"] == {"gender"}
        assert keys["e"] == {"weight"}

    def test_split_by_available_variables(self):
        cnf = cnf_of("a.x = 1 AND a.y <> b.y")
        now, later = cnf.split({"a"})
        assert len(now) == 1
        assert len(later) == 1
        now_all, later_none = cnf.split({"a", "b"})
        assert len(now_all) == 2
        assert later_none.is_trivial

    def test_bare_variable_predicate_rejected(self):
        with pytest.raises(CypherSemanticError):
            cnf_of("a")


class TestEvaluation:
    def test_comparison_operators(self):
        bindings = FakeBindings(properties={("a", "x"): 5})
        for operator, expected in [
            ("=", False),
            ("<>", True),
            ("<", False),
            ("<=", False),
            (">", True),
            (">=", True),
        ]:
            comparison = Comparison(operator, PropertyAccess("a", "x"), Literal(3))
            assert evaluate_comparison(comparison, bindings) is expected

    def test_null_comparison_is_unknown(self):
        bindings = FakeBindings()
        comparison = Comparison("=", PropertyAccess("a", "missing"), Literal(3))
        assert evaluate_comparison(comparison, bindings) is None

    def test_incomparable_types_unknown(self):
        bindings = FakeBindings(properties={("a", "x"): "text"})
        comparison = Comparison("<", PropertyAccess("a", "x"), Literal(3))
        assert evaluate_comparison(comparison, bindings) is None

    def test_is_null(self):
        bindings = FakeBindings(properties={("a", "x"): 1})
        assert (
            evaluate_comparison(
                Comparison("IS NULL", PropertyAccess("a", "y"), Literal(None)), bindings
            )
            is True
        )
        assert (
            evaluate_comparison(
                Comparison("IS NOT NULL", PropertyAccess("a", "x"), Literal(None)),
                bindings,
            )
            is True
        )

    def test_in_membership(self):
        bindings = FakeBindings(properties={("a", "name"): "Alice"})
        comparison = Comparison(
            "IN", PropertyAccess("a", "name"), Literal(["Alice", "Bob"])
        )
        assert evaluate_comparison(comparison, bindings) is True

    def test_label_ref(self):
        bindings = FakeBindings(labels={"a": "Person"})
        comparison = Comparison("=", LabelRef("a"), Literal("Person"))
        assert evaluate_comparison(comparison, bindings) is True

    def test_variable_identity(self):
        bindings = FakeBindings(ids={"a": GradoopId(1), "b": GradoopId(1)})
        comparison = Comparison("=", VariableRef("a"), VariableRef("b"))
        assert evaluate_comparison(comparison, bindings) is True

    def test_clause_unknown_never_satisfies(self):
        cnf = cnf_of("a.missing = 1")
        assert evaluate_cnf(cnf, FakeBindings()) is False

    def test_negated_unknown_stays_unknown(self):
        """NOT (null = 1) must not become true (Cypher ternary logic)."""
        cnf = cnf_of("NOT a.missing IN [1]")
        assert evaluate_cnf(cnf, FakeBindings()) is False

    def test_clause_or_semantics(self):
        cnf = cnf_of("a.x = 1 OR a.x = 2")
        assert evaluate_cnf(cnf, FakeBindings(properties={("a", "x"): 2})) is True
        assert evaluate_cnf(cnf, FakeBindings(properties={("a", "x"): 3})) is False

    def test_clause_true_wins_over_unknown(self):
        cnf = cnf_of("a.missing = 1 OR a.x = 2")
        assert evaluate_cnf(cnf, FakeBindings(properties={("a", "x"): 2})) is True

    def test_evaluate_clause_returns_none_for_all_unknown(self):
        cnf = cnf_of("a.missing = 1")
        assert evaluate_clause(cnf.clauses[0], FakeBindings()) is None

    def test_empty_cnf_is_true(self):
        assert evaluate_cnf(CNF.true(), FakeBindings()) is True

    def test_cross_type_numeric_equality(self):
        bindings = FakeBindings(properties={("a", "x"): 2})
        comparison = Comparison("=", PropertyAccess("a", "x"), Literal(2.0))
        assert evaluate_comparison(comparison, bindings) is True


class TestLabelPredicate:
    def test_single_label(self):
        cnf = label_predicate("v", ["Person"])
        assert evaluate_cnf(cnf, FakeBindings(labels={"v": "Person"})) is True
        assert evaluate_cnf(cnf, FakeBindings(labels={"v": "City"})) is False

    def test_alternation_is_one_clause(self):
        cnf = label_predicate("m", ["Comment", "Post"])
        assert len(cnf) == 1
        assert evaluate_cnf(cnf, FakeBindings(labels={"m": "Post"})) is True
        assert evaluate_cnf(cnf, FakeBindings(labels={"m": "Forum"})) is False

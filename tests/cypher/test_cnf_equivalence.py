"""Property-based check: CNF conversion preserves Kleene 3-valued logic.

We generate random boolean expressions over a pool of comparisons, random
bindings (including NULLs and incomparable types), and require that
``evaluate_cnf(to_cnf(e))`` answers "definitely true" exactly when the
direct three-valued evaluation of ``e`` yields True.  All the CNF rewrite
rules used (De Morgan, distribution, XOR elimination, operator negation)
are valid in Kleene logic, so any disagreement is a bug.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cypher import evaluate_cnf, to_cnf
from repro.cypher.ast import (
    And,
    Comparison,
    Literal,
    Not,
    Or,
    PropertyAccess,
    Xor,
)
from repro.cypher.predicates import evaluate_comparison
from repro.epgm import PropertyValue

_KEYS = ["a", "b", "c"]
_VALUES = [None, 0, 1, 2, "x", "y", True]
_OPERATORS = ["=", "<>", "<", "<=", ">", ">=", "IN", "STARTS WITH"]


class Bindings:
    def __init__(self, assignment):
        self.assignment = assignment

    def property_value(self, variable, key):
        return PropertyValue(self.assignment.get(key))

    def label(self, variable):
        return "Person"

    def element_id(self, variable):
        raise KeyError(variable)


def _comparisons():
    def build(operator, key, value):
        left = PropertyAccess("v", key)
        if operator == "IN":
            right = Literal([value] if not isinstance(value, bool) else [value])
        elif operator == "STARTS WITH":
            right = Literal(str(value) if value is not None else "x")
        else:
            right = Literal(value)
        return Comparison(operator, left, right)

    return st.builds(
        build,
        st.sampled_from(_OPERATORS),
        st.sampled_from(_KEYS),
        st.sampled_from(_VALUES),
    )


_expressions = st.recursive(
    _comparisons(),
    lambda children: st.one_of(
        st.builds(And, children, children),
        st.builds(Or, children, children),
        st.builds(Xor, children, children),
        st.builds(Not, children),
    ),
    max_leaves=8,
)

_bindings = st.fixed_dictionaries(
    {key: st.sampled_from(_VALUES) for key in _KEYS}
).map(Bindings)


def kleene_eval(node, bindings):
    """Direct three-valued evaluation of the expression tree."""
    if isinstance(node, Comparison):
        return evaluate_comparison(node, bindings)
    if isinstance(node, Not):
        inner = kleene_eval(node.operand, bindings)
        return None if inner is None else not inner
    if isinstance(node, And):
        left = kleene_eval(node.left, bindings)
        right = kleene_eval(node.right, bindings)
        if left is False or right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if isinstance(node, Or):
        left = kleene_eval(node.left, bindings)
        right = kleene_eval(node.right, bindings)
        if left is True or right is True:
            return True
        if left is None or right is None:
            return None
        return False
    if isinstance(node, Xor):
        left = kleene_eval(node.left, bindings)
        right = kleene_eval(node.right, bindings)
        if left is None or right is None:
            return None
        return left != right
    raise AssertionError(node)


@settings(max_examples=300, deadline=None)
@given(expression=_expressions, bindings=_bindings)
def test_cnf_preserves_filter_semantics(expression, bindings):
    direct = kleene_eval(expression, bindings)
    via_cnf = evaluate_cnf(to_cnf(expression), bindings)
    assert via_cnf == (direct is True), (
        "CNF filter disagrees with direct evaluation:\nexpr=%s\ncnf=%s\n"
        "direct=%r via_cnf=%r" % (expression, to_cnf(expression), direct, via_cnf)
    )


@settings(max_examples=100, deadline=None)
@given(expression=_expressions, bindings=_bindings)
def test_double_negation_stable(expression, bindings):
    direct = kleene_eval(expression, bindings)
    double_negated = kleene_eval(Not(Not(expression)), bindings)
    assert direct == double_negated

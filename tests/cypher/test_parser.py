"""Tests for the Cypher parser."""

import pytest

from repro.cypher import (
    And,
    Comparison,
    CypherSyntaxError,
    Direction,
    Literal,
    Not,
    Or,
    PropertyAccess,
    VariableRef,
    Xor,
    parse,
)


class TestNodePatterns:
    def test_anonymous_node(self):
        query = parse("MATCH ()")
        node = query.patterns[0].nodes[0]
        assert node.variable is None
        assert node.labels == []

    def test_variable_and_label(self):
        node = parse("MATCH (p:Person)").patterns[0].nodes[0]
        assert node.variable == "p"
        assert node.labels == ["Person"]

    def test_label_alternation(self):
        node = parse("MATCH (m:Comment|Post)").patterns[0].nodes[0]
        assert node.labels == ["Comment", "Post"]

    def test_label_only(self):
        node = parse("MATCH (:City)").patterns[0].nodes[0]
        assert node.variable is None
        assert node.labels == ["City"]

    def test_inline_property_map(self):
        node = parse("MATCH (p:Person {name: 'Alice', yob: 1984})").patterns[0].nodes[0]
        assert node.properties == [("name", Literal("Alice")), ("yob", Literal(1984))]


class TestRelationshipPatterns:
    def test_outgoing(self):
        rel = parse("MATCH (a)-[e:knows]->(b)").patterns[0].relationships[0]
        assert rel.direction is Direction.OUTGOING
        assert rel.variable == "e"
        assert rel.types == ["knows"]

    def test_incoming(self):
        rel = parse("MATCH (a)<-[:hasCreator]-(b)").patterns[0].relationships[0]
        assert rel.direction is Direction.INCOMING
        assert rel.variable is None

    def test_undirected(self):
        rel = parse("MATCH (a)-[e]-(b)").patterns[0].relationships[0]
        assert rel.direction is Direction.UNDIRECTED

    def test_bare_arrows(self):
        assert (
            parse("MATCH (a)-->(b)").patterns[0].relationships[0].direction
            is Direction.OUTGOING
        )
        assert (
            parse("MATCH (a)<--(b)").patterns[0].relationships[0].direction
            is Direction.INCOMING
        )
        assert (
            parse("MATCH (a)--(b)").patterns[0].relationships[0].direction
            is Direction.UNDIRECTED
        )

    def test_type_alternation(self):
        rel = parse("MATCH (a)<-[:hasMember|hasModerator]-(f)").patterns[0].relationships[0]
        assert rel.types == ["hasMember", "hasModerator"]

    @pytest.mark.parametrize(
        "span,expected",
        [
            ("*", (1, None)),
            ("*3", (3, 3)),
            ("*1..3", (1, 3)),
            ("*0..10", (0, 10)),
            ("*..4", (1, 4)),
            ("*2..", (2, None)),
        ],
    )
    def test_variable_length_spans(self, span, expected):
        rel = parse("MATCH (a)-[e:knows%s]->(b)" % span).patterns[0].relationships[0]
        assert (rel.lower, rel.upper) == expected
        assert rel.is_variable_length

    def test_fixed_length_edge_has_no_bounds(self):
        rel = parse("MATCH (a)-[e]->(b)").patterns[0].relationships[0]
        assert not rel.is_variable_length

    def test_inverted_bounds_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (a)-[e*3..1]->(b)")

    def test_long_path_pattern(self):
        path = parse("MATCH (a)-[e1]->(b)<-[e2]-(c)-[e3]->(d)").patterns[0]
        assert len(path.nodes) == 4
        assert len(path.relationships) == 3


class TestMultiplePatterns:
    def test_comma_separated_patterns(self):
        query = parse("MATCH (a)-[e]->(b), (b)-[f]->(c), (a)-[g]->(c)")
        assert len(query.patterns) == 3

    def test_paper_example_query(self):
        """The §2.3 example query parses in full."""
        query = parse(
            """
            MATCH (p1:Person)-[s:studyAt]->(u:University),
                  (p2:Person)-[:studyAt]->(u),
                  (p1)-[e:knows*1..3]->(p2)
            WHERE p1.gender <> p2.gender
              AND u.name = 'Uni Leipzig'
              AND s.classYear > 2014
            RETURN *
            """
        )
        assert len(query.patterns) == 3
        assert query.returns.star
        assert isinstance(query.where, And)


class TestWhere:
    def _where(self, condition):
        return parse("MATCH (a)-[e]->(b) WHERE " + condition).where

    def test_property_literal_comparison(self):
        where = self._where("a.age > 30")
        assert where == Comparison(">", PropertyAccess("a", "age"), Literal(30))

    def test_property_property_comparison(self):
        where = self._where("a.gender <> b.gender")
        assert where == Comparison(
            "<>", PropertyAccess("a", "gender"), PropertyAccess("b", "gender")
        )

    def test_boolean_precedence_and_binds_tighter_than_or(self):
        where = self._where("a.x = 1 OR a.y = 2 AND a.z = 3")
        assert isinstance(where, Or)
        assert isinstance(where.right, And)

    def test_not(self):
        where = self._where("NOT a.x = 1")
        assert isinstance(where, Not)

    def test_xor(self):
        assert isinstance(self._where("a.x = 1 XOR a.y = 2"), Xor)

    def test_parentheses_override_precedence(self):
        where = self._where("(a.x = 1 OR a.y = 2) AND a.z = 3")
        assert isinstance(where, And)
        assert isinstance(where.left, Or)

    def test_in_list(self):
        where = self._where("a.name IN ['Alice', 'Bob']")
        assert where == Comparison(
            "IN", PropertyAccess("a", "name"), Literal(["Alice", "Bob"])
        )

    def test_is_null(self):
        where = self._where("a.name IS NULL")
        assert where.operator == "IS NULL"

    def test_is_not_null(self):
        where = self._where("a.name IS NOT NULL")
        assert where.operator == "IS NOT NULL"

    def test_negative_literal(self):
        where = self._where("a.delta > -5")
        assert where.right == Literal(-5)

    def test_variable_equality(self):
        where = self._where("a = b")
        assert where == Comparison("=", VariableRef("a"), VariableRef("b"))

    def test_boolean_literals(self):
        where = self._where("a.active = TRUE")
        assert where.right == Literal(True)


class TestReturn:
    def test_star(self):
        assert parse("MATCH (a) RETURN *").returns.star

    def test_items(self):
        returns = parse("MATCH (a) RETURN a.name, a.age").returns
        assert len(returns.items) == 2
        assert returns.items[0].expression == PropertyAccess("a", "name")

    def test_alias(self):
        returns = parse("MATCH (a) RETURN a.name AS who").returns
        assert returns.items[0].alias == "who"

    def test_distinct_and_limit(self):
        returns = parse("MATCH (a) RETURN DISTINCT a.name LIMIT 5").returns
        assert returns.distinct
        assert returns.limit == 5

    def test_return_bare_variable(self):
        returns = parse("MATCH (a) RETURN a").returns
        assert returns.items[0].expression == VariableRef("a")

    def test_return_is_optional(self):
        assert parse("MATCH (a)").returns is None


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",                              # empty
            "MATCH",                         # no pattern
            "MATCH (a",                      # unclosed node
            "MATCH (a)-[e->(b)",             # unclosed bracket
            "MATCH (a) WHERE",               # dangling WHERE
            "MATCH (a) RETURN",              # dangling RETURN
            "RETURN *",                      # missing MATCH
            "MATCH (a) LIMIT 3",             # LIMIT without RETURN
            "MATCH (a) WHERE a.x >",         # missing operand
            "MATCH (a:)",                    # missing label name
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(CypherSyntaxError):
            parse(bad)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (a) RETURN * garbage")

"""Round-trip tests for the query renderer: parse ∘ render ∘ parse = parse."""

import pytest
from hypothesis import given, settings

from repro.cypher import parse
from repro.cypher.pretty import render_query
from repro.harness import ALL_QUERIES, instantiate
from tests.integration.test_random_queries import queries

PAPER_QUERIES = [instantiate(q, "Jan") for q in ALL_QUERIES.values()]

EXTRA_QUERIES = [
    "MATCH (a:Person {name: 'Al\\'ice', age: 3})-[e:knows {w: 1.5}]->(b) RETURN *",
    "MATCH (a)-[e*0..3]->(b) WHERE a.x IS NULL OR NOT b.y IN [1, 2] RETURN a.x",
    "MATCH (a)-[e]-(b) RETURN DISTINCT a.x AS x ORDER BY a.x DESC SKIP 2 LIMIT 5",
    "MATCH (a) RETURN count(*) AS n, collect(a.name) AS names",
    "MATCH (a) WHERE a.name STARTS WITH 'A' AND a.x >= -3 RETURN a",
    "MATCH (m:Comment|Post)-[:replyOf*2..]->(p:Post) RETURN *",
]


@pytest.mark.parametrize("query", PAPER_QUERIES + EXTRA_QUERIES)
def test_roundtrip_fixed_queries(query):
    first = parse(query)
    rendered = render_query(first)
    assert parse(rendered) == first, rendered


@settings(max_examples=150, deadline=None)
@given(query=queries())
def test_roundtrip_random_queries(query):
    first = parse(query)
    assert parse(render_query(first)) == first


def test_render_requires_parsed_query():
    with pytest.raises(TypeError):
        render_query("MATCH (a) RETURN *")


def test_rendered_text_is_readable():
    text = render_query(parse("MATCH (a:Person) WHERE a.x = 1 RETURN a.x"))
    assert text.splitlines() == [
        "MATCH (a:Person)",
        "WHERE a.x = 1",
        "RETURN a.x",
    ]

"""Tests for the Cypher tokenizer."""

import pytest

from repro.cypher.errors import CypherSyntaxError
from repro.cypher.lexer import tokenize


def kinds(query):
    return [t.kind for t in tokenize(query)]


def texts(query):
    return [t.text for t in tokenize(query)][:-1]  # drop EOF


class TestTokens:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("match WHERE Return")
        assert [t.text for t in tokens[:-1]] == ["MATCH", "WHERE", "RETURN"]
        assert all(t.kind == "keyword" for t in tokens[:-1])

    def test_identifiers(self):
        tokens = tokenize("p1 classYear _x")
        assert [t.text for t in tokens[:-1]] == ["p1", "classYear", "_x"]
        assert all(t.kind == "ident" for t in tokens[:-1])

    def test_keyword_prefix_is_identifier(self):
        (token, _) = tokenize("matcher")
        assert token.kind == "ident"

    def test_integers_and_floats(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].kind == "int" and tokens[0].value == 42
        assert tokens[1].kind == "float" and tokens[1].value == 3.14

    def test_range_is_not_a_float(self):
        """``*1..3``: '1..3' must lex as int, '..', int."""
        tokens = tokenize("1..3")
        assert [t.kind for t in tokens[:-1]] == ["int", "symbol", "int"]
        assert tokens[1].text == ".."

    def test_single_and_double_quoted_strings(self):
        tokens = tokenize("'Uni Leipzig' \"Alice\"")
        assert tokens[0].value == "Uni Leipzig"
        assert tokens[1].value == "Alice"

    def test_string_escapes(self):
        (token, _) = tokenize(r"'it\'s\n'")
        assert token.value == "it's\n"

    def test_unterminated_string_raises(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("'oops")

    def test_backtick_identifier(self):
        (token, _) = tokenize("`weird name`")
        assert token.kind == "ident"
        assert token.text == "weird name"

    def test_two_char_symbols(self):
        assert texts("<= >= <>") == ["<=", ">=", "<>"]

    def test_arrow_parts(self):
        assert texts("-[e]->") == ["-", "[", "e", "]", "-", ">"]
        assert texts("<-[e]-") == ["<", "-", "[", "e", "]", "-"]

    def test_line_comment_skipped(self):
        tokens = tokenize("MATCH // comment\n(p)")
        assert [t.text for t in tokens[:-1]] == ["MATCH", "(", "p", ")"]

    def test_unexpected_character(self):
        with pytest.raises(CypherSyntaxError) as excinfo:
            tokenize("MATCH @")
        assert excinfo.value.position == 6

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "eof"

    def test_full_query_token_stream(self):
        query = "MATCH (p:Person)-[e:knows*1..3]->(q) WHERE p.age > 30 RETURN *"
        token_texts = texts(query)
        assert "knows" in token_texts
        assert ".." in token_texts
        assert "*" in token_texts

"""Shared fixtures: the paper's Figure 1 social network.

Element ids follow the paper exactly where it pins them: persons 10/20/30,
university 40, city 50; edge 5 is ``knows`` Alice→Eve, edge 7 ``knows``
Eve→Bob (Table 2b), edges 3/4 are ``studyAt`` with classYear 2015
(Table 2a).  Bob's studyAt (edge 1) has classYear 2014 so the paper's
``s.classYear > 2014`` predicate excludes him.
"""

import os

import pytest

from repro.dataflow import ExecutionEnvironment
from repro.epgm import Edge, GradoopId, GraphHead, LogicalGraph, Vertex


@pytest.fixture(scope="session", autouse=True)
def lock_order_witness():
    """With ``REPRO_LOCK_WITNESS=1``, run the whole session under the
    runtime lock-order witness and fail at session end on any cycle in
    the global lock acquisition graph (``make racecheck`` sets it).
    """
    if os.environ.get("REPRO_LOCK_WITNESS") != "1":
        yield None
        return
    from repro.locks import install_witness, uninstall_witness

    witness = install_witness()
    try:
        yield witness
        witness.assert_acyclic()
    finally:
        uninstall_witness()


def build_figure1_elements():
    """Return (graph_head, vertices, edges) of the Figure 1 graph."""
    head = GraphHead(
        GradoopId(100), label="Community", properties={"area": "Leipzig"}
    )
    vertices = [
        Vertex(
            GradoopId(10),
            label="Person",
            properties={"name": "Alice", "gender": "female"},
        ),
        Vertex(
            GradoopId(20),
            label="Person",
            properties={"name": "Eve", "gender": "female", "yob": 1984},
        ),
        Vertex(
            GradoopId(30),
            label="Person",
            properties={"name": "Bob", "gender": "male"},
        ),
        Vertex(
            GradoopId(40), label="University", properties={"name": "Uni Leipzig"}
        ),
        Vertex(GradoopId(50), label="City", properties={"name": "Leipzig"}),
    ]
    edges = [
        Edge(
            GradoopId(1),
            label="studyAt",
            source_id=GradoopId(30),
            target_id=GradoopId(40),
            properties={"classYear": 2014},
        ),
        Edge(
            GradoopId(2),
            label="isLocatedIn",
            source_id=GradoopId(40),
            target_id=GradoopId(50),
        ),
        Edge(
            GradoopId(3),
            label="studyAt",
            source_id=GradoopId(10),
            target_id=GradoopId(40),
            properties={"classYear": 2015},
        ),
        Edge(
            GradoopId(4),
            label="studyAt",
            source_id=GradoopId(20),
            target_id=GradoopId(40),
            properties={"classYear": 2015},
        ),
        Edge(
            GradoopId(5),
            label="knows",
            source_id=GradoopId(10),
            target_id=GradoopId(20),
        ),
        Edge(
            GradoopId(6),
            label="knows",
            source_id=GradoopId(20),
            target_id=GradoopId(10),
        ),
        Edge(
            GradoopId(7),
            label="knows",
            source_id=GradoopId(20),
            target_id=GradoopId(30),
        ),
        Edge(
            GradoopId(8),
            label="knows",
            source_id=GradoopId(30),
            target_id=GradoopId(20),
        ),
    ]
    return head, vertices, edges


@pytest.fixture
def env():
    return ExecutionEnvironment(parallelism=4)


@pytest.fixture
def figure1_graph(env):
    head, vertices, edges = build_figure1_elements()
    return LogicalGraph.from_collections(env, vertices, edges, graph_head=head)

"""Failure-injection tests: errors must surface with useful context and
must not corrupt engine state."""

import pytest

from repro.cypher import CypherSemanticError, CypherSyntaxError
from repro.dataflow import ExecutionEnvironment, JobExecutionError
from repro.engine import CypherRunner
from repro.epgm import Edge, GradoopId, LogicalGraph, PropertyValue, Vertex
from repro.epgm.io import CSVDataSource


class TestQueryErrors:
    def test_syntax_error_propagates(self, figure1_graph):
        with pytest.raises(CypherSyntaxError):
            figure1_graph.cypher("MATCH (p:Person")

    def test_semantic_error_propagates(self, figure1_graph):
        with pytest.raises(CypherSemanticError):
            figure1_graph.cypher("MATCH (p:Person) WHERE ghost.x = 1 RETURN *")

    def test_engine_usable_after_failed_query(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        with pytest.raises(CypherSyntaxError):
            runner.execute_table("MATCH (p:Person")
        rows = runner.execute_table("MATCH (p:Person) RETURN count(*) AS n")
        assert rows == [{"n": 3}]


class TestUDFFailures:
    def test_poisoned_property_fails_with_operator_context(self, env):
        """A UDF crash inside a leaf names the operator in the error."""

        class Poisoned(PropertyValue):
            def compare(self, other):
                raise RuntimeError("boom")

        vertex = Vertex(GradoopId(1), label="Person")
        vertex.properties.set("age", 5)
        vertex.properties._entries["age"] = Poisoned(5)
        graph = LogicalGraph.from_collections(env, [vertex], [])
        with pytest.raises(JobExecutionError) as excinfo:
            graph.cypher("MATCH (p:Person) WHERE p.age > 3 RETURN *")
        assert "SelectAndProjectVertices" in str(excinfo.value)
        assert isinstance(excinfo.value.cause, RuntimeError)


class TestCorruptData:
    def test_dangling_edge_fails_at_result_construction(self, env):
        """An edge pointing at a missing vertex is detected, not silently
        dropped, when the match collection is materialized."""
        vertex = Vertex(GradoopId(1), label="Person")
        dangling = Edge(
            GradoopId(10),
            label="knows",
            source_id=GradoopId(1),
            target_id=GradoopId(999),  # does not exist
        )
        graph = LogicalGraph.from_collections(env, [vertex], [dangling])
        with pytest.raises(KeyError):
            graph.cypher("MATCH (a)-[e:knows]->(b) RETURN *")

    def test_malformed_csv_rejected(self, env, tmp_path):
        path = str(tmp_path / "broken")
        import os

        os.makedirs(path)
        with open(os.path.join(path, "metadata.csv"), "w") as handle:
            handle.write("v;Person;name:string\n")
        with open(os.path.join(path, "graphs.csv"), "w") as handle:
            handle.write("1;g;\n")
        with open(os.path.join(path, "vertices.csv"), "w") as handle:
            handle.write("not-an-id;[1];Person;Alice\n")
        with pytest.raises(ValueError):
            CSVDataSource(path).get_logical_graph(env)

    def test_csv_with_unknown_type_rejected(self, env, tmp_path):
        path = str(tmp_path / "badtype")
        import os

        os.makedirs(path)
        with open(os.path.join(path, "metadata.csv"), "w") as handle:
            handle.write("v;Person;name:blob\n")
        with open(os.path.join(path, "graphs.csv"), "w") as handle:
            handle.write("1;g;\n")
        with open(os.path.join(path, "vertices.csv"), "w") as handle:
            handle.write("2;[1];Person;Alice\n")
        with pytest.raises(ValueError):
            CSVDataSource(path).get_logical_graph(env)


class TestDataflowRobustness:
    def test_filter_udf_error_names_operator(self):
        env = ExecutionEnvironment(parallelism=2)
        ds = env.from_collection([1, 2]).filter(
            lambda x: x / 0 > 1, name="exploding-filter"
        )
        with pytest.raises(JobExecutionError) as excinfo:
            ds.collect()
        assert "exploding-filter" in str(excinfo.value)

    def test_join_key_udf_error_wrapped(self):
        env = ExecutionEnvironment(parallelism=2)
        left = env.from_collection([1])
        right = env.from_collection([2])
        joined = left.join(
            right, lambda l: l.missing, lambda r: r, name="bad-key-join"
        )
        with pytest.raises(JobExecutionError):
            joined.collect()

    def test_iteration_step_error_propagates(self):
        env = ExecutionEnvironment(parallelism=2)
        initial = env.from_collection([1])

        def step(working, iteration):
            return working.map(lambda x: x / 0), None

        from repro.dataflow import IterationError

        with pytest.raises((JobExecutionError, IterationError)):
            env.bulk_iterate(initial, step, max_iterations=2).collect()

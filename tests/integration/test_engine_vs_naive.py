"""Cross-validation: the dataflow engine must agree with the naive matcher.

The naive backtracking matcher is an independent implementation of the
same semantics; property-based tests run both over randomized graphs and
a battery of queries, for every combination of morphism strategies.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dataflow import ExecutionEnvironment
from repro.engine import (
    CypherRunner,
    MatchStrategy,
    NaiveMatcher,
    canonical_rows_from_embeddings,
)
from repro.epgm import Edge, GradoopId, LogicalGraph, Vertex

HOMO = MatchStrategy.HOMOMORPHISM
ISO = MatchStrategy.ISOMORPHISM
STRATEGIES = [(HOMO, HOMO), (HOMO, ISO), (ISO, HOMO), (ISO, ISO)]

QUERIES = [
    "MATCH (a:Person)-[e:knows]->(b:Person) RETURN *",
    "MATCH (a:Person)-[e:knows]->(b:Person) WHERE a.age > b.age RETURN *",
    "MATCH (a)-[e1:knows]->(b), (b)-[e2:knows]->(c) RETURN *",
    "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(a) RETURN *",
    "MATCH (a)-[e:knows]-(b) RETURN *",  # undirected
    "MATCH (a:Person {age: 30}) RETURN *",
    "MATCH (a:Person)-[e:knows*1..2]->(b:Person) RETURN *",
    "MATCH (a:Person)-[e:knows*0..2]->(b:Person) RETURN *",
    "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:likes]->(t:Tag) RETURN *",
    "MATCH (a:Person), (t:Tag) RETURN *",  # disconnected
    "MATCH (a)-[e1:knows]->(b), (a)-[e2:knows]->(c) WHERE b.age < c.age RETURN *",
    "MATCH (x)-[e:likes]->(t:Tag {name: 'music'}) RETURN *",
]


def build_graph(seed_edges, vertex_count, env):
    """A small Person/Tag graph from a list of (src, dst, kind) triples."""
    vertices = []
    for index in range(vertex_count):
        vertices.append(
            Vertex(
                GradoopId(index + 1),
                label="Person" if index % 3 != 2 else "Tag",
                properties={
                    "age": 20 + (index * 7) % 30,
                    "name": "music" if index % 5 == 0 else "n%d" % index,
                },
            )
        )
    edges = []
    for edge_index, (source, target, kind) in enumerate(seed_edges):
        source_id = (source % vertex_count) + 1
        target_id = (target % vertex_count) + 1
        label = "likes" if kind else "knows"
        edges.append(
            Edge(
                GradoopId(1000 + edge_index),
                label=label,
                source_id=GradoopId(source_id),
                target_id=GradoopId(target_id),
            )
        )
    return LogicalGraph.from_collections(env, vertices, edges)


def _assert_agreement(graph, query, vertex_strategy, edge_strategy):
    runner = CypherRunner(
        graph, vertex_strategy=vertex_strategy, edge_strategy=edge_strategy
    )
    embeddings, meta = runner.execute_embeddings(query)
    engine_rows = sorted(canonical_rows_from_embeddings(embeddings, meta))
    naive = NaiveMatcher(
        graph, vertex_strategy=vertex_strategy, edge_strategy=edge_strategy
    )
    naive_rows = sorted(naive.match(query))
    assert engine_rows == naive_rows, (
        "engine and naive matcher disagree on %r (%s/%s):\nengine=%r\nnaive=%r"
        % (query, vertex_strategy.value, edge_strategy.value, engine_rows, naive_rows)
    )


class TestFixedGraphAllQueries:
    """Deterministic dense-ish graph, every query, every strategy pair."""

    @pytest.fixture(scope="class")
    def graph(self):
        env = ExecutionEnvironment(parallelism=4)
        seed_edges = [
            (0, 1, 0), (1, 0, 0), (1, 3, 0), (3, 4, 0), (4, 0, 0),
            (0, 3, 0), (3, 0, 0), (4, 4, 0), (1, 2, 1), (4, 2, 1),
            (0, 5, 1), (3, 5, 1), (6, 0, 0), (6, 1, 0), (0, 6, 0),
        ]
        return build_graph(seed_edges, 7, env)

    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("strategies", STRATEGIES)
    def test_agreement(self, graph, query, strategies):
        _assert_agreement(graph, query, *strategies)


class TestRandomGraphs:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        edges=st.lists(
            st.tuples(
                st.integers(0, 7), st.integers(0, 7), st.integers(0, 1)
            ),
            max_size=14,
        ),
        query_index=st.integers(0, len(QUERIES) - 1),
        strategy_index=st.integers(0, 3),
    )
    def test_agreement_on_random_graphs(self, edges, query_index, strategy_index):
        env = ExecutionEnvironment(parallelism=3)
        graph = build_graph(edges, 8, env)
        _assert_agreement(
            graph, QUERIES[query_index], *STRATEGIES[strategy_index]
        )


class TestParallelismInvariance:
    """Query results must not depend on the simulated cluster size."""

    @pytest.mark.parametrize("parallelism", [1, 2, 5, 8])
    def test_same_rows_any_parallelism(self, parallelism):
        env = ExecutionEnvironment(parallelism=parallelism)
        seed_edges = [(0, 1, 0), (1, 2, 0), (2, 0, 0), (2, 3, 1), (1, 3, 1)]
        graph = build_graph(seed_edges, 5, env)
        runner = CypherRunner(graph)
        embeddings, meta = runner.execute_embeddings(
            "MATCH (a)-[e1:knows]->(b), (b)-[e2:knows]->(c) RETURN *"
        )
        rows = sorted(canonical_rows_from_embeddings(embeddings, meta))
        env_ref = ExecutionEnvironment(parallelism=4)
        graph_ref = build_graph(seed_edges, 5, env_ref)
        ref_embeddings, ref_meta = CypherRunner(graph_ref).execute_embeddings(
            "MATCH (a)-[e1:knows]->(b), (b)-[e2:knows]->(c) RETURN *"
        )
        assert rows == sorted(
            canonical_rows_from_embeddings(ref_embeddings, ref_meta)
        )

"""End-to-end pipeline: generate → CSV → reload → query → post-process."""

import os

import pytest

from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner
from repro.epgm import IndexedLogicalGraph
from repro.epgm.io import CSVDataSink, CSVDataSource
from repro.ldbc import LDBCGenerator


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("pipeline") / "sn")
    env = ExecutionEnvironment(parallelism=4)
    dataset = LDBCGenerator(scale_factor=0.05, seed=17).generate()
    original = dataset.to_logical_graph(env)
    CSVDataSink(path).write_logical_graph(original)
    reload_env = ExecutionEnvironment(parallelism=4)
    source = CSVDataSource(path)
    restored = source.get_logical_graph(reload_env)
    return dataset, original, restored, source, path


def test_element_counts_survive(pipeline):
    _, original, restored, _, _ = pipeline
    assert restored.vertex_count() == original.vertex_count()
    assert restored.edge_count() == original.edge_count()


def test_query_results_identical(pipeline):
    dataset, original, restored, source, _ = pipeline
    query = (
        "MATCH (p:Person)-[:knows]->(q:Person)-[:hasInterest]->(t:Tag) "
        "RETURN p.firstName, t.name"
    )
    original_rows = CypherRunner(original).execute_table(query)
    restored_rows = CypherRunner(
        restored, statistics=source.get_statistics()
    ).execute_table(query)

    def canon(rows):
        return sorted(tuple(sorted(row.items())) for row in rows)

    assert canon(original_rows) == canon(restored_rows)
    assert original_rows  # non-trivial workload


def test_restored_graph_supports_indexing(pipeline):
    _, _, restored, _, _ = pipeline
    indexed = IndexedLogicalGraph.from_logical_graph(restored)
    assert indexed.vertices_by_label("Person").count() == (
        restored.vertices_by_label("Person").count()
    )


def test_match_collection_roundtrips_through_csv(pipeline, tmp_path):
    dataset, original, _, _, _ = pipeline
    matches = original.cypher(
        "MATCH (p:Person)-[s:studyAt]->(u:University) RETURN *"
    )
    assert matches.graph_count() > 0
    out = str(tmp_path / "matches")
    CSVDataSink(out).write_graph_collection(matches)
    env = ExecutionEnvironment(parallelism=2)
    restored = CSVDataSource(out).get_graph_collection(env)
    assert restored.graph_count() == matches.graph_count()
    # per-match membership survives: each member graph has its elements
    first = restored.graphs()[0]
    assert first.vertex_count() == 2  # person + university
    assert first.edge_count() == 1


def test_statistics_file_written(pipeline):
    *_, path = pipeline
    assert os.path.exists(os.path.join(path, "statistics.json"))

"""Randomized query sweep: generated patterns, engine vs naive matcher.

Hypothesis generates arbitrary small query graphs — labels, inline
property predicates, mixed directions, occasional variable-length or
undirected edges, shared variables, cycles — renders them to Cypher, and
requires the dataflow engine and the backtracking matcher to agree on a
fixed data graph, under both default and full-isomorphism semantics.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dataflow import ExecutionEnvironment
from repro.engine import (
    CypherRunner,
    MatchStrategy,
    NaiveMatcher,
    canonical_rows_from_embeddings,
)
from tests.integration.test_engine_vs_naive import build_graph

_VERTEX_VARS = ["v0", "v1", "v2", "v3"]
_VERTEX_LABELS = [None, "Person", "Tag", "Person|Tag"]
_EDGE_LABELS = [None, "knows", "likes"]


@st.composite
def node_pattern(draw, variable):
    label = draw(st.sampled_from(_VERTEX_LABELS))
    parts = [variable]
    if label:
        parts.append(":" + label)
    predicate = draw(
        st.sampled_from(
            [None, None, None, "{age: 27}", "{name: 'music'}", "{age: 34}"]
        )
    )
    if predicate:
        parts.append(" " + predicate)
    return "(%s)" % "".join(parts)


@st.composite
def edge_pattern(draw, index):
    label = draw(st.sampled_from(_EDGE_LABELS))
    body = "e%d" % index
    if label:
        body += ":" + label
    kind = draw(
        st.sampled_from(["out", "out", "out", "in", "undirected", "varlen"])
    )
    if kind == "varlen":
        lower = draw(st.integers(0, 1))
        upper = draw(st.integers(1, 2))
        if label is None:
            label = "knows"  # keep path fanout bounded
        body = "e%d:%s*%d..%d" % (index, label, lower, max(lower, upper))
        return "-[%s]->" % body
    if kind == "in":
        return "<-[%s]-" % body
    if kind == "undirected":
        return "-[%s]-" % body
    return "-[%s]->" % body


@st.composite
def queries(draw):
    edge_count = draw(st.integers(1, 3))
    patterns = []
    # keep the pattern connected: each edge starts from a used variable
    used = [draw(st.sampled_from(_VERTEX_VARS))]
    for index in range(edge_count):
        source = draw(st.sampled_from(used))
        target = draw(st.sampled_from(_VERTEX_VARS))
        if target not in used:
            used.append(target)
        if source == target and draw(st.booleans()):
            target = draw(st.sampled_from(_VERTEX_VARS))
        left = draw(node_pattern(source))
        right = draw(node_pattern(target))
        arrow = draw(edge_pattern(index))
        patterns.append("%s%s%s" % (left, arrow, right))
    return "MATCH %s RETURN *" % ", ".join(patterns)


def _data_graph():
    env = ExecutionEnvironment(parallelism=3)
    seed_edges = [
        (0, 1, 0), (1, 2, 0), (2, 0, 0), (2, 3, 0), (3, 4, 0),
        (4, 1, 0), (1, 5, 1), (4, 5, 1), (0, 5, 1), (3, 3, 0),
    ]
    return build_graph(seed_edges, 6, env)


_GRAPH = _data_graph()


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(query=queries())
def test_engine_agrees_with_naive_on_random_queries(query):
    embeddings, meta = CypherRunner(_GRAPH).execute_embeddings(query)
    engine_rows = sorted(canonical_rows_from_embeddings(embeddings, meta))
    naive_rows = sorted(NaiveMatcher(_GRAPH).match(query))
    assert engine_rows == naive_rows, query


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(query=queries())
def test_engine_agrees_under_full_isomorphism(query):
    kwargs = {
        "vertex_strategy": MatchStrategy.ISOMORPHISM,
        "edge_strategy": MatchStrategy.ISOMORPHISM,
    }
    embeddings, meta = CypherRunner(_GRAPH, **kwargs).execute_embeddings(query)
    engine_rows = sorted(canonical_rows_from_embeddings(embeddings, meta))
    naive_rows = sorted(NaiveMatcher(_GRAPH, **kwargs).match(query))
    assert engine_rows == naive_rows, query

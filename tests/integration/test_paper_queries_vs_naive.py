"""All six paper queries cross-checked against the naive matcher.

Runs on a tiny LDBC-like graph so the brute-force matcher stays fast;
any engine/planner/operator disagreement on the *actual evaluation
workload* fails here.
"""

import pytest

from repro.dataflow import ExecutionEnvironment
from repro.engine import (
    CypherRunner,
    LeftDeepPlanner,
    MatchStrategy,
    NaiveMatcher,
    canonical_rows_from_embeddings,
)
from repro.harness import ALL_QUERIES, instantiate
from repro.ldbc import LDBCGenerator


@pytest.fixture(scope="module")
def tiny():
    dataset = LDBCGenerator(scale_factor=0.03, seed=5).generate()
    env = ExecutionEnvironment(parallelism=3)
    return dataset, dataset.to_logical_graph(env)


def _query(dataset, name, selectivity="low"):
    template = ALL_QUERIES[name]
    if "{firstName}" in template:
        return instantiate(template, dataset.first_name(selectivity))
    return template


@pytest.mark.parametrize("query_name", sorted(ALL_QUERIES))
def test_engine_matches_naive(tiny, query_name):
    dataset, graph = tiny
    query = _query(dataset, query_name)
    embeddings, meta = CypherRunner(graph).execute_embeddings(query)
    engine_rows = sorted(canonical_rows_from_embeddings(embeddings, meta))
    naive_rows = sorted(NaiveMatcher(graph).match(query))
    assert engine_rows == naive_rows, query_name


@pytest.mark.parametrize("query_name", ["Q2", "Q5"])
def test_engine_matches_naive_full_iso(tiny, query_name):
    dataset, graph = tiny
    query = _query(dataset, query_name)
    runner = CypherRunner(
        graph,
        vertex_strategy=MatchStrategy.ISOMORPHISM,
        edge_strategy=MatchStrategy.ISOMORPHISM,
    )
    embeddings, meta = runner.execute_embeddings(query)
    naive = NaiveMatcher(
        graph,
        vertex_strategy=MatchStrategy.ISOMORPHISM,
        edge_strategy=MatchStrategy.ISOMORPHISM,
    )
    assert sorted(canonical_rows_from_embeddings(embeddings, meta)) == sorted(
        naive.match(query)
    )


@pytest.mark.parametrize("query_name", ["Q3", "Q4", "Q6"])
def test_planners_agree(tiny, query_name):
    dataset, graph = tiny
    query = _query(dataset, query_name)
    greedy_embeddings, greedy_meta = CypherRunner(graph).execute_embeddings(query)
    left_embeddings, left_meta = CypherRunner(
        graph, planner_cls=LeftDeepPlanner
    ).execute_embeddings(query)
    assert sorted(canonical_rows_from_embeddings(greedy_embeddings, greedy_meta)) == (
        sorted(canonical_rows_from_embeddings(left_embeddings, left_meta))
    )


@pytest.mark.parametrize("selectivity", ["high", "medium", "low"])
def test_q1_selectivity_classes_agree(tiny, selectivity):
    dataset, graph = tiny
    query = _query(dataset, "Q1", selectivity)
    embeddings, meta = CypherRunner(graph).execute_embeddings(query)
    assert sorted(canonical_rows_from_embeddings(embeddings, meta)) == sorted(
        NaiveMatcher(graph).match(query)
    )

"""SSSP on the Pregel runtime, cross-checked against the BFS algorithm."""

import pytest

from repro.bsp import PregelRuntime, SingleSourceShortestPaths
from repro.dataflow import ExecutionEnvironment
from repro.epgm import GradoopId
from repro.epgm.algorithms import bfs_distances
from repro.ldbc import generate_graph
from tests.bsp.test_pregel import star_graph


def test_star_distances(env):
    graph = star_graph(env, 3)
    states, _ = PregelRuntime(graph, max_supersteps=10).run(
        SingleSourceShortestPaths(GradoopId(1))
    )
    assert states[1] == 0
    assert states[2] == states[3] == states[4] == 1


def test_unreachable_stays_none(env):
    graph = star_graph(env, 2)
    states, _ = PregelRuntime(graph, max_supersteps=10).run(
        SingleSourceShortestPaths(GradoopId(2))  # a spoke: no out-edges
    )
    assert states[2] == 0
    assert states[1] is None
    assert states[3] is None


@pytest.mark.parametrize("seed", [1, 7])
def test_matches_bfs_on_generated_graphs(seed):
    env = ExecutionEnvironment(parallelism=3)
    graph = generate_graph(env, scale_factor=0.03, seed=seed)
    persons = [v for v in graph.collect_vertices() if v.label == "Person"]
    source = persons[0].id
    reference = bfs_distances(graph, source, directed=True)
    states, _ = PregelRuntime(graph, max_supersteps=40).run(
        SingleSourceShortestPaths(source)
    )
    bsp_distances = {
        GradoopId(vid): distance
        for vid, distance in states.items()
        if distance is not None
    }
    assert bsp_distances == reference

"""Tests for Pregel message combiners."""

from repro.bsp import PageRank, PregelRuntime, VertexProgram
from repro.dataflow import ExecutionEnvironment
from repro.epgm import Edge, GradoopId, LogicalGraph, Vertex


def fan_in_graph(env, spokes):
    """All spokes point at hub vertex 1."""
    vertices = [Vertex(GradoopId(i), label="N") for i in range(1, spokes + 2)]
    edges = [
        Edge(GradoopId(100 + i), "e", GradoopId(i + 2), GradoopId(1))
        for i in range(spokes)
    ]
    return LogicalGraph.from_collections(env, vertices, edges)


class _SumProgram(VertexProgram):
    def initial_state(self, vertex, adjacency):
        return 0

    def compute(self, ctx, vertex, adjacency, state, messages):
        if ctx.superstep == 0:
            for _, neighbour, outgoing in adjacency:
                if outgoing:
                    ctx.send(neighbour, 1)
            return state
        return state + sum(messages)


class _CombinedSumProgram(_SumProgram):
    combiner = staticmethod(lambda payloads: [sum(payloads)])


def _delivered_records(env):
    return sum(
        run.records_out
        for run in env.metrics.runs
        if run.name == "pregel-deliver"
    )


def test_combiner_preserves_result():
    env_a = ExecutionEnvironment(parallelism=4)
    states_plain, _ = PregelRuntime(fan_in_graph(env_a, 10)).run(_SumProgram())
    env_b = ExecutionEnvironment(parallelism=4)
    states_combined, _ = PregelRuntime(fan_in_graph(env_b, 10)).run(
        _CombinedSumProgram()
    )
    assert states_plain == states_combined
    assert states_plain[1] == 10


def test_combiner_reduces_delivered_payloads():
    env = ExecutionEnvironment(parallelism=4)
    graph = fan_in_graph(env, 20)
    runtime = PregelRuntime(graph)
    env.reset_metrics()
    _, _ = runtime.run(_CombinedSumProgram())
    # the hub's 20 messages collapse into one combined payload per round;
    # verify by re-running without the combiner and comparing hub inbox size
    env2 = ExecutionEnvironment(parallelism=4)
    runtime2 = PregelRuntime(fan_in_graph(env2, 20))
    env2.reset_metrics()
    runtime2.run(_SumProgram())

    # same number of compute invocations either way — the difference is in
    # payload volume, which estimate_size-based shuffle bytes capture
    combined_bytes = sum(
        run.shuffled_bytes for run in env.metrics.runs if run.name == "pregel-deliver"
    )
    plain_bytes = sum(
        run.shuffled_bytes
        for run in env2.metrics.runs
        if run.name == "pregel-deliver"
    )
    assert combined_bytes <= plain_bytes


def test_pagerank_combiner_matches_uncombined():
    class UncombinedPageRank(PageRank):
        combiner = None

    env_a = ExecutionEnvironment(parallelism=3)
    ranks_combined, _ = PregelRuntime(
        fan_in_graph(env_a, 6), max_supersteps=10
    ).run(PageRank())
    env_b = ExecutionEnvironment(parallelism=3)
    ranks_plain, _ = PregelRuntime(
        fan_in_graph(env_b, 6), max_supersteps=10
    ).run(UncombinedPageRank())
    for vid, rank in ranks_plain.items():
        assert abs(rank - ranks_combined[vid]) < 1e-9

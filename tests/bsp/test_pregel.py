"""Tests for the Pregel runtime and the classic vertex programs."""

import pytest

from repro.bsp import BSPConnectedComponents, PageRank, PregelRuntime, VertexProgram
from repro.epgm import Edge, GradoopId, LogicalGraph, Vertex


def star_graph(env, spokes):
    """Vertex 1 points at vertices 2..spokes+1."""
    vertices = [Vertex(GradoopId(i), label="N") for i in range(1, spokes + 2)]
    edges = [
        Edge(GradoopId(100 + i), "e", GradoopId(1), GradoopId(i + 2))
        for i in range(spokes)
    ]
    return LogicalGraph.from_collections(env, vertices, edges)


class _EchoProgram(VertexProgram):
    """Superstep 0: send own id to all neighbours; then stop."""

    def initial_state(self, vertex, adjacency):
        return []

    def compute(self, ctx, vertex, adjacency, state, messages):
        if ctx.superstep == 0:
            for _, neighbour, outgoing in adjacency:
                if outgoing:
                    ctx.send(neighbour, vertex.id.value)
            return state
        return state + sorted(messages)


class TestRuntime:
    def test_message_delivery(self, env):
        graph = star_graph(env, 3)
        states, _ = PregelRuntime(graph).run(_EchoProgram())
        assert states[1] == []
        for spoke in (2, 3, 4):
            assert states[spoke] == [1]

    def test_terminates_when_no_messages(self, env):
        graph = star_graph(env, 2)
        runtime = PregelRuntime(graph, max_supersteps=100)
        env.reset_metrics()
        runtime.run(_EchoProgram())
        supersteps = len(
            [r for r in env.metrics.runs if r.name == "pregel-compute"]
        )
        assert supersteps == 2  # step 0 sends, step 1 receives, then quiet

    def test_message_to_unknown_vertex_rejected(self, env):
        class Rogue(VertexProgram):
            def initial_state(self, vertex, adjacency):
                return None

            def compute(self, ctx, vertex, adjacency, state, messages):
                ctx.send(424242, "hello")
                return state

        graph = star_graph(env, 1)
        with pytest.raises(KeyError):
            PregelRuntime(graph).run(Rogue())

    def test_emitted_results_collected(self, env):
        class Emitter(VertexProgram):
            def initial_state(self, vertex, adjacency):
                return None

            def compute(self, ctx, vertex, adjacency, state, messages):
                ctx.emit(vertex.id.value)
                return state

        graph = star_graph(env, 2)
        _, results = PregelRuntime(graph).run(Emitter())
        assert sorted(results) == [1, 2, 3]

    def test_messages_travel_through_dataflow(self, env):
        """Message grouping shows up in the shuffle metrics."""
        graph = star_graph(env, 5)
        env.reset_metrics()
        PregelRuntime(graph).run(_EchoProgram())
        deliveries = [r for r in env.metrics.runs if r.name == "pregel-deliver"]
        assert deliveries
        assert any(r.shuffled_records > 0 for r in deliveries)


class TestConnectedComponents:
    def test_matches_dataflow_wcc(self, figure1_graph):
        from repro.epgm.algorithms import weakly_connected_components

        states, _ = PregelRuntime(figure1_graph, max_supersteps=50).run(
            BSPConnectedComponents()
        )
        reference = weakly_connected_components(figure1_graph)
        bsp_groups = {}
        for vid, label in states.items():
            bsp_groups.setdefault(label, set()).add(vid)
        ref_groups = {}
        for vid, label in reference.items():
            ref_groups.setdefault(label, set()).add(vid.value)
        assert sorted(map(sorted, bsp_groups.values())) == sorted(
            map(sorted, ref_groups.values())
        )

    def test_two_islands(self, env):
        vertices = [Vertex(GradoopId(i), label="N") for i in (1, 2, 3, 4)]
        edges = [
            Edge(GradoopId(10), "e", GradoopId(1), GradoopId(2)),
            Edge(GradoopId(11), "e", GradoopId(3), GradoopId(4)),
        ]
        graph = LogicalGraph.from_collections(env, vertices, edges)
        states, _ = PregelRuntime(graph, max_supersteps=20).run(
            BSPConnectedComponents()
        )
        assert states[1] == states[2] == 1
        assert states[3] == states[4] == 3


class TestPageRank:
    def test_ranks_sum_is_stable(self, env):
        graph = star_graph(env, 4)
        states, _ = PregelRuntime(graph, max_supersteps=15).run(PageRank())
        assert all(rank > 0 for rank in states.values())

    def test_sink_heavy_graph(self, env):
        """All spokes point at the hub: the hub outranks the spokes."""
        vertices = [Vertex(GradoopId(i), label="N") for i in range(1, 6)]
        edges = [
            Edge(GradoopId(100 + i), "e", GradoopId(i + 2), GradoopId(1))
            for i in range(4)
        ]
        graph = LogicalGraph.from_collections(env, vertices, edges)
        states, _ = PregelRuntime(graph, max_supersteps=15).run(PageRank())
        hub = states[1]
        assert all(hub > states[spoke] for spoke in (2, 3, 4, 5))

"""PSgL matcher cross-validation against the naive matcher."""

import pytest

from repro.bsp import PSgLMatcher
from repro.bsp.psgl import PSgLError
from repro.dataflow import ExecutionEnvironment
from repro.engine import MatchStrategy, NaiveMatcher
from tests.integration.test_engine_vs_naive import build_graph

HOMO = MatchStrategy.HOMOMORPHISM
ISO = MatchStrategy.ISOMORPHISM

# fixed-length, connected patterns (PSgL's supported fragment)
QUERIES = [
    "MATCH (a:Person)-[e:knows]->(b:Person) RETURN *",
    "MATCH (a:Person)-[e:knows]->(b:Person) WHERE a.age > b.age RETURN *",
    "MATCH (a)-[e1:knows]->(b), (b)-[e2:knows]->(c) RETURN *",
    "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(a) RETURN *",
    "MATCH (a)-[e:knows]-(b) RETURN *",
    "MATCH (x)-[e:likes]->(t:Tag {name: 'music'}) RETURN *",
    "MATCH (a)-[e1:knows]->(b), (a)-[e2:knows]->(c) WHERE b.age < c.age RETURN *",
    "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:likes]->(t:Tag) RETURN *",
]


@pytest.fixture(scope="module")
def graph():
    env = ExecutionEnvironment(parallelism=4)
    seed_edges = [
        (0, 1, 0), (1, 0, 0), (1, 3, 0), (3, 4, 0), (4, 0, 0),
        (0, 3, 0), (3, 0, 0), (4, 4, 0), (1, 2, 1), (4, 2, 1),
        (0, 5, 1), (3, 5, 1), (6, 0, 0), (6, 1, 0), (0, 6, 0),
    ]
    return build_graph(seed_edges, 7, env)


@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize(
    "strategies", [(HOMO, ISO), (ISO, ISO), (HOMO, HOMO)]
)
def test_psgl_matches_naive(graph, query, strategies):
    vertex_strategy, edge_strategy = strategies
    psgl = PSgLMatcher(
        graph, vertex_strategy=vertex_strategy, edge_strategy=edge_strategy
    )
    naive = NaiveMatcher(
        graph, vertex_strategy=vertex_strategy, edge_strategy=edge_strategy
    )
    assert sorted(psgl.match(query)) == sorted(naive.match(query)), query


def test_triangle_on_figure1(figure1_graph):
    query = (
        "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(c:Person),"
        " (a)-[e3:knows]->(c) RETURN *"
    )
    psgl = PSgLMatcher(figure1_graph).match(query)
    naive = NaiveMatcher(figure1_graph).match(query)
    assert sorted(psgl) == sorted(naive)


def test_count_helper(figure1_graph):
    matcher = PSgLMatcher(figure1_graph)
    query = "MATCH (a:Person)-[e:knows]->(b:Person) RETURN *"
    assert matcher.count(query) == len(matcher.match(query))


class TestUnsupported:
    def test_variable_length_rejected(self, figure1_graph):
        with pytest.raises(PSgLError):
            PSgLMatcher(figure1_graph).match(
                "MATCH (a)-[e:knows*1..3]->(b) RETURN *"
            )

    def test_disconnected_pattern_rejected(self, figure1_graph):
        with pytest.raises(PSgLError):
            PSgLMatcher(figure1_graph).match(
                "MATCH (a)-[e1:knows]->(b), (c)-[e2:studyAt]->(d) RETURN *"
            )

    def test_edgeless_pattern_rejected(self, figure1_graph):
        with pytest.raises(PSgLError):
            PSgLMatcher(figure1_graph).match("MATCH (a:Person) RETURN *")

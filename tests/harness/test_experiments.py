"""Tests for the benchmark harness (queries + experiment runners)."""

import pytest

from repro.cypher import QueryHandler
from repro.harness import (
    ALL_QUERIES,
    DatasetCache,
    SCALE_FACTOR_SMALL,
    TABLE3_PATTERNS,
    format_table,
    instantiate,
    run_query,
    speedup_series,
)


@pytest.fixture(scope="module")
def cache():
    return DatasetCache(seed=11)


class TestQueries:
    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_templates_compile(self, name):
        query = instantiate(ALL_QUERIES[name], "Jan")
        handler = QueryHandler(query)
        assert handler.vertices

    @pytest.mark.parametrize("name", sorted(TABLE3_PATTERNS))
    def test_table3_patterns_compile(self, name):
        query = instantiate(TABLE3_PATTERNS[name], "Jan")
        assert QueryHandler(query).vertices

    def test_instantiate_requires_parameter(self):
        with pytest.raises(ValueError):
            instantiate(ALL_QUERIES["Q1"])

    def test_instantiate_passthrough_for_unparameterized(self):
        assert instantiate(ALL_QUERIES["Q5"]) == ALL_QUERIES["Q5"]


class TestRunQuery:
    def test_returns_run_record(self, cache):
        run = run_query("Q1", SCALE_FACTOR_SMALL, 4, "low", cache)
        assert run.result_count > 0
        assert run.simulated_seconds > 0
        assert run.metrics["records_processed"] > 0

    def test_results_independent_of_workers(self, cache):
        counts = {
            workers: run_query(
                "Q5", SCALE_FACTOR_SMALL, workers, cache=cache
            ).result_count
            for workers in (1, 4, 16)
        }
        assert len(set(counts.values())) == 1

    def test_selectivity_changes_result_count(self, cache):
        high = run_query("Q1", SCALE_FACTOR_SMALL, 4, "high", cache).result_count
        low = run_query("Q1", SCALE_FACTOR_SMALL, 4, "low", cache).result_count
        assert high < low

    def test_more_workers_lower_simulated_runtime(self, cache):
        slow = run_query("Q5", SCALE_FACTOR_SMALL, 1, cache=cache)
        fast = run_query("Q5", SCALE_FACTOR_SMALL, 8, cache=cache)
        assert fast.simulated_seconds < slow.simulated_seconds

    def test_indexed_flag_runs(self, cache):
        run = run_query("Q1", SCALE_FACTOR_SMALL, 4, "low", cache, indexed=True)
        plain = run_query("Q1", SCALE_FACTOR_SMALL, 4, "low", cache)
        assert run.result_count == plain.result_count


class TestSeries:
    def test_speedup_series_shape(self, cache):
        series = speedup_series("Q1", SCALE_FACTOR_SMALL, [1, 4], "low", cache)
        assert [point["workers"] for point in series] == [1, 4]
        assert series[0]["speedup"] == pytest.approx(1.0)
        assert series[1]["speedup"] > 1.0


class TestDatasetCache:
    def test_dataset_generated_once(self):
        cache = DatasetCache(seed=3)
        assert cache.dataset(0.05) is cache.dataset(0.05)

    def test_first_name_lookup(self):
        cache = DatasetCache(seed=3)
        assert isinstance(cache.first_name(0.05, "low"), str)


class TestFormatTable:
    def test_renders_header_and_rows(self):
        text = format_table(["a", "bb"], [(1, 2.5), (30, "x")])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.5" in text
        assert "30" in text

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

"""Seed robustness: the paper's shape claims must not depend on one seed.

Each generated dataset is random; the claims in EXPERIMENTS.md would be
worthless if they only held for seed 42.  These tests verify the key
orderings over several seeds at the small scale factor.
"""

import pytest

from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner, GraphStatistics
from repro.harness import ALL_QUERIES, instantiate
from repro.ldbc import LDBCGenerator

SEEDS = [1, 2, 3]


@pytest.fixture(scope="module", params=SEEDS)
def dataset(request):
    return LDBCGenerator(scale_factor=0.1, seed=request.param).generate()


def _count(dataset, query_name, selectivity=None):
    env = ExecutionEnvironment(parallelism=4)
    graph = dataset.to_logical_graph(env)
    template = ALL_QUERIES[query_name]
    first_name = dataset.first_name(selectivity) if selectivity else None
    runner = CypherRunner(graph, statistics=GraphStatistics.from_graph(graph))
    embeddings, _ = runner.execute_embeddings(instantiate(template, first_name))
    return len(embeddings)


@pytest.mark.parametrize("query_name", ["Q1", "Q2"])
def test_selectivity_ordering_holds_across_seeds(dataset, query_name):
    high = _count(dataset, query_name, "high")
    medium = _count(dataset, query_name, "medium")
    low = _count(dataset, query_name, "low")
    assert high <= medium <= low
    assert low > high  # the classes genuinely differ


def test_q3_low_selectivity_dominates_across_seeds(dataset):
    """Q3's result depends on *which* persons carry the name, so at tiny
    scale high/medium can invert per seed; the robust claim is that the
    common-name class dominates both rare classes."""
    high = _count(dataset, "Q3", "high")
    medium = _count(dataset, "Q3", "medium")
    low = _count(dataset, "Q3", "low")
    assert low >= max(high, medium)


def test_analytical_queries_nonempty_across_seeds(dataset):
    for query_name in ("Q4", "Q5", "Q6"):
        assert _count(dataset, query_name) > 0, query_name


def test_name_skew_across_seeds(dataset):
    ranks = sorted(dataset.first_name_ranks.values(), reverse=True)
    assert ranks[0] >= 3 * ranks[-1]

"""Structural tests for the Table 4 grid runner (tiny configuration)."""

import pytest

from repro.harness import DatasetCache, runtime_grid


@pytest.fixture(scope="module")
def grid():
    cache = DatasetCache(seed=4)
    return runtime_grid(
        [1, 4],
        selectivities=("low",),
        cache=cache,
        scale_factors=(0.05,),
    )


def test_grid_covers_all_queries(grid):
    queries = {entry["query"] for entry in grid}
    assert queries == {"Q1", "Q2", "Q3", "Q4", "Q5", "Q6"}


def test_series_structure(grid):
    for entry in grid:
        workers = [point["workers"] for point in entry["series"]]
        assert workers == [1, 4]
        assert entry["series"][0]["speedup"] == pytest.approx(1.0)


def test_results_constant_across_workers(grid):
    for entry in grid:
        counts = {point["results"] for point in entry["series"]}
        assert len(counts) == 1, entry["query"]


def test_more_workers_never_slower(grid):
    for entry in grid:
        one, four = entry["series"]
        assert four["seconds"] <= one["seconds"], entry["query"]

"""Sanity checks over the transcribed paper numbers."""

from repro.harness import CARDINALITIES, TABLE3, TABLE4, paper_speedup


class TestTable4:
    def test_every_published_row_has_baseline(self):
        for key, by_workers in TABLE4.items():
            if 1 in by_workers:
                seconds, speedup = by_workers[1]
                assert speedup == 1.0, key

    def test_runtimes_decrease_with_workers(self):
        for key, by_workers in TABLE4.items():
            seconds = [by_workers[w][0] for w in sorted(by_workers)]
            # Q5 SF10 famously regresses from 8 to 16 workers; allow one bump
            regressions = sum(
                1 for a, b in zip(seconds, seconds[1:]) if b > a
            )
            assert regressions <= 1, key

    def test_paper_speedup_lookup(self):
        assert paper_speedup("Q1", "low", "large", 16) == 10.1
        assert paper_speedup("Q5", None, "small", 16) == 4.4
        assert paper_speedup("Q5", None, "large", 1) is None
        assert paper_speedup("Q9", None, "small", 1) is None

    def test_analytical_large_sf_only_at_16(self):
        for query in ("Q4", "Q5", "Q6"):
            assert set(TABLE4[(query, None, "large")]) == {16}


class TestCardinalitiesAndTable3:
    def test_selectivity_ordering(self):
        for key, value in CARDINALITIES.items():
            if isinstance(value, dict):
                assert value["high"] < value["medium"] < value["low"], key

    def test_table3_ordering(self):
        for pattern, counts in TABLE3.items():
            assert counts["high"] < counts["medium"] < counts["low"], pattern

    def test_analytical_counts_grow_with_sf(self):
        for query in ("Q4", "Q5", "Q6"):
            assert CARDINALITIES[(query, "large")] > CARDINALITIES[(query, "small")]

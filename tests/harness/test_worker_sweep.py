"""The bench-micro worker-count sweep: report shape and plumbing.

The quick test runs a minimal real sweep (two pools, one tiny query) so
the dispatch path, interleaved trials and speedup arithmetic stay
covered in tier-1; the full default sweep (1/2/4/8 workers at SF 0.1)
is ``stress``-marked because spawning four pools over a real LDBC
dataset takes minutes.
"""

import pytest

from repro.harness.microbench import (
    DEFAULT_WORKER_SWEEP,
    SWEEP_PARALLELISM,
    format_microbench,
    run_worker_sweep,
)


def _check_report(report, queries, counts):
    assert report["benchmark"] == "worker-sweep"
    assert report["clock"] == "perf_counter"
    assert report["parallelism"] == SWEEP_PARALLELISM
    assert report["worker_counts"] == list(counts)
    assert report["baseline_workers"] == counts[0]
    assert report["usable_cpus"] >= 1
    assert len(report["results"]) == len(queries) * len(counts)
    for row in report["results"]:
        assert row["query"] in queries
        assert row["workers"] in counts
        assert row["median_seconds"] > 0
        assert row["rows"] > 0
        assert len(row["seconds"]) == report["repeats"]
    for name in queries:
        curve = report["speedup"][name]
        assert set(curve) == {str(count) for count in counts}
        assert curve[str(counts[0])] == pytest.approx(1.0)


def test_minimal_sweep_produces_speedup_curves():
    report = run_worker_sweep(
        queries=("Q1",),
        scale_factor=0.01,
        worker_counts=(1, 2),
        repeats=1,
    )
    _check_report(report, ("Q1",), (1, 2))


def test_format_renders_sweep_table():
    report = run_worker_sweep(
        queries=("Q1",),
        scale_factor=0.01,
        worker_counts=(1, 2),
        repeats=1,
    )
    text = format_microbench({
        "scale_factor": 0.01,
        "workers": 4,
        "seed": 42,
        "repeats": 1,
        "batch_size": 1024,
        "clock": "process_time",
        "results": [],
        "speedup": {},
        "worker_sweep": report,
    })
    assert "worker sweep" in text
    assert "Q1" in text


@pytest.mark.stress
def test_default_sweep_full_curve():
    report = run_worker_sweep(
        queries=("Q1", "Q5"),
        scale_factor=0.1,
        worker_counts=DEFAULT_WORKER_SWEEP,
        repeats=3,
    )
    _check_report(report, ("Q1", "Q5"), DEFAULT_WORKER_SWEEP)

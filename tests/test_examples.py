"""Smoke tests: every example script must run cleanly."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_examples_exist():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_reproduces_table_2a():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "Alice" in result.stdout
    assert "Eve" in result.stdout
    assert "Uni Leipzig" in result.stdout

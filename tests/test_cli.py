"""End-to-end tests for the command-line interface."""

import json
import os
import subprocess
import sys

import pytest


def run_cli(*args, cwd=None):
    env = os.environ.copy()
    if env.get("PYTHONPATH"):
        # keep a relative PYTHONPATH (e.g. "src") working under cwd=
        env["PYTHONPATH"] = os.pathsep.join(
            os.path.abspath(entry)
            for entry in env["PYTHONPATH"].split(os.pathsep)
            if entry
        )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=cwd,
        env=env,
    )


@pytest.fixture(scope="module")
def graph_dir(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "sn")
    result = run_cli("generate", "--scale-factor", "0.05", "--output", path)
    assert result.returncode == 0, result.stderr
    return path


class TestGenerate:
    def test_reports_label_counts(self, graph_dir):
        result = run_cli(
            "generate", "--scale-factor", "0.05", "--output", graph_dir + "-b"
        )
        assert result.returncode == 0
        assert "Person" in result.stdout
        assert "knows" in result.stdout

    def test_deterministic_across_runs(self, tmp_path):
        a = run_cli("generate", "--output", str(tmp_path / "a"), "--seed", "9")
        b = run_cli("generate", "--output", str(tmp_path / "b"), "--seed", "9")
        assert a.stdout.splitlines()[1:] == b.stdout.splitlines()[1:]


class TestQuery:
    def test_tabular_output(self, graph_dir):
        result = run_cli(
            "query", graph_dir, "MATCH (p:Person) RETURN count(*) AS n"
        )
        assert result.returncode == 0
        lines = result.stdout.strip().splitlines()
        assert lines[0] == "n"
        assert lines[1] == "30"

    def test_metrics_on_stderr(self, graph_dir):
        result = run_cli("query", graph_dir, "MATCH (p:Person) RETURN p.firstName")
        assert "simulated" in result.stderr
        assert "row(s)" in result.stderr

    def test_workers_flag(self, graph_dir):
        result = run_cli(
            "--workers", "8", "query", graph_dir,
            "MATCH (p:Person) RETURN count(*) AS n",
        )
        assert "8 workers" in result.stderr

    def test_strategy_flags_change_results(self, graph_dir):
        query = (
            "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(c:Person) "
            "RETURN count(*) AS n"
        )
        homo = run_cli("query", graph_dir, query, "--vertex-strategy", "homo")
        iso = run_cli("query", graph_dir, query, "--vertex-strategy", "iso")
        homo_count = int(homo.stdout.strip().splitlines()[1])
        iso_count = int(iso.stdout.strip().splitlines()[1])
        assert homo_count >= iso_count

    def test_bad_query_fails(self, graph_dir):
        result = run_cli("query", graph_dir, "MATCH (p:Person")
        assert result.returncode != 0


class TestExplainAndStats:
    def test_explain_shows_plan(self, graph_dir):
        result = run_cli(
            "explain", graph_dir, "MATCH (a:Person)-[:knows]->(b) RETURN *"
        )
        assert result.returncode == 0
        assert "SelectAndProjectEdges" in result.stdout
        assert "[est=" in result.stdout

    def test_stats(self, graph_dir):
        result = run_cli("stats", graph_dir)
        assert result.returncode == 0
        assert "vertices:" in result.stdout
        assert ":knows" in result.stdout


class TestBench:
    def test_table3(self):
        result = run_cli("bench", "--experiment", "table3")
        assert result.returncode == 0
        assert "(:Person)" in result.stdout

    def test_unknown_experiment_rejected(self):
        result = run_cli("bench", "--experiment", "fig99")
        assert result.returncode != 0


class TestBenchMicro:
    def test_writes_trajectory_json(self, tmp_path):
        result = run_cli(
            "bench-micro",
            "--queries", "Q1",
            "--scale-factor", "0.02",
            "--repeats", "2",
            "--output", str(tmp_path / "bench.json"),
        )
        assert result.returncode == 0, result.stderr
        assert "per-record" in result.stdout and "batched" in result.stdout
        assert "columnar" in result.stdout
        report = json.loads((tmp_path / "bench.json").read_text())
        assert report["repeats"] == 2
        assert report["default_repeats"] == 5
        assert report["default_scale_factor"] == 0.2
        by_mode = {record["mode"]: record for record in report["results"]}
        assert set(by_mode) == {"batched", "columnar", "per-record"}
        assert by_mode["batched"]["batched"] is True
        assert by_mode["per-record"]["batched"] is False
        rows = {record["rows"] for record in by_mode.values()}
        assert len(rows) == 1
        for record in by_mode.values():
            assert record["query"] == "Q1"
            assert len(record["seconds"]) == 2
            assert record["median_seconds"] >= record["min_seconds"] >= 0
        assert "Q1" in report["speedup"]
        assert "Q1" in report["columnar_speedup"]

    def test_default_output_picks_next_index(self, tmp_path):
        (tmp_path / "BENCH_3.json").write_text("{}")
        result = run_cli(
            "bench-micro",
            "--queries", "Q1",
            "--scale-factor", "0.02",
            "--repeats", "1",
            cwd=str(tmp_path),
        )
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "BENCH_4.json").exists()


class TestCheck:
    def test_clean_query_exits_zero(self, graph_dir):
        result = run_cli(
            "check", graph_dir,
            "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a.firstName",
        )
        assert result.returncode == 0, result.stderr
        assert "planners agree" in result.stderr
        assert "0 error(s)" in result.stderr

    def test_reports_every_planner(self, graph_dir):
        result = run_cli(
            "check", graph_dir, "MATCH (p:Person) RETURN p.firstName"
        )
        for planner in ("GreedyPlanner", "ExhaustivePlanner", "LeftDeepPlanner"):
            assert planner in result.stderr
        assert "sanitized" in result.stderr
        assert "q-err" in result.stderr  # the estimate-audit table printed

    def test_syntax_error_exits_two(self, graph_dir):
        result = run_cli("check", graph_dir, "MATCH (p:Person")
        assert result.returncode == 2
        assert "syntax error" in result.stderr

    def test_blocking_lint_error_exits_one(self, graph_dir):
        result = run_cli("check", graph_dir, "MATCH (p:Person) RETURN q")
        assert result.returncode == 1
        assert "blocked" in result.stderr
        # the caret excerpt points into the query text
        assert "^" in result.stdout

    def test_off_estimates_exit_three(self, graph_dir):
        # nobody has this name: the selectivity-based leaf estimate
        # overshoots zero actual rows, so a strict threshold trips S211
        result = run_cli(
            "check", graph_dir,
            "MATCH (p:Person) WHERE p.firstName = 'Zzz' RETURN p",
            "--max-q-error", "1.0",
        )
        assert result.returncode == 3, result.stderr
        assert "S211" in result.stdout
        assert "warning(s)" in result.stderr


class TestFlowcheck:
    def test_clean_query_proves_and_certifies(self, graph_dir):
        result = run_cli(
            "flowcheck", graph_dir,
            "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a.firstName",
        )
        assert result.returncode == 0, result.stderr
        assert "layout proven" in result.stderr
        assert "UDFs shippable" in result.stderr
        for planner in ("GreedyPlanner", "ExhaustivePlanner", "LeftDeepPlanner"):
            assert planner in result.stderr

    def test_variable_length_path_proves(self, graph_dir):
        result = run_cli(
            "flowcheck", graph_dir,
            "MATCH (a:Person)-[e:knows*1..2]->(b:Person) RETURN a.firstName",
            "--vertex-strategy", "iso",
        )
        assert result.returncode == 0, result.stderr
        assert "layout proven" in result.stderr

    def test_syntax_error_exits_two(self, graph_dir):
        result = run_cli("flowcheck", graph_dir, "MATCH (p:Person")
        assert result.returncode == 2
        assert "syntax error" in result.stderr

    def test_blocking_lint_error_exits_one(self, graph_dir):
        result = run_cli("flowcheck", graph_dir, "MATCH (p:Person) RETURN q")
        assert result.returncode == 1
        assert "blocked" in result.stderr


class TestShell:
    def test_shell_executes_queries(self, graph_dir):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "shell", graph_dir],
            input="MATCH (p:Person) RETURN count(*) AS n\n:quit\n",
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0
        assert "30" in result.stdout

    def test_shell_explain_and_error_recovery(self, graph_dir):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "shell", graph_dir],
            input=(
                "MATCH (broken\n"
                ":explain MATCH (p:Person) RETURN *\n"
                "MATCH (t:Tag) RETURN count(*) AS n\n"
                ":quit\n"
            ),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0
        assert "error:" in result.stdout  # the bad query reported
        assert "SelectAndProjectVertices" in result.stdout  # explain worked
        # the shell kept going after the error
        assert result.stdout.count("row(s)") >= 1

    def test_shell_sanitize_toggle(self, graph_dir):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "shell", graph_dir],
            input=(
                ":sanitize on\n"
                "MATCH (p:Person) RETURN count(*) AS n\n"
                ":sanitize off\n"
                ":quit\n"
            ),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0
        assert "sanitized execution on" in result.stdout
        assert "sanitized execution off" in result.stdout
        # the status line after the query shows the sanitizer summary
        assert "embedding(s) checked" in result.stdout

    def test_missing_graph_dir_fails_cleanly(self):
        result = run_cli("query", "/nonexistent/graph", "MATCH (a) RETURN *")
        assert result.returncode != 0
        assert "not a graph directory" in result.stderr

"""Tests for the synthetic LDBC-SNB-like generator."""

import pytest

from repro.ldbc import LDBCGenerator, Zipf, generate_graph, schema
from repro.ldbc.distributions import (
    make_rng,
    poisson,
    power_law_degree,
    preferential_targets,
)


@pytest.fixture(scope="module")
def dataset():
    return LDBCGenerator(scale_factor=0.2, seed=7).generate()


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        a = LDBCGenerator(scale_factor=0.1, seed=3).generate()
        b = LDBCGenerator(scale_factor=0.1, seed=3).generate()
        assert a.counts_by_label() == b.counts_by_label()
        assert [v.id for v in a.vertices] == [v.id for v in b.vertices]
        assert [
            (e.source_id, e.target_id) for e in a.edges
        ] == [(e.source_id, e.target_id) for e in b.edges]

    def test_different_seed_differs(self):
        a = LDBCGenerator(scale_factor=0.1, seed=3).generate()
        b = LDBCGenerator(scale_factor=0.1, seed=4).generate()
        assert [
            (e.source_id, e.target_id) for e in a.edges
        ] != [(e.source_id, e.target_id) for e in b.edges]


class TestSchema:
    def test_all_required_labels_present(self, dataset):
        counts = dataset.counts_by_label()
        for label in [
            schema.PERSON, schema.CITY, schema.UNIVERSITY, schema.TAG,
            schema.FORUM, schema.POST, schema.COMMENT, schema.KNOWS,
            schema.HAS_CREATOR, schema.REPLY_OF, schema.IS_LOCATED_IN,
            schema.HAS_INTEREST, schema.STUDY_AT, schema.HAS_MEMBER,
            schema.HAS_MODERATOR,
        ]:
            assert counts.get(label, 0) > 0, "missing %s" % label

    def test_edges_reference_existing_vertices(self, dataset):
        vertex_ids = {v.id for v in dataset.vertices}
        for edge in dataset.edges:
            assert edge.source_id in vertex_ids
            assert edge.target_id in vertex_ids

    def test_edge_endpoint_labels(self, dataset):
        labels = {v.id: v.label for v in dataset.vertices}
        expectations = {
            schema.KNOWS: (schema.PERSON, schema.PERSON),
            schema.STUDY_AT: (schema.PERSON, schema.UNIVERSITY),
            schema.IS_LOCATED_IN: (schema.PERSON, schema.CITY),
            schema.HAS_INTEREST: (schema.PERSON, schema.TAG),
            schema.HAS_MEMBER: (schema.FORUM, schema.PERSON),
            schema.HAS_MODERATOR: (schema.FORUM, schema.PERSON),
        }
        for edge in dataset.edges:
            if edge.label in expectations:
                source_label, target_label = expectations[edge.label]
                assert labels[edge.source_id] == source_label
                assert labels[edge.target_id] == target_label

    def test_has_creator_points_to_person(self, dataset):
        labels = {v.id: v.label for v in dataset.vertices}
        for edge in dataset.edges:
            if edge.label == schema.HAS_CREATOR:
                assert labels[edge.source_id] in (schema.POST, schema.COMMENT)
                assert labels[edge.target_id] == schema.PERSON

    def test_reply_chains_terminate_at_posts(self, dataset):
        """Every comment reaches a Post by following replyOf (a tree)."""
        labels = {v.id: v.label for v in dataset.vertices}
        reply_parent = {}
        for edge in dataset.edges:
            if edge.label == schema.REPLY_OF:
                reply_parent[edge.source_id] = edge.target_id
        comments = [v for v in dataset.vertices if v.label == schema.COMMENT]
        for comment in comments:
            current, hops = comment.id, 0
            while labels[current] != schema.POST:
                assert current in reply_parent, "orphan comment"
                current = reply_parent[current]
                hops += 1
                assert hops <= 10, "reply chain too deep"

    def test_no_self_knows(self, dataset):
        for edge in dataset.edges:
            if edge.label == schema.KNOWS:
                assert edge.source_id != edge.target_id

    def test_study_at_has_class_year(self, dataset):
        for edge in dataset.edges:
            if edge.label == schema.STUDY_AT:
                year = edge.get_property("classYear").raw()
                assert schema.CLASS_YEAR_MIN <= year <= schema.CLASS_YEAR_MAX


class TestDistributionsInData:
    def test_first_names_are_zipf_skewed(self, dataset):
        ranks = sorted(dataset.first_name_ranks.values(), reverse=True)
        assert ranks[0] >= 4 * ranks[-1]  # strong head/tail asymmetry

    def test_selectivity_classes_ordered(self, dataset):
        low = dataset.first_name_ranks[dataset.first_name("low")]
        medium = dataset.first_name_ranks[dataset.first_name("medium")]
        high = dataset.first_name_ranks[dataset.first_name("high")]
        assert low > medium > high

    def test_unknown_selectivity_rejected(self, dataset):
        with pytest.raises(ValueError):
            dataset.first_name("extreme")

    def test_knows_in_degree_is_skewed(self, dataset):
        in_degree = {}
        for edge in dataset.edges:
            if edge.label == schema.KNOWS:
                in_degree[edge.target_id] = in_degree.get(edge.target_id, 0) + 1
        degrees = sorted(in_degree.values(), reverse=True)
        mean = sum(degrees) / len(degrees)
        assert degrees[0] > 3 * mean  # hubs exist

    def test_scale_factor_scales_linearly(self):
        small = LDBCGenerator(scale_factor=0.1, seed=5).generate()
        large = LDBCGenerator(scale_factor=0.4, seed=5).generate()
        small_persons = small.counts_by_label()[schema.PERSON]
        large_persons = large.counts_by_label()[schema.PERSON]
        assert large_persons == pytest.approx(4 * small_persons, rel=0.05)
        assert len(large.edges) > 2.5 * len(small.edges)

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            LDBCGenerator(scale_factor=0)


class TestGraphIntegration:
    def test_generate_graph(self, env):
        graph = generate_graph(env, scale_factor=0.05, seed=1)
        assert graph.vertex_count() > 0
        assert graph.edge_count() > 0

    def test_generate_indexed_graph(self, env):
        from repro.epgm import IndexedLogicalGraph

        graph = generate_graph(env, scale_factor=0.05, seed=1, indexed=True)
        assert isinstance(graph, IndexedLogicalGraph)
        assert schema.PERSON in graph.vertex_labels

    def test_queries_run_on_generated_graph(self, env):
        graph = generate_graph(env, scale_factor=0.05, seed=1)
        rows = graph.cypher(
            "MATCH (p:Person)-[:studyAt]->(u:University) RETURN *"
        )
        assert rows.graph_count() > 0


class TestDistributionPrimitives:
    def test_zipf_probabilities_sum_to_one(self):
        zipf = Zipf(50, exponent=1.2)
        total = sum(zipf.probability(rank) for rank in range(50))
        assert total == pytest.approx(1.0)

    def test_zipf_rank0_most_probable(self):
        zipf = Zipf(10)
        assert zipf.probability(0) > zipf.probability(5) > zipf.probability(9)

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            Zipf(0)

    def test_power_law_degree_mean(self):
        rng = make_rng(0, "test")
        samples = [power_law_degree(rng, average=5.0) for _ in range(5000)]
        mean = sum(samples) / len(samples)
        assert 2.0 < mean < 10.0

    def test_power_law_has_heavy_tail(self):
        rng = make_rng(0, "tail")
        samples = [power_law_degree(rng, average=5.0) for _ in range(5000)]
        assert max(samples) > 20 * (sum(samples) / len(samples))

    def test_power_law_zero_average(self):
        rng = make_rng(0, "zero")
        assert power_law_degree(rng, average=0) == 0

    def test_preferential_targets_bias_low_indices(self):
        rng = make_rng(0, "pref")
        picks = []
        for _ in range(300):
            picks.extend(preferential_targets(rng, 3, 100))
        low = sum(1 for p in picks if p < 20)
        assert low > len(picks) * 0.3  # far above the uniform 20%

    def test_preferential_targets_distinct(self):
        rng = make_rng(0, "distinct")
        targets = preferential_targets(rng, 10, 50)
        assert len(targets) == len(set(targets))

    def test_poisson_mean(self):
        rng = make_rng(0, "poisson")
        samples = [poisson(rng, 3.0) for _ in range(3000)]
        assert sum(samples) / len(samples) == pytest.approx(3.0, rel=0.15)

    def test_poisson_zero(self):
        rng = make_rng(0, "pz")
        assert poisson(rng, 0) == 0

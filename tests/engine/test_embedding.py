"""Tests for the embedding byte structure and its meta data (paper §3.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine import Embedding, EmbeddingMetaData
from repro.engine.embedding import ENTRY_WIDTH, FLAG_ID, FLAG_PATH
from repro.epgm import GradoopId, PropertyValue


class TestIdEntries:
    def test_append_and_read_ids(self):
        embedding = Embedding.of_ids(GradoopId(10), GradoopId(5), GradoopId(40))
        assert embedding.column_count == 3
        assert embedding.id_at(0) == GradoopId(10)
        assert embedding.id_at(2) == GradoopId(40)

    def test_fixed_entry_width(self):
        embedding = Embedding.of_ids(GradoopId(1), GradoopId(2))
        assert len(embedding.id_data) == 2 * ENTRY_WIDTH

    def test_flags(self):
        embedding = Embedding.of_ids(GradoopId(1)).append_path([GradoopId(2)])
        assert embedding.flag_at(0) == FLAG_ID
        assert embedding.flag_at(1) == FLAG_PATH

    def test_id_at_on_path_column_raises(self):
        embedding = Embedding().append_path([GradoopId(1)])
        with pytest.raises(ValueError):
            embedding.id_at(0)

    def test_path_at_on_id_column_raises(self):
        embedding = Embedding.of_ids(GradoopId(1))
        with pytest.raises(ValueError):
            embedding.path_at(0)

    @given(st.lists(st.integers(min_value=0, max_value=2**63), max_size=10))
    def test_roundtrip_many_ids(self, values):
        embedding = Embedding.of_ids(*[GradoopId(v) for v in values])
        assert [embedding.raw_id_at(i) for i in range(len(values))] == values


class TestPathEntries:
    def test_paper_example_physical_layout(self):
        """The §3.3 worked example: idData={ID,10,PATH,0,ID,30},
        pathData={3,5,20,7}, propData={5,Alice,3,Bob}."""
        embedding = (
            Embedding.of_ids(GradoopId(10))
            .append_path([GradoopId(5), GradoopId(20), GradoopId(7)])
            .append_id(GradoopId(30))
            .append_properties([PropertyValue("Alice"), PropertyValue("Bob")])
        )
        assert embedding.raw_id_at(0) == 10
        assert [g.value for g in embedding.path_at(1)] == [5, 20, 7]
        assert embedding.raw_id_at(2) == 30
        assert embedding.property_at(0).raw() == "Alice"
        assert embedding.property_at(1).raw() == "Bob"

    def test_empty_path(self):
        embedding = Embedding().append_path([])
        assert embedding.path_at(0) == []

    def test_multiple_paths_have_distinct_offsets(self):
        embedding = (
            Embedding()
            .append_path([GradoopId(1), GradoopId(2), GradoopId(3)])
            .append_path([GradoopId(9)])
        )
        assert [g.value for g in embedding.path_at(0)] == [1, 2, 3]
        assert [g.value for g in embedding.path_at(1)] == [9]

    def test_append_path_accepts_raw_ints(self):
        embedding = Embedding().append_path([5, 20, 7])
        assert [g.value for g in embedding.path_at(0)] == [5, 20, 7]


class TestProperties:
    def test_property_walk(self):
        embedding = Embedding().append_properties(
            [PropertyValue(v) for v in ["Alice", 1984, None, True]]
        )
        assert embedding.property_count == 4
        assert embedding.property_at(1).raw() == 1984
        assert embedding.property_at(2).is_null

    def test_out_of_range_raises(self):
        embedding = Embedding().append_properties([PropertyValue(1)])
        with pytest.raises(IndexError):
            embedding.property_at(5)

    def test_properties_list(self):
        values = [PropertyValue("x"), PropertyValue(2.5)]
        embedding = Embedding().append_properties(values)
        assert embedding.properties() == values

    def test_project_properties(self):
        embedding = Embedding().append_properties(
            [PropertyValue(v) for v in ["a", "b", "c"]]
        )
        projected = embedding.project_properties([2, 0])
        assert [p.raw() for p in projected.properties()] == ["c", "a"]

    @given(st.lists(st.one_of(st.text(max_size=20), st.integers(-100, 100)), max_size=8))
    def test_roundtrip_many_properties(self, values):
        embedding = Embedding().append_properties([PropertyValue(v) for v in values])
        assert [p.raw() for p in embedding.properties()] == values


class TestMerge:
    def test_merge_appends_columns(self):
        left = Embedding.of_ids(GradoopId(1))
        right = Embedding.of_ids(GradoopId(2), GradoopId(3))
        merged = left.merge(right)
        assert merged.column_count == 3
        assert merged.raw_id_at(2) == 3

    def test_merge_drops_join_columns(self):
        left = Embedding.of_ids(GradoopId(1))
        right = Embedding.of_ids(GradoopId(1), GradoopId(5), GradoopId(2))
        merged = left.merge(right, drop_columns={0})
        assert merged.column_count == 3
        assert [merged.raw_id_at(i) for i in range(3)] == [1, 5, 2]

    def test_merge_rewrites_path_offsets(self):
        """The key §3.3 invariant: the right side's PATH offsets shift by
        the left side's path_data length."""
        left = Embedding.of_ids(GradoopId(1)).append_path([GradoopId(7), GradoopId(8)])
        right = Embedding.of_ids(GradoopId(2)).append_path([GradoopId(9)])
        merged = left.merge(right)
        assert [g.value for g in merged.path_at(1)] == [7, 8]
        assert [g.value for g in merged.path_at(3)] == [9]

    def test_merge_appends_properties(self):
        left = Embedding().append_properties([PropertyValue("l")])
        right = Embedding().append_properties([PropertyValue("r")])
        merged = left.merge(right)
        assert [p.raw() for p in merged.properties()] == ["l", "r"]

    def test_merge_is_append_only_for_left(self):
        left = Embedding.of_ids(GradoopId(1)).append_properties([PropertyValue("x")])
        merged = left.merge(Embedding.of_ids(GradoopId(2)))
        assert merged.id_data.startswith(left.id_data)
        assert merged.prop_data.startswith(left.prop_data)


class TestInfrastructure:
    def test_equality_and_hash(self):
        a = Embedding.of_ids(GradoopId(1)).append_properties([PropertyValue(2)])
        b = Embedding.of_ids(GradoopId(1)).append_properties([PropertyValue(2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_serialized_size(self):
        embedding = (
            Embedding.of_ids(GradoopId(1))
            .append_path([GradoopId(2)])
            .append_properties([PropertyValue("abc")])
        )
        assert embedding.serialized_size() == len(embedding.id_data) + len(
            embedding.path_data
        ) + len(embedding.prop_data)

    def test_repr_readable(self):
        embedding = Embedding.of_ids(GradoopId(10)).append_path([GradoopId(5)])
        assert "10" in repr(embedding)
        assert "path" in repr(embedding)


class TestEmbeddingMetaData:
    def test_entry_mapping(self):
        meta = EmbeddingMetaData().with_entry("p1", "v").with_entry("e", "e")
        assert meta.entry_column("p1") == 0
        assert meta.entry_kind("e") == "e"
        assert meta.variables == ["p1", "e"]

    def test_duplicate_entry_rejected(self):
        meta = EmbeddingMetaData().with_entry("p1", "v")
        with pytest.raises(ValueError):
            meta.with_entry("p1", "v")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingMetaData().with_entry("x", "q")

    def test_property_mapping(self):
        meta = (
            EmbeddingMetaData()
            .with_entry("p1", "v")
            .with_property("p1", "name")
            .with_property("p1", "age")
        )
        assert meta.property_index("p1", "name") == 0
        assert meta.property_index("p1", "age") == 1
        assert meta.property_keys_of("p1") == ["name", "age"]

    def test_missing_lookups_raise(self):
        meta = EmbeddingMetaData()
        with pytest.raises(KeyError):
            meta.entry_column("ghost")
        with pytest.raises(KeyError):
            meta.property_index("ghost", "x")

    def test_combine_drops_join_columns(self):
        left = EmbeddingMetaData().with_entry("a", "v").with_entry("e1", "e")
        right = (
            EmbeddingMetaData()
            .with_entry("a", "v")
            .with_entry("e2", "e")
            .with_entry("b", "v")
        )
        meta, drop = EmbeddingMetaData.combine(left, right, ["a"])
        assert drop == {0}
        assert meta.variables == ["a", "e1", "e2", "b"]
        assert meta.entry_column("b") == 3

    def test_combine_shifts_property_indices(self):
        left = EmbeddingMetaData().with_entry("a", "v").with_property("a", "x")
        right = EmbeddingMetaData().with_entry("b", "v").with_property("b", "y")
        meta, _ = EmbeddingMetaData.combine(left, right, [])
        assert meta.property_index("a", "x") == 0
        assert meta.property_index("b", "y") == 1

    def test_combine_conflicting_unjoined_variable_rejected(self):
        left = EmbeddingMetaData().with_entry("a", "v")
        right = EmbeddingMetaData().with_entry("a", "v")
        with pytest.raises(ValueError):
            EmbeddingMetaData.combine(left, right, [])

    def test_meta_is_not_part_of_embedding(self):
        """§3.3: meta data lives outside the embedding byte arrays."""
        embedding = Embedding.of_ids(GradoopId(1))
        assert not hasattr(embedding, "meta")

"""Tests for the exhaustive plan enumerator."""

import pytest

from repro.cypher import QueryHandler
from repro.engine import (
    CypherRunner,
    ExhaustivePlanner,
    GraphStatistics,
    GreedyPlanner,
    canonical_rows_from_embeddings,
)
from repro.harness import ALL_QUERIES, instantiate
from repro.ldbc import LDBCGenerator

QUERIES = [
    instantiate(ALL_QUERIES["Q3"], "Jan"),
    ALL_QUERIES["Q4"],
    ALL_QUERIES["Q5"],
    ALL_QUERIES["Q6"],
]


@pytest.fixture(scope="module")
def graph():
    from repro.dataflow import ExecutionEnvironment

    env = ExecutionEnvironment(parallelism=3)
    return LDBCGenerator(scale_factor=0.04, seed=6).generate().to_logical_graph(env)


@pytest.mark.parametrize("query", QUERIES)
def test_same_results_as_greedy(graph, query):
    greedy = CypherRunner(graph, planner_cls=GreedyPlanner)
    exhaustive = CypherRunner(graph, planner_cls=ExhaustivePlanner)
    g_emb, g_meta = greedy.execute_embeddings(query)
    e_emb, e_meta = exhaustive.execute_embeddings(query)
    assert sorted(canonical_rows_from_embeddings(g_emb, g_meta)) == sorted(
        canonical_rows_from_embeddings(e_emb, e_meta)
    )


@pytest.mark.parametrize("query", QUERIES)
def test_enumerated_cost_never_worse_than_greedy(graph, query):
    """By construction: the exhaustive order minimizes the same estimate
    the greedy heuristic optimizes step-by-step."""
    handler = QueryHandler(query)
    statistics = GraphStatistics.from_graph(graph)

    def order_cost(planner):
        return planner._order_cost(tuple(handler.edges.values()))

    exhaustive = ExhaustivePlanner(graph, QueryHandler(query), statistics)
    best_cost = min(
        cost
        for cost in (
            exhaustive._order_cost(order)
            for order in __import__("itertools").permutations(
                exhaustive.handler.edges.values()
            )
        )
        if cost is not None
    )

    # simulate greedy's chosen order cost with a fresh planner
    greedy = GreedyPlanner(graph, QueryHandler(query), statistics)
    entries = greedy._initial_entries()
    pending = list(greedy.handler.edges.values())
    applied = set()
    greedy_cost = 0.0
    while pending:
        best_edge, best_card = None, None
        for edge in pending:
            entry, _ = greedy._edge_candidate(edge, entries, applied, dry_run=True)
            if best_card is None or entry.cardinality < best_card:
                best_edge, best_card = edge, entry.cardinality
        entry, consumed = greedy._edge_candidate(
            best_edge, entries, applied, dry_run=True
        )
        greedy_cost += entry.cardinality
        pending.remove(best_edge)
        for used in consumed:
            entries.remove(used)
        entries.append(entry)

    assert best_cost <= greedy_cost * 1.0001


def test_falls_back_to_greedy_beyond_bound(figure1_graph):
    """Patterns with more than MAX_EDGES edges use the greedy path."""
    pattern = ", ".join(
        "(a%d:Person)-[e%d:knows]->(b%d:Person)" % (i, i, i) for i in range(7)
    )
    query = "MATCH %s RETURN *" % pattern
    runner = CypherRunner(figure1_graph, planner_cls=ExhaustivePlanner)
    embeddings, _ = runner.execute_embeddings(query)
    greedy_embeddings, _ = CypherRunner(figure1_graph).execute_embeddings(query)
    assert len(embeddings) == len(greedy_embeddings)


def test_exhaustive_on_figure1_matches_naive(figure1_graph):
    from repro.engine import NaiveMatcher

    query = (
        "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(c:Person),"
        " (a)-[e3:studyAt]->(u:University) RETURN *"
    )
    runner = CypherRunner(figure1_graph, planner_cls=ExhaustivePlanner)
    embeddings, meta = runner.execute_embeddings(query)
    assert sorted(canonical_rows_from_embeddings(embeddings, meta)) == sorted(
        NaiveMatcher(figure1_graph).match(query)
    )

"""Columnar embedding chunks: codec exactness, kernels, shuffle, joins.

The columnar layer (``repro.engine.columnar``) re-encodes batches of
same-shape §3.3 embeddings as contiguous column arrays plus offset
tables.  Everything downstream leans on one invariant: the chunk codec
is an *exact* bijection with the per-record layout — decoding always
reproduces the original ``(id_data, path_data, prop_data)`` bytes, in
order.  Property-based tests pin that invariant (variable-length paths,
empty property maps, null values); model-based tests pin shuffle
placement and byte accounting against the per-record
``stable_hash`` loop; a differential suite pins end-to-end columnar
execution against the per-record interpreter for every paper query ×
planner × morphism strategy, including sanitized runs and the pooled
multi-process path.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import ExecutionEnvironment, partition_index
from repro.engine import CypherRunner, GraphStatistics, MatchStrategy
from repro.engine.columnar import (
    ColumnarPartition,
    EmbeddingChunk,
    chunk_from_embeddings,
    shuffle_split,
)
from repro.engine.embedding import Embedding, iter_property_records
from repro.engine.planning import (
    ExhaustivePlanner,
    GreedyPlanner,
    LeftDeepPlanner,
)
from repro.epgm import GradoopId, PropertyValue
from repro.harness.queries import ALL_QUERIES, instantiate
from repro.ldbc import LDBCGenerator

_ids = st.integers(min_value=0, max_value=2**40)
_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-1000, 1000),
    st.text(max_size=8),
)
_paths = st.lists(_ids, max_size=5)
_shapes = st.lists(st.sampled_from(["id", "path"]), min_size=1, max_size=4)


@st.composite
def uniform_batches(draw):
    """A non-empty list of embeddings sharing one column shape.

    Rows differ in everything the shape does not fix: path lengths vary
    per row (including empty), property maps vary per row (including
    absent), and property values include nulls.
    """
    shape = draw(_shapes)
    count = draw(st.integers(min_value=1, max_value=12))
    rows = []
    for _ in range(count):
        embedding = Embedding()
        for kind in shape:
            if kind == "id":
                embedding = embedding.append_id(GradoopId(draw(_ids)))
            else:
                embedding = embedding.append_path(
                    [GradoopId(v) for v in draw(_paths)]
                )
        props = draw(st.lists(_values, max_size=3))
        if props:
            embedding = embedding.append_properties(
                [PropertyValue(v) for v in props]
            )
        rows.append(embedding)
    return rows


def _canon(records):
    return [(r.id_data, r.path_data, r.prop_data) for r in records]


# --- codec exactness ---------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(rows=uniform_batches())
def test_roundtrip_reproduces_exact_bytes(rows):
    chunk = chunk_from_embeddings(rows)
    assert chunk is not None
    assert chunk.count == len(rows)
    assert _canon(chunk.to_embeddings()) == _canon(rows)
    # total size is conserved: columnar is a re-arrangement, not a recode
    assert chunk.byte_size() == sum(r.serialized_size() for r in rows)


@settings(max_examples=100, deadline=None)
@given(rows=uniform_batches())
def test_partition_quacks_like_the_record_list(rows):
    partition = ColumnarPartition([chunk_from_embeddings(rows)])
    assert len(partition) == len(rows)
    assert _canon(list(partition)) == _canon(rows)
    assert partition[0] == rows[0]
    assert partition[-1] == rows[-1]


@settings(max_examples=100, deadline=None)
@given(rows=uniform_batches())
def test_prop_spans_match_per_record_walk(rows):
    chunk = chunk_from_embeddings(rows)
    spans = chunk.prop_spans()
    assert len(spans) == chunk.count
    for row, record in enumerate(rows):
        base = chunk.prop_offsets[row]
        # iter_property_records yields (payload_start, payload_length);
        # a chunk span covers the whole record, length prefix included
        expected = [
            (base + start - 2, base + start + length)
            for start, length in iter_property_records(record.prop_data)
        ]
        assert list(spans[row]) == expected
        assert len(spans[row]) == record.property_count


@settings(max_examples=100, deadline=None)
@given(rows=uniform_batches(), data=st.data())
def test_gather_matches_row_selection(rows, data):
    chunk = chunk_from_embeddings(rows)
    picks = data.draw(
        st.lists(
            st.integers(0, len(rows) - 1), max_size=2 * len(rows)
        )
    )
    gathered = chunk.gather(picks)
    assert _canon(gathered.to_embeddings()) == _canon(
        [rows[i] for i in picks]
    )


def test_non_uniform_batches_fall_back():
    one = Embedding().append_id(GradoopId(1))
    two = one.append_id(GradoopId(2))
    assert chunk_from_embeddings([]) is None
    assert chunk_from_embeddings([one, two]) is None  # mixed widths
    assert chunk_from_embeddings([("frontier", 1)]) is None
    assert chunk_from_embeddings([one, ("frontier", 1)]) is None


# --- shuffle placement and byte accounting ----------------------------------


def _make_rows(count, columns, with_payload):
    """Uniform-shape rows; with payload, a path column plus properties.

    Path lengths and property maps vary per row (some empty) without
    changing the column shape, so the batch stays chunkable.
    """
    rows = []
    for index in range(count):
        embedding = Embedding()
        for column in range(columns):
            embedding = embedding.append_id(
                GradoopId(index * 31 + column * 7 + 1)
            )
        if with_payload:
            hops = index % 3
            embedding = embedding.append_path(
                [GradoopId(index + 2 + hop) for hop in range(hops)]
            )
            if index % 2:
                embedding = embedding.append_properties(
                    [PropertyValue("p%d" % index)]
                )
        rows.append(embedding)
    return rows


@pytest.mark.parametrize("count", [8, 64])  # pure-Python and numpy paths
@pytest.mark.parametrize("key_columns", [(0,), (0, 2)])
@pytest.mark.parametrize("with_payload", [False, True])
def test_shuffle_split_matches_per_record_model(
    count, key_columns, with_payload
):
    parallelism = 4
    source = 1
    rows = _make_rows(count, columns=3, with_payload=with_payload)
    chunk = chunk_from_embeddings(rows)

    # the per-record model: stable_hash of the raw id key (tuple for
    # multi-column keys), cross-worker moves counted by serialized size
    expected = [[] for _ in range(parallelism)]
    moved_records = 0
    moved_bytes = 0
    bytes_in = [0] * parallelism
    for row in rows:
        raw = tuple(row.raw_id_at(c) for c in key_columns)
        key = raw[0] if len(raw) == 1 else raw
        target = partition_index(key, parallelism)
        expected[target].append(row)
        if target != source:
            moved_records += 1
            moved_bytes += row.serialized_size()
            bytes_in[target] += row.serialized_size()

    splits, got_records, got_bytes, got_in = shuffle_split(
        [chunk], key_columns, parallelism, source
    )
    assert got_records == moved_records
    assert got_bytes == moved_bytes
    assert list(got_in) == bytes_in
    for target in range(parallelism):
        decoded = [
            row
            for piece in splits[target]
            for row in piece.to_embeddings()
        ]
        assert _canon(decoded) == _canon(expected[target])


def test_shuffle_split_keeps_whole_chunk_without_slicing():
    # all rows share one key ⇒ one target gets the original chunk object
    rows = [
        Embedding().append_id(GradoopId(42)).append_id(GradoopId(i))
        for i in range(40)
    ]
    chunk = chunk_from_embeddings(rows)
    splits, _, _, _ = shuffle_split([chunk], (0,), 4, 0)
    placed = [chunks for chunks in splits if chunks]
    assert len(placed) == 1
    assert placed[0][0] is chunk


# --- end-to-end differential -------------------------------------------------

PLANNERS = (GreedyPlanner, ExhaustivePlanner, LeftDeepPlanner)
STRATEGIES = (
    MatchStrategy.HOMOMORPHISM,
    MatchStrategy.ISOMORPHISM,
)


@pytest.fixture(scope="module")
def graphs():
    dataset = LDBCGenerator(scale_factor=0.03, seed=11).generate()
    columnar_env = ExecutionEnvironment(parallelism=4, columnar=True)
    plain_env = ExecutionEnvironment(parallelism=4)
    columnar_graph = dataset.to_logical_graph(columnar_env)
    plain_graph = dataset.to_logical_graph(plain_env)
    return (
        dataset,
        (columnar_graph, GraphStatistics.from_graph(columnar_graph)),
        (plain_graph, GraphStatistics.from_graph(plain_graph)),
    )


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
@pytest.mark.parametrize("planner_cls", PLANNERS, ids=lambda p: p.__name__)
@pytest.mark.parametrize("name", sorted(ALL_QUERIES))
def test_columnar_equals_per_record(graphs, name, planner_cls, strategy):
    dataset, (columnar_graph, columnar_stats), (plain_graph, plain_stats) = (
        graphs
    )
    query = instantiate(ALL_QUERIES[name], dataset.first_name("medium"))
    columnar = CypherRunner(
        columnar_graph,
        statistics=columnar_stats,
        planner_cls=planner_cls,
        vertex_strategy=strategy,
        edge_strategy=strategy,
        fused=True,
    )
    per_record = CypherRunner(
        plain_graph,
        statistics=plain_stats,
        planner_cls=planner_cls,
        vertex_strategy=strategy,
        edge_strategy=strategy,
        fused=False,
    )
    columnar_embeddings, _ = columnar.execute_embeddings(query)
    per_record_embeddings, _ = per_record.execute_embeddings(query)
    # byte-exact, same order: the kernels are drop-in replacements
    assert _canon(columnar_embeddings) == _canon(per_record_embeddings)


def test_sanitized_run_equals_columnar(graphs):
    dataset, (columnar_graph, columnar_stats), _ = graphs
    query = instantiate(ALL_QUERIES["Q1"], dataset.first_name("medium"))
    plain = CypherRunner(columnar_graph, statistics=columnar_stats)
    sanitized = CypherRunner(
        columnar_graph, statistics=columnar_stats, sanitize="collect"
    )
    plain_embeddings, _ = plain.execute_embeddings(query)
    sanitized_embeddings, _ = sanitized.execute_embeddings(query)
    assert Counter(plain_embeddings) == Counter(sanitized_embeddings)


def test_pooled_columnar_equals_per_record():
    dataset = LDBCGenerator(scale_factor=0.02, seed=7).generate()
    pooled_env = ExecutionEnvironment(parallelism=4, workers=2, columnar=True)
    plain_env = ExecutionEnvironment(parallelism=4)
    try:
        pooled_graph = dataset.to_logical_graph(pooled_env)
        plain_graph = dataset.to_logical_graph(plain_env)
        pooled = CypherRunner(
            pooled_graph,
            statistics=GraphStatistics.from_graph(pooled_graph),
            fused=True,
        )
        per_record = CypherRunner(
            plain_graph,
            statistics=GraphStatistics.from_graph(plain_graph),
            fused=False,
        )
        for name in ("Q1", "Q5"):
            query = instantiate(
                ALL_QUERIES[name], dataset.first_name("medium")
            )
            pooled_embeddings, _ = pooled.execute_embeddings(query)
            per_record_embeddings, _ = per_record.execute_embeddings(query)
            assert Counter(pooled_embeddings) == Counter(
                per_record_embeddings
            ), name
        assert pooled_env.worker_pool()._started
    finally:
        pooled_env.shutdown_workers()

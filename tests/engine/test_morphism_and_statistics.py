"""Tests for morphism enforcement and graph statistics."""


from repro.engine import (
    Embedding,
    EmbeddingMetaData,
    GraphStatistics,
    MatchStrategy,
    embedding_satisfies_morphism,
)
from repro.epgm import GradoopId

HOMO = MatchStrategy.HOMOMORPHISM
ISO = MatchStrategy.ISOMORPHISM


def meta_ve():
    return (
        EmbeddingMetaData()
        .with_entry("a", "v")
        .with_entry("e", "e")
        .with_entry("b", "v")
    )


class TestMorphism:
    def test_homo_allows_repeated_vertices(self):
        embedding = Embedding.of_ids(GradoopId(1), GradoopId(9), GradoopId(1))
        assert embedding_satisfies_morphism(embedding, meta_ve(), HOMO, ISO)

    def test_vertex_iso_rejects_repeated_vertices(self):
        embedding = Embedding.of_ids(GradoopId(1), GradoopId(9), GradoopId(1))
        assert not embedding_satisfies_morphism(embedding, meta_ve(), ISO, ISO)

    def test_vertex_iso_accepts_distinct(self):
        embedding = Embedding.of_ids(GradoopId(1), GradoopId(9), GradoopId(2))
        assert embedding_satisfies_morphism(embedding, meta_ve(), ISO, ISO)

    def test_edge_iso_rejects_repeated_edges(self):
        meta = (
            EmbeddingMetaData()
            .with_entry("e1", "e")
            .with_entry("e2", "e")
        )
        embedding = Embedding.of_ids(GradoopId(5), GradoopId(5))
        assert not embedding_satisfies_morphism(embedding, meta, HOMO, ISO)
        assert embedding_satisfies_morphism(embedding, meta, HOMO, HOMO)

    def test_path_vertices_count_for_vertex_iso(self):
        meta = EmbeddingMetaData().with_entry("a", "v").with_entry("p", "p")
        # via = [e=7, v=1, e=8]: internal vertex 1 duplicates column a
        embedding = Embedding.of_ids(GradoopId(1)).append_path(
            [GradoopId(7), GradoopId(1), GradoopId(8)]
        )
        assert not embedding_satisfies_morphism(embedding, meta, ISO, HOMO)
        assert embedding_satisfies_morphism(embedding, meta, HOMO, HOMO)

    def test_path_edges_count_for_edge_iso(self):
        meta = EmbeddingMetaData().with_entry("e", "e").with_entry("p", "p")
        embedding = Embedding.of_ids(GradoopId(7)).append_path(
            [GradoopId(7)]  # the path reuses edge 7
        )
        assert not embedding_satisfies_morphism(embedding, meta, HOMO, ISO)

    def test_two_paths_checked_against_each_other(self):
        meta = EmbeddingMetaData().with_entry("p1", "p").with_entry("p2", "p")
        embedding = (
            Embedding()
            .append_path([GradoopId(7)])
            .append_path([GradoopId(7)])
        )
        assert not embedding_satisfies_morphism(embedding, meta, HOMO, ISO)

    def test_homo_homo_always_true(self):
        embedding = Embedding.of_ids(GradoopId(1), GradoopId(1), GradoopId(1))
        assert embedding_satisfies_morphism(embedding, meta_ve(), HOMO, HOMO)


class TestStatistics:
    def test_counts(self, figure1_graph):
        stats = GraphStatistics.from_graph(figure1_graph)
        assert stats.vertex_count == 5
        assert stats.edge_count == 8
        assert stats.vertex_count_by_label == {
            "Person": 3,
            "University": 1,
            "City": 1,
        }
        assert stats.edge_count_by_label == {
            "knows": 4,
            "studyAt": 3,
            "isLocatedIn": 1,
        }

    def test_distinct_endpoints(self, figure1_graph):
        stats = GraphStatistics.from_graph(figure1_graph)
        # knows edges: 10->20, 20->10, 20->30, 30->20
        assert stats.distinct_source_by_label["knows"] == 3
        assert stats.distinct_target_by_label["knows"] == 3
        assert stats.distinct_source_by_label["studyAt"] == 3
        assert stats.distinct_target_by_label["studyAt"] == 1

    def test_label_alternation_sums(self, figure1_graph):
        stats = GraphStatistics.from_graph(figure1_graph)
        assert stats.vertices_with_labels(["Person", "City"]) == 4
        assert stats.vertices_with_labels([]) == 5
        assert stats.edges_with_labels(["knows", "studyAt"]) == 7

    def test_unknown_label_is_zero(self, figure1_graph):
        stats = GraphStatistics.from_graph(figure1_graph)
        assert stats.vertices_with_labels(["Robot"]) == 0
        assert stats.distinct_sources(["Robot"]) == 1  # floor of 1 for division

    def test_empty_graph(self, env):
        from repro.epgm import LogicalGraph

        stats = GraphStatistics.from_graph(LogicalGraph.from_collections(env, [], []))
        assert stats.vertex_count == 0
        assert stats.distinct_sources([]) == 1

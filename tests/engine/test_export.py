"""Tests for the numpy export helpers."""

import numpy
import pytest

from repro.engine import CypherRunner
from repro.engine.export import embeddings_to_arrays, result_table


@pytest.fixture
def runner(figure1_graph):
    return CypherRunner(figure1_graph)


def test_id_columns_are_uint64(runner):
    columns = result_table(
        runner, "MATCH (p:Person)-[s:studyAt]->(u) RETURN *"
    )
    assert columns["p"].dtype == numpy.uint64
    assert set(columns) == {"p", "s", "u"}
    assert len(columns["p"]) == 3


def test_property_columns(runner):
    columns = result_table(runner, "MATCH (p:Person) RETURN p.name")
    assert sorted(columns["p.name"]) == ["Alice", "Bob", "Eve"]


def test_null_properties_are_none(runner):
    columns = result_table(runner, "MATCH (p:Person) RETURN p.yob")
    values = sorted(columns["p.yob"], key=lambda v: (v is None, v))
    assert values[0] == 1984
    assert values[1] is None


def test_path_columns_are_id_lists(runner):
    columns = result_table(
        runner,
        "MATCH (a:Person {name: 'Alice'})-[e:knows*2..2]->(b:Person) RETURN *",
    )
    assert all(isinstance(path, list) for path in columns["e"])
    assert [5, 20, 7] in list(columns["e"])


def test_empty_result(runner):
    columns = result_table(runner, "MATCH (x:Robot) RETURN *")
    assert len(columns["x"]) == 0


def test_arrays_usable_for_analytics(runner):
    """The point of the export: vectorized post-processing."""
    columns = result_table(
        runner, "MATCH (a:Person)-[e:knows]->(b:Person) RETURN *"
    )
    unique_sources = numpy.unique(columns["a"])
    assert unique_sources.tolist() == [10, 20, 30]


def test_direct_function_matches_helper(runner):
    query = "MATCH (p:Person) RETURN p.name"
    embeddings, meta = runner.execute_embeddings(query)
    direct = embeddings_to_arrays(embeddings, meta)
    helper = result_table(runner, query)
    assert sorted(direct["p.name"]) == sorted(helper["p.name"])

"""Tests for EXPLAIN ANALYZE output."""

import re

from repro.engine import CypherRunner


def test_shows_estimates_and_actuals(figure1_graph):
    text = CypherRunner(figure1_graph).explain_analyze(
        "MATCH (p:Person)-[s:studyAt]->(u:University) "
        "WHERE s.classYear > 2014 RETURN *"
    )
    assert "est=" in text
    assert "actual=" in text
    # every plan line carries an actual count
    for line in text.splitlines():
        assert "actual=" in line, line


def test_root_actual_matches_result_count(figure1_graph):
    runner = CypherRunner(figure1_graph)
    query = "MATCH (a:Person)-[e:knows]->(b:Person) RETURN *"
    text = runner.explain_analyze(query)
    root_actual = int(re.search(r"actual=(\d+)", text.splitlines()[0]).group(1))
    embeddings, _ = runner.execute_embeddings(query)
    assert root_actual == len(embeddings)


def test_leaf_actuals_match_label_counts(figure1_graph):
    text = CypherRunner(figure1_graph).explain_analyze(
        "MATCH (p:Person) RETURN *"
    )
    assert re.search(r"SelectAndProjectVertices\(p:Person\).*actual=3", text)


def test_estimation_error_is_visible(figure1_graph):
    """The whole point: compare planner guesses to reality."""
    text = CypherRunner(figure1_graph).explain_analyze(
        "MATCH (p:Person {name: 'Alice'}) RETURN *"
    )
    match = re.search(r"est=(\d+) actual=(\d+)", text)
    estimated, actual = int(match.group(1)), int(match.group(2))
    assert actual == 1
    assert estimated >= 0  # heuristic 0.1 * 3 rounds to 0

def test_plain_explain_has_no_actuals(figure1_graph):
    text = CypherRunner(figure1_graph).explain("MATCH (p:Person) RETURN *")
    assert "actual=" not in text

"""Worker-pool vs single-process differential checking.

Acceptance for the multi-process runtime: for every LDBC paper query
(Q1–Q6), under every planner, executing with ``workers=2`` (fused
chains and exchange joins shipped to real worker processes) yields the
same embedding multiset as plain per-record single-process execution.
Also proves sanitized runs on a worker-enabled environment stay on the
in-process path (the sanitizer's boundary wrappers must see every
intermediate) without error.
"""

from collections import Counter

import pytest

from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner, GraphStatistics
from repro.engine.planning import (
    ExhaustivePlanner,
    GreedyPlanner,
    LeftDeepPlanner,
)
from repro.harness.queries import ALL_QUERIES, instantiate
from repro.ldbc import LDBCGenerator

PLANNERS = (GreedyPlanner, ExhaustivePlanner, LeftDeepPlanner)


@pytest.fixture(scope="module")
def graphs():
    dataset = LDBCGenerator(scale_factor=0.03, seed=11).generate()
    worker_env = ExecutionEnvironment(parallelism=4, workers=2)
    single_env = ExecutionEnvironment(parallelism=4)
    worker_graph = dataset.to_logical_graph(worker_env)
    single_graph = dataset.to_logical_graph(single_env)
    yield (
        dataset,
        (worker_graph, GraphStatistics.from_graph(worker_graph)),
        (single_graph, GraphStatistics.from_graph(single_graph)),
    )
    worker_env.shutdown_workers()


@pytest.mark.parametrize("planner_cls", PLANNERS, ids=lambda p: p.__name__)
@pytest.mark.parametrize("name", sorted(ALL_QUERIES))
def test_workers_equal_single_process(graphs, name, planner_cls):
    dataset, (worker_graph, worker_stats), (single_graph, single_stats) = (
        graphs
    )
    query = instantiate(ALL_QUERIES[name], dataset.first_name("medium"))
    pooled = CypherRunner(
        worker_graph,
        statistics=worker_stats,
        planner_cls=planner_cls,
        fused=True,
    )
    single = CypherRunner(
        single_graph,
        statistics=single_stats,
        planner_cls=planner_cls,
        fused=False,
    )
    pooled_embeddings, _ = pooled.execute_embeddings(query)
    single_embeddings, _ = single.execute_embeddings(query)
    assert Counter(pooled_embeddings) == Counter(single_embeddings)


def test_worker_pool_really_engaged(graphs):
    _, (worker_graph, _), _ = graphs
    pool = worker_graph.environment.worker_pool()
    assert pool is not None and pool._started
    assert any(
        handle is not None and handle.shipped for handle in pool._handles
    )


def test_prepared_rebinding_reaches_workers():
    """Regression: one prepared plan, three bindings, pooled execution.

    The prepared statement's closures read a shared ``ParameterBinding``
    late; shipping freezes them by value, so the pool must re-ship the
    spec whenever the binding content changes (content-digest wire keys)
    instead of replaying a stale worker-cached spec.
    """
    dataset = LDBCGenerator(scale_factor=0.01, seed=7).generate()
    worker_env = ExecutionEnvironment(parallelism=4, workers=2)
    single_env = ExecutionEnvironment(parallelism=4)
    try:
        worker_graph = dataset.to_logical_graph(worker_env)
        single_graph = dataset.to_logical_graph(single_env)
        query = (
            "MATCH (p:Person) WHERE p.firstName = $name "
            "RETURN p.firstName, p.lastName"
        )
        pooled = CypherRunner(
            worker_graph, statistics=GraphStatistics.from_graph(worker_graph)
        ).prepare(query)
        single = CypherRunner(
            single_graph, statistics=GraphStatistics.from_graph(single_graph)
        ).prepare(query)
        for name in (
            dataset.first_name("low"),
            dataset.first_name("high"),
            dataset.first_name("low"),
        ):
            pooled_rows = pooled.execute_table({"name": name})
            single_rows = single.execute_table({"name": name})
            assert pooled_rows and all(
                row["p.firstName"] == name for row in pooled_rows
            )
            assert sorted(
                tuple(sorted(row.items())) for row in pooled_rows
            ) == sorted(tuple(sorted(row.items())) for row in single_rows)
        assert worker_env.worker_pool()._started
    finally:
        worker_env.shutdown_workers()


def test_sanitized_run_stays_in_process():
    dataset = LDBCGenerator(scale_factor=0.01, seed=11).generate()
    environment = ExecutionEnvironment(parallelism=4, workers=2)
    try:
        graph = dataset.to_logical_graph(environment)
        runner = CypherRunner(
            graph,
            statistics=GraphStatistics.from_graph(graph),
            sanitize="collect",
        )
        query = instantiate(ALL_QUERIES["Q1"], dataset.first_name("medium"))
        embeddings, _ = runner.execute_embeddings(query)
        assert embeddings  # the sanitized run executed
        pool = environment.worker_pool()
        assert pool is None or not pool._started
    finally:
        environment.shutdown_workers()

"""Unit tests for the physical query operators against Figure 1."""

import pytest

from repro.cypher import QueryHandler
from repro.engine import (
    ExpandEmbeddings,
    JoinEmbeddings,
    MatchStrategy,
    ProjectEmbeddings,
    SelectAndProjectEdges,
    SelectAndProjectVertices,
    SelectEmbeddings,
)

HOMO = MatchStrategy.HOMOMORPHISM
ISO = MatchStrategy.ISOMORPHISM


def vertex_leaf(graph, handler, variable):
    return SelectAndProjectVertices(
        graph, handler.vertices[variable], handler.property_keys(variable)
    )


def edge_leaf(graph, handler, variable):
    return SelectAndProjectEdges(
        graph, handler.edges[variable], handler.property_keys(variable)
    )


class TestSelectAndProjectVertices:
    def test_label_filter(self, figure1_graph):
        handler = QueryHandler("MATCH (p:Person) RETURN *")
        embeddings = vertex_leaf(figure1_graph, handler, "p").evaluate().collect()
        assert len(embeddings) == 3

    def test_property_predicate(self, figure1_graph):
        handler = QueryHandler("MATCH (p:Person {name: 'Alice'}) RETURN *")
        embeddings = vertex_leaf(figure1_graph, handler, "p").evaluate().collect()
        assert len(embeddings) == 1
        assert embeddings[0].raw_id_at(0) == 10

    def test_projection_keeps_needed_keys(self, figure1_graph):
        handler = QueryHandler("MATCH (p:Person) RETURN p.name")
        op = vertex_leaf(figure1_graph, handler, "p")
        assert op.meta.property_keys_of("p") == ["name"]
        embeddings = op.evaluate().collect()
        names = {e.property_at(0).raw() for e in embeddings}
        assert names == {"Alice", "Eve", "Bob"}

    def test_missing_property_projected_as_null(self, figure1_graph):
        handler = QueryHandler("MATCH (p:Person) RETURN p.yob")
        embeddings = vertex_leaf(figure1_graph, handler, "p").evaluate().collect()
        values = sorted(
            (e.property_at(0).raw() for e in embeddings),
            key=lambda v: (v is None, v),
        )
        assert values == [1984, None, None]

    def test_label_alternation(self, figure1_graph):
        handler = QueryHandler("MATCH (x:Person|City) RETURN *")
        embeddings = vertex_leaf(figure1_graph, handler, "x").evaluate().collect()
        assert len(embeddings) == 4

    def test_no_label_scans_everything(self, figure1_graph):
        handler = QueryHandler("MATCH (x) RETURN *")
        embeddings = vertex_leaf(figure1_graph, handler, "x").evaluate().collect()
        assert len(embeddings) == 5


class TestSelectAndProjectEdges:
    def test_type_filter_and_columns(self, figure1_graph):
        handler = QueryHandler("MATCH (a)-[s:studyAt]->(b) RETURN *")
        embeddings = edge_leaf(figure1_graph, handler, "s").evaluate().collect()
        assert len(embeddings) == 3
        for embedding in embeddings:
            assert embedding.column_count == 3

    def test_edge_property_predicate(self, figure1_graph):
        handler = QueryHandler(
            "MATCH (a)-[s:studyAt]->(b) WHERE s.classYear > 2014 RETURN *"
        )
        embeddings = edge_leaf(figure1_graph, handler, "s").evaluate().collect()
        assert len(embeddings) == 2  # Bob's 2014 studyAt is filtered

    def test_undirected_emits_both_orientations(self, figure1_graph):
        handler = QueryHandler("MATCH (a)-[e:isLocatedIn]-(b) RETURN *")
        embeddings = edge_leaf(figure1_graph, handler, "e").evaluate().collect()
        sources = sorted(e.raw_id_at(0) for e in embeddings)
        assert sources == [40, 50]

    def test_variable_length_edge_rejected(self, figure1_graph):
        handler = QueryHandler("MATCH (a)-[e:knows*1..2]->(b) RETURN *")
        with pytest.raises(ValueError):
            edge_leaf(figure1_graph, handler, "e")

    def test_loop_query_edge(self, env):
        from repro.epgm import Edge, GradoopId, LogicalGraph, Vertex

        graph = LogicalGraph.from_collections(
            env,
            [Vertex(GradoopId(1), label="N")],
            [
                Edge(GradoopId(10), label="self", source_id=GradoopId(1),
                     target_id=GradoopId(1)),
            ],
        )
        handler = QueryHandler("MATCH (a)-[e:self]->(a) RETURN *")
        op = edge_leaf(graph, handler, "e")
        embeddings = op.evaluate().collect()
        assert len(embeddings) == 1
        assert embeddings[0].column_count == 2  # [a, e] — no duplicate column


class TestJoinEmbeddings:
    def test_join_vertex_with_edges(self, figure1_graph):
        handler = QueryHandler(
            "MATCH (p:Person {name: 'Alice'})-[s:studyAt]->(u) RETURN *"
        )
        left = vertex_leaf(figure1_graph, handler, "p")
        right = edge_leaf(figure1_graph, handler, "s")
        join = JoinEmbeddings(left, right, ["p"], HOMO, ISO)
        embeddings = join.evaluate().collect()
        assert len(embeddings) == 1
        assert join.meta.variables == ["p", "s", "u"]

    def test_join_requires_shared_variable(self, figure1_graph):
        handler = QueryHandler("MATCH (p:Person)-[s:studyAt]->(u) RETURN *")
        left = vertex_leaf(figure1_graph, handler, "p")
        right = edge_leaf(figure1_graph, handler, "s")
        with pytest.raises(ValueError):
            JoinEmbeddings(left, right, ["ghost"], HOMO, ISO)
        with pytest.raises(ValueError):
            JoinEmbeddings(left, right, [], HOMO, ISO)

    def test_vertex_iso_enforced_in_join(self, figure1_graph):
        """(a)-[e1:knows]->(b), (b)-[e2:knows]->(c): with vertex ISO, c != a."""
        handler = QueryHandler(
            "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(c:Person) RETURN *"
        )
        e1 = edge_leaf(figure1_graph, handler, "e1")
        e2 = edge_leaf(figure1_graph, handler, "e2")

        homo_join = JoinEmbeddings(e1, e2, ["b"], HOMO, ISO)
        homo_count = len(homo_join.evaluate().collect())

        iso_join = JoinEmbeddings(e1, e2, ["b"], ISO, ISO)
        iso_count = len(iso_join.evaluate().collect())

        assert homo_count > iso_count
        # homo: 10->20->10, 10->20->30, 20->10->20, 30->20->10, 30->20->30, 20->30->20
        assert homo_count == 6
        # iso keeps only 10->20->30 and 30->20->10
        assert iso_count == 2


class TestSelectAndProject:
    def test_select_embeddings_cross_predicate(self, figure1_graph):
        handler = QueryHandler(
            "MATCH (a:Person)-[e:knows]->(b:Person) WHERE a.gender <> b.gender RETURN *"
        )
        # build a plan manually: edges joined with both vertex leaves
        edge_op = edge_leaf(figure1_graph, handler, "e")
        a_op = vertex_leaf(figure1_graph, handler, "a")
        b_op = vertex_leaf(figure1_graph, handler, "b")
        joined = JoinEmbeddings(
            JoinEmbeddings(a_op, edge_op, ["a"], HOMO, ISO), b_op, ["b"], HOMO, ISO
        )
        selected = SelectEmbeddings(joined, handler.global_predicates)
        embeddings = selected.evaluate().collect()
        # Eve->Bob, Bob->Eve (female<->male); Alice<->Eve are both female
        assert len(embeddings) == 2

    def test_select_embeddings_unbound_variable_rejected(self, figure1_graph):
        handler = QueryHandler(
            "MATCH (a:Person)-[e:knows]->(b:Person) WHERE a.gender <> b.gender RETURN *"
        )
        a_op = vertex_leaf(figure1_graph, handler, "a")
        with pytest.raises(ValueError):
            SelectEmbeddings(a_op, handler.global_predicates)

    def test_project_embeddings(self, figure1_graph):
        handler = QueryHandler("MATCH (p:Person) RETURN p.name")
        op = vertex_leaf(figure1_graph, handler, "p")
        projected = ProjectEmbeddings(op, [("p", "name")])
        embeddings = projected.evaluate().collect()
        assert all(e.property_count == 1 for e in embeddings)
        assert projected.meta.property_index("p", "name") == 0


class TestExpandEmbeddings:
    def _expand(self, graph, query, strategies=(HOMO, ISO), closing=False):
        handler = QueryHandler(query)
        edge = list(handler.edges.values())[0]
        source_op = SelectAndProjectVertices(
            graph, handler.vertices[edge.source], handler.property_keys(edge.source)
        )
        if closing:
            # bind the far end first via a join with all vertices
            far_op = SelectAndProjectVertices(
                graph, handler.vertices[edge.target], handler.property_keys(edge.target)
            )
            from repro.engine.operators.join import CartesianEmbeddings

            source_op = CartesianEmbeddings(source_op, far_op, *strategies)
        return ExpandEmbeddings(
            source_op, graph, edge, strategies[0], strategies[1], closing=closing
        )

    def test_paper_table_2b(self, figure1_graph):
        """knows*1..3 from Alice reaches Eve via [5] and Bob via [5,20,7]."""
        handler = QueryHandler(
            "MATCH (p1:Person {name: 'Alice'})-[e:knows*1..3]->(p2:Person) RETURN *"
        )
        edge = handler.edges["e"]
        source = SelectAndProjectVertices(
            figure1_graph, handler.vertices["p1"], set()
        )
        expand = ExpandEmbeddings(source, figure1_graph, edge, ISO, ISO, closing=False)
        embeddings = expand.evaluate().collect()
        rows = {
            (e.raw_id_at(0), tuple(g.value for g in e.path_at(1)), e.raw_id_at(2))
            for e in embeddings
        }
        assert (10, (5,), 20) in rows
        assert (10, (5, 20, 7), 30) in rows
        # under full ISO no other Alice-rooted paths of length <= 3 exist
        assert len(rows) == 2

    def test_homo_allows_revisits(self, figure1_graph):
        handler = QueryHandler(
            "MATCH (p1:Person {name: 'Alice'})-[e:knows*1..3]->(p2:Person) RETURN *"
        )
        edge = handler.edges["e"]
        source = SelectAndProjectVertices(figure1_graph, handler.vertices["p1"], set())
        expand = ExpandEmbeddings(
            source, figure1_graph, edge, HOMO, HOMO, closing=False
        )
        homo_count = len(expand.evaluate().collect())
        # 10->20 (len1); 10->20->10, 10->20->30 (len2);
        # 10->20->10->20, 10->20->30->20 (len3)
        assert homo_count == 5

    def test_lower_bound_zero(self, figure1_graph):
        handler = QueryHandler(
            "MATCH (p1:Person {name: 'Alice'})-[e:knows*0..1]->(p2) RETURN *"
        )
        edge = handler.edges["e"]
        source = SelectAndProjectVertices(figure1_graph, handler.vertices["p1"], set())
        expand = ExpandEmbeddings(
            source, figure1_graph, edge, HOMO, ISO, closing=False
        )
        rows = {
            (e.raw_id_at(0), tuple(g.value for g in e.path_at(1)), e.raw_id_at(2))
            for e in expand.evaluate().collect()
        }
        assert (10, (), 10) in rows  # zero-length path: p2 = p1
        assert (10, (5,), 20) in rows
        assert len(rows) == 2

    def test_zero_length_rejected_under_vertex_iso(self, figure1_graph):
        handler = QueryHandler(
            "MATCH (p1:Person {name: 'Alice'})-[e:knows*0..1]->(p2) RETURN *"
        )
        edge = handler.edges["e"]
        source = SelectAndProjectVertices(figure1_graph, handler.vertices["p1"], set())
        expand = ExpandEmbeddings(source, figure1_graph, edge, ISO, ISO, closing=False)
        rows = {
            tuple(g.value for g in e.path_at(1)) for e in expand.evaluate().collect()
        }
        assert () not in rows

    def test_requires_variable_length_edge(self, figure1_graph):
        handler = QueryHandler("MATCH (a:Person)-[e:knows]->(b) RETURN *")
        source = SelectAndProjectVertices(figure1_graph, handler.vertices["a"], set())
        with pytest.raises(ValueError):
            ExpandEmbeddings(
                source, figure1_graph, handler.edges["e"], HOMO, ISO, closing=False
            )

    def test_expand_metrics_record_supersteps(self, figure1_graph, env):
        handler = QueryHandler("MATCH (a:Person)-[e:knows*1..3]->(b) RETURN *")
        source = SelectAndProjectVertices(figure1_graph, handler.vertices["a"], set())
        expand = ExpandEmbeddings(
            source, figure1_graph, handler.edges["e"], HOMO, ISO, closing=False
        )
        env.reset_metrics()
        expand.evaluate().collect()
        iterations = {
            run.iteration for run in env.metrics.runs if run.iteration is not None
        }
        assert iterations == {1, 2, 3}

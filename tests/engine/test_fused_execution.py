"""Engine-level contracts of batched/fused execution.

Fusion and the compiled accessors must not change anything observable:
embeddings, tabular rows, and — because the experiment harness reports
simulated runtimes — the recorded metrics (operator runs, shuffle bytes)
must be identical between modes.  Sanitized execution opts out of fusion
entirely; prepared statements re-bind correctly with fusion on.
"""

from collections import Counter

import pytest

import repro.dataflow.fusion as fusion_module
from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner, GraphStatistics
from repro.epgm import LogicalGraph
from tests.conftest import build_figure1_elements

QUERIES = [
    "MATCH (p1:Person)-[s:studyAt]->(u:University) "
    "WHERE s.classYear > 2014 RETURN p1.name, u.name",
    "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(c:Person) "
    "RETURN *",
    "MATCH (p:Person)-[e:knows*1..3]->(q:Person) WHERE p.name = 'Alice' "
    "RETURN *",
    "MATCH (p:Person {name: 'Alice'})-[e:knows*2..2]->(p2:Person) RETURN *",
]


def fresh_graph(**env_kwargs):
    head, vertices, edges = build_figure1_elements()
    return LogicalGraph.from_collections(
        ExecutionEnvironment(parallelism=4, **env_kwargs),
        vertices,
        edges,
        graph_head=head,
    )


def run_query(query, fused):
    graph = fresh_graph()
    runner = CypherRunner(graph, fused=fused)
    with graph.environment.job("probe") as metrics:
        embeddings, meta = runner.execute_embeddings(query)
    return embeddings, meta, metrics


class TestFusedMatchesPerRecord:
    @pytest.mark.parametrize("query", QUERIES)
    def test_embedding_multisets_are_identical(self, query):
        fused, meta_fused, _ = run_query(query, fused=True)
        plain, meta_plain, _ = run_query(query, fused=False)
        assert Counter(fused) == Counter(plain)
        assert meta_fused.variables == meta_plain.variables

    @pytest.mark.parametrize("query", QUERIES)
    def test_metrics_are_bit_identical_between_modes(self, query):
        """The experiment harness depends on this: same runs, same order,
        same shuffle accounting, hence the same simulated runtime."""
        _, _, fused_metrics = run_query(query, fused=True)
        _, _, plain_metrics = run_query(query, fused=False)
        assert fused_metrics.runs == plain_metrics.runs
        assert (
            fused_metrics.total_shuffled_bytes
            == plain_metrics.total_shuffled_bytes
        )

    def test_simulated_runtime_is_mode_independent(self):
        runtimes = []
        for fused in (True, False):
            graph = fresh_graph()
            runner = CypherRunner(graph, fused=fused)
            with graph.environment.job("probe") as metrics:
                runner.execute_embeddings(QUERIES[1])
            runtimes.append(
                graph.environment.simulated_runtime_seconds(metrics)
            )
        assert runtimes[0] == runtimes[1]


class TestSanitizerForcesPerRecord:
    def test_sanitized_execution_never_plans_fusion(self, monkeypatch):
        graph = fresh_graph(fusion=True)
        runner = CypherRunner(graph, sanitize=True)
        # compile first: statistics collection is an ordinary (fused)
        # dataflow job and may plan fusion freely — only the sanitized
        # *query execution* must stay per-record
        _, root = runner.compile(QUERIES[0])

        def explode(*args, **kwargs):
            raise AssertionError("fusion pass ran during sanitized execution")

        monkeypatch.setattr(fusion_module, "plan_fusion", explode)
        embeddings = root.evaluate().collect(fused=runner.execution_fused())
        assert len(embeddings) == 2
        assert runner.last_sanitizer.checked >= len(embeddings)

    def test_unsanitized_execution_does_plan_fusion(self, monkeypatch):
        graph = fresh_graph(fusion=True)
        runner = CypherRunner(graph)
        _, root = runner.compile(QUERIES[0])
        calls = []
        real = fusion_module.plan_fusion

        def spy(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(fusion_module, "plan_fusion", spy)
        root.evaluate().collect(fused=runner.execution_fused())
        assert calls

    def test_explain_analyze_matches_under_sanitizer(self):
        graph = fresh_graph(fusion=True)
        runner = CypherRunner(graph, sanitize=True)
        text = runner.explain_analyze(QUERIES[0])
        assert "actual=2" in text


class TestPlanReuseUnderFusion:
    def test_prepared_statement_rebinds_with_fusion_on(self):
        graph = fresh_graph(fusion=True)
        statement = CypherRunner(graph).prepare(
            "MATCH (p:Person {name: $who}) RETURN p.name"
        )
        for name in ("Alice", "Bob", "Alice"):
            rows = statement.execute_table({"who": name})
            assert rows == [{"p.name": name}]
        assert statement.executions == 3

    def test_prepared_var_length_rebinds_with_fusion_on(self):
        # the expansion's supersteps must re-run per binding, fused or not
        graph = fresh_graph(fusion=True)
        statement = CypherRunner(graph).prepare(
            "MATCH (p:Person {name: $who})-[e:knows*2..2]->(q:Person) "
            "RETURN *"
        )
        alice = statement.execute_table({"who": "Alice"})
        bob = statement.execute_table({"who": "Bob"})
        assert sorted(row["e"] for row in alice) == [[5, 20, 6], [5, 20, 7]]
        assert alice != bob

    def test_prepared_rebind_across_reset_matches_differential(self):
        # one prepared plan, rebound per execution, with a forced reset()
        # in between so the fused chains are rebuilt from scratch; every
        # binding must agree with the fusion differential check on the
        # equivalent literal query (fused vs. per-record, all planners)
        from repro.analysis import fusion_differential_check

        graph = fresh_graph(fusion=True)
        statistics = GraphStatistics.from_graph(graph)
        runner = CypherRunner(graph, statistics=statistics)
        statement = runner.prepare(
            "MATCH (p:Person {name: $who})-[e:knows]->(q:Person) RETURN *"
        )
        for name in ("Alice", "Eve", "Alice"):
            first, _ = statement.execute_embeddings({"who": name})
            statement.root.reset()
            rebuilt, _ = statement.execute_embeddings({"who": name})
            assert Counter(rebuilt) == Counter(first)
            literal = (
                "MATCH (p:Person {name: '%s'})-[e:knows]->(q:Person) "
                "RETURN *" % name
            )
            report = fusion_differential_check(
                graph, literal, statistics=statistics
            )
            assert report.clean, [str(d) for d in report.diagnostics]
            plain, _ = CypherRunner(
                graph, statistics=statistics, fused=False
            ).execute_embeddings(literal)
            assert Counter(first) == Counter(plain)
        assert statement.executions == 6

    def test_reset_then_reexecute_is_stable(self):
        graph = fresh_graph(fusion=True)
        runner = CypherRunner(graph)
        _, root = runner.compile(QUERIES[1])
        first = root.evaluate().collect()
        root.reset()
        assert Counter(root.evaluate().collect()) == Counter(first)

    def test_plan_cached_across_modes_by_runner_settings(self):
        # one graph, two runners sharing the plan cache: toggling fused
        # must not poison results (the fusion rewrite never mutates plans)
        graph = fresh_graph()
        statistics = GraphStatistics.from_graph(graph)
        fused_runner = CypherRunner(graph, statistics=statistics, fused=True)
        plain_runner = CypherRunner(
            graph,
            statistics=statistics,
            fused=False,
            plan_cache=fused_runner.plan_cache,
        )
        fused_rows = fused_runner.execute_table(QUERIES[0])
        plain_rows = plain_runner.execute_table(QUERIES[0])
        assert sorted(r["p1.name"] for r in fused_rows) == sorted(
            r["p1.name"] for r in plain_rows
        )

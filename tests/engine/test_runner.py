"""Tests for CypherRunner and the graph.cypher() operator."""


from repro.engine import CypherRunner, MatchStrategy
from repro.epgm import PropertyValue


class TestExecuteTable:
    def test_paper_table_2a(self, figure1_graph):
        """§2.5 example: persons studying somewhere with classYear > 2014."""
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p1:Person)-[s:studyAt]->(u:University) "
            "WHERE s.classYear > 2014 RETURN p1.name, u.name"
        )
        assert sorted(r["p1.name"] for r in rows) == ["Alice", "Eve"]
        assert all(r["u.name"] == "Uni Leipzig" for r in rows)

    def test_alias(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) RETURN p.name AS who"
        )
        assert {"who"} == set(rows[0])

    def test_distinct(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person)-[s:studyAt]->(u:University) RETURN DISTINCT u.name"
        )
        assert rows == [{"u.name": "Uni Leipzig"}]

    def test_limit(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person) RETURN p.name LIMIT 2"
        )
        assert len(rows) == 2

    def test_return_star_binds_variables(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person {name: 'Alice'})-[s:studyAt]->(u) RETURN *"
        )
        assert rows == [{"p": 10, "s": 3, "u": 40}]

    def test_return_variable_ref(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p:Person {name: 'Alice'}) RETURN p"
        )
        assert rows == [{"p": 10}]

    def test_path_binding_in_star(self, figure1_graph):
        rows = CypherRunner(figure1_graph).execute_table(
            "MATCH (p1:Person {name: 'Alice'})-[e:knows*2..2]->(p2:Person) RETURN *"
        )
        # vertex HOMO admits the round trip [5, 20, 6] back to Alice too
        assert sorted(row["e"] for row in rows) == [[5, 20, 6], [5, 20, 7]]


class TestExecuteCollection:
    def test_returns_graph_collection(self, figure1_graph):
        collection = figure1_graph.cypher(
            "MATCH (p:Person)-[s:studyAt]->(u:University) "
            "WHERE s.classYear > 2014 RETURN *"
        )
        assert collection.graph_count() == 2

    def test_definition_2_4_membership(self, figure1_graph):
        """Matched elements join the result logical graphs."""
        collection = figure1_graph.cypher(
            "MATCH (p:Person {name: 'Alice'})-[s:studyAt]->(u) RETURN *"
        )
        graph = collection.graphs()[0]
        names = {v.get_property("name").raw() for v in graph.collect_vertices()}
        assert names == {"Alice", "Uni Leipzig"}
        assert [e.label for e in graph.collect_edges()] == ["studyAt"]

    def test_bindings_attached_to_head(self, figure1_graph):
        collection = figure1_graph.cypher(
            "MATCH (p:Person {name: 'Alice'})-[s:studyAt]->(u) RETURN *"
        )
        head = collection.collect_graph_heads()[0]
        assert head.get_property("p").raw() == 10
        assert head.get_property("s").raw() == 3
        assert head.get_property("u").raw() == 40

    def test_property_bindings_attached(self, figure1_graph):
        collection = figure1_graph.cypher(
            "MATCH (p:Person)-[s:studyAt]->(u) WHERE p.name = 'Alice' RETURN p.name"
        )
        head = collection.collect_graph_heads()[0]
        assert head.get_property("p.name") == PropertyValue("Alice")

    def test_bindings_can_be_disabled(self, figure1_graph):
        collection = figure1_graph.cypher(
            "MATCH (p:Person {name: 'Alice'}) RETURN *", attach_bindings=False
        )
        head = collection.collect_graph_heads()[0]
        assert len(head.properties) == 0

    def test_path_elements_join_result_graph(self, figure1_graph):
        collection = figure1_graph.cypher(
            "MATCH (p1:Person {name: 'Alice'})-[e:knows*2..2]->(p2:Person) RETURN *",
            vertex_strategy=MatchStrategy.ISOMORPHISM,
        )
        graph = collection.graphs()[0]
        names = {v.get_property("name").raw() for v in graph.collect_vertices()}
        assert names == {"Alice", "Eve", "Bob"}  # Eve is path-internal
        edge_ids = {e.id.value for e in graph.collect_edges()}
        assert edge_ids == {5, 7}

    def test_no_matches_yields_empty_collection(self, figure1_graph):
        collection = figure1_graph.cypher(
            "MATCH (p:Person {name: 'Nobody'}) RETURN *"
        )
        assert collection.graph_count() == 0

    def test_strategies_change_results(self, figure1_graph):
        query = (
            "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(c:Person) RETURN *"
        )
        homo = figure1_graph.cypher(query, vertex_strategy=MatchStrategy.HOMOMORPHISM)
        iso = figure1_graph.cypher(query, vertex_strategy=MatchStrategy.ISOMORPHISM)
        assert homo.graph_count() == 6
        assert iso.graph_count() == 2


class TestExplain:
    def test_explain_mentions_operators(self, figure1_graph):
        text = CypherRunner(figure1_graph).explain(
            "MATCH (p:Person)-[e:knows*1..3]->(q:Person) WHERE p.name = 'Alice' RETURN *"
        )
        assert "ExpandEmbeddings" in text
        assert "SelectAndProjectVertices" in text

    def test_statistics_reused(self, figure1_graph):
        from repro.engine import GraphStatistics

        stats = GraphStatistics.from_graph(figure1_graph)
        runner = CypherRunner(figure1_graph, statistics=stats)
        assert runner.statistics is stats

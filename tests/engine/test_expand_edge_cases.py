"""Edge-case coverage for variable-length path expansion.

Exercises the planner paths that pick reverse and closing expansions, and
undirected variable-length edges — each cross-checked against the naive
matcher.
"""

import pytest

from repro.engine import (
    CypherRunner,
    MatchStrategy,
    NaiveMatcher,
    canonical_rows_from_embeddings,
)


def _check(graph, query, vertex_strategy=None, edge_strategy=None):
    kwargs = {}
    if vertex_strategy:
        kwargs["vertex_strategy"] = vertex_strategy
    if edge_strategy:
        kwargs["edge_strategy"] = edge_strategy
    runner = CypherRunner(graph, **kwargs)
    embeddings, meta = runner.execute_embeddings(query)
    engine_rows = sorted(canonical_rows_from_embeddings(embeddings, meta))
    naive_rows = sorted(NaiveMatcher(graph, **kwargs).match(query))
    assert engine_rows == naive_rows, query
    return engine_rows, runner


class TestReverseExpansion:
    def test_selective_target_triggers_reverse(self, figure1_graph):
        """Only the path target has predicates: the planner must expand
        backwards from it."""
        query = "MATCH (p1)-[e:knows*1..3]->(p2:Person {name: 'Bob'}) RETURN *"
        rows, runner = _check(figure1_graph, query)
        assert rows  # Alice and Eve can reach Bob
        assert "reverse" in runner.explain(query)

    def test_reverse_path_order_is_source_to_target(self, figure1_graph):
        query = "MATCH (p1)-[e:knows*2..2]->(p2:Person {name: 'Bob'}) RETURN *"
        runner = CypherRunner(
            figure1_graph, vertex_strategy=MatchStrategy.ISOMORPHISM
        )
        embeddings, meta = runner.execute_embeddings(query)
        paths = {
            tuple(g.value for g in e.path_at(meta.entry_column("e")))
            for e in embeddings
        }
        # Alice -> Eve -> Bob must read [5, 20, 7], not reversed
        assert (5, 20, 7) in paths

    def test_reverse_with_hop_predicates(self, figure1_graph):
        query = (
            "MATCH (p1)-[e:studyAt*1..1]->(u:University {name: 'Uni Leipzig'}) "
            "WHERE e.classYear > 2014 RETURN *"
        )
        rows, _ = _check(figure1_graph, query)
        assert len(rows) == 2  # Alice and Eve; Bob's 2014 hop filtered


class TestClosingExpansion:
    def test_cycle_through_fixed_edge(self, figure1_graph):
        """(a)-[e1]->(b) then b ~~> a by a variable-length path."""
        query = (
            "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows*1..2]->(a) "
            "RETURN *"
        )
        rows, runner = _check(figure1_graph, query)
        assert rows
        assert "closing" in runner.explain(query)

    def test_self_loop_variable_length(self, figure1_graph):
        """(a) back to itself within two hops (homomorphism)."""
        query = "MATCH (a:Person)-[e:knows*2..2]->(a) RETURN *"
        rows, _ = _check(figure1_graph, query)
        # 10->20->10, 20->10->20, 20->30->20, 30->20->30
        assert len(rows) == 4

    def test_closing_respects_edge_iso(self, figure1_graph):
        query = "MATCH (a:Person)-[e:knows*2..2]->(a) RETURN *"
        rows, _ = _check(
            figure1_graph,
            query,
            edge_strategy=MatchStrategy.ISOMORPHISM,
        )
        # the out-and-back pairs use two distinct edges: still 4
        assert len(rows) == 4


class TestUndirectedVariableLength:
    def test_undirected_expansion(self, figure1_graph):
        query = "MATCH (a:Person {name: 'Alice'})-[e:knows*1..1]-(b) RETURN *"
        rows, _ = _check(figure1_graph, query)
        # edges 5 (out) and 6 (in) both connect Alice and Eve
        assert len(rows) == 2

    def test_undirected_two_hops(self, figure1_graph):
        query = "MATCH (a:City)-[e:isLocatedIn*2..2]-(b) RETURN *"
        rows, _ = _check(figure1_graph, query)
        # city -(isLocatedIn)- university: only one such edge, so no 2-hop
        # path under edge iso
        assert rows == []


class TestBounds:
    @pytest.mark.parametrize("lower,upper", [(0, 0), (0, 3), (2, 2), (3, 3)])
    def test_various_bounds_vs_naive(self, figure1_graph, lower, upper):
        query = (
            "MATCH (a:Person {name: 'Alice'})-[e:knows*%d..%d]->(b) RETURN *"
            % (lower, upper)
        )
        _check(figure1_graph, query)

    def test_zero_zero_binds_target_to_source(self, figure1_graph):
        query = "MATCH (a:Person {name: 'Alice'})-[e:knows*0..0]->(b) RETURN *"
        rows, _ = _check(figure1_graph, query)
        assert len(rows) == 1
        row = dict(rows[0])
        assert row["a"] == row["b"] == 10

    def test_unbounded_defaults_applied(self, figure1_graph):
        from repro.cypher import DEFAULT_UPPER_BOUND

        query = "MATCH (a:Person {name: 'Alice'})-[e:knows*]->(b) RETURN *"
        runner = CypherRunner(figure1_graph)
        handler, _ = runner.compile(query)
        assert handler.edges["e"].upper == DEFAULT_UPPER_BOUND


class TestTwoVariableLengthEdges:
    def test_chained_expansions(self, figure1_graph):
        query = (
            "MATCH (a:Person {name: 'Alice'})-[e1:knows*1..1]->(b:Person),"
            " (b)-[e2:knows*1..2]->(c:Person) RETURN *"
        )
        _check(figure1_graph, query)

    def test_edge_iso_across_paths(self, figure1_graph):
        query = (
            "MATCH (a:Person)-[e1:knows*1..1]->(b:Person),"
            " (b)-[e2:knows*1..1]->(a) RETURN *"
        )
        homo_rows, _ = _check(
            figure1_graph, query, edge_strategy=MatchStrategy.HOMOMORPHISM
        )
        iso_rows, _ = _check(
            figure1_graph, query, edge_strategy=MatchStrategy.ISOMORPHISM
        )
        assert len(iso_rows) <= len(homo_rows)

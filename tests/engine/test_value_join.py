"""Tests for JoinEmbeddingsOnProperty and its planner integration."""

import pytest

from repro.engine import CypherRunner, NaiveMatcher, canonical_rows_from_embeddings
from repro.epgm import GradoopId, LogicalGraph, Vertex


@pytest.fixture
def people_graph(env):
    vertices = [
        Vertex(GradoopId(1), "Person", {"name": "Ann", "city": "Leipzig"}),
        Vertex(GradoopId(2), "Person", {"name": "Ben", "city": "Leipzig"}),
        Vertex(GradoopId(3), "Person", {"name": "Cid", "city": "Dresden"}),
        Vertex(GradoopId(4), "Person", {"name": "Dot"}),  # no city
        Vertex(GradoopId(5), "Tag", {"name": "Leipzig"}),
    ]
    return LogicalGraph.from_collections(env, vertices, [])


QUERY = (
    "MATCH (a:Person), (b:Person) WHERE a.city = b.city RETURN a.name, b.name"
)


class TestPlannerIntegration:
    def test_planner_uses_value_join(self, people_graph):
        runner = CypherRunner(people_graph)
        assert "JoinEmbeddingsOnProperty" in runner.explain(QUERY)
        assert "Cartesian" not in runner.explain(QUERY)

    def test_results_match_naive(self, people_graph):
        embeddings, meta = CypherRunner(people_graph).execute_embeddings(QUERY)
        engine_rows = sorted(canonical_rows_from_embeddings(embeddings, meta))
        naive_rows = sorted(NaiveMatcher(people_graph).match(QUERY))
        assert engine_rows == naive_rows

    def test_null_never_joins(self, people_graph):
        """Dot has no city: NULL = NULL must not match (Cypher ternary)."""
        rows = CypherRunner(people_graph).execute_table(QUERY)
        names = {row["a.name"] for row in rows}
        assert "Dot" not in names

    def test_same_vertex_joins_with_itself_under_homo(self, people_graph):
        rows = CypherRunner(people_graph).execute_table(QUERY)
        # Ann-Ann, Ann-Ben, Ben-Ann, Ben-Ben, Cid-Cid
        assert len(rows) == 5

    def test_vertex_iso_excludes_self_pairs(self, people_graph):
        from repro.engine import MatchStrategy

        runner = CypherRunner(
            people_graph, vertex_strategy=MatchStrategy.ISOMORPHISM
        )
        rows = runner.execute_table(QUERY)
        assert len(rows) == 2  # Ann-Ben and Ben-Ann

    def test_cross_label_value_join(self, people_graph):
        """Person.city = Tag.name — value joins work across labels."""
        query = (
            "MATCH (p:Person), (t:Tag) WHERE p.city = t.name "
            "RETURN p.name, t.name"
        )
        rows = CypherRunner(people_graph).execute_table(query)
        assert sorted(row["p.name"] for row in rows) == ["Ann", "Ben"]

    def test_inequality_still_uses_cartesian(self, people_graph):
        query = "MATCH (a:Person), (b:Person) WHERE a.city <> b.city RETURN *"
        runner = CypherRunner(people_graph)
        assert "Cartesian" in runner.explain(query)
        embeddings, meta = runner.execute_embeddings(query)
        assert sorted(canonical_rows_from_embeddings(embeddings, meta)) == sorted(
            NaiveMatcher(people_graph).match(query)
        )

    def test_numeric_cross_type_join(self, env):
        vertices = [
            Vertex(GradoopId(1), "A", {"v": 2}),
            Vertex(GradoopId(2), "B", {"v": 2.0}),
            Vertex(GradoopId(3), "B", {"v": 3}),
        ]
        graph = LogicalGraph.from_collections(env, vertices, [])
        rows = CypherRunner(graph).execute_table(
            "MATCH (a:A), (b:B) WHERE a.v = b.v RETURN b"
        )
        assert [row["b"] for row in rows] == [2]  # int 2 joins float 2.0

    def test_shuffle_cheaper_than_cartesian(self, people_graph):
        """The whole point: no full replication of one side."""
        env = people_graph.environment
        runner = CypherRunner(people_graph)

        env.reset_metrics("value-join")
        runner.execute_embeddings(QUERY)
        value_join_bytes = env.metrics.total_shuffled_bytes

        query = "MATCH (a:Person), (b:Person) WHERE a.city <> b.city RETURN *"
        env.reset_metrics("cartesian")
        runner.execute_embeddings(query)
        cartesian_bytes = env.metrics.total_shuffled_bytes

        assert value_join_bytes < cartesian_bytes

"""Property-based tests for the embedding structure (paper §3.3).

A model-based check: we mirror every embedding operation on a plain
Python model (lists of ids/paths/properties) and require the byte-level
structure to agree after arbitrary operation sequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Embedding
from repro.epgm import GradoopId, PropertyValue

_ids = st.integers(min_value=0, max_value=2**40)
_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-1000, 1000),
    st.text(max_size=12),
)
_paths = st.lists(_ids, max_size=6)

_operations = st.lists(
    st.one_of(
        st.tuples(st.just("id"), _ids),
        st.tuples(st.just("path"), _paths),
        st.tuples(st.just("props"), st.lists(_values, max_size=3)),
    ),
    max_size=8,
)


def _apply(operations):
    """Build both the embedding and its reference model."""
    embedding = Embedding()
    columns = []  # model: ('id', v) or ('path', [ids])
    props = []
    for kind, payload in operations:
        if kind == "id":
            embedding = embedding.append_id(GradoopId(payload))
            columns.append(("id", payload))
        elif kind == "path":
            embedding = embedding.append_path([GradoopId(v) for v in payload])
            columns.append(("path", list(payload)))
        else:
            embedding = embedding.append_properties(
                [PropertyValue(v) for v in payload]
            )
            props.extend(payload)
    return embedding, columns, props


def _check(embedding, columns, props):
    assert embedding.column_count == len(columns)
    for index, (kind, payload) in enumerate(columns):
        if kind == "id":
            assert embedding.raw_id_at(index) == payload
        else:
            assert [g.value for g in embedding.path_at(index)] == payload
    assert embedding.property_count == len(props)
    assert [p.raw() for p in embedding.properties()] == props


@settings(max_examples=200, deadline=None)
@given(operations=_operations)
def test_operation_sequences_match_model(operations):
    _check(*_apply(operations))


@settings(max_examples=150, deadline=None)
@given(left_ops=_operations, right_ops=_operations)
def test_merge_matches_model(left_ops, right_ops):
    left, left_columns, left_props = _apply(left_ops)
    right, right_columns, right_props = _apply(right_ops)
    merged = left.merge(right)
    _check(merged, left_columns + right_columns, left_props + right_props)


@settings(max_examples=150, deadline=None)
@given(
    left_ops=_operations,
    right_ops=_operations,
    drop_seed=st.integers(0, 2**16),
)
def test_merge_with_drops_matches_model(left_ops, right_ops, drop_seed):
    left, left_columns, left_props = _apply(left_ops)
    right, right_columns, right_props = _apply(right_ops)
    drop = {
        column
        for column in range(len(right_columns))
        if (drop_seed >> column) & 1
    }
    merged = left.merge(right, drop_columns=drop)
    kept = [c for i, c in enumerate(right_columns) if i not in drop]
    _check(merged, left_columns + kept, left_props + right_props)


@settings(max_examples=100, deadline=None)
@given(operations=_operations)
def test_serialized_size_is_total_bytes(operations):
    embedding, _, _ = _apply(operations)
    assert embedding.serialized_size() == (
        len(embedding.id_data)
        + len(embedding.path_data)
        + len(embedding.prop_data)
    )


@settings(max_examples=100, deadline=None)
@given(left_ops=_operations, mid_ops=_operations, right_ops=_operations)
def test_merge_is_associative_without_drops(left_ops, mid_ops, right_ops):
    a, _, _ = _apply(left_ops)
    b, _, _ = _apply(mid_ops)
    c, _, _ = _apply(right_ops)
    assert a.merge(b).merge(c) == a.merge(b.merge(c))

"""Pickle round-trips for objects that cross the process boundary.

The worker runtime ships plan state between processes with standard
pickling, so :class:`GraphStatistics` (including the per-label degree
maps) and :class:`CostCertificate` must survive a round-trip unchanged
— and the legacy persistence dict (written before the degree maps
existed) must keep loading.
"""

import pickle

from repro.analysis.costbound import CostCertificate, OperatorBound
from repro.dataflow import ExecutionEnvironment
from repro.engine import GraphStatistics
from repro.epgm import LogicalGraph
from tests.conftest import build_figure1_elements


def _figure1_statistics():
    head, vertices, edges = build_figure1_elements()
    graph = LogicalGraph.from_collections(
        ExecutionEnvironment(), vertices, edges, graph_head=head
    )
    return GraphStatistics.from_graph(graph)


def test_graph_statistics_pickle_roundtrip():
    statistics = _figure1_statistics()
    assert statistics.max_out_degree_by_label  # PR 7 per-label maps exist
    assert statistics.max_in_degree_by_label
    rebuilt = pickle.loads(pickle.dumps(statistics))
    assert rebuilt.to_dict() == statistics.to_dict()
    assert rebuilt.version == statistics.version
    # the per-label degree maps survive and stay independently mutable
    assert rebuilt.max_out_degree_by_label == (
        statistics.max_out_degree_by_label
    )
    rebuilt.max_out_degree_by_label["knows"] = 999
    assert statistics.max_out_degree_by_label.get("knows") != 999


def test_graph_statistics_legacy_dict_fallback():
    statistics = _figure1_statistics()
    legacy = statistics.to_dict()
    del legacy["max_out_degree_by_label"]
    del legacy["max_in_degree_by_label"]
    loaded = GraphStatistics.from_dict(legacy)
    assert loaded.max_out_degree_by_label is None
    assert loaded.max_in_degree_by_label is None
    # degree lookups fall back to the global counts without the maps
    assert loaded.max_out_degree(["knows"]) >= 0
    rebuilt = pickle.loads(pickle.dumps(loaded))
    assert rebuilt.to_dict() == loaded.to_dict()
    assert rebuilt.max_out_degree_by_label is None


def test_cost_certificate_pickle_roundtrip():
    certificate = CostCertificate(
        [
            OperatorBound("scan[Person]", 120, 40),
            OperatorBound("join[knows]", 1440, 64),
        ],
        statistics_version=3,
    )
    rebuilt = pickle.loads(pickle.dumps(certificate))
    assert rebuilt.statistics_version == 3
    assert rebuilt.max_cardinality_bound == certificate.max_cardinality_bound
    assert rebuilt.total_bytes_bound == certificate.total_bytes_bound
    assert [
        (r.operator, r.cardinality_bound, r.bytes_bound)
        for r in rebuilt.records
    ] == [
        (r.operator, r.cardinality_bound, r.bytes_bound)
        for r in certificate.records
    ]
    assert rebuilt.admissible(2000) and not rebuilt.admissible(1000)

"""Tests for shared leaf scans (recurring-subquery reuse, paper §5)."""


from repro.cypher import QueryHandler
from repro.engine import (
    CypherRunner,
    GraphStatistics,
    GreedyPlanner,
    canonical_rows_from_embeddings,
)

TRIANGLE = (
    "MATCH (p1:Person)-[:knows]->(p2:Person),"
    " (p2)-[:knows]->(p3:Person), (p1)-[:knows]->(p3) RETURN *"
)


class _NoReusePlanner(GreedyPlanner):
    def __init__(self, *args, **kwargs):
        kwargs["reuse_leaf_scans"] = False
        super().__init__(*args, **kwargs)


def _run(figure1_graph, planner_cls):
    env = figure1_graph.environment
    runner = CypherRunner(figure1_graph, planner_cls=planner_cls)
    env.reset_metrics("triangle")
    embeddings, meta = runner.execute_embeddings(TRIANGLE)
    scans = [
        run
        for run in env.metrics.runs
        if run.name.startswith("SelectAndProjectEdges")
    ]
    return embeddings, meta, scans


def test_triangle_scans_knows_once_with_reuse(figure1_graph):
    _, _, scans = _run(figure1_graph, GreedyPlanner)
    assert len(scans) == 1  # three query edges, one shared scan


def test_triangle_scans_three_times_without_reuse(figure1_graph):
    _, _, scans = _run(figure1_graph, _NoReusePlanner)
    assert len(scans) == 3


def test_reuse_does_not_change_results(figure1_graph):
    shared, shared_meta, _ = _run(figure1_graph, GreedyPlanner)
    separate, separate_meta, _ = _run(figure1_graph, _NoReusePlanner)
    assert sorted(canonical_rows_from_embeddings(shared, shared_meta)) == sorted(
        canonical_rows_from_embeddings(separate, separate_meta)
    )


def test_different_predicates_not_shared(figure1_graph):
    """Edges with different pushed-down predicates keep separate scans."""
    query = (
        "MATCH (a:Person)-[s1:studyAt]->(u), (b:Person)-[s2:studyAt]->(u) "
        "WHERE s1.classYear > 2014 RETURN *"
    )
    env = figure1_graph.environment
    runner = CypherRunner(figure1_graph)
    env.reset_metrics("q")
    runner.execute_embeddings(query)
    scans = [
        run
        for run in env.metrics.runs
        if run.name.startswith("SelectAndProjectEdges")
    ]
    assert len(scans) == 2


def test_vertex_leaves_shared(figure1_graph):
    """Two identically-predicated Person leaves share one scan."""
    query = (
        "MATCH (a:Person), (b:Person) WHERE a.gender <> b.gender RETURN *"
    )
    env = figure1_graph.environment
    runner = CypherRunner(figure1_graph)
    env.reset_metrics("q")
    rows = runner.execute_table(query)
    scans = [
        run
        for run in env.metrics.runs
        if run.name.startswith("SelectAndProjectVertices")
    ]
    assert len(scans) == 1
    assert len(rows) == 4  # (Alice,Bob), (Eve,Bob) and the two reverses


def test_signature_distinguishes_property_keys(figure1_graph):
    """Same labels but different projected keys -> separate datasets."""
    handler = QueryHandler(
        "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a.name, b.gender"
    )
    stats = GraphStatistics.from_graph(figure1_graph)
    planner = GreedyPlanner(figure1_graph, handler, stats)
    planner.plan()
    signatures = list(planner._leaf_dataset_cache)
    vertex_signatures = [s for s in signatures if s[0] == "v"]
    assert len(vertex_signatures) == 2

"""Round-trip tests for persisted graph statistics."""

import os

from repro.engine import GraphStatistics


def test_dict_roundtrip(figure1_graph):
    stats = GraphStatistics.from_graph(figure1_graph)
    restored = GraphStatistics.from_dict(stats.to_dict())
    assert restored.to_dict() == stats.to_dict()


def test_json_roundtrip(figure1_graph, tmp_path):
    stats = GraphStatistics.from_graph(figure1_graph)
    path = os.path.join(str(tmp_path), "stats.json")
    stats.write_json(path)
    restored = GraphStatistics.read_json(path)
    assert restored.vertex_count == stats.vertex_count
    assert restored.edge_count_by_label == stats.edge_count_by_label
    assert restored.distinct_source_by_label == stats.distinct_source_by_label


def test_restored_statistics_drive_planner(figure1_graph, tmp_path):
    from repro.engine import CypherRunner

    stats = GraphStatistics.from_graph(figure1_graph)
    path = os.path.join(str(tmp_path), "stats.json")
    stats.write_json(path)
    runner = CypherRunner(figure1_graph, statistics=GraphStatistics.read_json(path))
    rows = runner.execute_table("MATCH (p:Person) RETURN count(*) AS n")
    assert rows == [{"n": 3}]

"""Tests for cardinality estimation and the greedy planner."""

import pytest

from repro.cypher import QueryHandler
from repro.engine import (
    CardinalityEstimator,
    GraphStatistics,
    GreedyPlanner,
    LeftDeepPlanner,
    MatchStrategy,
)
from repro.engine.planning.estimation import (
    EQUALITY_SELECTIVITY,
    predicate_selectivity,
)


@pytest.fixture
def stats(figure1_graph):
    return GraphStatistics.from_graph(figure1_graph)


class TestEstimation:
    def test_vertex_cardinality_uses_label_counts(self, stats):
        estimator = CardinalityEstimator(stats)
        handler = QueryHandler("MATCH (p:Person) RETURN *")
        assert estimator.vertex_cardinality(handler.vertices["p"]) == 3

    def test_equality_predicate_scales_down(self, stats):
        estimator = CardinalityEstimator(stats)
        handler = QueryHandler("MATCH (p:Person {name: 'Alice'}) RETURN *")
        assert estimator.vertex_cardinality(handler.vertices["p"]) == pytest.approx(
            3 * EQUALITY_SELECTIVITY
        )

    def test_edge_cardinality(self, stats):
        estimator = CardinalityEstimator(stats)
        handler = QueryHandler("MATCH (a)-[e:knows]->(b) RETURN *")
        assert estimator.edge_cardinality(handler.edges["e"]) == 4

    def test_undirected_doubles(self, stats):
        estimator = CardinalityEstimator(stats)
        handler = QueryHandler("MATCH (a)-[e:knows]-(b) RETURN *")
        assert estimator.edge_cardinality(handler.edges["e"]) == 8

    def test_join_cardinality_formula(self, stats):
        estimator = CardinalityEstimator(stats)
        assert estimator.join_cardinality(100, 50, 10, 25) == pytest.approx(200.0)

    def test_expand_cardinality_grows_with_upper_bound(self, stats):
        estimator = CardinalityEstimator(stats)
        short = QueryHandler("MATCH (a)-[e:knows*1..1]->(b) RETURN *").edges["e"]
        long = QueryHandler("MATCH (a)-[e:knows*1..5]->(b) RETURN *").edges["e"]
        assert estimator.expand_cardinality(10, long, False) > (
            estimator.expand_cardinality(10, short, False)
        )

    def test_closing_expand_is_cheaper(self, stats):
        estimator = CardinalityEstimator(stats)
        edge = QueryHandler("MATCH (a)-[e:knows*1..3]->(b) RETURN *").edges["e"]
        assert estimator.expand_cardinality(10, edge, True) < (
            estimator.expand_cardinality(10, edge, False)
        )

    def test_label_clauses_not_double_counted(self):
        handler = QueryHandler("MATCH (p:Person) RETURN *")
        assert predicate_selectivity(handler.vertices["p"].predicates) == 1.0


class TestGreedyPlanner:
    def _plan(self, graph, query, planner_cls=GreedyPlanner):
        handler = QueryHandler(query)
        stats = GraphStatistics.from_graph(graph)
        planner = planner_cls(graph, handler, stats)
        return planner.plan()

    def test_single_vertex_query(self, figure1_graph):
        root = self._plan(figure1_graph, "MATCH (p:Person) RETURN *")
        assert len(root.evaluate().collect()) == 3

    def test_single_edge_query(self, figure1_graph):
        root = self._plan(figure1_graph, "MATCH (a:Person)-[e:knows]->(b) RETURN *")
        assert len(root.evaluate().collect()) == 4

    def test_selective_predicate_drives_join_order(self, figure1_graph):
        """The plan containing the equality-filtered vertex is built first."""
        root = self._plan(
            figure1_graph,
            "MATCH (p:Person {name: 'Alice'})-[s:studyAt]->(u:University) RETURN *",
        )
        text = root.explain()
        # the Person leaf must appear in the plan (it has a predicate)
        assert "p:Person" in text
        assert len(root.evaluate().collect()) == 1

    def test_trivial_vertices_bound_by_edge_columns(self, figure1_graph):
        """A predicate-free vertex gets no leaf scan of its own."""
        root = self._plan(figure1_graph, "MATCH (a)-[e:knows]->(b) RETURN *")
        assert "SelectAndProjectVertices" not in root.explain()

    def test_cycle_closes_with_two_column_join(self, figure1_graph):
        root = self._plan(
            figure1_graph,
            "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(a) RETURN *",
        )
        results = root.evaluate().collect()
        # pairs (10,20), (20,10), (20,30), (30,20)
        assert len(results) == 4

    def test_disconnected_pattern_uses_cartesian(self, figure1_graph):
        root = self._plan(
            figure1_graph, "MATCH (p:Person), (c:City) RETURN *"
        )
        assert "Cartesian" in root.explain()
        assert len(root.evaluate().collect()) == 3

    def test_isolated_vertex_combined(self, figure1_graph):
        root = self._plan(
            figure1_graph,
            "MATCH (a:Person)-[e:knows]->(b), (c:City) RETURN *",
        )
        assert len(root.evaluate().collect()) == 4  # 4 knows x 1 city

    def test_variable_length_uses_expand(self, figure1_graph):
        root = self._plan(
            figure1_graph, "MATCH (a:Person)-[e:knows*1..2]->(b:Person) RETURN *"
        )
        assert "ExpandEmbeddings" in root.explain()

    def test_global_predicate_applied(self, figure1_graph):
        root = self._plan(
            figure1_graph,
            "MATCH (a:Person)-[e:knows]->(b:Person) WHERE a.gender <> b.gender RETURN *",
        )
        assert "SelectEmbeddings" in root.explain()
        assert len(root.evaluate().collect()) == 2

    def test_estimates_attached_for_explain(self, figure1_graph):
        root = self._plan(figure1_graph, "MATCH (a:Person)-[e:knows]->(b) RETURN *")
        assert "[est=" in root.explain()

    def test_left_deep_planner_same_results(self, figure1_graph):
        query = (
            "MATCH (p1:Person)-[:knows]->(p2:Person), (p2)<-[:hasCreator]-(c) RETURN *"
        )
        greedy = self._plan(figure1_graph, query)
        naive_order = self._plan(figure1_graph, query, planner_cls=LeftDeepPlanner)
        greedy_rows = {e for e in greedy.evaluate().collect()}
        assert len(greedy.evaluate().collect()) == len(
            naive_order.evaluate().collect()
        )

    def test_strategies_forwarded(self, figure1_graph):
        handler = QueryHandler(
            "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(c:Person) RETURN *"
        )
        stats = GraphStatistics.from_graph(figure1_graph)
        homo = GreedyPlanner(
            figure1_graph, handler, stats,
            vertex_strategy=MatchStrategy.HOMOMORPHISM,
        ).plan()
        iso = GreedyPlanner(
            figure1_graph, handler, stats,
            vertex_strategy=MatchStrategy.ISOMORPHISM,
        ).plan()
        assert len(homo.evaluate().collect()) > len(iso.evaluate().collect())

"""The deterministic interleaving fuzzer: catches the planted race,
misses the fixed version, and reproduces schedules from the seed alone.
"""

import sys
import threading

import pytest

from repro.analysis.concurrency import InterleavingFuzzer
from tests.analysis.planted_race import PlantedCounter

INCREMENTS = 40


def racy_worker(counter, fuzz):
    for _ in range(INCREMENTS):
        counter.increment_racy(fuzz)


def safe_worker(counter, fuzz):
    for _ in range(INCREMENTS):
        counter.increment_safe(fuzz)


def lost_update_invariant(threads):
    expected = threads * INCREMENTS

    def invariant(counter):
        observed = counter.read()
        if observed != expected:
            return "lost updates: %d != %d" % (observed, expected)

    return invariant


def test_planted_race_caught_dynamically():
    fuzzer = InterleavingFuzzer(seed=7, schedules=10, threads=4)
    findings = fuzzer.run(
        setup=PlantedCounter,
        worker=racy_worker,
        invariant=lost_update_invariant(4),
    )
    assert findings, "adversarial schedules failed to lose an update"
    assert findings[0].kind == "invariant"
    assert "lost updates" in findings[0].message


def test_fixed_counter_survives_same_schedules():
    fuzzer = InterleavingFuzzer(seed=7, schedules=10, threads=4)
    findings = fuzzer.run(
        setup=PlantedCounter,
        worker=safe_worker,
        invariant=lost_update_invariant(4),
    )
    assert findings == []


def test_findings_are_deterministic_for_a_seed():
    def run_once():
        fuzzer = InterleavingFuzzer(seed=3, schedules=8, threads=3)
        return [
            (f.schedule, f.kind) for f in fuzzer.run(
                setup=PlantedCounter,
                worker=racy_worker,
                invariant=lost_update_invariant(3),
            )
        ]

    assert run_once() == run_once()


def test_schedule_plans_are_deterministic():
    one = InterleavingFuzzer(seed=12, schedules=5, threads=4)
    two = InterleavingFuzzer(seed=12, schedules=5, threads=4)
    for schedule in range(5):
        ctx_a, interval_a = one._schedule_context(schedule)
        ctx_b, interval_b = two._schedule_context(schedule)
        assert ctx_a.hot_steps == ctx_b.hot_steps
        assert interval_a == interval_b
    # a different seed perturbs the plan
    other = InterleavingFuzzer(seed=13, schedules=5, threads=4)
    assert any(
        one._schedule_context(s)[1] != other._schedule_context(s)[1]
        for s in range(5)
    )


def test_switch_interval_restored_after_run():
    before = sys.getswitchinterval()
    InterleavingFuzzer(seed=1, schedules=3, threads=2).run(
        setup=PlantedCounter, worker=racy_worker,
    )
    assert sys.getswitchinterval() == before


def test_switch_interval_restored_after_worker_crash():
    before = sys.getswitchinterval()

    def crash(_state, _fuzz):
        raise RuntimeError("boom")

    findings = InterleavingFuzzer(seed=1, schedules=2, threads=2).run(
        setup=PlantedCounter, worker=crash,
    )
    assert sys.getswitchinterval() == before
    assert len(findings) == 4  # two threads x two schedules
    assert all(f.kind == "worker" for f in findings)
    assert "boom" in findings[0].message


def test_invariant_assertion_error_becomes_finding():
    def invariant(_counter):
        assert False, "torn snapshot"

    findings = InterleavingFuzzer(seed=2, schedules=1, threads=2).run(
        setup=PlantedCounter, worker=safe_worker, invariant=invariant,
    )
    assert len(findings) == 1
    assert "torn snapshot" in findings[0].message


def test_teardown_runs_per_schedule():
    seen = []
    InterleavingFuzzer(seed=2, schedules=3, threads=2).run(
        setup=PlantedCounter, worker=safe_worker,
        teardown=lambda state: seen.append(state),
    )
    assert len(seen) == 3
    assert len({id(state) for state in seen}) == 3  # fresh state each time


def test_step_outside_bound_thread_is_noop():
    fuzzer = InterleavingFuzzer(seed=0, schedules=1, threads=2)
    context, _interval = fuzzer._schedule_context(0)
    context.step()  # unbound caller: must not blow up or block


def test_trace_records_scheduling_actions():
    fuzzer = InterleavingFuzzer(seed=5, schedules=1, threads=2,
                                yield_rate=1.0)
    context, _ = fuzzer._schedule_context(0)

    def worker(index):
        context.bind(index)
        for _ in range(5):
            context.step()

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    trace = context.trace
    assert trace, "every step should be recorded at yield_rate=1.0"
    assert {action for (_t, _s, action) in trace} <= {"yield", "barrier"}


def test_requires_at_least_two_threads():
    with pytest.raises(ValueError):
        InterleavingFuzzer(threads=1)


@pytest.mark.stress
def test_planted_race_caught_on_every_long_schedule():
    fuzzer = InterleavingFuzzer(seed=29, schedules=60, threads=8,
                                hot_barriers=3)
    findings = fuzzer.run(
        setup=PlantedCounter,
        worker=racy_worker,
        invariant=lost_update_invariant(8),
    )
    # with 8 threads hammering the window, most schedules must lose updates
    assert len(findings) >= 30


@pytest.mark.stress
def test_fixed_counter_survives_long_schedules():
    fuzzer = InterleavingFuzzer(seed=29, schedules=60, threads=8,
                                hot_barriers=3)
    findings = fuzzer.run(
        setup=PlantedCounter,
        worker=safe_worker,
        invariant=lost_update_invariant(8),
    )
    assert findings == []

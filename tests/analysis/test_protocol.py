"""Layer 1 of ``repro wirecheck``: wire-schema extraction and drift.

Corpus snippets pin each W501–W505 diagnostic the way the C3xx corpus
pins racecheck; the planted fixture modules
(:mod:`tests.analysis.wire_fixtures`) must each trip exactly their
code; and the integration tests assert the shipped worker runtime is
drift-free with full vocabulary coverage.
"""

import textwrap

import pytest

from repro.analysis.protocol import wirecheck_paths, wirecheck_sources
from repro.cli import main
from tests.analysis import wire_fixtures


def check(parent=None, worker=None):
    role_sources = {}
    if parent is not None:
        role_sources["parent"] = [
            ("parent.py", textwrap.dedent(parent))
        ]
    if worker is not None:
        role_sources["worker"] = [
            ("worker.py", textwrap.dedent(worker))
        ]
    return wirecheck_sources(role_sources)


def codes(report):
    return [d.code for d in report.diagnostics]


# --- the shipped tree --------------------------------------------------------


def test_shipped_worker_runtime_is_drift_free():
    report = wirecheck_paths()
    assert report.clean, [d.format() for d in report.diagnostics]
    assert report.constructs, "extraction found no construct sites"
    assert report.handlers, "extraction found no handler arms"


def test_shipped_tree_covers_every_declared_tag():
    """Every non-test tag has at least one send site and one arm."""
    from repro.dataflow.workers.messages import PIPES

    report = wirecheck_paths()
    sent = {site.tag for site in report.constructs}
    handled = {arm.tag for arm in report.handlers}
    for pipe in PIPES:
        for tag in pipe.fields:
            assert tag in handled, "no handler arm extracted for %r" % tag
            if tag not in pipe.test_only:
                assert tag in sent, "no send site extracted for %r" % tag


def test_vocabulary_table_lists_pipes_and_test_only():
    report = wirecheck_paths()
    table = report.format_vocabulary()
    assert "request pipe (parent -> worker)" in table
    assert "response pipe (worker -> parent)" in table
    assert "cancel pipe (parent -> worker)" in table
    assert "[test-only]" in table


def test_cli_wirecheck_exits_clean():
    assert main(["wirecheck"]) == 0


def test_cli_wirecheck_capped_exploration_is_warnings_only(capsys):
    # nothing found under a 50-state cap proves nothing — exit 3
    assert main(["wirecheck", "--max-states", "50"]) == 3
    assert "state cap hit" in capsys.readouterr().err


# --- W501: sent but unhandled ------------------------------------------------


def test_w501_only_when_receiver_side_is_analyzed():
    parent = """
        from repro.dataflow.workers.messages import FREE

        def evict(conn, key, part):
            conn.send([(FREE, key, part)])
    """
    # parent alone: the worker side was not analyzed, so no W501
    assert codes(check(parent=parent)) == []
    report = check(parent=parent, worker="def loop(conn):\n    pass\n")
    assert codes(report) == ["W501"]
    assert "'free'" in report.diagnostics[0].message


# --- W502: handled but never sent -------------------------------------------


def test_w502_is_a_warning_and_crash_is_exempt():
    worker = """
        from repro.dataflow.workers.messages import CRASH, FREE

        def handle(message):
            kind = message[0]
            if kind == FREE:
                return "free"
            if kind == CRASH:
                return "crash"
    """
    report = check(parent="def dispatch(conn):\n    pass\n", worker=worker)
    assert codes(report) == ["W502"]  # free is dead, crash is test_only
    assert not report.diagnostics[0].is_error
    assert report.errors == 0 and report.warnings == 1


# --- W503: shape disagreements ----------------------------------------------


def test_w503_wrong_direction_construction():
    worker = """
        from repro.dataflow.workers.messages import SHIP

        def smuggle(conn, key, blob):
            conn.send([(SHIP, key, blob)])
    """
    report = check(worker=worker)
    assert "W503" in codes(report)
    assert "declares parent as its sender" in report.diagnostics[0].message


def test_w503_handler_unpack_arity():
    parent = """
        from repro.dataflow.workers.messages import CHAIN

        def build(conn, job, seq, spec, src):
            conn.send([(CHAIN, job, seq, spec, src)])
    """
    worker = """
        from repro.dataflow.workers.messages import CHAIN

        def handle(message):
            kind = message[0]
            if kind == CHAIN:
                _, job, seq, spec = message
                return job
    """
    report = check(parent=parent, worker=worker)
    assert codes(report) == ["W503"]
    assert "unpacks 4 element(s)" in report.diagnostics[0].message


def test_w503_subscript_lower_bound():
    parent = """
        from repro.dataflow.workers.messages import PJOIN

        def build(conn, job, seq, spec, target):
            conn.send([(PJOIN, job, seq, spec, target)])
    """
    worker = """
        from repro.dataflow.workers.messages import PJOIN

        def handle(message):
            kind = message[0]
            if kind == PJOIN:
                return message[7]
    """
    report = check(parent=parent, worker=worker)
    assert codes(report) == ["W503"]
    assert "indexes element 7" in report.diagnostics[0].message


def test_w503_recv_unpack_arity_on_cancel_pipe():
    parent = """
        from repro.dataflow.workers.messages import CANCEL

        def cancel(conn, job):
            conn.send((CANCEL, job))
    """
    worker = """
        from repro.dataflow.workers.messages import CANCEL

        def drain(conn):
            kind, job, extra = conn.recv()
            if kind == CANCEL:
                return job
    """
    report = check(parent=parent, worker=worker)
    assert codes(report) == ["W503"]
    assert "unpacks 3 element(s)" in report.diagnostics[0].message


# --- W504: unshippable payloads ---------------------------------------------


def test_w504_direct_lambda_field():
    parent = """
        from repro.dataflow.workers.messages import SHIP

        def ship(conn, key):
            conn.send([(SHIP, key, lambda r: r)])
    """
    worker = """
        from repro.dataflow.workers.messages import SHIP

        def handle(message):
            kind = message[0]
            if kind == SHIP:
                _, key, blob = message
    """
    report = check(parent=parent, worker=worker)
    assert codes(report) == ["W504"]
    assert "field 'blob'" in report.diagnostics[0].message


def test_w504_local_lock_through_name():
    parent = """
        import threading
        from repro.dataflow.workers.messages import SHIP

        def ship(conn, key):
            guard = threading.Lock()
            conn.send([(SHIP, key, guard)])
    """
    worker = """
        from repro.dataflow.workers.messages import SHIP

        def handle(message):
            kind = message[0]
            if kind == SHIP:
                _, key, blob = message
    """
    report = check(parent=parent, worker=worker)
    assert codes(report) == ["W504"]
    assert "Lock()" in report.diagnostics[0].message


# --- raw literals stay invisible --------------------------------------------


def test_raw_string_tuples_are_internal_bookkeeping():
    """The soundness convention: only vocabulary constants are wire."""
    parent = """
        def queue_item(seq):
            return ("ok", seq, None, None, None)

        def task_key(ids):
            return ("chain",) + tuple(ids)
    """
    report = check(parent=parent)
    assert codes(report) == []
    assert not report.constructs


# --- planted fixture modules -------------------------------------------------


@pytest.mark.parametrize(
    "fixture", wire_fixtures.SOURCE_FIXTURES,
    ids=lambda m: m.EXPECTED,
)
def test_planted_fixture_trips_exactly_its_code(fixture):
    report = wirecheck_sources({
        "parent": [("planted_parent.py", fixture.PARENT)],
        "worker": [("planted_worker.py", fixture.WORKER)],
    })
    assert sorted({d.code for d in report.diagnostics}) == [
        fixture.EXPECTED
    ], [d.format() for d in report.diagnostics]


# --- W505 corpus -------------------------------------------------------------


def test_w505_requires_the_other_side_to_read():
    parent = """
        INLINE_LIMIT = 1024

        def pack(blob):
            return blob[:INLINE_LIMIT]
    """
    # the worker never reads INLINE_LIMIT: a local constant is fine
    report = check(parent=parent, worker="def handle(m):\n    pass\n")
    assert codes(report) == []
    worker = """
        def unpack(blob):
            return blob[:INLINE_LIMIT]
    """
    report = check(parent=parent, worker=worker)
    assert codes(report) == ["W505"]


# --- entry-point contract ----------------------------------------------------


def test_syntax_error_propagates():
    with pytest.raises(SyntaxError):
        check(parent="def broken(:\n")


# --- W509: record-frame drift -------------------------------------------------


def test_w509_drifted_frame_tag():
    report = check(parent="""
        FORMAT_EMBEDDINGS = b"E"
        FORMAT_CHUNK = b"X"
        FORMAT_PICKLE = b"P"
    """)
    assert codes(report) == ["W509"]
    assert "FORMAT_CHUNK" in report.diagnostics[0].message


def test_w509_undeclared_frame_constant():
    report = check(parent="""
        FORMAT_EMBEDDINGS = b"E"
        FORMAT_CHUNK = b"C"
        FORMAT_PICKLE = b"P"
        FORMAT_ARROW = b"A"
    """)
    assert codes(report) == ["W509"]
    assert "FORMAT_ARROW" in report.diagnostics[0].message


def test_w509_missing_declared_constant():
    report = check(parent="""
        FORMAT_EMBEDDINGS = b"E"
        FORMAT_PICKLE = b"P"
    """)
    assert codes(report) == ["W509"]
    assert "FORMAT_CHUNK" in report.diagnostics[0].message


def test_w509_silent_when_no_formats_defined():
    """Partial-source runs without the codec module stay clean."""
    assert codes(check(parent="def loop(conn):\n    pass\n")) == []


def test_w509_full_frame_set_is_clean():
    assert codes(check(parent="""
        FORMAT_EMBEDDINGS = b"E"
        FORMAT_CHUNK = b"C"
        FORMAT_PICKLE = b"P"
    """)) == []

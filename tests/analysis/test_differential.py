"""Differential checking and the cardinality-estimate audit.

Acceptance: every LDBC paper query (Q1–Q6) executed under sanitized
instrumentation by all three planners returns identical result multisets
with zero sanitizer findings.  Disagreement detection is exercised with a
deliberately broken planner; the audit tests pin the q-error math and the
S211 emission path.
"""

import pytest

from repro.analysis import (
    DifferentialReport,
    PlannerRun,
    audit_estimates,
    compare_runs,
    differential_check,
    q_error,
)
from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner, GraphStatistics, PhysicalOperator
from repro.engine.planning import GreedyPlanner
from repro.harness.queries import ALL_QUERIES, instantiate
from repro.ldbc import LDBCGenerator


@pytest.fixture(scope="module")
def ldbc():
    dataset = LDBCGenerator(scale_factor=0.03, seed=11).generate()
    graph = dataset.to_logical_graph(ExecutionEnvironment())
    return dataset, graph, GraphStatistics.from_graph(graph)


@pytest.mark.parametrize("name", sorted(ALL_QUERIES))
def test_ldbc_queries_agree_across_planners_sanitized(ldbc, name):
    dataset, graph, statistics = ldbc
    query = instantiate(ALL_QUERIES[name], dataset.first_name("medium"))
    report = differential_check(graph, query, statistics=statistics)
    assert report.clean, "%s: %s" % (
        name, [str(d) for d in report.diagnostics]
    )
    assert len({run.row_count for run in report.runs}) == 1
    # the instrumentation really ran: operator boundaries were checked
    assert all(run.checked >= run.row_count for run in report.runs)


def test_report_summary_names_every_planner(ldbc):
    dataset, graph, statistics = ldbc
    query = instantiate(ALL_QUERIES["Q1"], dataset.first_name("medium"))
    report = differential_check(graph, query, statistics=statistics)
    summary = report.summary()
    for run in report.runs:
        assert run.planner in summary
    assert "agree" in summary


class _Dropper(PhysicalOperator):
    """Passes its input through minus one arbitrary row."""

    display = "DropOne"

    def __init__(self, child):
        super().__init__([child])
        self.meta = child.meta
        self.estimated_cardinality = child.estimated_cardinality

    def _build(self):
        dropped = []

        def keep(embedding):
            if not dropped:
                dropped.append(embedding)
                return False
            return True

        return self.children[0].evaluate().filter(keep, name="drop-one")


class _DropOne(GreedyPlanner):
    """A deliberately unsound planner: silently drops one result row."""

    def plan(self):
        return _Dropper(super().plan())


def test_planner_disagreement_is_s210(figure1_graph):
    report = differential_check(
        figure1_graph,
        "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a, b",
        planners=(GreedyPlanner, _DropOne),
    )
    assert not report.agree
    assert not report.clean
    codes = [d.code for d in report.diagnostics]
    assert "S210" in codes
    (disagreement,) = [d for d in report.diagnostics if d.code == "S210"]
    assert "GreedyPlanner" in disagreement.message
    assert "_DropOne" in disagreement.message


def test_compare_runs_reports_missing_and_extra_rows():
    from collections import Counter

    reference = PlannerRun("A", Counter({("x",): 2, ("y",): 1}))
    other = PlannerRun("B", Counter({("x",): 1, ("z",): 1}))
    (diagnostic,) = compare_runs([reference, other])
    assert diagnostic.code == "S210"
    assert "only under A" in diagnostic.message
    assert "only under B" in diagnostic.message
    assert compare_runs([reference, PlannerRun("C", Counter(reference.rows))]) == []


def test_identical_runs_make_a_clean_report():
    from collections import Counter

    runs = [PlannerRun("A", Counter()), PlannerRun("B", Counter())]
    report = DifferentialReport("q", runs, compare_runs(runs))
    assert report.agree and report.clean


class TestEstimateAudit:
    def test_q_error_is_symmetric_and_smoothed(self):
        assert q_error(10, 10) == 1.0
        assert q_error(100, 10) == q_error(10, 100)
        assert q_error(0, 0) == 1.0  # +1 smoothing: no division by zero
        assert q_error(3, 0) == 4.0

    def test_accurate_estimates_stay_quiet(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        audit = runner.audit_estimates(
            "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a"
        )
        assert audit.records
        assert all(record.actual >= 0 for record in audit.records)
        assert audit.diagnostics == []

    def test_off_estimates_emit_s211(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        # nobody is named Nobody: the leaf estimate (selectivity-based)
        # overshoots the actual zero rows
        audit = runner.audit_estimates(
            "MATCH (a:Person) WHERE a.name = 'Nobody' RETURN a",
            max_q_error=1.2,
        )
        assert audit.diagnostics
        assert all(d.code == "S211" for d in audit.diagnostics)
        assert not any(d.is_error for d in audit.diagnostics)
        assert audit.worst.q_error > 1.2

    def test_audit_walks_every_estimated_operator(self, figure1_graph):
        _, root = CypherRunner(figure1_graph).compile(
            "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a"
        )
        audit = audit_estimates(root)

        def count_estimated(operator):
            total = 1 if operator.estimated_cardinality is not None else 0
            return total + sum(count_estimated(c) for c in operator.children)

        assert len(audit.records) == count_estimated(root)

    def test_format_table_lists_operators(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        audit = runner.audit_estimates(
            "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a"
        )
        table = audit.format_table()
        assert "q-err" in table
        assert "JoinEmbeddings" in table

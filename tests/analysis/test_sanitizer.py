"""The embedding sanitizer: corruption fixtures and plan wiring.

Each byte-level corruption class must trigger its *specific* S2xx code —
the sanitizer is only useful if a truncated entry is distinguishable from
a dangling path offset.  The wiring tests assert the attach/reset/detach
lifecycle and that plain execution carries no instrumentation at all.
"""

import struct

import pytest

from repro.analysis import (
    DEFAULT_SAMPLE_EVERY,
    EmbeddingSanitizer,
    SanitizerError,
    validate_embedding,
)
from repro.engine import (
    CypherRunner,
    Embedding,
    EmbeddingMetaData,
    MatchStrategy,
    PhysicalOperator,
)
from repro.epgm import GradoopId

_ENTRY = struct.Struct(">BQ")
_PROP_LEN = struct.Struct(">H")


def codes_of(findings):
    return [code for code, _detail in findings]


@pytest.fixture
def meta():
    return EmbeddingMetaData().with_entry("a", "v").with_entry("b", "v")


@pytest.fixture
def embedding():
    return Embedding.of_ids(GradoopId(1), GradoopId(2))


class TestValidateEmbedding:
    def test_sound_embedding_has_no_findings(self, meta, embedding):
        assert validate_embedding(embedding, meta) == []

    def test_truncated_entry_is_s201(self, meta, embedding):
        corrupt = Embedding(embedding.id_data[:-1])
        assert codes_of(validate_embedding(corrupt, meta)) == ["S201"]

    def test_missing_column_is_s202(self, meta, embedding):
        corrupt = Embedding(embedding.id_data[:9])
        assert "S202" in codes_of(validate_embedding(corrupt, meta))

    def test_unknown_flag_byte_is_s203(self, meta, embedding):
        corrupt = Embedding(bytes([7]) + embedding.id_data[1:])
        assert "S203" in codes_of(validate_embedding(corrupt, meta))

    def test_flag_contradicting_meta_kind_is_s203(self, meta, embedding):
        # a PATH flag in a column the metadata declares as a vertex
        corrupt = Embedding(
            _ENTRY.pack(1, 0) + embedding.id_data[9:], b"\x00\x00\x00\x00"
        )
        assert "S203" in codes_of(validate_embedding(corrupt, meta))

    def test_dangling_path_offset_is_s204(self, meta, embedding):
        with_path = embedding.append_path([GradoopId(5)])
        path_meta = meta.with_entry("p", "p")
        corrupt = Embedding(
            with_path.id_data[:18] + _ENTRY.pack(1, 9999),
            with_path.path_data,
        )
        assert "S204" in codes_of(validate_embedding(corrupt, path_meta))

    def test_path_overrunning_path_data_is_s204(self, meta, embedding):
        with_path = embedding.append_path([GradoopId(5)])
        path_meta = meta.with_entry("p", "p")
        # count says 1 element but its 8 id bytes are cut off
        corrupt = Embedding(with_path.id_data, with_path.path_data[:-4])
        assert "S204" in codes_of(validate_embedding(corrupt, path_meta))

    def test_even_path_element_count_is_s205(self, meta, embedding):
        # via lists are [e1, v1, ..., ek]: always odd (or zero) length
        corrupt = embedding.append_path([GradoopId(5), GradoopId(6)])
        path_meta = meta.with_entry("p", "p")
        assert "S205" in codes_of(validate_embedding(corrupt, path_meta))

    def test_path_outside_declared_bounds_is_s205(self, meta, embedding):
        two_hops = embedding.append_path(
            [GradoopId(5), GradoopId(6), GradoopId(7)]
        )
        path_meta = meta.with_entry("p", "p")
        findings = validate_embedding(
            two_hops, path_meta, path_bounds={"p": (1, 1)}
        )
        assert "S205" in codes_of(findings)
        assert validate_embedding(
            two_hops, path_meta, path_bounds={"p": (1, 2)}
        ) == []

    def test_zero_hop_path_below_lower_bound_is_s205(self, meta, embedding):
        zero_hop = embedding.append_path([])
        path_meta = meta.with_entry("p", "p")
        assert "S205" in codes_of(
            validate_embedding(zero_hop, path_meta, path_bounds={"p": (1, 3)})
        )
        assert validate_embedding(
            zero_hop, path_meta, path_bounds={"p": (0, 3)}
        ) == []

    def test_overlong_prop_length_is_s206(self, meta, embedding):
        prop_meta = meta.with_property("a", "name")
        with_prop = embedding.append_properties(["Alice"])
        # bump the length field past the end of the buffer
        corrupt = Embedding(
            with_prop.id_data,
            b"",
            _PROP_LEN.pack(200) + with_prop.prop_data[2:],
        )
        assert "S206" in codes_of(validate_embedding(corrupt, prop_meta))

    def test_prop_not_consuming_declared_bytes_is_s206(self, meta, embedding):
        prop_meta = meta.with_property("a", "name")
        payload = embedding.append_properties(["Alice"]).prop_data[2:]
        # declared length covers four trailing garbage bytes the
        # deserializer never consumes — the walk silently misaligns
        corrupt = Embedding(
            embedding.id_data,
            b"",
            _PROP_LEN.pack(len(payload) + 4) + payload + b"\x00" * 4,
        )
        assert "S206" in codes_of(validate_embedding(corrupt, prop_meta))

    def test_property_count_mismatch_is_s207(self, meta, embedding):
        prop_meta = meta.with_property("a", "name")
        corrupt = embedding.append_properties(["Alice", 7])
        assert "S207" in codes_of(validate_embedding(corrupt, prop_meta))

    def test_duplicate_id_under_iso_is_s208(self, meta):
        duplicate = Embedding.of_ids(GradoopId(1), GradoopId(1))
        findings = validate_embedding(
            duplicate, meta, vertex_strategy=MatchStrategy.ISOMORPHISM
        )
        assert codes_of(findings) == ["S208"]
        # homomorphism permits the repetition
        assert validate_embedding(duplicate, meta) == []

    def test_morphism_skipped_on_structurally_corrupt_embeddings(self, meta):
        # id_at would raise on the bad flag; S208 must not mask S203
        corrupt = Embedding(
            bytes([7]) + Embedding.of_ids(GradoopId(1), GradoopId(1)).id_data[1:]
        )
        findings = validate_embedding(
            corrupt, meta, vertex_strategy=MatchStrategy.ISOMORPHISM
        )
        assert "S203" in codes_of(findings)
        assert "S208" not in codes_of(findings)


class _Corrupting(PhysicalOperator):
    """Test operator injecting a byte-level mutation into a plan."""

    display = "Corrupting"

    def __init__(self, child, mutate):
        super().__init__([child])
        self.meta = child.meta
        self.estimated_cardinality = child.estimated_cardinality
        self._mutate = mutate

    def _build(self):
        return self.children[0].evaluate().map(self._mutate, name="corrupt")


def _truncate(embedding):
    return Embedding(
        embedding.id_data[:-1], embedding.path_data, embedding.prop_data
    )


class TestSanitizedExecution:
    QUERY = "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a"

    def test_clean_query_checks_embeddings_without_findings(self, figure1_graph):
        runner = CypherRunner(figure1_graph, sanitize=True)
        rows = runner.execute_table(self.QUERY)
        assert rows
        assert runner.last_sanitizer is not None
        assert runner.last_sanitizer.checked > len(rows)
        assert runner.last_sanitizer.diagnostics == []

    def test_sanitize_off_by_default_with_no_instrumentation(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        _, root = runner.compile(self.QUERY)
        assert runner.last_sanitizer is None
        assert root._sanitizer is None
        # the built dataset is the operator's own, not a Sanitize(...) wrapper
        assert not root.evaluate().operator.name.startswith("Sanitize")

    def test_sanitized_matches_plain_results(self, figure1_graph):
        plain = CypherRunner(figure1_graph).execute_table(self.QUERY)
        sanitized = CypherRunner(figure1_graph, sanitize=True).execute_table(
            self.QUERY
        )
        assert plain == sanitized

    def test_corruption_mid_plan_raises_sanitizer_error(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        _, root = runner.compile(self.QUERY)
        corrupted = _Corrupting(root, _truncate)
        EmbeddingSanitizer().attach(corrupted)
        with pytest.raises(SanitizerError) as excinfo:
            corrupted.evaluate().collect()
        assert excinfo.value.diagnostics[0].code == "S201"

    def test_collect_mode_accumulates_instead_of_raising(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        _, root = runner.compile(self.QUERY)
        corrupted = _Corrupting(root, _truncate)
        sanitizer = EmbeddingSanitizer(mode="collect").attach(corrupted)
        corrupted.evaluate().collect()
        assert sanitizer.diagnostics
        assert {d.code for d in sanitizer.diagnostics} == {"S201"}

    def test_detach_restores_plain_execution(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        _, root = runner.compile(self.QUERY)
        corrupted = _Corrupting(root, _truncate)
        sanitizer = EmbeddingSanitizer().attach(corrupted)
        sanitizer.detach(corrupted)
        assert corrupted.evaluate().collect()  # corrupt but unchecked

    def test_attach_collects_path_bounds_from_expansions(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        _, root = runner.compile(
            "MATCH (a:Person)-[e:knows*1..2]->(b:Person) RETURN a"
        )
        sanitizer = EmbeddingSanitizer().attach(root)
        assert sanitizer.path_bounds == {"e": (1, 2)}
        root.evaluate().collect()
        assert sanitizer.checked > 0
        assert sanitizer.diagnostics == []

    def test_iso_strategy_threaded_into_checks(self, figure1_graph):
        runner = CypherRunner(
            figure1_graph,
            vertex_strategy=MatchStrategy.ISOMORPHISM,
            sanitize=True,
        )
        rows = runner.execute_table(
            "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a, b"
        )
        assert rows
        assert runner.last_sanitizer.diagnostics == []

    def test_sample_mode_validates_a_fraction(self, figure1_graph):
        runner = CypherRunner(figure1_graph, sanitize="sample")
        rows = runner.execute_table(self.QUERY)
        assert rows
        sanitizer = runner.last_sanitizer
        assert sanitizer.sample_every == DEFAULT_SAMPLE_EVERY
        assert sanitizer.seen >= sanitizer.checked
        assert sanitizer.diagnostics == []

    def test_sampled_matches_plain_results(self, figure1_graph):
        plain = CypherRunner(figure1_graph).execute_table(self.QUERY)
        sampled = CypherRunner(figure1_graph, sanitize="sample").execute_table(
            self.QUERY
        )
        assert plain == sampled

    def test_sample_every_one_still_catches_corruption(self, figure1_graph):
        # sample_every=1 degenerates to full per-embedding validation
        runner = CypherRunner(figure1_graph)
        _, root = runner.compile(self.QUERY)
        corrupted = _Corrupting(root, _truncate)
        EmbeddingSanitizer(sample_every=1).attach(corrupted)
        with pytest.raises(SanitizerError):
            corrupted.evaluate().collect()

    def test_invalid_sample_every_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingSanitizer(sample_every=0)
        with pytest.raises(ValueError):
            EmbeddingSanitizer(sample_every="often")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingSanitizer(mode="log")

    def test_runner_rejects_invalid_sanitize_value(self, figure1_graph):
        with pytest.raises(ValueError):
            CypherRunner(figure1_graph, sanitize="yes")


class TestOperatorContracts:
    def test_join_key_disagreement_is_s209(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        _, root = runner.compile(
            "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a"
        )
        sanitizer = EmbeddingSanitizer(mode="collect")
        left = Embedding.of_ids(GradoopId(1))
        right = Embedding.of_ids(GradoopId(2))
        sanitizer.check_join_keys(root, left, right, [0], [0])
        assert [d.code for d in sanitizer.diagnostics] == ["S209"]
        sanitizer.diagnostics.clear()
        sanitizer.check_join_keys(root, left, Embedding.of_ids(GradoopId(1)),
                                  [0], [0])
        assert sanitizer.diagnostics == []

    def test_projection_mutation_is_s209(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        _, root = runner.compile(
            "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a"
        )
        sanitizer = EmbeddingSanitizer(mode="collect")
        source = Embedding().append_properties(["Alice", 1984])
        good = source.project_properties([1])
        sanitizer.check_projection(root, source, good, [1])
        assert sanitizer.diagnostics == []
        bad = source.project_properties([0])  # kept the wrong value
        sanitizer.check_projection(root, source, bad, [1])
        assert [d.code for d in sanitizer.diagnostics] == ["S209"]


class TestReset:
    def test_plan_reexecutes_after_reset(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        _, root = runner.compile(
            "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a"
        )
        first = root.evaluate().collect()
        root.reset()
        assert root._dataset is None
        assert root.evaluate().collect() == first

    def test_explain_analyze_is_repeatable(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        query = "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a"
        assert runner.explain_analyze(query) == runner.explain_analyze(query)

    def test_reset_covers_variable_length_expansion(self, figure1_graph):
        # ExpandEmbeddings runs its superstep loop in a lazy iteration
        # operator; reset must rebuild the whole iteration DAG, not
        # replay stale partitions
        runner = CypherRunner(figure1_graph)
        _, root = runner.compile(
            "MATCH (a:Person)-[e:knows*1..2]->(b:Person) RETURN a"
        )
        first = sorted(root.evaluate().collect(), key=hash)
        root.reset()
        assert sorted(root.evaluate().collect(), key=hash) == first

"""UDF shippability analyzer: planted captures and fused-chain gating.

Each ``P4xx`` code gets a closure planting exactly the capture it exists
to refuse — a lock, an open handle, mutated shared state, a clock, an
unpicklable value — and the fusion gate is exercised end-to-end: an
``ExecutionEnvironment(certify_fusion=True)`` rejects an unshippable
chain at fusion *compile* time, while every fused chain of LDBC Q1–Q6
certifies clean.
"""

import functools
import io
import random
import threading
import time

import pytest

from repro.analysis import (
    ShippabilityError,
    analyze_chain,
    analyze_dataflow,
    classify_callable,
    iter_dataflow_udfs,
)
from repro.dataflow import ExecutionEnvironment
from repro.dataflow.fusion import DEFAULT_BATCH_SIZE, plan_fusion
from repro.engine import CypherRunner
from repro.harness.queries import ALL_QUERIES, instantiate
from repro.ldbc import LDBCGenerator

EDGE_QUERY = "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a"

#: referenced (not captured) by :func:`_locked_stage` — the module-global
#: variant of the P401 capture, which closure cells alone would miss
_PLANTED_LOCK = threading.Lock()


def _locked_stage(record):
    with _PLANTED_LOCK:
        return record


def _double(x):
    return 2 * x


class _Unpicklable:
    def __reduce__(self):
        raise TypeError("deliberately unpicklable")


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


class TestClassifyCallable:
    def test_pure_function_is_clean(self):
        assert classify_callable(_double) == []

    def test_builtin_ships_by_reference(self):
        assert classify_callable(len) == []

    def test_partial_over_pure_function_is_clean(self):
        assert classify_callable(functools.partial(_double)) == []

    def test_captured_lock_is_p401(self):
        lock = threading.Lock()

        def fn(x):
            with lock:
                return x

        assert "P401" in codes_of(classify_callable(fn))

    def test_global_lock_reference_is_p401(self):
        findings = classify_callable(_locked_stage)
        assert "P401" in codes_of(findings)
        assert any("_PLANTED_LOCK" in d.message for d in findings)

    def test_captured_open_handle_is_p402(self):
        handle = io.StringIO("buffered")

        def fn(x):
            return (x, handle.tell())

        assert "P402" in codes_of(classify_callable(fn))

    def test_augmented_assignment_on_capture_is_p403(self):
        state = {"n": 0}

        def fn(x):
            state["n"] += 1
            return x

        assert "P403" in codes_of(classify_callable(fn))

    def test_mutator_call_on_captured_container_is_p403(self):
        seen = set()

        def fn(x):
            seen.add(x)
            return x

        assert "P403" in codes_of(classify_callable(fn))

    def test_wall_clock_call_is_p404(self):
        def fn(x):
            return (x, time.time())

        assert "P404" in codes_of(classify_callable(fn))

    def test_random_module_call_is_p404(self):
        def fn(x):
            return x + random.random()

        assert "P404" in codes_of(classify_callable(fn))

    def test_unpicklable_capture_is_p405(self):
        blob = _Unpicklable()

        def fn(x):
            return (x, blob)

        findings = classify_callable(fn)
        assert "P405" in codes_of(findings)

    def test_captured_tuple_of_functions_is_clean(self):
        # the compiled-CNF shape: a tuple of clause lambdas travels as
        # code + cells, so it must not trip the pickle probe
        clauses = (lambda x: x > 0, lambda x: x < 10)

        def fn(x):
            return all(clause(x) for clause in clauses)

        assert classify_callable(fn) == []

    def test_reads_of_captures_are_clean(self):
        offset = 7
        table = {"a": 1}

        def fn(x):
            return x + offset + table.get("a", 0)

        assert classify_callable(fn) == []


class TestDataflowAnalysis:
    def test_plain_plan_is_shippable(self, figure1_graph):
        _, root = CypherRunner(figure1_graph).compile(EDGE_QUERY)
        report = analyze_dataflow(root.evaluate().operator)
        assert report.shippable, report.format_summary()
        assert report.analyzed
        assert "shippable" in report.format_summary()

    def test_udf_names_point_at_operator_slots(self, figure1_graph):
        _, root = CypherRunner(figure1_graph).compile(EDGE_QUERY)
        names = [name for name, _ in iter_dataflow_udfs(
            root.evaluate().operator
        )]
        assert names
        assert all("." in name for name in names)

    def test_sanitized_plan_is_not_shippable(self, figure1_graph):
        # the sanitizer's check closure mutates its operator's counters
        # and captures thread-local state: the canonical unshippable UDF
        _, root = CypherRunner(figure1_graph, sanitize=True).compile(
            EDGE_QUERY
        )
        report = analyze_dataflow(root.evaluate().operator)
        assert not report.shippable
        codes = codes_of(report.diagnostics)
        assert "P403" in codes
        assert "P405" in codes

    def test_runner_check_shippable_entry_point(self, figure1_graph):
        report = CypherRunner(figure1_graph).check_shippable(EDGE_QUERY)
        assert report.shippable


class TestFusionCertification:
    def test_clean_chain_certifies_at_plan_time(self):
        env = ExecutionEnvironment(parallelism=2)
        dataset = (
            env.from_collection(range(16))
            .map(_double)
            .filter(lambda x: x % 4 == 0)
        )
        rewrites = plan_fusion(
            dataset.operator, DEFAULT_BATCH_SIZE, certify=True
        )
        assert rewrites
        for chain in rewrites.values():
            assert analyze_chain(chain).shippable

    def test_unshippable_chain_rejected_at_fusion_compile_time(self):
        env = ExecutionEnvironment(parallelism=2, certify_fusion=True)
        dataset = env.from_collection(range(8)).map(_locked_stage)
        with pytest.raises(ShippabilityError) as excinfo:
            dataset.collect()
        assert any(d.code == "P401" for d in excinfo.value.diagnostics)
        assert "fused[" in str(excinfo.value)

    def test_certification_off_by_default(self):
        env = ExecutionEnvironment(parallelism=2)
        collected = env.from_collection(range(4)).map(_locked_stage).collect()
        assert sorted(collected) == [0, 1, 2, 3]

    def test_certified_environment_executes_clean_plans(self):
        head_env = ExecutionEnvironment(parallelism=2, certify_fusion=True)
        result = (
            head_env.from_collection(range(10))
            .map(_double)
            .filter(lambda x: x >= 10)
            .collect()
        )
        assert sorted(result) == [10, 12, 14, 16, 18]


@pytest.fixture(scope="module")
def ldbc():
    dataset = LDBCGenerator(scale_factor=0.03, seed=11).generate()
    graph = dataset.to_logical_graph(ExecutionEnvironment())
    return dataset, graph


class TestLDBCAcceptance:
    """Every fused chain of the six paper queries certifies zero-P4xx."""

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_paper_query_chains_certify_shippable(self, ldbc, name):
        dataset, graph = ldbc
        query = instantiate(ALL_QUERIES[name], dataset.first_name("medium"))
        runner = CypherRunner(graph)
        _, root = runner.compile(query)
        operator = root.evaluate().operator
        rewrites = plan_fusion(operator, DEFAULT_BATCH_SIZE, certify=True)
        assert rewrites, "%s produced no fusable chains" % name
        for chain in rewrites.values():
            report = analyze_chain(chain)
            assert report.shippable, "%s: %s" % (
                name, [d.format() for d in report.diagnostics]
            )
        full = analyze_dataflow(operator)
        assert full.shippable, "%s: %s" % (
            name, [d.format() for d in full.diagnostics]
        )

"""The runtime lock-order witness: graph recording and cycle detection."""

import threading

import pytest

from repro.locks import (
    LockOrderError,
    LockOrderWitness,
    current_witness,
    install_witness,
    named_lock,
    named_rlock,
    uninstall_witness,
    witness_installed,
)


def test_uninstalled_locks_behave_like_plain_locks():
    # drop any session-level witness (REPRO_LOCK_WITNESS=1) for the
    # duration: this test pins the un-instrumented fast path
    previous = uninstall_witness()
    try:
        lock = named_lock("plain")
        assert current_witness() is None
        with lock:
            assert not lock.acquire(blocking=False)
        assert lock.acquire(blocking=False)
        lock.release()
    finally:
        if previous is not None:
            install_witness(previous)


def test_witness_records_names_edges_and_sites():
    a, b = named_lock("alpha"), named_lock("beta")
    with witness_installed() as witness:
        with a:
            with b:
                pass
    assert witness.lock_names() == ["alpha", "beta"]
    assert witness.acquisitions == 2
    edges = witness.edges()
    assert ("alpha", "beta") in edges
    assert "test_witness.py" in edges[("alpha", "beta")]
    assert witness.find_cycles() == []
    witness.assert_acyclic()


def test_witness_detects_inversion_cycle():
    a, b = named_lock("first"), named_lock("second")
    with witness_installed() as witness:
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        cycles = witness.find_cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {"first", "second"}
        with pytest.raises(LockOrderError) as excinfo:
            witness.assert_acyclic()
        assert "first" in str(excinfo.value)
        assert "first seen at" in str(excinfo.value)


def test_witness_cycle_across_threads():
    # each order runs on its own thread: no single thread ever deadlocks,
    # but the global graph still witnesses the inversion
    a, b = named_lock("left"), named_lock("right")

    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    with witness_installed() as witness:
        for target in (forward, backward):
            thread = threading.Thread(target=target)
            thread.start()
            thread.join()
        assert len(witness.find_cycles()) == 1


def test_reentrant_reacquire_is_clean():
    lock = named_rlock("reentrant")
    with witness_installed() as witness:
        with lock:
            with lock:
                pass
    assert witness.find_cycles() == []
    # re-entry is not a new edge ("reentrant" -> "reentrant")
    assert witness.edges() == {}


def test_nonreentrant_self_reacquire_raises_instead_of_hanging():
    lock = named_lock("mutex")
    with witness_installed():
        with lock:
            with pytest.raises(LockOrderError) as excinfo:
                lock.acquire()
        assert "self-deadlock" in str(excinfo.value)
    # the failed acquire must not have corrupted the lock
    assert lock.acquire(blocking=False)
    lock.release()


def test_same_role_nesting_reports_self_loop():
    # two distinct instances of one role nested inside each other: the
    # role graph gets a self-loop, which is a cycle
    outer, inner = named_lock("cache.stats"), named_lock("cache.stats")
    with witness_installed() as witness:
        with outer:
            with inner:
                pass
        assert ["cache.stats", "cache.stats"] in witness.find_cycles()


def test_release_out_of_order_pops_correct_lock():
    a, b = named_lock("a"), named_lock("b")
    with witness_installed() as witness:
        a.acquire()
        b.acquire()
        a.release()  # out-of-order release: held stack must drop `a` only
        with named_lock("c"):
            pass
        b.release()
    assert ("b", "c") in witness.edges()
    assert ("a", "c") not in witness.edges()


def test_snapshot_and_format_graph():
    a, b = named_lock("one"), named_lock("two")
    with witness_installed() as witness:
        with a:
            with b:
                pass
    snap = witness.snapshot()
    assert snap["locks"] == ["one", "two"]
    assert snap["edges"] == ["one -> two"]
    assert snap["acquisitions"] == 2
    text = witness.format_graph()
    assert "2 lock(s), 1 edge(s), 2 acquisition(s)" in text
    assert "one" in text and "two" in text


def test_witness_installed_restores_previous():
    session = current_witness()  # the REPRO_LOCK_WITNESS one, or None
    outer = LockOrderWitness()
    with witness_installed(outer):
        with witness_installed() as inner:
            assert current_witness() is inner
        assert current_witness() is outer
    assert current_witness() is session

"""The explicit-state model checker (Layer 2 framework).

Small hand-built protocols pin each checker behavior: clean
termination, W506 deadlocks, W507 losses, W508 invariant violations,
BFS-minimal counterexample traces, atomic multi-sends, blocking
back-pressure, and the ``max_states`` bound.  The planted fixture
models (:mod:`tests.analysis.wire_fixtures`) must each trip exactly
their code.
"""

from dataclasses import dataclass, replace

import pytest

from repro.analysis.model import Model, check
from tests.analysis import wire_fixtures


@dataclass(frozen=True)
class _Peer:
    sent: int = 0
    seen: int = 0


def _ping_pong(rounds=3, capacity=2):
    """A protocol that always drains: ping sends, pong echoes."""
    model = Model("ping_pong")
    model.machine("ping", _Peer())
    model.machine("pong", _Peer())
    model.channel("fwd", capacity=capacity)
    model.channel("bwd", capacity=capacity)
    model.internal(
        "ping", "send",
        lambda s: s.sent < rounds,
        lambda s: (replace(s, sent=s.sent + 1), [("fwd", ("ping", s.sent))]),
    )
    model.receive(
        "pong", "echo", "fwd",
        lambda s, m: True,
        lambda s, m: (replace(s, seen=s.seen + 1), [("bwd", ("pong", m[1]))]),
    )
    model.receive(
        "ping", "absorb", "bwd",
        lambda s, m: True,
        lambda s, m: (replace(s, seen=s.seen + 1), []),
    )
    return model


def test_clean_protocol_checks_ok():
    result = check(_ping_pong())
    assert result.ok and result.complete
    assert result.states_explored > 1
    assert "ok" in result.format_summary()


def test_invariants_hold_on_every_reachable_state():
    model = _ping_pong()
    model.invariant(
        "echo-never-outruns-send",
        lambda states, channels: (
            "pong saw more than ping sent"
            if states["pong"].seen > states["ping"].sent else None
        ),
    )
    assert check(model).ok


def test_w508_counterexample_is_minimal():
    model = _ping_pong(rounds=3)
    model.invariant(
        "never-two-echoes",
        lambda states, channels: (
            "second echo" if states["pong"].seen >= 2 else None
        ),
    )
    result = check(model)
    assert [d.code for d in result.diagnostics] == ["W508"]
    # shortest path: send, echo, send, echo — BFS guarantees no longer
    # interleaving is reported
    assert len(result.trace) == 4
    listing = result.format_trace()
    assert listing.splitlines()[0].startswith("1. ")
    assert "recv" in listing


def test_w508_in_initial_state():
    model = Model("born_bad")

    @dataclass(frozen=True)
    class S:
        pass

    model.machine("m", S())
    model.invariant("never", lambda states, channels: "starts broken")
    result = check(model)
    assert [d.code for d in result.diagnostics] == ["W508"]
    assert result.trace == []
    assert "initial state" in result.format_trace()


def test_w506_deadlock_with_trace():
    model = Model("wedge")

    @dataclass(frozen=True)
    class S:
        sent: bool = False

    model.machine("a", S())
    model.channel("ch", capacity=1)
    model.internal(
        "a", "send",
        lambda s: not s.sent,
        lambda s: (replace(s, sent=True), [("ch", ("hello",))]),
    )
    result = check(model)
    assert [d.code for d in result.diagnostics] == ["W506"]
    assert result.trace == ["a.send"]


def test_quiescent_stop_is_not_a_deadlock():
    """Drained channels are accepting by default: no W506."""
    model = Model("quiescent")

    @dataclass(frozen=True)
    class S:
        done: bool = False

    model.machine("a", S())
    model.channel("ch", capacity=1)
    model.internal(
        "a", "step",
        lambda s: not s.done,
        lambda s: (replace(s, done=True), []),
    )
    assert check(model).ok


def test_w507_lost_message_on_lose_policy():
    model = Model("lossy")

    @dataclass(frozen=True)
    class S:
        n: int = 0

    model.machine("p", S())
    model.channel("ch", capacity=1, policy="lose")
    model.internal(
        "p", "send",
        lambda s: s.n < 2,
        lambda s: (replace(s, n=s.n + 1), [("ch", ("m", s.n))]),
    )
    result = check(model)
    assert [d.code for d in result.diagnostics] == ["W507"]
    assert "dropped on full channel" in result.diagnostics[0].message


def test_blocking_channel_applies_back_pressure():
    """A full ``"block"`` channel disables the send instead of losing."""
    model = Model("backpressure")

    @dataclass(frozen=True)
    class S:
        n: int = 0

    model.machine("p", S())
    model.machine("c", S())
    model.channel("ch", capacity=1, policy="block")
    model.internal(
        "p", "send",
        lambda s: s.n < 3,
        lambda s: (replace(s, n=s.n + 1), [("ch", ("m", s.n))]),
    )
    model.receive(
        "c", "drain", "ch",
        lambda s, m: True,
        lambda s, m: (replace(s, n=s.n + 1), []),
    )
    result = check(model)
    assert result.ok, [d.format() for d in result.diagnostics]


def test_sends_in_one_firing_are_atomic():
    """Both messages of one effect land before any other rule runs."""
    model = Model("atomic")

    @dataclass(frozen=True)
    class S:
        fired: bool = False

    @dataclass(frozen=True)
    class R:
        first: tuple = ()

    model.machine("p", S())
    model.machine("c", R())
    model.channel("ch", capacity=4)
    model.internal(
        "p", "burst",
        lambda s: not s.fired,
        lambda s: (
            replace(s, fired=True),
            [("ch", ("one",)), ("ch", ("two",))],
        ),
    )
    model.receive(
        "c", "drain", "ch",
        lambda s, m: True,
        lambda s, m: (replace(s, first=s.first or m), []),
    )
    model.invariant(
        "fifo-order",
        lambda states, channels: (
            "second message overtook the first"
            if states["c"].first == ("two",) else None
        ),
    )
    assert check(model).ok


def test_max_states_bound_marks_result_incomplete():
    model = Model("unbounded")

    @dataclass(frozen=True)
    class S:
        n: int = 0

    model.machine("m", S())
    model.internal(
        "m", "tick",
        lambda s: True,
        lambda s: (replace(s, n=s.n + 1), []),
    )
    result = check(model, max_states=50)
    assert result.ok and not result.complete
    assert "state cap hit" in result.format_summary()


@pytest.mark.parametrize(
    "fixture", wire_fixtures.MODEL_FIXTURES,
    ids=lambda m: m.EXPECTED,
)
def test_planted_model_trips_exactly_its_code(fixture):
    result = check(fixture.build())
    assert sorted({d.code for d in result.diagnostics}) == [
        fixture.EXPECTED
    ], [d.format() for d in result.diagnostics]
    assert len(result.trace) <= 20

"""The docs/analysis.md code table never drifts from the registry.

``scripts/gen_code_docs.py`` renders the table between the
``codes:begin``/``codes:end`` markers from
:data:`repro.analysis.diagnostics.CODES`; this suite is the committed-tree
drift gate CI runs (``gen_code_docs.py --check``) plus sanity checks on
the generator itself.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.analysis.diagnostics import CODES

REPO = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def script():
    spec = importlib.util.spec_from_file_location(
        "gen_code_docs", REPO / "scripts" / "gen_code_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_committed_table_matches_registry(script):
    assert script.main(["--check"]) == 0


def test_apply_is_idempotent(script):
    current = script.DOC.read_text(encoding="utf-8")
    once = script.apply(current)
    assert script.apply(once) == once


def test_rendered_table_covers_every_code(script):
    table = script.render_table()
    for code in CODES:
        assert "`%s`" % code in table


def test_blocking_codes_are_marked(script):
    table = script.render_table()
    for line in table.splitlines():
        for code in script.BLOCKING_CODES:
            if "`%s`" % code in line:
                assert "(blocking)" in line


def test_missing_markers_is_an_error(script):
    with pytest.raises(SystemExit):
        script.apply("no markers here")

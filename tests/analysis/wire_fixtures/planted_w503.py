"""W503 — a construct site disagreeing with the declared shape.

The parent ships a spec blob as ``(SHIP, key)`` — the blob field fell
off in a refactor — while the request pipe declares ``ship`` as
``(tag, key, blob)``.  The worker's correct three-element unpack would
raise ``ValueError`` at runtime on the first dispatch.
"""

EXPECTED = "W503"

PARENT = '''
from repro.dataflow.workers.messages import SHIP


def ship(conn, key, blob):
    conn.send([(SHIP, key)])  # dropped the blob field
'''

WORKER = '''
from repro.dataflow.workers.messages import SHIP


def handle(message):
    kind = message[0]
    if kind == SHIP:
        _, key, blob = message
        return key, blob
'''

"""W504 — a payload field that can never cross the pickle boundary.

The parent puts a locally created lambda into a ``ship`` payload slot.
``dump_functions`` ships *certified* callables by value, but a bare
lambda in a message field is exactly the P401-class capture the
shippability analyzer rejects — pickling it raises at dispatch time.
"""

EXPECTED = "W504"

PARENT = '''
from repro.dataflow.workers.messages import SHIP


def ship(conn, key):
    payload = lambda record: record
    conn.send([(SHIP, key, payload)])
'''

WORKER = '''
from repro.dataflow.workers.messages import SHIP


def handle(message):
    kind = message[0]
    if kind == SHIP:
        _, key, blob = message
        return key, blob
'''

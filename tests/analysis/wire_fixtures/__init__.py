"""Planted wire-protocol defects, one module per W5xx code.

The convention mirrors the S3xx/P4xx planted fixtures
(``planted_race.py``, the inline udfcheck closures): every diagnostic
the verifier can emit has a minimal defect here that *must* keep
firing it, so a refactor that silently blinds a check fails the suite.

Layer 1 fixtures (``planted_w501`` … ``planted_w505``) carry
``PARENT`` / ``WORKER`` source strings — a miniature pool and runtime
speaking the *real* vocabulary from
:mod:`repro.dataflow.workers.messages` with exactly one defect planted
— plus ``EXPECTED``, the code that must fire (and be the *only* code
that fires).  Layer 2 fixtures (``planted_w506`` … ``planted_w508``)
instead expose ``build()`` returning a deliberately broken
:class:`~repro.analysis.model.Model`.
"""

from . import (  # noqa: F401
    planted_w501,
    planted_w502,
    planted_w503,
    planted_w504,
    planted_w505,
    planted_w506,
    planted_w507,
    planted_w508,
)

#: Layer 1 fixtures: module → the single diagnostic it must trip
SOURCE_FIXTURES = (planted_w501, planted_w502, planted_w503,
                   planted_w504, planted_w505)

#: Layer 2 fixtures: broken models for each checker failure class
MODEL_FIXTURES = (planted_w506, planted_w507, planted_w508)

"""W502 — a handler arm for a tag no production sender constructs.

The worker still carries a ``pjoin`` arm, but the parent-side dispatch
for it was deleted in a refactor: dead protocol surface that would
hide real drift behind an always-false branch.  (``crash`` is the
sanctioned exception — declared ``test_only``, so the real runtime's
arm without a production send site stays clean.)
"""

EXPECTED = "W502"

PARENT = '''
def dispatch(conn, batch):
    conn.send(batch)  # no vocabulary constructor left on this side
'''

WORKER = '''
from repro.dataflow.workers.messages import PJOIN


def handle(message):
    kind = message[0]
    if kind == PJOIN:
        _, job, seq, spec, target = message
        return target
'''

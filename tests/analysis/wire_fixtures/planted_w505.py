"""W505 — a wire-contract constant defined locally on one side.

Both sides size the spec-cache LRU, but the parent module declares its
own ``SPEC_CACHE_LIMIT`` instead of importing the shared definition:
the two limits can now drift apart, which is precisely how the PR 8
spec-cache desync started.
"""

EXPECTED = "W505"

PARENT = '''
SPEC_CACHE_LIMIT = 32  # local copy: can drift from the worker's


def should_reship(shipped, key):
    return len(shipped) > SPEC_CACHE_LIMIT or key not in shipped
'''

WORKER = '''
from repro.dataflow.workers.messages import SHIP  # noqa: F401 — vocab import

SPEC_CACHE_LIMIT = 16


def evict(cache):
    while len(cache) > SPEC_CACHE_LIMIT:
        cache.popitem(last=False)
'''

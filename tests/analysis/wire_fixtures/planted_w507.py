"""W507 — a message dropped on a full fire-and-forget channel.

A notifier pushes three events into a one-slot ``"lose"``-policy
channel while the listener may lag arbitrarily; the interleaving where
the second send lands before the listener drains the first loses an
event.  (Pipes in the real runtime are ``"block"``; ``"lose"`` models
paths where a drop must be *proven* unreachable — here it is not.)
"""

from dataclasses import dataclass, replace

from repro.analysis.model import Model

EXPECTED = "W507"


@dataclass(frozen=True)
class _Notifier:
    sent: int = 0


@dataclass(frozen=True)
class _Listener:
    seen: int = 0


def build():
    model = Model("planted_w507")
    model.machine("notifier", _Notifier())
    model.machine("listener", _Listener())
    model.channel("events", capacity=1, policy="lose")

    model.internal(
        "notifier", "notify",
        lambda s: s.sent < 3,
        lambda s: (
            replace(s, sent=s.sent + 1),
            [("events", ("event", s.sent))],
        ),
    )
    model.receive(
        "listener", "on_event", "events",
        lambda s, m: True,
        lambda s, m: (replace(s, seen=s.seen + 1), []),
    )
    return model

"""W506 — a protocol that can wedge.

The client fires a request and waits for a reply; the server consumes
the request but its reply guard demands a credit the client only
grants *after* seeing the reply.  The checker reaches the state where
the request is consumed, no rule is enabled, and the reply channel is
empty while the client still waits — a deadlock.
"""

from dataclasses import dataclass, replace

from repro.analysis.model import Model

EXPECTED = "W506"


@dataclass(frozen=True)
class _Client:
    sent: bool = False
    credited: bool = False
    replied: bool = False


@dataclass(frozen=True)
class _Server:
    pending: bool = False


def build():
    model = Model("planted_w506")
    model.machine("client", _Client())
    model.machine("server", _Server())
    model.channel("req", capacity=1)
    model.channel("resp", capacity=1)
    model.channel("credit", capacity=1)

    model.internal(
        "client", "request",
        lambda s: not s.sent,
        lambda s: (replace(s, sent=True), [("req", ("request",))]),
    )
    # the bug: the credit is only granted after the reply arrives,
    # but the server will not reply without the credit
    model.internal(
        "client", "grant_credit",
        lambda s: s.replied and not s.credited,
        lambda s: (replace(s, credited=True), [("credit", ("credit",))]),
    )
    model.receive(
        "client", "on_reply", "resp",
        lambda s, m: True,
        lambda s, m: (replace(s, replied=True), []),
    )

    model.receive(
        "server", "on_request", "req",
        lambda s, m: True,
        lambda s, m: (replace(s, pending=True), []),
    )
    model.receive(
        "server", "reply", "credit",
        lambda s, m: s.pending,
        lambda s, m: (replace(s, pending=False), [("resp", ("reply",))]),
    )

    # a pending request with every channel drained is not a legal stop
    model.accepting = lambda states, channels: (
        not states["server"].pending
        and (states["client"].replied or not states["client"].sent)
        and not any(channels.values())
    )
    return model

"""W501 — a tag sent on a pipe the other side never handles.

The parent evicts a resident source and tells the worker to free it;
the worker's receive loop has no ``free`` arm, so the message would be
silently dropped and the worker's resident set would grow forever.
"""

EXPECTED = "W501"

PARENT = '''
from repro.dataflow.workers.messages import FREE


def evict(conn, source_key, part):
    conn.send([(FREE, source_key, part)])
'''

WORKER = '''
def loop(conn):
    while True:
        batch = conn.recv()
        for message in batch:
            pass  # no arm ever looks at the tag
'''

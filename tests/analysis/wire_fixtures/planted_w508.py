"""W508 — a reachable state violating a declared safety invariant.

A token protocol meant to enforce mutual exclusion hands its token out
on request — but never checks the token back in, so two requesters can
both hold it.  The invariant (``at most one holder``) fails on the
interleaving where both requests land before either release.
"""

from dataclasses import dataclass, replace

from repro.analysis.model import Model

EXPECTED = "W508"


@dataclass(frozen=True)
class _Grantor:
    pass  # the bug: no "token is out" state at all


@dataclass(frozen=True)
class _Holder:
    requested: bool = False
    holding: bool = False


def build():
    model = Model("planted_w508")
    model.machine("grantor", _Grantor())
    model.machine("holderA", _Holder())
    model.machine("holderB", _Holder())
    model.channel("grants", capacity=2)

    for name in ("holderA", "holderB"):
        model.internal(
            name, "request",
            lambda s: not s.requested,
            lambda s: (replace(s, requested=True), []),
        )
        model.receive(
            name, "take", "grants",
            lambda s, m, n=name: m[1] == n,
            lambda s, m: (replace(s, holding=True), []),
        )
        model.internal(
            name, "release",
            lambda s: s.holding,
            lambda s: (replace(s, holding=False), []),
        )

    for name in ("holderA", "holderB"):
        model.internal(
            "grantor", "grant_%s" % name,
            lambda s: True,
            # stateless grant: nothing stops a second token going out
            lambda s, n=name: (s, [("grants", ("token", n))]),
        )

    model.invariant(
        "at-most-one-holder",
        lambda states, channels: (
            "both holders own the token at once"
            if states["holderA"].holding and states["holderB"].holding
            else None
        ),
    )
    model.accepting = lambda states, channels: True
    return model

"""Property tests tying the analyzer layers together.

Two contracts probed with generated queries (labels, direction changes,
shared variables, predicates, inline property maps and variable-length
paths):

1. any query the linter passes without errors compiles — under the
   greedy, exhaustive *and* naive-order planner — into a physical plan
   the verifier accepts;
2. its *sanitized* execution raises no sanitizer finding and all three
   planners return the same result multiset.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import differential_check, lint_query, verify_plan
from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner
from repro.engine.planning import (
    ExhaustivePlanner,
    GreedyPlanner,
    LeftDeepPlanner,
)
from repro.epgm import LogicalGraph
from tests.conftest import build_figure1_elements

PLANNERS = [GreedyPlanner, ExhaustivePlanner, LeftDeepPlanner]

_VARS = ["a", "b", "c", "d"]
_VERTEX_LABELS = [None, "Person", "University", "City", "Person|City"]
_EDGE_LABELS = [None, "knows", "studyAt", "isLocatedIn"]
_PREDICATES = [
    None,
    "{v}.name = 'Alice'",
    "{v}.name < 'M'",
    "{v}.yob > 1980",
    "{v}.gender = 'female'",
]
_VERTEX_MAPS = [
    None,
    "{name: 'Alice'}",
    "{gender: 'female'}",
    "{name: 'Leipzig'}",
]


def _fresh_graph():
    head, vertices, edges = build_figure1_elements()
    return LogicalGraph.from_collections(
        ExecutionEnvironment(), vertices, edges, graph_head=head
    )


@st.composite
def cypher_queries(draw):
    edge_count = draw(st.integers(1, 3))
    used = [draw(st.sampled_from(_VARS))]
    parts = []
    for index in range(edge_count):
        source = draw(st.sampled_from(used))
        target = draw(st.sampled_from(_VARS))
        if target not in used:
            used.append(target)
        source_label = draw(st.sampled_from(_VERTEX_LABELS))
        target_label = draw(st.sampled_from(_VERTEX_LABELS))
        edge_label = draw(st.sampled_from(_EDGE_LABELS))
        edge_body = "e%d" % index
        if edge_label:
            edge_body += ":" + edge_label
        if draw(st.booleans()):  # occasional bounded variable-length path
            lower = draw(st.integers(0, 1))
            edge_body += "*%d..%d" % (lower, lower + draw(st.integers(1, 2)))
        arrow = draw(st.sampled_from(["-[{e}]->", "<-[{e}]-"]))
        left = source if not source_label else "%s:%s" % (source, source_label)
        right = target if not target_label else "%s:%s" % (target, target_label)
        source_map = draw(st.sampled_from(_VERTEX_MAPS))
        target_map = draw(st.sampled_from(_VERTEX_MAPS))
        if source_map:
            left += " " + source_map
        if target_map:
            right += " " + target_map
        parts.append(
            "(%s)%s(%s)" % (left, arrow.format(e=edge_body), right)
        )
    where = []
    for variable in used:
        template = draw(st.sampled_from(_PREDICATES))
        if template:
            where.append(template.format(v=variable))
    query = "MATCH " + ", ".join(parts)
    if where:
        query += " WHERE " + " AND ".join(where)
    query += " RETURN *"
    return query


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(query=cypher_queries())
def test_lint_clean_implies_plan_verifies(query):
    graph = _fresh_graph()
    diagnostics = lint_query(query)
    assert not any(d.is_blocking for d in diagnostics), (
        "generator produced an ill-formed query: %s" % query
    )
    for planner_cls in PLANNERS:
        runner = CypherRunner(graph, planner_cls=planner_cls)
        handler, root = runner.compile(query)
        assert verify_plan(
            root,
            handler=handler,
            vertex_strategy=runner.vertex_strategy,
            edge_strategy=runner.edge_strategy,
        ), "planner %s produced an invalid plan for %s" % (
            planner_cls.__name__, query,
        )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(query=cypher_queries())
def test_lint_clean_implies_sanitized_planners_agree(query):
    """Lint-clean ⇒ sanitized execution is finding-free ⇒ planners agree.

    The full dynamic contract: the sanitizer validates every embedding at
    every operator boundary (raising nothing), and the three planners
    return one result multiset.
    """
    graph = _fresh_graph()
    diagnostics = lint_query(query)
    assert not any(d.is_blocking for d in diagnostics), (
        "generator produced an ill-formed query: %s" % query
    )
    report = differential_check(graph, query)
    assert report.clean, "%s: %s" % (
        query, [str(d) for d in report.diagnostics]
    )
    assert all(run.checked >= run.row_count for run in report.runs)

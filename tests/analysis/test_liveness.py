"""Backward liveness analysis (S4xx): transfer rules and planted fixtures."""

import pytest

from repro.analysis import (
    LivenessVerificationError,
    assert_liveness,
    verify_liveness,
)
from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner, MatchStrategy
from repro.engine.operators.base import PhysicalOperator
from repro.engine.operators.leaves import SelectAndProjectVertices
from repro.engine.planning import (
    ExhaustivePlanner,
    GreedyPlanner,
    LeftDeepPlanner,
)
from repro.harness.queries import ALL_QUERIES, instantiate
from repro.ldbc import LDBCGenerator

PLANNERS = [GreedyPlanner, ExhaustivePlanner, LeftDeepPlanner]

HOMO = MatchStrategy.HOMOMORPHISM

#: every column and record the root produces is read by the RETURN clause
ALL_LIVE_QUERY = "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a, e, b"
DEAD_PROP_QUERY = (
    "MATCH (a:Person)-[e:knows]->(b:Person) "
    "WHERE a.name = 'Alice' RETURN e, b.name"
)
PATH_QUERY = "MATCH (a:Person)-[e:knows*1..2]->(b:Person) RETURN a, b"


def codes_of(report):
    return [d.code for d in report.diagnostics]


def compiled(graph, query, planner_cls=GreedyPlanner, **kwargs):
    runner = CypherRunner(graph, planner_cls=planner_cls, **kwargs)
    handler, root = runner.compile(query)
    return runner, handler, root


class TestCleanPlans:
    @pytest.mark.parametrize("planner_cls", PLANNERS)
    def test_fully_returned_plan_is_clean(self, figure1_graph, planner_cls):
        _, handler, root = compiled(figure1_graph, ALL_LIVE_QUERY, planner_cls)
        report = verify_liveness(root, handler)
        assert report.clean, [d.format() for d in report.diagnostics]
        assert "all bytes live" in report.format_summary()

    def test_return_star_demands_everything(self, figure1_graph):
        _, handler, root = compiled(
            figure1_graph, "MATCH (a:Person)-[e:knows]->(b:Person) RETURN *"
        )
        report = verify_liveness(root, handler)
        assert report.clean
        demand = report.demand_of(root)
        assert demand.variables == set(root.meta.variables)

    def test_no_handler_is_conservatively_clean(self, figure1_graph):
        # without the RETURN clause the root demand is everything
        _, _, root = compiled(figure1_graph, ALL_LIVE_QUERY)
        assert verify_liveness(root).clean

    def test_assert_liveness_returns_clean_report(self, figure1_graph):
        _, handler, root = compiled(figure1_graph, ALL_LIVE_QUERY)
        assert assert_liveness(root, handler).clean


class TestDeadByteFindings:
    @pytest.mark.parametrize("planner_cls", PLANNERS)
    def test_predicate_only_property_is_s402(self, figure1_graph, planner_cls):
        # a.name is evaluated element-locally inside the leaf's flat-map;
        # the record riding in every embedding above it is dead freight
        _, handler, root = compiled(
            figure1_graph, DEAD_PROP_QUERY, planner_cls
        )
        report = verify_liveness(root, handler)
        assert "S402" in codes_of(report)
        finding = next(d for d in report.diagnostics if d.code == "S402")
        assert "a.name" in finding.message
        assert not finding.is_error  # dead bytes are wasteful, not wrong

    def test_s402_reported_at_introduction_site_only(self, figure1_graph):
        _, handler, root = compiled(figure1_graph, DEAD_PROP_QUERY)
        report = verify_liveness(root, handler)
        s402 = [d for d in report.diagnostics if d.code == "S402"]
        assert len(s402) == 1  # once at the leaf, not at every ancestor

    def test_dead_finding_carries_source_span(self, figure1_graph):
        _, handler, root = compiled(figure1_graph, DEAD_PROP_QUERY)
        report = verify_liveness(root, handler)
        finding = next(d for d in report.diagnostics if d.code == "S402")
        assert finding.span is not None
        assert "^" in finding.format(DEAD_PROP_QUERY)

    def test_unreturned_edge_column_is_s401(self, figure1_graph):
        _, handler, root = compiled(
            figure1_graph,
            "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a, b",
        )
        report = verify_liveness(root, handler)
        findings = [d for d in report.diagnostics if d.code == "S401"]
        assert any("'e'" in d.message for d in findings)

    def test_unread_path_contents_are_s403_under_homo(self, figure1_graph):
        # under homo/homo no morphism check inspects the hop sequence, so
        # a path variable that is never returned carries dead contents
        _, handler, root = compiled(
            figure1_graph, PATH_QUERY,
            vertex_strategy=HOMO, edge_strategy=HOMO,
        )
        report = verify_liveness(
            root, handler, vertex_strategy=HOMO, edge_strategy=HOMO
        )
        assert "S403" in codes_of(report)

    def test_path_contents_live_under_edge_iso(self, figure1_graph):
        # the default edge-isomorphism check replays every path's hops,
        # so the same plan has no dead path contents
        _, handler, root = compiled(figure1_graph, PATH_QUERY)
        report = verify_liveness(root, handler)
        assert "S403" not in codes_of(report)

    def test_returned_path_contents_are_live(self, figure1_graph):
        _, handler, root = compiled(
            figure1_graph,
            "MATCH (a:Person)-[e:knows*1..2]->(b:Person) RETURN a, e, b",
            vertex_strategy=HOMO, edge_strategy=HOMO,
        )
        report = verify_liveness(
            root, handler, vertex_strategy=HOMO, edge_strategy=HOMO
        )
        assert "S403" not in codes_of(report)

    def test_assert_liveness_raises_on_dead_bytes(self, figure1_graph):
        _, handler, root = compiled(figure1_graph, DEAD_PROP_QUERY)
        with pytest.raises(LivenessVerificationError) as excinfo:
            assert_liveness(root, handler)
        assert any(d.code == "S402" for d in excinfo.value.diagnostics)


class _Opaque(PhysicalOperator):
    """An operator the liveness pass has no transfer rule for."""

    display = "Opaque"

    def __init__(self, children, meta):
        super().__init__(children)
        self.meta = meta


class TestUnknownOperators:
    def test_unknown_operator_is_s404_and_children_stay_live(
        self, figure1_graph
    ):
        _, handler, root = compiled(figure1_graph, ALL_LIVE_QUERY)
        wrapped = _Opaque([root], root.meta)
        report = verify_liveness(wrapped)
        assert "S404" in codes_of(report)
        # everything below the opaque operator is conservatively live
        demand = report.demand_of(root)
        assert demand.variables == set(root.meta.variables)
        assert demand.properties == set(root.meta.property_entries())
        assert report.demand_of(wrapped) is not None


class TestDemandIntrospection:
    def test_root_demand_matches_return_items(self, figure1_graph):
        _, handler, root = compiled(
            figure1_graph,
            "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a, b.name",
        )
        report = verify_liveness(root, handler)
        demand = report.demand_of(root)
        assert "a" in demand.variables
        assert ("b", "name") in demand.properties
        assert ("a", "name") not in demand.properties

    def test_runner_livecheck_entry_point(self, figure1_graph):
        report = CypherRunner(figure1_graph).livecheck(DEAD_PROP_QUERY)
        assert "S402" in codes_of(report)


@pytest.fixture(scope="module")
def ldbc():
    dataset = LDBCGenerator(scale_factor=0.03, seed=11).generate()
    graph = dataset.to_logical_graph(ExecutionEnvironment())
    return dataset, graph


class TestLDBCAcceptance:
    @pytest.mark.parametrize("planner_cls", PLANNERS)
    def test_q1_first_name_is_dead_freight(self, ldbc, planner_cls):
        # the paper's Q1 filters on person.firstName but returns only
        # message fields — the exemplar record pruning exists to drop
        dataset, graph = ldbc
        query = instantiate(ALL_QUERIES["Q1"], dataset.first_name("medium"))
        runner = CypherRunner(graph, planner_cls=planner_cls)
        report = runner.livecheck(query)
        assert any(
            d.code == "S402" and "person.firstName" in d.message
            for d in report.diagnostics
        )

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    @pytest.mark.parametrize("planner_cls", PLANNERS)
    def test_every_plan_interprets_fully(self, ldbc, name, planner_cls):
        # no S404: all five operator modules have a transfer rule, so the
        # analysis covers every operator of every paper-query plan
        dataset, graph = ldbc
        query = instantiate(ALL_QUERIES[name], dataset.first_name("medium"))
        runner = CypherRunner(graph, planner_cls=planner_cls)
        report = runner.livecheck(query)
        assert "S404" not in codes_of(report)
        _, root = runner.compile(query)
        assert report.demand_of(root) is not None


class TestLeafNarrowingGround:
    def test_leaf_records_demand_split(self, figure1_graph):
        # the pruning rewriter's ground truth: the leaf's demand set names
        # exactly the records consumers read
        _, handler, root = compiled(figure1_graph, DEAD_PROP_QUERY)
        report = verify_liveness(root, handler)
        stack = [root]
        while stack:
            node = stack.pop()
            if (
                isinstance(node, SelectAndProjectVertices)
                and node.query_vertex.variable == "a"
            ):
                demand = report.demand_of(node)
                assert ("a", "name") not in demand.properties
                return
            stack.extend(node.children)
        raise AssertionError("plan contains no leaf for 'a'")

"""The plan verifier: clean plans pass, corrupted plans are caught.

Real planner output must always verify (tested across all three
planners); each structural rule is then exercised by deliberately
corrupting a compiled plan in place.
"""

import pytest

from repro.analysis import PlanVerificationError, PlanVerifier, verify_plan
from repro.cypher.predicates import to_cnf
from repro.cypher.parser import parse
from repro.engine import CypherRunner, MatchStrategy
from repro.engine.operators.filter_project import SelectEmbeddings
from repro.engine.operators.join import JoinEmbeddings
from repro.engine.planning import (
    ExhaustivePlanner,
    GreedyPlanner,
    LeftDeepPlanner,
)

PLANNERS = [GreedyPlanner, ExhaustivePlanner, LeftDeepPlanner]

QUERIES = [
    "MATCH (p:Person) RETURN p",
    "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a, b, e",
    "MATCH (a:Person)-[:knows]->(b)-[:knows]->(c) RETURN a, b, c",
    "MATCH (p:Person)-[s:studyAt]->(u:University) WHERE s.classYear > 2014 "
    "RETURN p.name, u.name",
    "MATCH (a:Person)-[e:knows*1..2]->(b:Person) RETURN a, b, e",
    "MATCH (a)-[:knows]->(b), (a)-[:studyAt]->(u) RETURN a, b, u",
]


def compile_plan(graph, query, planner_cls=GreedyPlanner):
    runner = CypherRunner(graph, planner_cls=planner_cls)
    handler, root = runner.compile(query)
    return runner, handler, root


def find_operator(root, operator_type):
    if isinstance(root, operator_type):
        return root
    for child in root.children:
        found = find_operator(child, operator_type)
        if found is not None:
            return found
    return None


@pytest.mark.parametrize("planner_cls", PLANNERS)
@pytest.mark.parametrize("query", QUERIES)
def test_planner_output_verifies(figure1_graph, planner_cls, query):
    runner, handler, root = compile_plan(figure1_graph, query, planner_cls)
    assert verify_plan(
        root,
        handler=handler,
        vertex_strategy=runner.vertex_strategy,
        edge_strategy=runner.edge_strategy,
    )


class TestCorruptedPlans:
    def violations_of(self, root, handler=None):
        return {v.rule for v in PlanVerifier(handler=handler).verify(root)}

    def test_missing_meta(self, figure1_graph):
        _, _, root = compile_plan(figure1_graph, "MATCH (p:Person) RETURN p")
        root.meta = None
        assert "meta-missing" in self.violations_of(root)

    def test_missing_cardinality(self, figure1_graph):
        _, _, root = compile_plan(figure1_graph, "MATCH (p:Person) RETURN p")
        root.estimated_cardinality = None
        assert "cardinality-missing" in self.violations_of(root)

    @pytest.mark.parametrize("bad", [-1.0, float("inf"), float("nan")])
    def test_invalid_cardinality(self, figure1_graph, bad):
        _, _, root = compile_plan(figure1_graph, "MATCH (p:Person) RETURN p")
        root.estimated_cardinality = bad
        assert "cardinality-invalid" in self.violations_of(root)

    # a cross-variable predicate cannot be pushed to a leaf, so it keeps a
    # SelectEmbeddings operator in the plan for us to corrupt
    CROSS_PREDICATE_QUERY = (
        "MATCH (a:Person)-[:knows]->(b:Person) WHERE a.name < b.name "
        "RETURN a, b"
    )

    def test_select_referencing_unbound_variable(self, figure1_graph):
        _, _, root = compile_plan(figure1_graph, self.CROSS_PREDICATE_QUERY)
        select = find_operator(root, SelectEmbeddings)
        assert select is not None
        select.cnf = to_cnf(parse(
            "MATCH (p) WHERE ghost.name < b.name RETURN p"
        ).where)
        assert "select-unbound" in self.violations_of(root)

    def test_select_reading_unprojected_property(self, figure1_graph):
        _, _, root = compile_plan(figure1_graph, self.CROSS_PREDICATE_QUERY)
        select = find_operator(root, SelectEmbeddings)
        assert select is not None
        select.cnf = to_cnf(parse(
            "MATCH (p) WHERE a.unprojected < b.name RETURN p"
        ).where)
        assert "select-property-missing" in self.violations_of(root)

    def test_join_variable_not_bound_by_child(self, figure1_graph):
        _, _, root = compile_plan(
            figure1_graph,
            "MATCH (a:Person)-[:knows]->(b)-[:knows]->(c) RETURN a, b, c",
        )
        join = find_operator(root, JoinEmbeddings)
        assert join is not None
        join.join_variables = join.join_variables + ["phantom"]
        assert "join-column-missing" in self.violations_of(root)

    def test_overlapping_inputs_without_join_variable(self, figure1_graph):
        _, _, root = compile_plan(
            figure1_graph,
            "MATCH (a:Person)-[:knows]->(b)-[:knows]->(c) RETURN a, b, c",
        )
        join = find_operator(root, JoinEmbeddings)
        assert join is not None
        join.join_variables = []
        assert "binding-duplicated" in self.violations_of(root)

    def test_morphism_inconsistency(self, figure1_graph):
        _, _, root = compile_plan(
            figure1_graph,
            "MATCH (a:Person)-[:knows]->(b)-[:knows]->(c) RETURN a, b, c",
        )
        join = find_operator(root, JoinEmbeddings)
        assert join is not None
        join.vertex_strategy = MatchStrategy.ISOMORPHISM
        join.edge_strategy = MatchStrategy.HOMOMORPHISM
        assert "morphism-inconsistent" in self.violations_of(root)

    def test_plan_strategy_contradicting_runner(self, figure1_graph):
        runner, handler, root = compile_plan(
            figure1_graph, "MATCH (a:Person)-[e:knows]->(b) RETURN a, b, e"
        )
        violations = PlanVerifier(
            handler=handler,
            vertex_strategy=MatchStrategy.ISOMORPHISM,  # runner used HOMO
        ).verify(root)
        assert "morphism-inconsistent" in {v.rule for v in violations}

    def test_root_missing_query_variable(self, figure1_graph):
        _, handler, root = compile_plan(
            figure1_graph, "MATCH (p:Person) RETURN p"
        )
        handler.vertices["extra"] = next(iter(handler.vertices.values()))
        assert "variable-unbound" in self.violations_of(root, handler)

    def test_return_property_dropped(self, figure1_graph):
        _, handler, root = compile_plan(
            figure1_graph, "MATCH (p:Person) RETURN p"
        )
        # swap the AST for one whose RETURN reads a property the plan
        # never projected
        handler.ast = parse("MATCH (p:Person) RETURN p.salary")
        assert "return-property-dropped" in self.violations_of(root, handler)

    def test_verify_plan_raises_with_every_violation_listed(
        self, figure1_graph
    ):
        _, handler, root = compile_plan(
            figure1_graph, "MATCH (p:Person) RETURN p"
        )
        root.estimated_cardinality = -2
        root.meta = None
        with pytest.raises(PlanVerificationError) as excinfo:
            verify_plan(root, handler=handler)
        message = str(excinfo.value)
        assert "cardinality-invalid" in message
        assert "meta-missing" in message
        assert len(excinfo.value.violations) >= 2

"""Liveness-driven plan pruning: equivalence, flow-cleanliness, byte wins."""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import differential_check, fusion_differential_check, verify_flow
from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner, MatchStrategy
from repro.engine.operators.leaves import SelectAndProjectVertices
from repro.engine.planning import (
    ExhaustivePlanner,
    GreedyPlanner,
    LeftDeepPlanner,
    prune_plan,
)
from repro.harness.microbench import plan_bytes_moved
from repro.harness.queries import ALL_QUERIES, instantiate
from repro.ldbc import LDBCGenerator
from tests.analysis.test_property import _fresh_graph, cypher_queries

PLANNERS = [GreedyPlanner, ExhaustivePlanner, LeftDeepPlanner]

DEAD_PROP_QUERY = (
    "MATCH (a:Person)-[e:knows]->(b:Person) "
    "WHERE a.name = 'Alice' RETURN e, b.name"
)


def rows_multiset(runner, query):
    return Counter(map(repr, runner.execute_table(query)))


def find_leaf(root, variable):
    stack = [root]
    while stack:
        node = stack.pop()
        if (
            isinstance(node, SelectAndProjectVertices)
            and node.query_vertex.variable == variable
        ):
            return node
        stack.extend(node.children)
    raise AssertionError("plan contains no leaf for %r" % variable)


class TestLeafNarrowing:
    def test_predicate_only_key_never_enters_embeddings(self, figure1_graph):
        runner = CypherRunner(figure1_graph, prune=True)
        _, root = runner.compile(DEAD_PROP_QUERY)
        leaf = find_leaf(root, "a")
        assert "name" not in leaf.property_keys
        # the predicate still applied: only Alice's edges survive
        rows = runner.execute_table(DEAD_PROP_QUERY)
        baseline = CypherRunner(figure1_graph).execute_table(DEAD_PROP_QUERY)
        assert sorted(map(repr, rows)) == sorted(map(repr, baseline))

    def test_clean_plan_is_returned_untouched(self, figure1_graph):
        plain = CypherRunner(figure1_graph)
        query = "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a, e, b"
        handler, root = plain.compile(query)
        assert prune_plan(root, handler) is root

    def test_pruned_plan_keeps_estimates(self, figure1_graph):
        plain = CypherRunner(figure1_graph)
        handler, root = plain.compile(DEAD_PROP_QUERY)
        pruned = prune_plan(root, handler)
        assert pruned is not root
        assert pruned.estimated_cardinality == root.estimated_cardinality

    def test_prune_is_part_of_the_plan_cache_key(self, figure1_graph):
        on = CypherRunner(figure1_graph, prune=True)
        off = CypherRunner(figure1_graph)
        assert on.plan_cache_key("RETURN 1") != off.plan_cache_key("RETURN 1")

    def test_narrowing_projection_sits_above_last_consumer(
        self, figure1_graph
    ):
        # b.name is a return item, a.name only a predicate operand: the
        # rewritten plan must not carry a.name anywhere
        runner = CypherRunner(figure1_graph, prune=True)
        _, root = runner.compile(DEAD_PROP_QUERY)
        stack = [root]
        while stack:
            node = stack.pop()
            if node.meta is not None:
                assert ("a", "name") not in set(node.meta.property_entries())
            stack.extend(node.children)


@pytest.fixture(scope="module")
def ldbc():
    dataset = LDBCGenerator(scale_factor=0.03, seed=11).generate()
    graph = dataset.to_logical_graph(ExecutionEnvironment())
    return dataset, graph


class TestLDBCEquivalence:
    """Q1-Q6 × three planners: pruning must be observationally invisible."""

    @pytest.mark.parametrize("planner_cls", PLANNERS)
    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_pruned_equals_original_and_reproves_flow(
        self, ldbc, name, planner_cls
    ):
        dataset, graph = ldbc
        query = instantiate(ALL_QUERIES[name], dataset.first_name("medium"))
        plain = CypherRunner(graph, planner_cls=planner_cls)
        pruned = CypherRunner(graph, planner_cls=planner_cls, prune=True)
        assert rows_multiset(plain, query) == rows_multiset(pruned, query)
        _, root = pruned.compile(query)
        report = verify_flow(root)
        assert report.proven, [d.format() for d in report.diagnostics]

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_pruned_differential_is_clean(self, ldbc, name):
        dataset, graph = ldbc
        query = instantiate(ALL_QUERIES[name], dataset.first_name("medium"))
        report = differential_check(graph, query, prune=True)
        assert report.clean, [d.format() for d in report.diagnostics]

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_pruned_fusion_differential_is_clean(self, ldbc, name):
        dataset, graph = ldbc
        query = instantiate(ALL_QUERIES[name], dataset.first_name("medium"))
        report = fusion_differential_check(graph, query, prune=True)
        assert report.clean, [d.format() for d in report.diagnostics]

    @pytest.mark.parametrize("name", ["Q1", "Q2"])
    def test_pruning_reduces_embedding_bytes(self, ldbc, name):
        # the BENCH_7 claim: queries with predicate-only properties move
        # strictly fewer embedding bytes once pruned
        dataset, graph = ldbc
        query = instantiate(ALL_QUERIES[name], dataset.first_name("low"))
        plain = CypherRunner(graph)
        pruned = CypherRunner(graph, prune=True)
        _, plain_root = plain.compile(query)
        _, pruned_root = pruned.compile(query)
        assert plan_bytes_moved(pruned_root) < plan_bytes_moved(plain_root)

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_pruning_never_grows_a_plan(self, ldbc, name):
        dataset, graph = ldbc
        query = instantiate(ALL_QUERIES[name], dataset.first_name("medium"))
        plain = CypherRunner(graph)
        pruned = CypherRunner(graph, prune=True)
        _, plain_root = plain.compile(query)
        _, pruned_root = pruned.compile(query)
        assert plan_bytes_moved(pruned_root) <= plan_bytes_moved(plain_root)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    query=cypher_queries(),
    planner_index=st.integers(0, len(PLANNERS) - 1),
    vertex_iso=st.booleans(),
    edge_iso=st.booleans(),
)
def test_pruned_plans_are_result_equivalent(
    query, planner_index, vertex_iso, edge_iso
):
    """Generated queries × 3 planners × homo/iso: pruning changes nothing."""
    graph = _fresh_graph()
    vertex_strategy = MatchStrategy.ISOMORPHISM if vertex_iso else None
    edge_strategy = (
        MatchStrategy.ISOMORPHISM if edge_iso else MatchStrategy.HOMOMORPHISM
    )
    plain = CypherRunner(
        graph,
        planner_cls=PLANNERS[planner_index],
        vertex_strategy=vertex_strategy,
        edge_strategy=edge_strategy,
    )
    pruned = CypherRunner(
        graph,
        planner_cls=PLANNERS[planner_index],
        vertex_strategy=vertex_strategy,
        edge_strategy=edge_strategy,
        prune=True,
    )
    assert rows_multiset(plain, query) == rows_multiset(pruned, query)

"""The shipped wire-protocol models and their re-planted PR 8 bugs.

Every unmutated model must verify clean with a fully explored state
space; every registered mutation must be *caught* with a
counterexample trace of at most 20 steps.  The three bugs PR 8's
review pass found by hand — spec-cache desync, crash mis-scoping,
cancellation-mark leaks — are pinned individually with asserts on the
violation messages, so the models cannot quietly stop covering them.
"""

import pytest

from repro.analysis.model import check
from repro.analysis.wire_models import (
    MODELS,
    MUTATIONS,
    cancel_done_model,
    check_all,
    crash_scope_model,
    ring_model,
    spec_cache_model,
)


@pytest.mark.parametrize("name", sorted(MODELS))
def test_shipped_model_verifies_clean(name):
    result = check(MODELS[name]())
    assert result.ok, [d.format() for d in result.diagnostics]
    assert result.complete, "state space not exhausted for %s" % name
    assert result.states_explored < 10000, (
        "model %s grew past the keep-it-small design bound" % name
    )


def test_check_all_covers_every_registered_model():
    results = check_all()
    assert set(results) == set(MODELS)
    assert all(r.ok and r.complete for r in results.values())


@pytest.mark.parametrize(
    "name,mutation",
    [(name, mutation) for name in sorted(MUTATIONS)
     for mutation in MUTATIONS[name]],
)
def test_every_mutation_is_caught_with_a_short_trace(name, mutation):
    result = check(MODELS[name](mutation=mutation))
    assert not result.ok, "%s:%s slipped through" % (name, mutation)
    assert {d.code for d in result.diagnostics} <= {"W506", "W507", "W508"}
    assert len(result.trace) <= 20, (
        "%s:%s counterexample has %d steps"
        % (name, mutation, len(result.trace))
    )


def test_unknown_mutation_is_rejected():
    with pytest.raises(ValueError):
        ring_model(mutation="made_up")


# --- the three PR 8 bugs, pinned individually --------------------------------


def test_replanted_spec_cache_desync():
    """PR 8 bug 1: the pool's mirror stopped replaying evictions."""
    result = check(spec_cache_model(mutation="desync"))
    [diagnostic] = result.diagnostics
    assert diagnostic.code == "W508"
    assert "evicted from the worker cache" in diagnostic.message
    # the classic shape: fill the LRU past its limit, then revisit the
    # evicted key — the mutated mirror never re-ships it
    assert len(result.trace) <= 20


def test_replanted_crash_mis_scoping():
    """PR 8 bug 2: a crash notice failed every active job."""
    result = check(crash_scope_model(mutation="shared_notice_bug"))
    [diagnostic] = result.diagnostics
    assert diagnostic.code == "W508"
    assert "no task of it was placed on the dead worker" in (
        diagnostic.message
    )
    assert len(result.trace) <= 20


def test_replanted_cancellation_mark_leak():
    """PR 8 bug 3: size-bounded pruning forgot live cancel marks."""
    result = check(cancel_done_model(mutation="prune_marks"))
    [diagnostic] = result.diagnostics
    assert diagnostic.code == "W508"
    assert "cancel mark was pruned" in diagnostic.message
    assert len(result.trace) <= 20


def test_early_done_confirmation_is_also_caught():
    """The nearly-wrong edge: ``done`` before every task collected."""
    result = check(cancel_done_model(mutation="early_done"))
    [diagnostic] = result.diagnostics
    assert diagnostic.code == "W508"
    assert "after its done confirmation" in diagnostic.message


def test_ring_one_slot_reserve_is_load_bearing():
    """Dropping the one-slot-empty reserve corrupts unread payloads."""
    result = check(ring_model(mutation="no_reserve"))
    [diagnostic] = result.diagnostics
    assert diagnostic.code == "W508"
    assert "overlaps unread segment" in diagnostic.message

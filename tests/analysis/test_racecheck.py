"""The static lock-discipline linter: C3xx corpus + the tree stays clean.

Each corpus snippet pins one diagnostic the way the S2xx corruption
fixtures pin the sanitizer codes; the integration tests then assert the
real ``src/repro`` tree is racecheck-clean and that the planted-race
fixture is caught.
"""

import os
import textwrap

from repro.analysis.concurrency import racecheck_paths, racecheck_source
from repro.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)
)))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")
PLANTED = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "planted_race.py")


def check(snippet):
    return racecheck_source(textwrap.dedent(snippet), "snippet.py")


def codes(report):
    return [d.code for d in report.diagnostics]


# C301: unguarded field access ------------------------------------------------

def test_c301_unguarded_write():
    report = check("""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0  # guarded-by: _lock

            def bump(self):
                self.value += 1
    """)
    assert codes(report) == ["C301"]
    assert "write of Counter.value" in report.diagnostics[0].message


def test_c301_unguarded_read():
    report = check("""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0  # guarded-by: _lock

            def peek(self):
                return self.value
    """)
    assert codes(report) == ["C301"]
    assert "read of Counter.value" in report.diagnostics[0].message


def test_c301_satisfied_by_with_lock():
    report = check("""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0  # guarded-by: _lock

            def bump(self):
                with self._lock:
                    self.value += 1
    """)
    assert codes(report) == []


def test_c301_wrong_lock_does_not_satisfy():
    report = check("""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._other = threading.Lock()
                self.value = 0  # guarded-by: _lock

            def bump(self):
                with self._other:
                    self.value += 1
    """)
    assert codes(report) == ["C301"]


def test_c301_init_is_exempt():
    report = check("""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0  # guarded-by: _lock
                self.value = 1
    """)
    assert codes(report) == []


def test_c301_cross_object_access():
    report = check("""
        import threading

        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self.hits = 0  # guarded-by: _lock

        class Cache:
            def __init__(self):
                self.stats = Stats()

            def hit(self):
                self.stats.hits += 1

            def hit_locked(self):
                with self.stats._lock:
                    self.stats.hits += 1
    """)
    assert codes(report) == ["C301"]
    assert "Stats.hits" in report.diagnostics[0].message


def test_c301_requires_lock_directive_trusted():
    report = check("""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0  # guarded-by: _lock

            def _bump_locked(self):  # requires-lock: _lock
                self.value += 1
    """)
    assert codes(report) == []


def test_c301_nested_function_assumes_no_locks():
    report = check("""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0  # guarded-by: _lock

            def bump_async(self):
                with self._lock:
                    def worker():
                        self.value += 1
                    return worker
    """)
    assert codes(report) == ["C301"]


def test_unsynchronized_acknowledged_not_flagged():
    report = check("""
        class Flag:
            def __init__(self):
                self.done = False  # unsynchronized: monotone flag

            def set(self):
                self.done = True
    """)
    assert codes(report) == []
    assert report.acknowledged == 1


def test_racecheck_ignore_suppresses():
    report = check("""
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0  # guarded-by: _lock

            def bump(self):
                self.value += 1  # racecheck: ignore[C301]
    """)
    assert codes(report) == []
    assert report.suppressed == 1


# C302: lock-order inversion ---------------------------------------------------

def test_c302_inversion_reported():
    report = check("""
        import threading

        class Inverted:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def forward(self):
                with self._a:
                    with self._b:
                        pass

            def backward(self):
                with self._b:
                    with self._a:
                        pass
    """)
    assert codes(report) == ["C302"]
    assert "Inverted._a" in report.diagnostics[0].message
    assert "Inverted._b" in report.diagnostics[0].message


def test_c302_consistent_order_clean():
    report = check("""
        import threading

        class Ordered:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def one(self):
                with self._a:
                    with self._b:
                        pass

            def two(self):
                with self._a:
                    with self._b:
                        pass
    """)
    assert codes(report) == []
    assert ("Ordered._a", "Ordered._b") in report.lock_graph


def test_c302_cross_class_via_call_expansion():
    report = check("""
        import threading

        class Leaf:
            def __init__(self):
                self._lock = threading.Lock()

            def poke(self):
                with self._lock:
                    pass

        class Root:
            def __init__(self):
                self._lock = threading.Lock()
                self.leaf = Leaf()

            def outer(self):
                with self._lock:
                    self.leaf.poke()
    """)
    assert codes(report) == []
    assert ("Root._lock", "Leaf._lock") in report.lock_graph


# C303: blocking call under a lock --------------------------------------------

def test_c303_sleep_under_lock():
    report = check("""
        import threading
        import time

        class Sleeper:
            def __init__(self):
                self._lock = threading.Lock()

            def nap(self):
                with self._lock:
                    time.sleep(1)
    """)
    assert codes(report) == ["C303"]
    assert "time.sleep" in report.diagnostics[0].message


def test_c303_queue_get_under_lock():
    report = check("""
        import queue
        import threading

        class Pump:
            def __init__(self):
                self._lock = threading.Lock()
                self.inbox = queue.Queue()

            def drain_one(self):
                with self._lock:
                    return self.inbox.get()
    """)
    assert codes(report) == ["C303"]


def test_c303_future_result_under_lock():
    report = check("""
        import threading

        class Runner:
            def __init__(self):
                self._lock = threading.Lock()

            def run(self, pool, fn):
                with self._lock:
                    future = pool.submit(fn)
                    return future.result()
    """)
    assert codes(report) == ["C303"]


def test_c303_sleep_outside_lock_clean():
    report = check("""
        import time

        def backoff():
            time.sleep(0.1)
    """)
    assert codes(report) == []


# C304: per-call locks ---------------------------------------------------------

def test_c304_inline_with_lock():
    report = check("""
        import threading

        def guard_nothing():
            with threading.Lock():
                pass
    """)
    assert codes(report) == ["C304"]


def test_c304_local_lock():
    report = check("""
        import threading

        def guard_nothing():
            lock = threading.Lock()
            with lock:
                pass
    """)
    assert codes(report) == ["C304"]


def test_c304_instance_lock_clean():
    report = check("""
        import threading

        class Holder:
            def __init__(self):
                self._lock = threading.Lock()

            def use(self):
                with self._lock:
                    pass
    """)
    assert codes(report) == []


# C305: unknown guard ----------------------------------------------------------

def test_c305_unknown_guard_warning():
    report = check("""
        class Confused:
            def __init__(self):
                self.value = 0  # guarded-by: _mutex
    """)
    assert codes(report) == ["C305"]
    assert report.diagnostics[0].severity.value == "warning"


# C306: blocking pipe IPC under a lock -----------------------------------------

def test_c306_pipe_send_under_lock():
    report = check("""
        import threading

        class Pool:
            def __init__(self):
                self.lock = threading.Lock()
                self.req_conn = make_pipe()

            def dispatch(self, batch):
                with self.lock:
                    self.req_conn.send(batch)
    """)
    assert codes(report) == ["C306"]
    assert "blocking pipe IPC req_conn.send()" in (
        report.diagnostics[0].message
    )


def test_c306_conn_recv_preferred_over_c303():
    """``.recv()`` on a connection is the specific C306, not C303."""
    report = check("""
        import threading

        class Pool:
            def __init__(self):
                self.lock = threading.Lock()

            def drain(self, conn):
                with self.lock:
                    return conn.recv()
    """)
    assert codes(report) == ["C306"]


def test_c306_socket_recv_still_c303():
    report = check("""
        import threading

        class Server:
            def __init__(self):
                self.lock = threading.Lock()
                self.sock = connect()

            def pull(self):
                with self.lock:
                    return self.sock.recv(4096)
    """)
    assert codes(report) == ["C303"]


def test_c306_annotated_leaf_lock_send_suppressed():
    report = check("""
        import threading

        class Pool:
            def __init__(self):
                self.lock = threading.Lock()
                self.req_conn = make_pipe()

            def dispatch(self, batch):
                with self.lock:
                    self.req_conn.send(batch)  # racecheck: ignore[C306]
    """)
    assert codes(report) == []


def test_c306_send_outside_lock_clean():
    report = check("""
        class Pool:
            def dispatch(self, conn, batch):
                conn.send(batch)
    """)
    assert codes(report) == []


# Integration: the real tree and the planted race ------------------------------

def test_src_repro_is_racecheck_clean():
    report = racecheck_paths([SRC_REPRO])
    assert report.errors == 0, "\n".join(
        d.format() for d in report.diagnostics
    )
    assert report.warnings == 0
    assert report.guarded_fields >= 20
    # the two intended cross-class edges exist, and the static graph
    # stays acyclic by construction (a cycle would be a C302 error)
    assert ("LRUCache._lock", "CacheStats._lock") in report.lock_graph


def test_planted_race_caught_statically():
    report = racecheck_paths([PLANTED])
    c301 = [d for d in report.diagnostics if d.code == "C301"]
    assert len(c301) == 2  # the stale read and the lost-update write
    assert all("PlantedCounter.value" in d.message for d in c301)


# CLI exit codes ---------------------------------------------------------------

def cli(tmp_path, source, extra=()):
    path = tmp_path / "unit.py"
    path.write_text(textwrap.dedent(source))
    return main(["racecheck", str(path)] + list(extra))


def test_cli_exit_0_clean(tmp_path, capsys):
    assert cli(tmp_path, "x = 1\n") == 0
    assert "0 error(s)" in capsys.readouterr().err


def test_cli_exit_1_errors(tmp_path, capsys):
    code = cli(tmp_path, """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.value = 0  # guarded-by: _lock

            def bump(self):
                self.value += 1
    """)
    assert code == 1
    assert "C301" in capsys.readouterr().out


def test_cli_exit_2_syntax_error(tmp_path, capsys):
    assert cli(tmp_path, "def broken(:\n") == 2
    assert "syntax error" in capsys.readouterr().err


def test_cli_exit_3_warnings_only(tmp_path):
    code = cli(tmp_path, """
        class Confused:
            def __init__(self):
                self.value = 0  # guarded-by: _mutex
    """)
    assert code == 3


def test_cli_verbose_prints_graph(tmp_path, capsys):
    code = cli(tmp_path, """
        import threading

        class Ordered:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def one(self):
                with self._a:
                    with self._b:
                        pass
    """, extra=["--verbose"])
    assert code == 0
    err = capsys.readouterr().err
    assert "static lock-order graph" in err
    assert "Ordered._a" in err


def test_cli_racecheck_src_repro_exits_zero(capsys):
    assert main(["racecheck", SRC_REPRO]) == 0
    capsys.readouterr()

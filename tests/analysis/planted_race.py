"""A deliberately racy fixture class, mirroring the S2xx corruption
fixtures: both concurrency detectors must catch it.

``PlantedCounter.increment_racy`` reads ``value``, yields the scheduler
(via the fuzz context's step point), then writes the stale value back —
the classic lost-update window.  The static linter flags the unguarded
accesses (C301) from the ``# guarded-by`` annotation alone; the
interleaving fuzzer loses updates on nearly every adversarial schedule.
``increment_safe`` is the fixed version both detectors accept.
"""

import threading


class PlantedCounter:
    """Shared counter with a declared guard its racy path ignores."""

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0  # guarded-by: _lock

    def increment_racy(self, fuzz=None):
        stale = self.value
        if fuzz is not None:
            fuzz.step()
        self.value = stale + 1

    def increment_safe(self, fuzz=None):
        with self._lock:
            stale = self.value
            if fuzz is not None:
                fuzz.step()
            self.value = stale + 1

    def read(self):
        with self._lock:
            return self.value

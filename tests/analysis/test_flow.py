"""Static layout-flow verifier: planted violations and proven plans.

Mirrors ``test_sanitizer.py``'s corruption corpus one layer up: each
``S3xx`` code gets a fixture planting the *specific* plan defect it
exists to refute — a corrupted declared metadata, a mutated join-variable
list, malformed hop bounds, an operator without a transfer rule — while
the acceptance contract proves LDBC Q1–Q6 layout-safe under every
planner without executing a single embedding.
"""

import dataclasses

import pytest

from repro.analysis import (
    FlowVerificationError,
    assert_flow,
    verify_flow,
)
from repro.cypher.query_graph import QueryVertex
from repro.dataflow import ExecutionEnvironment
from repro.engine import (
    CypherRunner,
    EmbeddingMetaData,
    MatchStrategy,
    PhysicalOperator,
)
from repro.engine.operators.expand import ExpandEmbeddings
from repro.engine.operators.filter_project import ProjectEmbeddings
from repro.engine.operators.join import JoinEmbeddings
from repro.engine.operators.leaves import (
    SelectAndProjectEdges,
    SelectAndProjectVertices,
)
from repro.engine.planning import (
    ExhaustivePlanner,
    GreedyPlanner,
    LeftDeepPlanner,
)
from repro.harness.queries import ALL_QUERIES, instantiate
from repro.ldbc import LDBCGenerator

PLANNERS = [GreedyPlanner, ExhaustivePlanner, LeftDeepPlanner]

EDGE_QUERY = "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a"
TWO_HOP = (
    "MATCH (a:Person)-[e:knows]->(b:Person), (b)-[f:knows]->(c:Person) "
    "RETURN a"
)
PATH_QUERY = "MATCH (a:Person)-[e:knows*1..2]->(b:Person) RETURN a"
CARTESIAN = "MATCH (a:Person), (c:City) RETURN a, c"


def codes_of(report):
    return [d.code for d in report.diagnostics]


def find_op(root, cls):
    stack = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, cls):
            return node
        stack.extend(node.children)
    raise AssertionError("plan contains no %s" % cls.__name__)


class TestProvenPlans:
    @pytest.mark.parametrize("planner_cls", PLANNERS)
    @pytest.mark.parametrize(
        "query", [EDGE_QUERY, TWO_HOP, PATH_QUERY, CARTESIAN]
    )
    def test_compiled_plans_are_proven(self, figure1_graph, planner_cls, query):
        runner = CypherRunner(figure1_graph, planner_cls=planner_cls)
        _, root = runner.compile(query)
        report = verify_flow(root)
        assert report.proven, report.format_summary()
        assert report.diagnostics == []
        assert "layout proven" in report.format_summary()

    def test_iso_compiled_plan_proven_under_iso(self, figure1_graph):
        runner = CypherRunner(
            figure1_graph, vertex_strategy=MatchStrategy.ISOMORPHISM
        )
        _, root = runner.compile(EDGE_QUERY)
        report = verify_flow(
            root, vertex_strategy=MatchStrategy.ISOMORPHISM
        )
        assert report.proven, report.format_summary()

    def test_report_layout_matches_declared_meta(self, figure1_graph):
        _, root = CypherRunner(figure1_graph).compile(PATH_QUERY)
        report = verify_flow(root)
        layout = report.layout_of(root)
        assert layout is not None
        assert layout.variables == list(root.meta.variables)
        assert layout.kind_of("e") == "p"
        assert layout.path_bounds["e"] == (1, 2)

    def test_runner_flowcheck_entry_point(self, figure1_graph):
        report = CypherRunner(figure1_graph).flowcheck(EDGE_QUERY)
        assert report.proven

    def test_assert_flow_returns_report_when_proven(self, figure1_graph):
        _, root = CypherRunner(figure1_graph).compile(EDGE_QUERY)
        assert assert_flow(root).proven


class _Opaque(PhysicalOperator):
    """An operator the verifier has no transfer rule for."""

    display = "Opaque"

    def __init__(self, children, meta):
        super().__init__(children)
        self.meta = meta


class TestPlantedViolations:
    def test_missing_metadata_is_s301(self, figure1_graph):
        _, root = CypherRunner(figure1_graph).compile(EDGE_QUERY)
        root.meta = None
        assert "S301" in codes_of(verify_flow(root))

    def test_declared_width_mismatch_is_s301(self, figure1_graph):
        _, root = CypherRunner(figure1_graph).compile(EDGE_QUERY)
        # declare one column more than the plan can produce
        root.meta = root.meta.with_entry("zz", "v")
        report = verify_flow(root)
        assert "S301" in codes_of(report)
        assert not report.proven

    def test_declared_kind_mismatch_is_s302(self, figure1_graph):
        leaf = SelectAndProjectVertices(
            figure1_graph, QueryVertex(variable="a", labels=["Person"]), []
        )
        leaf.meta = EmbeddingMetaData({"a": (0, "e")})  # vertex declared edge
        assert "S302" in codes_of(verify_flow(leaf))

    def test_unjoined_duplicate_variable_is_s302(self, figure1_graph):
        _, root = CypherRunner(figure1_graph).compile(TWO_HOP)
        join = find_op(root, JoinEmbeddings)
        join.join_variables = []  # degrade the join to a raw merge
        report = verify_flow(root)
        assert "S302" in codes_of(report)
        assert any(
            "bound on both inputs" in d.message for d in report.diagnostics
        )

    def test_malformed_hop_bounds_is_s303(self, figure1_graph):
        _, root = CypherRunner(figure1_graph).compile(PATH_QUERY)
        expand = find_op(root, ExpandEmbeddings)
        expand.query_edge = dataclasses.replace(
            expand.query_edge, lower=2, upper=1
        )
        assert "S303" in codes_of(verify_flow(root))

    def test_path_column_without_bounds_is_s303(self, figure1_graph):
        # an unknown operator declaring a PATH column but no hop bounds
        meta = EmbeddingMetaData().with_entry("p", "p")
        report = verify_flow(_Opaque([], meta))
        codes = codes_of(report)
        assert "S303" in codes
        assert "S308" in codes

    def test_property_sequence_drift_is_s304(self, figure1_graph):
        leaf = SelectAndProjectVertices(
            figure1_graph,
            QueryVertex(variable="a", labels=["Person"]),
            ["name"],
        )
        # declare a property record the leaf never loads (dead bytes)
        leaf.meta = leaf.meta.with_property("a", "gender")
        assert codes_of(verify_flow(leaf)) == ["S304"]

    def test_homo_plan_is_not_proven_under_iso_is_s305(self, figure1_graph):
        # compiled for homomorphism: the edge leaf keeps data self-loops,
        # which an isomorphism execution would have to reject per record
        _, root = CypherRunner(figure1_graph).compile(EDGE_QUERY)
        leaf = find_op(root, SelectAndProjectEdges)
        assert not leaf.distinct_endpoints
        report = verify_flow(
            root, vertex_strategy=MatchStrategy.ISOMORPHISM
        )
        assert "S305" in codes_of(report)
        assert not report.proven

    def test_unbound_join_variable_is_s306(self, figure1_graph):
        _, root = CypherRunner(figure1_graph).compile(TWO_HOP)
        join = find_op(root, JoinEmbeddings)
        join.join_variables = ["z"]
        assert "S306" in codes_of(verify_flow(root))

    def test_unbound_expansion_start_is_s306(self, figure1_graph):
        _, root = CypherRunner(figure1_graph).compile(PATH_QUERY)
        expand = find_op(root, ExpandEmbeddings)
        expand.start_variable = "zz"
        report = verify_flow(root)
        assert "S306" in codes_of(report)
        assert any(
            "expansion start" in d.message for d in report.diagnostics
        )

    def test_projection_without_provenance_is_s307(self, figure1_graph):
        leaf = SelectAndProjectVertices(
            figure1_graph,
            QueryVertex(variable="a", labels=["Person"]),
            ["name"],
        )
        project = ProjectEmbeddings(leaf, [("a", "name")])
        project.keep_pairs = [("a", "gender")]  # never loaded upstream
        assert "S307" in codes_of(verify_flow(project))

    def test_unknown_operator_is_s308_warning(self, figure1_graph):
        _, root = CypherRunner(figure1_graph).compile(EDGE_QUERY)
        wrapped = _Opaque([root], root.meta)
        report = verify_flow(wrapped)
        assert [d.code for d in report.warnings] == ["S308"]
        assert report.errors == []
        assert not report.proven  # legal, but not certifiable

    def test_assert_flow_raises_with_diagnostics(self, figure1_graph):
        _, root = CypherRunner(figure1_graph).compile(EDGE_QUERY)
        root.meta = root.meta.with_entry("zz", "v")
        with pytest.raises(FlowVerificationError) as excinfo:
            assert_flow(root)
        assert any(d.code == "S301" for d in excinfo.value.diagnostics)


@pytest.fixture(scope="module")
def ldbc():
    dataset = LDBCGenerator(scale_factor=0.03, seed=11).generate()
    graph = dataset.to_logical_graph(ExecutionEnvironment())
    return dataset, graph


class TestLDBCAcceptance:
    """Q1–Q6 × three planners: every physical plan is layout-proven."""

    @pytest.mark.parametrize("planner_cls", PLANNERS)
    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_paper_query_plans_are_proven(self, ldbc, name, planner_cls):
        dataset, graph = ldbc
        query = instantiate(ALL_QUERIES[name], dataset.first_name("medium"))
        runner = CypherRunner(graph, planner_cls=planner_cls)
        report = runner.flowcheck(query)
        assert report.proven, "%s under %s: %s" % (
            name,
            planner_cls.__name__,
            [d.format() for d in report.diagnostics],
        )

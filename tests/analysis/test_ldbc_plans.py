"""Acceptance: the six paper queries verify under every planner.

This is the analyzer's end-to-end contract on realistic input — LDBC
Q1–Q6 lint without errors and their physical plans satisfy every
structural invariant for the greedy, exhaustive and naive-order planner.
"""

import pytest

from repro.analysis import lint_query, verify_plan
from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner
from repro.engine.planning import (
    ExhaustivePlanner,
    GreedyPlanner,
    LeftDeepPlanner,
)
from repro.harness.queries import ALL_QUERIES, instantiate
from repro.ldbc import LDBCGenerator

PLANNERS = [GreedyPlanner, ExhaustivePlanner, LeftDeepPlanner]


@pytest.fixture(scope="module")
def ldbc():
    dataset = LDBCGenerator(scale_factor=0.03, seed=11).generate()
    graph = dataset.to_logical_graph(ExecutionEnvironment())
    return dataset, graph


@pytest.mark.parametrize("name", sorted(ALL_QUERIES))
def test_query_lints_without_errors(ldbc, name):
    dataset, graph = ldbc
    query = instantiate(ALL_QUERIES[name], dataset.first_name("medium"))
    statistics = CypherRunner(graph).statistics
    diagnostics = lint_query(query, statistics=statistics)
    assert not any(d.is_error for d in diagnostics), diagnostics


@pytest.mark.parametrize("planner_cls", PLANNERS)
@pytest.mark.parametrize("name", sorted(ALL_QUERIES))
def test_plan_verifies_under_every_planner(ldbc, name, planner_cls):
    dataset, graph = ldbc
    query = instantiate(ALL_QUERIES[name], dataset.first_name("medium"))
    runner = CypherRunner(graph, planner_cls=planner_cls)
    handler, root = runner.compile(query)
    assert verify_plan(
        root,
        handler=handler,
        vertex_strategy=runner.vertex_strategy,
        edge_strategy=runner.edge_strategy,
    )

"""Soundness of the static layout-flow verifier.

The claim that licenses ``sanitize="sample"`` (or switching the sanitizer
off entirely) on flowcheck-proven plans: a plan the verifier proves can
never produce an ``S2xx`` finding under fully sanitized execution.  Probed
with generated queries across all three planners and both vertex-morphism
strategies — every compiled plan must be proven, and its sanitized
execution must validate every embedding at every boundary without a
single finding.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import CypherRunner, MatchStrategy
from repro.engine.planning import (
    ExhaustivePlanner,
    GreedyPlanner,
    LeftDeepPlanner,
)
from tests.analysis.test_property import _fresh_graph, cypher_queries

PLANNERS = [GreedyPlanner, ExhaustivePlanner, LeftDeepPlanner]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    query=cypher_queries(),
    planner_index=st.integers(0, len(PLANNERS) - 1),
    iso=st.booleans(),
)
def test_proven_plans_run_sanitized_without_findings(query, planner_index, iso):
    """flowcheck-proven ⇒ zero S2xx under fully sanitized execution."""
    graph = _fresh_graph()
    vertex_strategy = MatchStrategy.ISOMORPHISM if iso else None
    runner = CypherRunner(
        graph,
        planner_cls=PLANNERS[planner_index],
        vertex_strategy=vertex_strategy,
        sanitize=True,
    )
    report = runner.flowcheck(query)
    assert report.proven, "%s under %s (iso=%s): %s" % (
        query,
        PLANNERS[planner_index].__name__,
        iso,
        [d.format() for d in report.diagnostics],
    )
    rows = runner.execute_table(query)  # mode="raise": any S2xx would throw
    sanitizer = runner.last_sanitizer
    assert sanitizer is not None
    if rows:  # an empty match checks nothing — vacuously sound
        assert sanitizer.checked > 0
    assert sanitizer.diagnostics == []


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(query=cypher_queries())
def test_sampled_execution_agrees_with_plain(query):
    """``sanitize="sample"`` changes validation coverage, not results."""
    graph = _fresh_graph()
    plain = CypherRunner(graph).execute_table(query)
    sampled_runner = CypherRunner(graph, sanitize="sample")
    sampled = sampled_runner.execute_table(query)
    assert sampled == plain
    sanitizer = sampled_runner.last_sanitizer
    assert sanitizer is not None
    assert sanitizer.seen >= sanitizer.checked
    assert sanitizer.diagnostics == []

"""The query linter: every diagnostic code must be triggerable.

The corpus below is the acceptance suite for the analyzer — one (or more)
bad queries per registry code, plus clean queries that must stay clean.
"""

import pytest

from repro.analysis import CODES, lint_query
from repro.engine.statistics import GraphStatistics


def codes_of(diagnostics):
    return {diagnostic.code for diagnostic in diagnostics}


#: (query, expected code) — the canonical bad-query corpus.
CORPUS = [
    # E101 unbound-variable
    ("MATCH (a) WHERE missing.age > 5 RETURN a", "E101"),
    ("MATCH (a)-[e]->(b) WHERE c.x = 1 AND a.y = 2 RETURN a, e, b", "E101"),
    # E102 return-unbound-variable
    ("MATCH (a) RETURN ghost.name", "E102"),
    ("MATCH (a) RETURN a ORDER BY ghost.name", "E102"),
    # E103 variable-kind-conflict
    ("MATCH (a)-[a]->(b) RETURN b", "E103"),
    # E104 edge-variable-reused
    ("MATCH (a)-[e]->(b)-[e]->(c) RETURN a, b, c", "E104"),
    # E105 type-mismatch
    ("MATCH (a) WHERE a.name STARTS WITH 'x' AND a.name > 5 RETURN a", "E105"),
    ("MATCH (a) WHERE a.x = 'text' AND a.x > 10 RETURN a", "E105"),
    ("MATCH (a) WHERE 1 > 'one' RETURN a", "E105"),
    # E201 unsatisfiable-predicate
    ("MATCH (a) WHERE a.age > 5 AND a.age < 3 RETURN a", "E201"),
    ("MATCH (a) WHERE a.age >= 5 AND a.age < 5 RETURN a", "E201"),
    ("MATCH (a) WHERE a.x = 1 AND a.x = 2 RETURN a", "E201"),
    ("MATCH (a) WHERE a.x = 1 AND a.x <> 1 RETURN a", "E201"),
    ("MATCH (a) WHERE a.x IN [] RETURN a", "E201"),
    ("MATCH (a) WHERE a.x = NULL RETURN a", "E201"),
    ("MATCH (a) WHERE a.x IS NULL AND a.x = 3 RETURN a", "E201"),
    ("MATCH (a) WHERE a.x IS NULL AND a.x IS NOT NULL RETURN a", "E201"),
    ("MATCH (a) WHERE 1 > 2 RETURN a", "E201"),
    ("MATCH (a {x: 1}) WHERE a.x = 2 RETURN a", "E201"),
    ("MATCH (a) WHERE a.x = 3 AND a.x IN [1, 2] RETURN a", "E201"),
    # E202 conflicting-labels
    ("MATCH (a:Person), (a:City) RETURN a", "E202"),
    ("MATCH (a:Person)-[e]->(b), (a:Tag)-[f]->(b) RETURN a, b, e, f", "E202"),
    # W401 cartesian-product
    ("MATCH (a), (b) RETURN a, b", "W401"),
    ("MATCH (a)-[e]->(b), (c)-[f]->(d) RETURN a, b, c, d, e, f", "W401"),
    # W402 unbounded-path
    ("MATCH (a)-[e*1..]->(b) RETURN a, b", "W402"),
    # W403 shadowed-variable
    ("MATCH (a)-[:knows]->(b) RETURN a.name AS b, b.name AS x", "W403"),
    # W404 unused-variable
    ("MATCH (a)-[e]->(b) RETURN a.name", "W404"),
]

CLEAN = [
    "MATCH (a:Person)-[e:knows]->(b:Person) WHERE a.age > b.age "
    "RETURN a.name, b.name, e",
    "MATCH (a) WHERE a.x = 1 AND a.x > 0 AND a.x <= 1 RETURN a",
    "MATCH (a)-[e*1..3]->(b) RETURN a, b, e",
    "MATCH (a)-[:knows]->(b) RETURN *",
    "MATCH (a) WHERE a.x IN [1, 2] AND a.x = 2 RETURN a",
    "MATCH (a) WHERE a.name STARTS WITH 'A' AND a.name < 'B' RETURN a",
]


@pytest.mark.parametrize("query,code", CORPUS)
def test_corpus_triggers_expected_code(query, code):
    assert code in codes_of(lint_query(query)), query


def test_corpus_covers_at_least_eight_codes():
    covered = {code for _query, code in CORPUS}
    assert len(covered) >= 8


def test_every_statistics_free_code_is_covered():
    # statistics-dependent (W3xx), runtime sanitizer / layout-flow (Sxxx),
    # lock-discipline (C3xx), UDF-shippability (P4xx) and wire-protocol
    # (W5xx) codes are exercised by their own suites, not the static
    # query-linter corpus
    static = {
        code for code in CODES
        if not code.startswith(("S", "C", "P", "W5"))
        and code not in ("W301", "W302")
    }
    covered = {code for _query, code in CORPUS}
    assert covered == static


@pytest.mark.parametrize("query", CLEAN)
def test_clean_queries_stay_clean(query):
    assert lint_query(query) == []


class TestSpans:
    def test_error_points_at_the_offending_token(self):
        (diagnostic,) = [
            d for d in lint_query("MATCH (a) WHERE zz.age > 5 RETURN a")
            if d.code == "E101"
        ]
        assert diagnostic.span is not None
        assert diagnostic.span.line == 1
        assert diagnostic.span.column == 17
        assert diagnostic.variable == "zz"

    def test_multiline_queries_report_real_lines(self):
        query = "MATCH (a)\nWHERE zz.age > 5\nRETURN a"
        (diagnostic,) = [
            d for d in lint_query(query) if d.code == "E101"
        ]
        assert diagnostic.span.line == 2


class TestStatisticsChecks:
    @pytest.fixture
    def statistics(self, figure1_graph):
        return GraphStatistics.from_graph(figure1_graph)

    def test_unknown_vertex_label_warns(self, statistics):
        diagnostics = lint_query(
            "MATCH (d:Dragon) RETURN d", statistics=statistics
        )
        assert "W301" in codes_of(diagnostics)

    def test_unknown_edge_type_warns(self, statistics):
        diagnostics = lint_query(
            "MATCH (a)-[:despises]->(b) RETURN a, b", statistics=statistics
        )
        assert "W302" in codes_of(diagnostics)

    def test_label_alternation_with_one_live_label_is_clean(self, statistics):
        diagnostics = lint_query(
            "MATCH (p:Person|Dragon) RETURN p", statistics=statistics
        )
        assert "W301" not in codes_of(diagnostics)

    def test_known_labels_do_not_warn(self, statistics):
        diagnostics = lint_query(
            "MATCH (p:Person)-[:knows]->(q:Person) RETURN p, q",
            statistics=statistics,
        )
        assert codes_of(diagnostics) == set()

    def test_without_statistics_no_statistics_codes(self):
        diagnostics = lint_query("MATCH (d:Dragon) RETURN d")
        assert codes_of(diagnostics) == set()


class TestSatisfiabilityPrecision:
    """The solver must stay sound: satisfiable queries are never flagged."""

    @pytest.mark.parametrize(
        "query",
        [
            # disjunctions are out of scope, never flagged
            "MATCH (a) WHERE a.x = 1 OR a.x = 2 RETURN a",
            "MATCH (a) WHERE NOT (a.x = 1 AND a.x = 2) RETURN a",
            # cross-variable and property-to-property comparisons
            "MATCH (a)-[:knows]->(b) WHERE a.x > 5 AND b.x < 3 RETURN a, b",
            "MATCH (a) WHERE a.x < a.y RETURN a",
            # boundary-inclusive range is non-empty
            "MATCH (a) WHERE a.x >= 5 AND a.x <= 5 RETURN a",
        ],
    )
    def test_satisfiable_is_not_flagged(self, query):
        assert not any(d.code in ("E201", "E202", "E105")
                       for d in lint_query(query))

    def test_equal_bounds_with_strict_operator_is_empty(self):
        diagnostics = lint_query(
            "MATCH (a) WHERE a.x > 5 AND a.x <= 5 RETURN a"
        )
        assert "E201" in codes_of(diagnostics)

    def test_float_int_bounds_compare_numerically(self):
        diagnostics = lint_query(
            "MATCH (a) WHERE a.x > 5.5 AND a.x < 5 RETURN a"
        )
        assert "E201" in codes_of(diagnostics)

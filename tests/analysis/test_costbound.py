"""Static cost bounds (S405), bound soundness (S406), admission control."""

import math

import pytest

from repro.analysis import audit_bound_soundness, certify_plan
from repro.analysis.costbound import CostCertificate
from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner
from repro.engine.operators.base import PhysicalOperator
from repro.engine.statistics import GraphStatistics
from repro.harness.queries import ALL_QUERIES, instantiate
from repro.ldbc import LDBCGenerator
from repro.server import (
    AdmissionError,
    CostAdmissionError,
    GraphRegistry,
    QueryService,
)

ONE_HOP = "MATCH (a:Person)-[e:knows]->(b:Person) RETURN a, e, b"
EXPAND_1 = "MATCH (a:Person)-[e:knows*1..1]->(b:Person) RETURN a, b"
EXPAND_2 = "MATCH (a:Person)-[e:knows*1..2]->(b:Person) RETURN a, b"

#: worst-case per-operator output stays far below this for every paper
#: query at SF 0.03, while the planted cross product exceeds it by
#: orders of magnitude — the admission threshold used throughout
ADMIT_BOUND = 1_000_000

#: unbounded var-length expansion feeding a cross product: statically
#: explosive, must be rejected before any operator executes
EXPLOSIVE = (
    "MATCH (a:Person)-[e:knows*1..10]->(b:Person), (c:Comment) "
    "RETURN a, b, c"
)


def certificate_of(graph, query, **kwargs):
    runner = CypherRunner(graph, **kwargs)
    _, root = runner.compile(query)
    return certify_plan(root, runner.statistics), runner, root


class TestBoundRules:
    def test_vertex_leaf_bounded_by_label_count(self, figure1_graph):
        certificate, runner, _ = certificate_of(
            figure1_graph, "MATCH (a:Person) RETURN a"
        )
        expected = runner.statistics.vertices_with_labels(["Person"])
        assert certificate.max_cardinality_bound == expected

    def test_edge_leaf_bounded_by_type_count(self, figure1_graph):
        certificate, runner, _ = certificate_of(figure1_graph, ONE_HOP)
        knows = runner.statistics.edges_with_labels(["knows"])
        assert any(
            r.cardinality_bound == knows for r in certificate.records
        )

    def test_undirected_edge_leaf_prices_both_orientations(
        self, figure1_graph
    ):
        certificate, runner, _ = certificate_of(
            figure1_graph, "MATCH (a:Person)-[e:knows]-(b:Person) RETURN e"
        )
        knows = runner.statistics.edges_with_labels(["knows"])
        assert any(
            r.cardinality_bound == 2 * knows for r in certificate.records
        )

    def test_cartesian_product_multiplies(self, figure1_graph):
        certificate, runner, _ = certificate_of(
            figure1_graph, "MATCH (a:Person), (b:Person) RETURN a, b"
        )
        persons = runner.statistics.vertices_with_labels(["Person"])
        assert certificate.max_cardinality_bound == persons * persons

    def test_selection_never_grows_the_bound(self, figure1_graph):
        plain, _, _ = certificate_of(
            figure1_graph, "MATCH (a:Person) RETURN a"
        )
        filtered, _, _ = certificate_of(
            figure1_graph, "MATCH (a:Person) WHERE a.yob > 1900 RETURN a"
        )
        assert (
            filtered.max_cardinality_bound <= plain.max_cardinality_bound
        )

    def test_expand_bound_grows_with_the_hop_ceiling(self, figure1_graph):
        shallow, _, _ = certificate_of(figure1_graph, EXPAND_1)
        deep, _, _ = certificate_of(figure1_graph, EXPAND_2)
        assert shallow.max_cardinality_bound < deep.max_cardinality_bound
        assert deep.max_cardinality_bound < math.inf
        assert deep.total_bytes_bound < math.inf

    def test_certify_requires_statistics(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        _, root = runner.compile(ONE_HOP)
        with pytest.raises(ValueError):
            certify_plan(root, None)

    def test_runner_certify_cost_entry_point(self, figure1_graph):
        certificate = CypherRunner(figure1_graph).certify_cost(ONE_HOP)
        assert certificate.records
        assert certificate.max_cardinality_bound < math.inf
        assert "costbound:" in certificate.format_summary()
        assert "card<=" in certificate.format_table()


class _Opaque(PhysicalOperator):
    """An operator the bound analyzer has no pricing rule for."""

    display = "Opaque"

    def __init__(self, children, meta):
        super().__init__(children)
        self.meta = meta


class TestUnknownOperators:
    def test_unknown_operator_is_unbounded_hence_inadmissible(
        self, figure1_graph
    ):
        runner = CypherRunner(figure1_graph)
        _, root = runner.compile(ONE_HOP)
        certificate = certify_plan(
            _Opaque([root], root.meta), runner.statistics
        )
        assert certificate.max_cardinality_bound == math.inf
        assert certificate.admissible(None)  # no threshold, no gate
        assert not certificate.admissible(10**18)
        diagnostic = certificate.diagnostic(10**18)
        assert diagnostic.code == "S405"
        assert "unbounded" in diagnostic.message


class TestDiagnostics:
    def test_s405_names_the_worst_operator_and_threshold(
        self, figure1_graph
    ):
        certificate, _, _ = certificate_of(figure1_graph, ONE_HOP)
        diagnostic = certificate.diagnostic(1)
        assert diagnostic.code == "S405"
        assert diagnostic.is_error
        assert "exceeds the admission threshold" in diagnostic.message
        assert certificate.worst().operator in diagnostic.message

    def test_admissible_plan_has_no_diagnostic(self, figure1_graph):
        certificate, _, _ = certificate_of(figure1_graph, ONE_HOP)
        assert certificate.diagnostic(ADMIT_BOUND) is None


@pytest.fixture(scope="module")
def ldbc():
    dataset = LDBCGenerator(scale_factor=0.03, seed=11).generate()
    graph = dataset.to_logical_graph(ExecutionEnvironment())
    return dataset, graph


class TestBoundSoundness:
    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_observed_never_exceeds_proven_bound(self, ldbc, name):
        # the q-error audit's hard sibling: estimates may err, bounds
        # may not — any S406 means the bound derivation is wrong
        dataset, graph = ldbc
        query = instantiate(ALL_QUERIES[name], dataset.first_name("medium"))
        runner = CypherRunner(graph)
        _, root = runner.compile(query)
        findings = audit_bound_soundness(root, runner.statistics)
        assert findings == [], [d.format() for d in findings]

    def test_tampered_statistics_are_caught_as_s406(self, figure1_graph):
        # plant the violation: claim knows has zero fan-out, so the
        # expansion bound certifies 0 rows while the plan produces some
        statistics = GraphStatistics.from_graph(figure1_graph)
        statistics.max_out_degree_by_label["knows"] = 0
        runner = CypherRunner(figure1_graph, statistics=statistics)
        _, root = runner.compile(EXPAND_2)
        findings = audit_bound_soundness(root, statistics)
        assert any(d.code == "S406" for d in findings)
        assert all(d.is_error for d in findings)


class TestStatisticsPersistence:
    def test_degree_maps_round_trip(self, figure1_graph):
        statistics = GraphStatistics.from_graph(figure1_graph)
        restored = GraphStatistics.from_dict(statistics.to_dict())
        assert (
            restored.max_out_degree_by_label
            == statistics.max_out_degree_by_label
        )
        assert (
            restored.max_in_degree_by_label
            == statistics.max_in_degree_by_label
        )
        assert restored.max_out_degree(["knows"]) == (
            statistics.max_out_degree(["knows"])
        )

    def test_legacy_dict_without_degrees_falls_back(self, figure1_graph):
        statistics = GraphStatistics.from_graph(figure1_graph)
        legacy = statistics.to_dict()
        del legacy["max_out_degree_by_label"]
        del legacy["max_in_degree_by_label"]
        restored = GraphStatistics.from_dict(legacy)
        # sound but looser: any vertex's fan-out is bounded by the
        # number of matching edges
        assert restored.max_out_degree(["knows"]) == (
            restored.edges_with_labels(["knows"])
        )
        assert restored.max_in_degree(["knows"]) == (
            restored.edges_with_labels(["knows"])
        )


@pytest.fixture(scope="module")
def admitting_service(ldbc):
    _, graph = ldbc
    registry = GraphRegistry()
    registry.register("ldbc", graph)
    with QueryService(
        registry, max_concurrency=2, max_cost_bound=ADMIT_BOUND
    ) as service:
        yield service


class TestAdmissionControl:
    def test_normal_query_is_admitted(self, admitting_service):
        result = admitting_service.execute(
            "ldbc", "MATCH (p:Person)-[:knows]->(q:Person) RETURN p, q"
        )
        assert result.row_count > 0

    def test_explosive_query_rejected_before_execution(
        self, admitting_service
    ):
        with pytest.raises(CostAdmissionError) as excinfo:
            admitting_service.execute("ldbc", EXPLOSIVE)
        error = excinfo.value
        assert isinstance(error, AdmissionError)
        assert isinstance(error.certificate, CostCertificate)
        assert error.diagnostic.code == "S405"
        assert error.certificate.max_cardinality_bound > ADMIT_BOUND
        assert admitting_service.metrics.snapshot()["rejected"] >= 1

    def test_prepared_path_is_gated_too(self, admitting_service, ldbc):
        dataset, _ = ldbc
        handle = admitting_service.prepare(
            "ldbc",
            "MATCH (a:Person)-[e:knows*1..10]->(b:Person), (c:Comment) "
            "WHERE a.firstName = $name RETURN a, b, c",
        )
        with pytest.raises(CostAdmissionError):
            admitting_service.execute_prepared(
                handle.statement_id, {"name": dataset.first_name("medium")}
            )

    def test_prepared_admissible_query_runs(self, admitting_service, ldbc):
        dataset, _ = ldbc
        handle = admitting_service.prepare(
            "ldbc",
            "MATCH (p:Person) WHERE p.firstName = $name RETURN p.firstName",
        )
        result = admitting_service.execute_prepared(
            handle.statement_id, {"name": dataset.first_name("low")}
        )
        assert result.row_count > 0

    def test_no_threshold_means_no_gate(self, ldbc):
        _, graph = ldbc
        registry = GraphRegistry()
        registry.register("ldbc", graph)
        with QueryService(registry, max_concurrency=1) as service:
            # default service: no threshold, no rejection — the gate is
            # strictly opt-in so existing deployments are untouched
            assert service.max_cost_bound is None
            result = service.execute(
                "ldbc", "MATCH (p:Person) RETURN p.firstName"
            )
            assert result.row_count > 0
            assert service.metrics.snapshot()["rejected"] == 0

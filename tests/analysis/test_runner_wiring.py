"""Linter and verifier wiring inside CypherRunner and the CLI."""

import pytest

from repro.analysis import QueryLintError
from repro.cli import main as cli_main
from repro.cypher.errors import CypherSemanticError
from repro.engine import CypherRunner


class TestRunnerLinting:
    def test_blocking_diagnostic_raises_before_planning(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        with pytest.raises(QueryLintError) as excinfo:
            runner.compile("MATCH (a) WHERE ghost.x = 1 RETURN a")
        assert any(d.code == "E101" for d in excinfo.value.diagnostics)

    def test_lint_error_is_catchable_as_semantic_error(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        with pytest.raises(CypherSemanticError):
            runner.compile("MATCH (a)-[a]->(b) RETURN a")

    def test_warnings_do_not_block_and_are_collected(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        collection = runner.execute("MATCH (a), (b) RETURN a, b")
        assert collection.graph_count() > 0
        assert any(d.code == "W401" for d in runner.last_diagnostics)

    def test_unsatisfiable_query_runs_and_returns_empty(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        rows = runner.execute_table(
            "MATCH (a:Person) WHERE a.yob > 2000 AND a.yob < 1900 RETURN a"
        )
        assert rows == []
        assert any(d.code == "E201" for d in runner.last_diagnostics)

    def test_lint_false_disables_the_gate(self, figure1_graph):
        runner = CypherRunner(figure1_graph, lint=False)
        # the compiler still rejects it, but with its own error, not the
        # linter's structured one
        with pytest.raises(CypherSemanticError) as excinfo:
            runner.compile("MATCH (a) WHERE ghost.x = 1 RETURN a")
        assert not isinstance(excinfo.value, QueryLintError)

    def test_plan_cache_restores_diagnostics(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        query = "MATCH (a), (b) RETURN a, b"
        runner.compile(query)
        first = list(runner.last_diagnostics)
        runner.last_diagnostics = []
        runner.compile(query)  # cache hit
        assert runner.last_diagnostics == first

    def test_lint_method_reports_statistics_warnings(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        diagnostics = runner.lint("MATCH (d:Dragon) RETURN d")
        assert any(d.code == "W301" for d in diagnostics)


class TestRunnerVerification:
    def test_verify_plans_flag_accepts_good_plans(self, figure1_graph):
        runner = CypherRunner(figure1_graph, verify_plans=True)
        rows = runner.execute_table(
            "MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name, b.name"
        )
        assert len(rows) == 4

    def test_verify_plans_off_by_default(self, figure1_graph):
        assert CypherRunner(figure1_graph).verify_plans is False


class TestGraphEntryPoint:
    def test_logical_graph_cypher_lints(self, figure1_graph):
        with pytest.raises(CypherSemanticError):
            figure1_graph.cypher("MATCH (a) RETURN ghost.name")


class TestCli:
    def test_lint_exit_one_on_errors(self, capsys):
        code = cli_main(
            ["lint", "MATCH (a) WHERE a.x > 5 AND a.x < 3 RETURN a"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "E201" in out
        assert "^" in out  # caret snippet rendered

    def test_lint_exit_three_on_warnings_only(self, capsys):
        # 3 = warnings-only, the shared analysis-CLI exit contract
        # (docs/analysis.md): lint used to return 0 here, which made
        # warning regressions invisible to scripts
        code = cli_main(["lint", "MATCH (a), (b) RETURN a, b"])
        assert code == 3
        assert "W401" in capsys.readouterr().out

    def test_lint_exit_two_on_syntax_error(self, capsys):
        code = cli_main(["lint", "MATCH (a"])
        assert code == 2

    def test_lint_clean_query(self, capsys):
        code = cli_main(
            ["lint", "MATCH (a:Person)-[:knows]->(b) RETURN a, b"]
        )
        assert code == 0
        assert capsys.readouterr().out == ""

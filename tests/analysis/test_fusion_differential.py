"""Fused-vs-per-record differential checking.

Acceptance for the batched execution mode: for every LDBC paper query
(Q1–Q6), under every planner, the fused embedding multiset equals the
per-record one — and the same holds for generated queries (labels,
predicates, undirected edges, variable-length paths).
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import fusion_differential_check
from repro.dataflow import ExecutionEnvironment
from repro.engine import GraphStatistics
from repro.epgm import LogicalGraph
from repro.harness.queries import ALL_QUERIES, instantiate
from repro.ldbc import LDBCGenerator
from tests.analysis.test_property import cypher_queries
from tests.conftest import build_figure1_elements


@pytest.fixture(scope="module")
def ldbc():
    dataset = LDBCGenerator(scale_factor=0.03, seed=11).generate()
    graph = dataset.to_logical_graph(ExecutionEnvironment())
    return dataset, graph, GraphStatistics.from_graph(graph)


@pytest.mark.parametrize("name", sorted(ALL_QUERIES))
def test_ldbc_queries_fused_equals_per_record(ldbc, name):
    dataset, graph, statistics = ldbc
    query = instantiate(ALL_QUERIES[name], dataset.first_name("medium"))
    report = fusion_differential_check(graph, query, statistics=statistics)
    assert report.clean, "%s: %s" % (
        name, [str(d) for d in report.diagnostics]
    )
    # both modes really ran for every planner
    assert len(report.runs) == 6
    assert len({run.row_count for run in report.runs}) == 1


def test_report_names_both_modes(ldbc):
    dataset, graph, statistics = ldbc
    query = instantiate(ALL_QUERIES["Q1"], dataset.first_name("medium"))
    report = fusion_differential_check(graph, query, statistics=statistics)
    modes = {run.planner.rsplit("[", 1)[1].rstrip("]") for run in report.runs}
    assert modes == {"fused", "per-record"}


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(query=cypher_queries())
def test_generated_queries_fused_equals_per_record(query):
    head, vertices, edges = build_figure1_elements()
    graph = LogicalGraph.from_collections(
        ExecutionEnvironment(), vertices, edges, graph_head=head
    )
    report = fusion_differential_check(graph, query)
    assert report.clean, "%s: %s" % (
        query, [str(d) for d in report.diagnostics]
    )

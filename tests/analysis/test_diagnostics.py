"""The diagnostic registry and Diagnostic rendering."""

import pytest

from repro.analysis import (
    BLOCKING_CODES,
    CODES,
    Diagnostic,
    QueryLintError,
    Severity,
    sort_diagnostics,
)
from repro.cypher.errors import CypherSemanticError
from repro.cypher.span import Span


class TestRegistry:
    def test_at_least_eight_codes(self):
        assert len(CODES) >= 8

    def test_code_prefix_matches_severity(self):
        # E = static errors, W1-W4xx = static warnings; sanitizer/flow
        # (S), concurrency (C), shippability (P) and wire-protocol
        # (W5xx, W for "wire") codes carry either severity — structural
        # corruption / lock misuse / protocol drift is an error,
        # estimate drift or an unprovable operator only a warning.
        for code, (severity, _slug, _summary) in CODES.items():
            if code.startswith("E"):
                assert severity is Severity.ERROR, code
            elif code.startswith("W") and code < "W500":
                assert severity is Severity.WARNING, code
            else:
                assert code.startswith(("S", "C", "P", "W5")), code
                assert severity in (Severity.ERROR, Severity.WARNING), code

    def test_concurrency_codes_registered(self):
        # the C3xx range the lock-discipline linter emits
        for code in ("C301", "C302", "C303", "C304"):
            assert CODES[code][0] is Severity.ERROR, code
        assert CODES["C305"][0] is Severity.WARNING

    def test_wire_protocol_codes_registered(self):
        # the W5xx range the wire-protocol verifier/model checker emits
        for code in ("W501", "W503", "W504", "W505",
                     "W506", "W507", "W508"):
            assert CODES[code][0] is Severity.ERROR, code
        # handled-but-never-sent is dead code, not corruption
        assert CODES["W502"][0] is Severity.WARNING
        assert CODES["C306"][0] is Severity.ERROR

    def test_sanitizer_codes_registered(self):
        # the full S2xx range the sanitizer/differential/audit layer emits
        for code in ("S201", "S202", "S203", "S204", "S205", "S206",
                     "S207", "S208", "S209", "S210"):
            assert CODES[code][0] is Severity.ERROR, code
        assert CODES["S211"][0] is Severity.WARNING

    def test_slugs_are_unique_kebab_case(self):
        slugs = [slug for _sev, slug, _sum in CODES.values()]
        assert len(slugs) == len(set(slugs))
        for slug in slugs:
            assert slug == slug.lower()
            assert " " not in slug

    def test_blocking_codes_are_registered_errors(self):
        for code in BLOCKING_CODES:
            assert CODES[code][0] is Severity.ERROR

    def test_unsatisfiability_is_not_blocking(self):
        # provably-empty queries are legal Cypher; the runner must run them
        assert "E201" not in BLOCKING_CODES
        assert "E202" not in BLOCKING_CODES


class TestDiagnostic:
    def test_of_derives_severity(self):
        assert Diagnostic.of("E101", "x").severity is Severity.ERROR
        assert Diagnostic.of("W401", "x").severity is Severity.WARNING

    def test_of_rejects_unknown_code(self):
        with pytest.raises(KeyError):
            Diagnostic.of("E999", "x")

    def test_format_contains_code_slug_and_location(self):
        diagnostic = Diagnostic.of(
            "E101", "no such variable", variable="a",
            span=Span(offset=6, line=1, column=7),
        )
        text = diagnostic.format()
        assert "error[E101]" in text
        assert "unbound-variable" in text
        assert "line 1, column 7" in text

    def test_format_with_query_text_adds_caret(self):
        diagnostic = Diagnostic.of(
            "E101", "x", span=Span(offset=6, line=1, column=7)
        )
        rendered = diagnostic.format("MATCH (a) RETURN a")
        assert "^" in rendered

    def test_sort_errors_before_warnings_then_by_offset(self):
        warning = Diagnostic.of("W401", "w", span=Span(0, 1, 1))
        late = Diagnostic.of("E101", "late", span=Span(9, 1, 10))
        early = Diagnostic.of("E201", "early", span=Span(2, 1, 3))
        assert sort_diagnostics([warning, late, early]) == [early, late, warning]


class TestQueryLintError:
    def test_is_a_semantic_error(self):
        error = QueryLintError([Diagnostic.of("E101", "x")])
        assert isinstance(error, CypherSemanticError)

    def test_message_lists_every_diagnostic(self):
        error = QueryLintError(
            [Diagnostic.of("E101", "first"), Diagnostic.of("W404", "second")]
        )
        assert "first" in str(error)
        assert "second" in str(error)
        assert "1 error(s)" in str(error)

    def test_carries_structured_diagnostics(self):
        diagnostics = [Diagnostic.of("E103", "x", variable="a")]
        assert QueryLintError(diagnostics).diagnostics == diagnostics

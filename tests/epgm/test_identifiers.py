"""Tests for GradoopId."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.epgm import ID_BYTES, GradoopId, GradoopIdFactory


class TestGradoopId:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_bytes_roundtrip(self, value):
        gid = GradoopId(value)
        assert GradoopId.from_bytes(gid.to_bytes()) == gid

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_fixed_width(self, value):
        assert len(GradoopId(value).to_bytes()) == ID_BYTES

    def test_from_bytes_with_offset(self):
        data = b"\x00" * 3 + GradoopId(42).to_bytes()
        assert GradoopId.from_bytes(data, offset=3) == GradoopId(42)

    def test_ordering(self):
        assert GradoopId(1) < GradoopId(2) <= GradoopId(2)

    def test_equality_and_hash(self):
        assert GradoopId(7) == GradoopId(7)
        assert hash(GradoopId(7)) == hash(GradoopId(7))
        assert GradoopId(7) != GradoopId(8)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            GradoopId("abc")

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            GradoopId(-1)
        with pytest.raises(ValueError):
            GradoopId(1 << 64)

    def test_stable_hash_hook_used_by_dataflow(self):
        from repro.dataflow import stable_hash

        assert stable_hash(GradoopId(5)) == stable_hash(5)


class TestFactory:
    def test_ids_are_unique_and_monotonic(self):
        factory = GradoopIdFactory()
        ids = factory.next_ids(100)
        assert len(set(ids)) == 100
        assert ids == sorted(ids)

    def test_factories_are_deterministic(self):
        a = GradoopIdFactory(start=5)
        b = GradoopIdFactory(start=5)
        assert a.next_ids(10) == b.next_ids(10)

"""Tests for the GDL-style graph definition reader."""

import pytest

from repro.epgm.io import GDLError, parse_gdl


class TestBasics:
    def test_single_vertex(self, env):
        graph = parse_gdl(env, "(alice:Person {name: 'Alice'})")
        vertices = graph.collect_vertices()
        assert len(vertices) == 1
        assert vertices[0].label == "Person"
        assert vertices[0].get_property("name").raw() == "Alice"

    def test_edge(self, env):
        graph = parse_gdl(env, "(a:Person)-[:knows]->(b:Person)")
        assert graph.vertex_count() == 2
        edges = graph.collect_edges()
        assert len(edges) == 1
        assert edges[0].label == "knows"

    def test_repeated_variable_is_same_vertex(self, env):
        graph = parse_gdl(
            env, "(a:Person)-[:knows]->(b:Person) (b)-[:knows]->(a)"
        )
        assert graph.vertex_count() == 2
        assert graph.edge_count() == 2

    def test_anonymous_vertices_are_fresh(self, env):
        graph = parse_gdl(env, "(:Tag) (:Tag)")
        assert graph.vertex_count() == 2

    def test_comma_separated_paths(self, env):
        graph = parse_gdl(env, "(a)-[:x]->(b), (b)-[:y]->(c)")
        assert graph.edge_count() == 2

    def test_incoming_edge_direction(self, env):
        graph = parse_gdl(env, "(a:Person)<-[:hasCreator]-(m:Post)")
        edge = graph.collect_edges()[0]
        vertices = {v.id: v.label for v in graph.collect_vertices()}
        assert vertices[edge.source_id] == "Post"
        assert vertices[edge.target_id] == "Person"

    def test_edge_properties(self, env):
        graph = parse_gdl(env, "(a)-[:knows {since: 2014}]->(b)")
        assert graph.collect_edges()[0].get_property("since").raw() == 2014


class TestGraphHeader:
    def test_named_labeled_header(self, env):
        graph = parse_gdl(
            env,
            "community:Community {area: 'Leipzig'} [ (a:Person) ]",
        )
        assert graph.graph_head.label == "Community"
        assert graph.graph_head.get_property("area").raw() == "Leipzig"
        assert graph.vertex_count() == 1

    def test_bare_brackets(self, env):
        graph = parse_gdl(env, "[ (a)-[:x]->(b) ]")
        assert graph.edge_count() == 1

    def test_membership_stamped(self, env):
        graph = parse_gdl(env, "g [ (a:Person) ]")
        vertex = graph.collect_vertices()[0]
        assert vertex.in_graph(graph.graph_head.id)


class TestErrors:
    def test_variable_length_edge_rejected(self, env):
        with pytest.raises(GDLError):
            parse_gdl(env, "(a)-[:knows*1..3]->(b)")

    def test_undirected_edge_rejected(self, env):
        with pytest.raises(GDLError):
            parse_gdl(env, "(a)-[:knows]-(b)")

    def test_label_alternation_rejected(self, env):
        with pytest.raises(GDLError):
            parse_gdl(env, "(a:Comment|Post)")

    def test_redefined_vertex_rejected(self, env):
        with pytest.raises(GDLError):
            parse_gdl(env, "(a:Person) (a:City)")

    def test_trailing_garbage_rejected(self, env):
        with pytest.raises(GDLError):
            parse_gdl(env, "g [ (a) ] nonsense")

    def test_broken_pattern_rejected(self, env):
        with pytest.raises(GDLError):
            parse_gdl(env, "(a:Person")


class TestIntegrationWithCypher:
    def test_gdl_graph_queriable(self, env):
        graph = parse_gdl(
            env,
            """
            community:Community [
                (alice:Person {name: 'Alice', gender: 'female'})
                (bob:Person {name: 'Bob', gender: 'male'})
                (alice)-[:knows]->(bob)
                (bob)-[:knows]->(alice)
            ]
            """,
        )
        rows = graph.cypher(
            "MATCH (a:Person)-[:knows]->(b:Person) "
            "WHERE a.gender <> b.gender RETURN *"
        )
        assert rows.graph_count() == 2

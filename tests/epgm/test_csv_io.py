"""Round-trip tests for the Gradoop-style CSV source/sink."""

import pytest

from repro.epgm import GraphCollection, LogicalGraph
from repro.epgm.io import CSVDataSink, CSVDataSource


@pytest.fixture
def graph_dir(tmp_path, figure1_graph):
    path = str(tmp_path / "graph")
    CSVDataSink(path).write_logical_graph(figure1_graph)
    return path


class TestRoundTrip:
    def test_counts_preserved(self, env, graph_dir):
        restored = CSVDataSource(graph_dir).get_logical_graph(env)
        assert restored.vertex_count() == 5
        assert restored.edge_count() == 8

    def test_labels_preserved(self, env, graph_dir):
        restored = CSVDataSource(graph_dir).get_logical_graph(env)
        labels = sorted({v.label for v in restored.collect_vertices()})
        assert labels == ["City", "Person", "University"]

    def test_properties_preserved_with_types(self, env, graph_dir):
        restored = CSVDataSource(graph_dir).get_logical_graph(env)
        eve = [
            v
            for v in restored.collect_vertices()
            if v.get_property("name").raw() == "Eve"
        ][0]
        assert eve.get_property("yob").raw() == 1984  # int, not "1984"
        assert eve.get_property("gender").raw() == "female"

    def test_edge_endpoints_preserved(self, env, graph_dir):
        restored = CSVDataSource(graph_dir).get_logical_graph(env)
        knows = [e for e in restored.collect_edges() if e.label == "knows"]
        pairs = {(e.source_id.value, e.target_id.value) for e in knows}
        assert pairs == {(10, 20), (20, 10), (20, 30), (30, 20)}

    def test_graph_membership_preserved(self, env, graph_dir):
        restored = CSVDataSource(graph_dir).get_logical_graph(env)
        head_id = restored.graph_head.id
        assert all(v.in_graph(head_id) for v in restored.collect_vertices())

    def test_graph_head_properties_preserved(self, env, graph_dir):
        restored = CSVDataSource(graph_dir).get_logical_graph(env)
        assert restored.graph_head.get_property("area").raw() == "Leipzig"

    def test_missing_property_stays_null(self, env, graph_dir):
        restored = CSVDataSource(graph_dir).get_logical_graph(env)
        alice = [
            v
            for v in restored.collect_vertices()
            if v.get_property("name").raw() == "Alice"
        ][0]
        assert alice.get_property("yob").is_null


class TestEdgeCases:
    def test_values_with_separators_escape(self, env, tmp_path):
        from repro.epgm import GradoopId, Vertex

        vertex = Vertex(
            GradoopId(1), label="Note", properties={"text": "a;b|c\\d\ne"}
        )
        graph = LogicalGraph.from_collections(env, [vertex], [])
        path = str(tmp_path / "escaped")
        CSVDataSink(path).write_logical_graph(graph)
        restored = CSVDataSource(path).get_logical_graph(env)
        assert restored.collect_vertices()[0].get_property("text").raw() == "a;b|c\\d\ne"

    def test_collection_roundtrip(self, env, tmp_path, figure1_graph):
        collection = GraphCollection.from_graph(figure1_graph)
        path = str(tmp_path / "collection")
        CSVDataSink(path).write_graph_collection(collection)
        restored = CSVDataSource(path).get_graph_collection(env)
        assert restored.graph_count() == 1
        assert restored.vertices.count() == 5

    def test_multiple_heads_rejected_for_logical_graph(self, env, tmp_path):
        from repro.epgm import GradoopId, GraphHead

        collection = GraphCollection.from_collections(
            env, [GraphHead(GradoopId(1)), GraphHead(GradoopId(2))], [], []
        )
        path = str(tmp_path / "two-heads")
        CSVDataSink(path).write_graph_collection(collection)
        with pytest.raises(ValueError):
            CSVDataSource(path).get_logical_graph(env)

    def test_empty_graph_roundtrip(self, env, tmp_path):
        graph = LogicalGraph.from_collections(env, [], [])
        path = str(tmp_path / "empty")
        CSVDataSink(path).write_logical_graph(graph)
        restored = CSVDataSource(path).get_logical_graph(env)
        assert restored.vertex_count() == 0
        assert restored.edge_count() == 0

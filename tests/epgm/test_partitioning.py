"""Tests for graph data partitioning strategies."""

import pytest

from repro.dataflow import ExecutionEnvironment, partition_index
from repro.engine import CypherRunner, canonical_rows_from_embeddings
from repro.epgm import GraphPartitioning, LogicalGraph
from tests.conftest import build_figure1_elements


def _graph(env, partitioning):
    head, vertices, edges = build_figure1_elements()
    return LogicalGraph.from_collections(
        env, vertices, edges, graph_head=head, partitioning=partitioning
    )


class TestPlacement:
    def test_hash_places_vertices_by_id(self):
        env = ExecutionEnvironment(parallelism=4)
        graph = _graph(env, GraphPartitioning.HASH)
        for worker, partition in enumerate(graph.vertices.collect_partitions()):
            for vertex in partition:
                assert partition_index(vertex.id, 4) == worker

    def test_hash_places_edges_by_source(self):
        env = ExecutionEnvironment(parallelism=4)
        graph = _graph(env, GraphPartitioning.HASH)
        for worker, partition in enumerate(graph.edges.collect_partitions()):
            for edge in partition:
                assert partition_index(edge.source_id, 4) == worker

    def test_round_robin_is_balanced(self):
        env = ExecutionEnvironment(parallelism=4)
        graph = _graph(env, GraphPartitioning.ROUND_ROBIN)
        sizes = [len(p) for p in graph.edges.collect_partitions()]
        assert max(sizes) - min(sizes) <= 1

    def test_default_is_round_robin(self):
        env = ExecutionEnvironment(parallelism=4)
        graph = _graph(env, None)
        sizes = [len(p) for p in graph.vertices.collect_partitions()]
        assert max(sizes) - min(sizes) <= 1


class TestQueryEquivalence:
    @pytest.mark.parametrize(
        "query",
        [
            "MATCH (a:Person)-[e:knows]->(b:Person) RETURN *",
            "MATCH (p:Person)-[s:studyAt]->(u:University) RETURN *",
            "MATCH (a:Person)-[e:knows*1..3]->(b:Person) RETURN *",
        ],
    )
    def test_same_results_under_both_placements(self, query):
        rows = {}
        for partitioning in (GraphPartitioning.ROUND_ROBIN, GraphPartitioning.HASH):
            env = ExecutionEnvironment(parallelism=4)
            graph = _graph(env, partitioning)
            embeddings, meta = CypherRunner(graph).execute_embeddings(query)
            rows[partitioning] = sorted(
                canonical_rows_from_embeddings(embeddings, meta)
            )
        assert rows[GraphPartitioning.ROUND_ROBIN] == rows[GraphPartitioning.HASH]


class TestShuffleSavings:
    def test_co_partitioned_join_shuffles_less(self):
        """Edges placed by source id stay put when joined on that id."""
        volumes = {}
        for partitioning in (GraphPartitioning.ROUND_ROBIN, GraphPartitioning.HASH):
            env = ExecutionEnvironment(parallelism=4)
            graph = _graph(env, partitioning)
            env.reset_metrics("q")
            CypherRunner(graph).execute_embeddings(
                "MATCH (a:Person {name: 'Eve'})-[e:knows]->(b:Person) RETURN *"
            )
            volumes[partitioning] = env.metrics.total_shuffled_records
        assert volumes[GraphPartitioning.HASH] <= (
            volumes[GraphPartitioning.ROUND_ROBIN]
        )

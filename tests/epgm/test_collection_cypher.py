"""Tests for GraphCollection.cypher (per-member pattern matching)."""

import pytest

from repro.epgm import GraphCollection


@pytest.fixture
def two_communities(figure1_graph):
    """Split Figure 1 into a persons subgraph and a places subgraph."""
    people = figure1_graph.vertex_induced_subgraph(lambda v: v.label == "Person")
    places = figure1_graph.vertex_induced_subgraph(
        lambda v: v.label in ("University", "City")
    )
    heads = [people.graph_head, places.graph_head]
    vertices = people.collect_vertices() + places.collect_vertices()
    edges = people.collect_edges() + places.collect_edges()
    return GraphCollection.from_collections(
        figure1_graph.environment, heads, vertices, edges
    )


def test_matches_found_per_member(two_communities):
    matches = two_communities.cypher("MATCH (a:Person)-[e:knows]->(b:Person) RETURN *")
    assert matches.graph_count() == 4  # only the persons member has knows


def test_source_graph_recorded(two_communities):
    matches = two_communities.cypher("MATCH (v) RETURN *")
    sources = {
        head.get_property("__sourceGraph").raw()
        for head in matches.collect_graph_heads()
    }
    assert len(sources) == 2  # matches came from both member graphs


def test_empty_collection(figure1_graph):
    empty = GraphCollection.empty(figure1_graph.environment)
    matches = empty.cypher("MATCH (v) RETURN *")
    assert matches.graph_count() == 0


def test_member_scoping(two_communities):
    """A pattern spanning both member graphs never matches: each member is
    queried in isolation."""
    matches = two_communities.cypher(
        "MATCH (p:Person)-[s:studyAt]->(u:University) RETURN *"
    )
    # studyAt edges connect persons to the university, but those edges are
    # in neither induced member graph
    assert matches.graph_count() == 0


def test_kwargs_forwarded(two_communities):
    from repro.engine import MatchStrategy

    homo = two_communities.cypher(
        "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(c:Person) RETURN *",
        vertex_strategy=MatchStrategy.HOMOMORPHISM,
    )
    iso = two_communities.cypher(
        "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(c:Person) RETURN *",
        vertex_strategy=MatchStrategy.ISOMORPHISM,
    )
    assert homo.graph_count() > iso.graph_count()

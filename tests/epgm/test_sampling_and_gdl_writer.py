"""Tests for graph sampling and the GDL writer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import ExecutionEnvironment
from repro.epgm.io import parse_gdl, to_gdl
from repro.epgm.operators.sampling import random_edge_sample, random_vertex_sample
from repro.ldbc import generate_graph


class TestSampling:
    def test_fraction_one_keeps_everything(self, figure1_graph):
        sampled = random_vertex_sample(figure1_graph, 1.0)
        assert sampled.vertex_count() == 5
        assert sampled.edge_count() == 8

    def test_fraction_zero_keeps_nothing(self, figure1_graph):
        sampled = random_vertex_sample(figure1_graph, 0.0)
        assert sampled.vertex_count() == 0
        assert sampled.edge_count() == 0

    def test_deterministic_per_seed(self, env):
        graph = generate_graph(env, scale_factor=0.05, seed=3)
        a = random_vertex_sample(graph, 0.5, seed=9)
        b = random_vertex_sample(graph, 0.5, seed=9)
        assert {v.id for v in a.collect_vertices()} == {
            v.id for v in b.collect_vertices()
        }

    def test_edges_consistent_with_sampled_vertices(self, env):
        graph = generate_graph(env, scale_factor=0.05, seed=3)
        sampled = random_vertex_sample(graph, 0.4, seed=1)
        kept = {v.id for v in sampled.collect_vertices()}
        for edge in sampled.collect_edges():
            assert edge.source_id in kept and edge.target_id in kept

    def test_edge_sample_keeps_endpoints(self, figure1_graph):
        sampled = random_edge_sample(figure1_graph, 0.5, seed=2)
        vertex_ids = {v.id for v in sampled.collect_vertices()}
        for edge in sampled.collect_edges():
            assert edge.source_id in vertex_ids
            assert edge.target_id in vertex_ids

    def test_invalid_fraction_rejected(self, figure1_graph):
        with pytest.raises(ValueError):
            random_vertex_sample(figure1_graph, 1.5)


class TestGDLWriter:
    def test_roundtrip_structure(self, env, figure1_graph):
        text = to_gdl(figure1_graph, name="community")
        restored = parse_gdl(env, text)
        assert restored.vertex_count() == figure1_graph.vertex_count()
        assert restored.edge_count() == figure1_graph.edge_count()
        assert restored.graph_head.label == figure1_graph.graph_head.label

    def test_roundtrip_properties(self, env, figure1_graph):
        restored = parse_gdl(env, to_gdl(figure1_graph))
        names = {
            v.get_property("name").raw()
            for v in restored.collect_vertices()
            if not v.get_property("name").is_null
        }
        assert names == {"Alice", "Eve", "Bob", "Uni Leipzig", "Leipzig"}
        years = sorted(
            e.get_property("classYear").raw()
            for e in restored.collect_edges()
            if not e.get_property("classYear").is_null
        )
        assert years == [2014, 2015, 2015]

    def test_roundtrip_degree_sequence(self, env, figure1_graph):
        """Structure preserved: identical (label, out-degree, in-degree)
        multisets even though ids change."""
        from repro.epgm.algorithms import degrees

        def signature(graph):
            out = degrees(graph, "out")
            incoming = degrees(graph, "in")
            labels = {v.id: v.label for v in graph.collect_vertices()}
            return sorted(
                (labels[vid], out[vid], incoming[vid]) for vid in labels
            )

        restored = parse_gdl(env, to_gdl(figure1_graph))
        assert signature(restored) == signature(figure1_graph)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_roundtrip_random_graphs(self, seed):
        env = ExecutionEnvironment(parallelism=2)
        graph = generate_graph(env, scale_factor=0.02, seed=seed)
        restored = parse_gdl(env, to_gdl(graph))
        assert restored.vertex_count() == graph.vertex_count()
        assert restored.edge_count() == graph.edge_count()

    def test_quotes_escaped(self, env):
        from repro.epgm import GradoopId, LogicalGraph, Vertex

        vertex = Vertex(GradoopId(1), "Note", {"text": "it's 'quoted'"})
        graph = LogicalGraph.from_collections(env, [vertex], [])
        restored = parse_gdl(env, to_gdl(graph))
        assert restored.collect_vertices()[0].get_property("text").raw() == (
            "it's 'quoted'"
        )

"""Tests for the graph algorithms package."""

import pytest

from repro.epgm import Edge, GradoopId, LogicalGraph, Vertex
from repro.epgm.algorithms import (
    bfs_distances,
    degree_distribution,
    degrees,
    triangle_count,
    weakly_connected_components,
)
from repro.epgm.algorithms.wcc import component_sizes


def chain_graph(env, n, extra_edges=()):
    """0 -> 1 -> 2 -> ... -> n-1 plus extra (src, dst) pairs."""
    vertices = [Vertex(GradoopId(i + 1), label="N") for i in range(n)]
    edges = []
    for i in range(n - 1):
        edges.append(
            Edge(
                GradoopId(100 + i),
                label="e",
                source_id=GradoopId(i + 1),
                target_id=GradoopId(i + 2),
            )
        )
    for index, (src, dst) in enumerate(extra_edges):
        edges.append(
            Edge(
                GradoopId(200 + index),
                label="e",
                source_id=GradoopId(src),
                target_id=GradoopId(dst),
            )
        )
    return LogicalGraph.from_collections(env, vertices, edges)


class TestWCC:
    def test_single_chain_is_one_component(self, env):
        graph = chain_graph(env, 5)
        components = weakly_connected_components(graph)
        assert len(set(components.values())) == 1

    def test_two_components(self, env):
        vertices = [Vertex(GradoopId(i), label="N") for i in range(1, 5)]
        edges = [
            Edge(GradoopId(10), "e", GradoopId(1), GradoopId(2)),
            Edge(GradoopId(11), "e", GradoopId(3), GradoopId(4)),
        ]
        graph = LogicalGraph.from_collections(env, vertices, edges)
        components = weakly_connected_components(graph)
        assert len(set(components.values())) == 2
        assert components[GradoopId(1)] == components[GradoopId(2)]
        assert components[GradoopId(3)] == components[GradoopId(4)]
        assert components[GradoopId(1)] != components[GradoopId(3)]

    def test_direction_is_ignored(self, env):
        vertices = [Vertex(GradoopId(i), label="N") for i in (1, 2, 3)]
        edges = [
            Edge(GradoopId(10), "e", GradoopId(2), GradoopId(1)),
            Edge(GradoopId(11), "e", GradoopId(2), GradoopId(3)),
        ]
        graph = LogicalGraph.from_collections(env, vertices, edges)
        assert len(set(weakly_connected_components(graph).values())) == 1

    def test_isolated_vertices_are_own_components(self, env):
        vertices = [Vertex(GradoopId(i), label="N") for i in (1, 2, 3)]
        graph = LogicalGraph.from_collections(env, vertices, [])
        assert len(set(weakly_connected_components(graph).values())) == 3

    def test_component_label_is_minimum_member(self, env):
        graph = chain_graph(env, 4)
        components = weakly_connected_components(graph)
        assert set(components.values()) == {1}

    def test_component_sizes(self, env):
        vertices = [Vertex(GradoopId(i), label="N") for i in range(1, 6)]
        edges = [
            Edge(GradoopId(10), "e", GradoopId(1), GradoopId(2)),
            Edge(GradoopId(11), "e", GradoopId(2), GradoopId(3)),
            Edge(GradoopId(12), "e", GradoopId(4), GradoopId(5)),
        ]
        graph = LogicalGraph.from_collections(env, vertices, edges)
        assert component_sizes(graph) == [3, 2]

    def test_on_figure1(self, figure1_graph):
        components = weakly_connected_components(figure1_graph)
        assert len(set(components.values())) == 1  # everything connected


class TestBFS:
    def test_chain_distances(self, env):
        graph = chain_graph(env, 4)
        distances = bfs_distances(graph, GradoopId(1))
        assert distances == {
            GradoopId(1): 0,
            GradoopId(2): 1,
            GradoopId(3): 2,
            GradoopId(4): 3,
        }

    def test_directed_respects_direction(self, env):
        graph = chain_graph(env, 3)
        distances = bfs_distances(graph, GradoopId(3), directed=True)
        assert distances == {GradoopId(3): 0}

    def test_undirected_reaches_backwards(self, env):
        graph = chain_graph(env, 3)
        distances = bfs_distances(graph, GradoopId(3), directed=False)
        assert distances[GradoopId(1)] == 2

    def test_shortcut_wins(self, env):
        graph = chain_graph(env, 5, extra_edges=[(1, 5)])
        distances = bfs_distances(graph, GradoopId(1))
        assert distances[GradoopId(5)] == 1

    def test_unreachable_absent(self, env):
        vertices = [Vertex(GradoopId(1), label="N"), Vertex(GradoopId(2), label="N")]
        graph = LogicalGraph.from_collections(env, vertices, [])
        assert bfs_distances(graph, GradoopId(1)) == {GradoopId(1): 0}


class TestDegrees:
    def test_out_degrees(self, figure1_graph):
        out = degrees(figure1_graph, "out")
        assert out[GradoopId(20)] == 3  # Eve: knows x2 + studyAt
        assert out[GradoopId(50)] == 0  # the city has no outgoing edges

    def test_in_degrees(self, figure1_graph):
        incoming = degrees(figure1_graph, "in")
        assert incoming[GradoopId(40)] == 3  # the university

    def test_both(self, figure1_graph):
        both = degrees(figure1_graph, "both")
        assert both[GradoopId(40)] == 4  # 3 in + 1 out (isLocatedIn)

    def test_distribution_sums_to_vertex_count(self, figure1_graph):
        histogram = degree_distribution(figure1_graph, "both")
        assert sum(histogram.values()) == 5

    def test_invalid_mode(self, figure1_graph):
        with pytest.raises(ValueError):
            degrees(figure1_graph, "sideways")


class TestTriangles:
    def test_directed_cycle_is_one_triangle(self, env):
        vertices = [Vertex(GradoopId(i), label="N") for i in (1, 2, 3)]
        edges = [
            Edge(GradoopId(10), "e", GradoopId(1), GradoopId(2)),
            Edge(GradoopId(11), "e", GradoopId(2), GradoopId(3)),
            Edge(GradoopId(12), "e", GradoopId(3), GradoopId(1)),
        ]
        graph = LogicalGraph.from_collections(env, vertices, edges)
        assert triangle_count(graph) == 1

    def test_chain_has_no_triangles(self, env):
        assert triangle_count(chain_graph(env, 4)) == 0

    def test_label_filter(self, figure1_graph):
        # knows edges alone form no triangle in Figure 1
        assert triangle_count(figure1_graph, edge_label="knows") == 0

    def test_two_triangles_sharing_an_edge(self, env):
        vertices = [Vertex(GradoopId(i), label="N") for i in (1, 2, 3, 4)]
        edges = [
            Edge(GradoopId(10), "e", GradoopId(1), GradoopId(2)),
            Edge(GradoopId(11), "e", GradoopId(2), GradoopId(3)),
            Edge(GradoopId(12), "e", GradoopId(1), GradoopId(3)),
            Edge(GradoopId(13), "e", GradoopId(2), GradoopId(4)),
            Edge(GradoopId(14), "e", GradoopId(3), GradoopId(4)),
        ]
        graph = LogicalGraph.from_collections(env, vertices, edges)
        assert triangle_count(graph) == 2

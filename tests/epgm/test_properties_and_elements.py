"""Tests for Properties and the EPGM element classes."""

import pytest

from repro.epgm import (
    Edge,
    GradoopId,
    GraphHead,
    Properties,
    PropertyValue,
    Vertex,
)


class TestProperties:
    def test_get_missing_returns_null(self):
        assert Properties().get("nope").is_null

    def test_set_get(self):
        props = Properties()
        props.set("name", "Alice")
        assert props.get("name") == PropertyValue("Alice")

    def test_create_kwargs(self):
        props = Properties.create(name="Alice", yob=1984)
        assert props.get("yob").raw() == 1984

    def test_init_from_dict_and_pairs(self):
        assert Properties({"a": 1}) == Properties([("a", 1)])

    def test_contains_len_iter(self):
        props = Properties.create(a=1, b=2)
        assert "a" in props
        assert len(props) == 2
        assert sorted(props) == ["a", "b"]

    def test_retain_projects(self):
        props = Properties.create(a=1, b=2, c=3)
        projected = props.retain(["a", "c", "missing"])
        assert projected.keys() == ["a", "c"]

    def test_remove(self):
        props = Properties.create(a=1)
        assert props.remove("a").raw() == 1
        assert props.remove("a").is_null

    def test_copy_is_independent(self):
        props = Properties.create(a=1)
        clone = props.copy()
        clone.set("a", 2)
        assert props.get("a").raw() == 1

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            Properties.create().set("", 1)

    def test_to_dict(self):
        assert Properties.create(a=1, b="x").to_dict() == {"a": 1, "b": "x"}

    def test_insertion_order_preserved(self):
        props = Properties()
        for key in ["z", "a", "m"]:
            props.set(key, 1)
        assert props.keys() == ["z", "a", "m"]


class TestElements:
    def test_vertex_basics(self):
        vertex = Vertex(GradoopId(10), label="Person", properties={"name": "Alice"})
        assert vertex.label == "Person"
        assert vertex.get_property("name").raw() == "Alice"

    def test_vertex_requires_gradoop_id(self):
        with pytest.raises(TypeError):
            Vertex(10, label="Person")

    def test_graph_membership(self):
        vertex = Vertex(GradoopId(1))
        vertex.add_graph_id(GradoopId(100))
        assert vertex.in_graph(GradoopId(100))
        assert not vertex.in_graph(GradoopId(200))

    def test_edge_endpoints(self):
        edge = Edge(
            GradoopId(5),
            label="knows",
            source_id=GradoopId(10),
            target_id=GradoopId(20),
        )
        assert edge.source_id == GradoopId(10)
        assert edge.target_id == GradoopId(20)

    def test_edge_requires_endpoints(self):
        with pytest.raises(TypeError):
            Edge(GradoopId(5), label="knows", source_id=1, target_id=2)

    def test_equality_is_by_id_and_kind(self):
        assert Vertex(GradoopId(1)) == Vertex(GradoopId(1), label="Other")
        assert Vertex(GradoopId(1)) != GraphHead(GradoopId(1))

    def test_serialized_size_grows_with_properties(self):
        small = Vertex(GradoopId(1), label="P")
        big = Vertex(GradoopId(1), label="P", properties={"name": "A" * 100})
        assert big.serialized_size() > small.serialized_size()

    def test_graph_head(self):
        head = GraphHead(GradoopId(100), label="Community", properties={"area": "L"})
        assert head.get_property("area").raw() == "L"

"""Tests for LogicalGraph, GraphCollection and IndexedLogicalGraph."""

import pytest

from repro.epgm import (
    GradoopId,
    GraphCollection,
    IndexedLogicalGraph,
    LogicalGraph,
    Vertex,
)
from tests.conftest import build_figure1_elements


class TestLogicalGraph:
    def test_counts(self, figure1_graph):
        assert figure1_graph.vertex_count() == 5
        assert figure1_graph.edge_count() == 8

    def test_elements_are_stamped_with_graph_id(self, figure1_graph):
        head_id = figure1_graph.graph_head.id
        assert all(v.in_graph(head_id) for v in figure1_graph.collect_vertices())
        assert all(e.in_graph(head_id) for e in figure1_graph.collect_edges())

    def test_vertices_by_label_filters(self, figure1_graph):
        people = figure1_graph.vertices_by_label("Person").collect()
        assert len(people) == 3
        assert all(v.label == "Person" for v in people)

    def test_edges_by_label_filters(self, figure1_graph):
        knows = figure1_graph.edges_by_label("knows").collect()
        assert len(knows) == 4

    def test_from_collections_creates_default_head(self, env):
        graph = LogicalGraph.from_collections(env, [Vertex(GradoopId(1))], [])
        assert graph.graph_head is not None

    def test_derive_produces_fresh_head(self, figure1_graph):
        derived = figure1_graph._derive(figure1_graph.vertices, figure1_graph.edges)
        assert derived.graph_head.id != figure1_graph.graph_head.id


class TestSubgraphOperators:
    def test_subgraph_removes_dangling_edges(self, figure1_graph):
        only_people = figure1_graph.subgraph(
            vertex_predicate=lambda v: v.label == "Person"
        )
        labels = {e.label for e in only_people.collect_edges()}
        assert labels == {"knows"}  # studyAt/isLocatedIn endpoints were dropped
        assert only_people.vertex_count() == 3

    def test_vertex_induced_subgraph(self, figure1_graph):
        sub = figure1_graph.vertex_induced_subgraph(
            lambda v: v.get_property("name").raw() in ("Alice", "Eve")
        )
        assert sub.vertex_count() == 2
        assert sub.edge_count() == 2  # knows 10->20 and 20->10

    def test_edge_induced_subgraph(self, figure1_graph):
        sub = figure1_graph.edge_induced_subgraph(lambda e: e.label == "studyAt")
        assert sub.edge_count() == 3
        names = {v.get_property("name").raw() for v in sub.collect_vertices()}
        assert names == {"Alice", "Eve", "Bob", "Uni Leipzig"}

    def test_induced_subgraph_requires_predicate(self, figure1_graph):
        with pytest.raises(ValueError):
            figure1_graph.vertex_induced_subgraph(None)


class TestTransformation:
    def test_transform_vertices(self, figure1_graph):
        def upper(vertex):
            name = vertex.get_property("name")
            if not name.is_null:
                vertex.set_property("name", name.raw().upper())
            return vertex

        transformed = figure1_graph.transform_vertices(upper)
        names = {v.get_property("name").raw() for v in transformed.collect_vertices()}
        assert "ALICE" in names

    def test_transform_must_preserve_ids(self, figure1_graph):
        def swap(vertex):
            return Vertex(GradoopId(999_999), label=vertex.label)

        with pytest.raises(Exception):
            figure1_graph.transform_vertices(swap).collect_vertices()


class TestAggregation:
    def test_count_vertices(self, figure1_graph):
        from repro.epgm.operators.aggregation import Count

        result = figure1_graph.aggregate("vertexCount", Count("vertices"))
        assert result.graph_head.get_property("vertexCount").raw() == 5

    def test_min_max_property(self, figure1_graph):
        from repro.epgm.operators.aggregation import MaxProperty, MinProperty

        graph = figure1_graph.aggregate(
            "minYear", MinProperty("classYear", scope="edges")
        ).aggregate("maxYear", MaxProperty("classYear", scope="edges"))
        assert graph.graph_head.get_property("minYear").raw() == 2014
        assert graph.graph_head.get_property("maxYear").raw() == 2015


class TestSetOperators:
    def test_combine_overlap_exclude(self, env):
        head, vertices, edges = build_figure1_elements()
        graph = LogicalGraph.from_collections(env, vertices, edges, graph_head=head)
        people = graph.subgraph(vertex_predicate=lambda v: v.label == "Person")
        unis = graph.subgraph(vertex_predicate=lambda v: v.label == "University")

        combined = people.combine(unis)
        assert combined.vertex_count() == 4

        assert people.overlap(unis).vertex_count() == 0
        assert people.overlap(people).vertex_count() == 3

        excluded = people.exclude(unis)
        assert excluded.vertex_count() == 3

    def test_exclude_drops_dangling_edges(self, figure1_graph):
        alice_only = figure1_graph.vertex_induced_subgraph(
            lambda v: v.get_property("name").raw() == "Alice"
        )
        rest = figure1_graph.exclude(alice_only)
        edge_ids = {e.id.value for e in rest.collect_edges()}
        # edges 3 (Alice studyAt), 5, 6 (knows with Alice) must be gone
        assert edge_ids == {1, 2, 4, 7, 8}


class TestGrouping:
    def test_group_by_label(self, figure1_graph):
        grouped = figure1_graph.group_by()
        by_label = {
            v.label: v.get_property("count").raw()
            for v in grouped.collect_vertices()
        }
        assert by_label == {"Person": 3, "University": 1, "City": 1}

    def test_group_edges_between_groups(self, figure1_graph):
        grouped = figure1_graph.group_by()
        edge_counts = {
            e.label: e.get_property("count").raw() for e in grouped.collect_edges()
        }
        assert edge_counts["knows"] == 4
        assert edge_counts["studyAt"] == 3

    def test_group_by_property(self, figure1_graph):
        grouped = figure1_graph.group_by(vertex_keys=["gender"])
        person_groups = {
            (v.label, v.get_property("gender").raw()): v.get_property("count").raw()
            for v in grouped.collect_vertices()
            if v.label == "Person"
        }
        assert person_groups == {("Person", "female"): 2, ("Person", "male"): 1}


class TestGraphCollection:
    @pytest.fixture
    def collection(self, env, figure1_graph):
        sub_a = figure1_graph.vertex_induced_subgraph(lambda v: v.label == "Person")
        sub_b = figure1_graph.vertex_induced_subgraph(lambda v: v.label == "City")
        heads = [sub_a.graph_head, sub_b.graph_head]
        vertices = sub_a.collect_vertices() + sub_b.collect_vertices()
        edges = sub_a.collect_edges() + sub_b.collect_edges()
        for element, graph in [(v, sub_a) for v in sub_a.collect_vertices()]:
            element.add_graph_id(graph.graph_head.id)
        return GraphCollection.from_collections(env, heads, vertices, edges)

    def test_graph_count(self, collection):
        assert collection.graph_count() == 2

    def test_get_graph_missing_raises(self, collection):
        with pytest.raises(KeyError):
            collection.get_graph(GradoopId(424242))

    def test_select(self, collection):
        everything = collection.select(lambda head: True)
        assert everything.graph_count() == 2
        nothing = collection.select(lambda head: False)
        assert nothing.graph_count() == 0

    def test_union_intersection_difference(self, collection, env):
        empty = GraphCollection.empty(env)
        assert collection.union(empty).graph_count() == 2
        assert collection.intersection(empty).graph_count() == 0
        assert collection.difference(empty).graph_count() == 2
        assert collection.intersection(collection).graph_count() == 2

    def test_from_graph_singleton(self, figure1_graph):
        collection = GraphCollection.from_graph(figure1_graph)
        assert collection.graph_count() == 1


class TestIndexedLogicalGraph:
    def test_index_partitions_by_label(self, env):
        head, vertices, edges = build_figure1_elements()
        graph = IndexedLogicalGraph.from_collections(
            env, vertices, edges, graph_head=head
        )
        assert graph.vertex_labels == ["City", "Person", "University"]
        assert graph.edges_by_label("knows").count() == 4

    def test_unknown_label_is_empty(self, env):
        head, vertices, edges = build_figure1_elements()
        graph = IndexedLogicalGraph.from_collections(
            env, vertices, edges, graph_head=head
        )
        assert graph.vertices_by_label("Robot").count() == 0

    def test_label_access_scans_fewer_records(self, env):
        """The point of §3.4: a label predicate reads only its dataset."""
        head, vertices, edges = build_figure1_elements()
        plain = LogicalGraph.from_collections(
            env, list(vertices), list(edges), graph_head=head
        )
        env.reset_metrics()
        plain.vertices_by_label("City").collect()
        plain_scanned = env.metrics.total_records_processed

        head2, vertices2, edges2 = build_figure1_elements()
        indexed = IndexedLogicalGraph.from_collections(
            env, vertices2, edges2, graph_head=head2
        )
        env.reset_metrics()
        indexed.vertices_by_label("City").collect()
        indexed_scanned = env.metrics.total_records_processed

        assert indexed_scanned < plain_scanned

    def test_from_logical_graph(self, figure1_graph):
        indexed = IndexedLogicalGraph.from_logical_graph(figure1_graph)
        assert indexed.vertices_by_label("Person").count() == 3

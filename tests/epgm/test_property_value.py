"""Tests for the typed property value, including serde round-trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.epgm import GradoopId, IncomparableError, NULL_VALUE, PropertyValue

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=50),
)
_values = st.one_of(_scalars, st.lists(_scalars, max_size=5))


class TestConstruction:
    def test_null(self):
        assert PropertyValue(None).is_null
        assert NULL_VALUE.is_null

    def test_bool_is_not_int(self):
        assert PropertyValue(True).is_boolean
        assert not PropertyValue(True).is_number

    def test_types(self):
        assert PropertyValue(3).type_name == "integer"
        assert PropertyValue(3.5).type_name == "float"
        assert PropertyValue("x").type_name == "string"
        assert PropertyValue([1, 2]).type_name == "list"
        assert PropertyValue(GradoopId(1)).type_name == "gradoop_id"

    def test_copy_constructor(self):
        original = PropertyValue("abc")
        assert PropertyValue(original) == original

    def test_rejects_unsupported(self):
        with pytest.raises(TypeError):
            PropertyValue(object())

    def test_rejects_overflow_int(self):
        with pytest.raises(ValueError):
            PropertyValue(1 << 63)

    def test_raw_roundtrip_for_lists(self):
        assert PropertyValue([1, "a", None]).raw() == [1, "a", None]


class TestSerde:
    @given(_values)
    def test_bytes_roundtrip(self, raw):
        value = PropertyValue(raw)
        restored, consumed = PropertyValue.from_bytes(value.to_bytes())
        assert restored == value
        assert consumed == len(value.to_bytes())

    @given(_values)
    def test_serialized_size_matches(self, raw):
        value = PropertyValue(raw)
        assert value.serialized_size() == len(value.to_bytes())

    def test_byte_length_varies_by_type(self):
        """Paper §3.3: propData entries need a byte-length field because
        value width depends on the type."""
        sizes = {
            PropertyValue(None).serialized_size(),
            PropertyValue(True).serialized_size(),
            PropertyValue(1).serialized_size(),
            PropertyValue("hello world").serialized_size(),
        }
        assert len(sizes) >= 3

    def test_from_bytes_with_offset(self):
        payload = b"xx" + PropertyValue(7).to_bytes()
        restored, _ = PropertyValue.from_bytes(payload, offset=2)
        assert restored.raw() == 7

    def test_unknown_type_byte_rejected(self):
        with pytest.raises(ValueError):
            PropertyValue.from_bytes(b"\xff")

    def test_gradoop_id_roundtrip(self):
        value = PropertyValue(GradoopId(99))
        restored, _ = PropertyValue.from_bytes(value.to_bytes())
        assert restored.raw() == GradoopId(99)

    def test_nested_list_roundtrip(self):
        value = PropertyValue([[1, 2], ["a"]])
        restored, _ = PropertyValue.from_bytes(value.to_bytes())
        assert restored.raw() == [[1, 2], ["a"]]


class TestComparison:
    def test_numbers_compare_across_types(self):
        assert PropertyValue(1) < PropertyValue(1.5)
        assert PropertyValue(2.0) == PropertyValue(2)

    def test_strings_compare(self):
        assert PropertyValue("a") < PropertyValue("b")

    def test_string_int_incomparable(self):
        with pytest.raises(IncomparableError):
            PropertyValue("a").compare(PropertyValue(1))

    def test_null_incomparable_even_with_null(self):
        with pytest.raises(IncomparableError):
            PropertyValue(None).compare(PropertyValue(None))

    def test_equality_with_raw_python_values(self):
        assert PropertyValue(3) == 3
        assert PropertyValue("x") == "x"
        assert PropertyValue(3) != "3"

    def test_hash_consistent_with_cross_type_equality(self):
        assert hash(PropertyValue(2)) == hash(PropertyValue(2.0))

    @given(_scalars, _scalars)
    def test_compare_antisymmetric(self, a, b):
        left, right = PropertyValue(a), PropertyValue(b)
        try:
            forward = left.compare(right)
        except IncomparableError:
            with pytest.raises(IncomparableError):
                right.compare(left)
            return
        assert right.compare(left) == -forward

    def test_bool_not_number_comparable(self):
        with pytest.raises(IncomparableError):
            PropertyValue(True).compare(PropertyValue(1))

    def test_operator_sugar(self):
        assert PropertyValue(5) > PropertyValue(4)
        assert PropertyValue(5) >= PropertyValue(5)
        assert PropertyValue(4) <= PropertyValue(5)

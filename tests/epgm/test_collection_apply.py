"""Tests for GraphCollection.apply / reduce."""

import pytest

from repro.epgm.operators.aggregation import Count


@pytest.fixture
def matches(figure1_graph):
    return figure1_graph.cypher(
        "MATCH (p:Person)-[s:studyAt]->(u:University) RETURN *"
    )


class TestApply:
    def test_apply_aggregation_to_each_match(self, matches):
        annotated = matches.apply(
            lambda graph: graph.aggregate("vertexCount", Count("vertices"))
        )
        assert annotated.graph_count() == matches.graph_count()
        for head in annotated.collect_graph_heads():
            assert head.get_property("vertexCount").raw() == 2  # person + uni

    def test_apply_transformation(self, matches):
        def upper_names(graph):
            def fn(vertex):
                name = vertex.get_property("name")
                if not name.is_null:
                    vertex.set_property("name", name.raw().upper())
                return vertex

            return graph.transform_vertices(fn)

        transformed = matches.apply(upper_names)
        names = {
            v.get_property("name").raw()
            for v in transformed.vertices.collect()
            if not v.get_property("name").is_null
        }
        assert "UNI LEIPZIG" in names

    def test_apply_on_empty_collection(self, figure1_graph):
        empty = figure1_graph.cypher("MATCH (x:Robot) RETURN *")
        result = empty.apply(lambda graph: graph)
        assert result.graph_count() == 0


class TestReduce:
    def test_reduce_by_combination(self, matches):
        combined = matches.reduce(lambda left, right: left.combine(right))
        # three matches (Alice/Eve/Bob studyAt) combine to 4 vertices
        names = {
            v.get_property("name").raw() for v in combined.collect_vertices()
        }
        assert names == {"Alice", "Eve", "Bob", "Uni Leipzig"}

    def test_reduce_single_graph(self, figure1_graph):
        single = figure1_graph.cypher("MATCH (c:City) RETURN *")
        result = single.reduce(lambda a, b: a.combine(b))
        assert result.vertex_count() == 1

    def test_reduce_empty_rejected(self, figure1_graph):
        empty = figure1_graph.cypher("MATCH (x:Robot) RETURN *")
        with pytest.raises(ValueError):
            empty.reduce(lambda a, b: a.combine(b))

"""Tests for statistics files persisted with CSV datasets."""

import os

from repro.engine import CypherRunner
from repro.epgm.io import CSVDataSink, CSVDataSource
from repro.epgm.io.csv import STATISTICS_FILE


def test_sink_writes_statistics_by_default(tmp_path, figure1_graph):
    path = str(tmp_path / "graph")
    CSVDataSink(path).write_logical_graph(figure1_graph)
    assert os.path.exists(os.path.join(path, STATISTICS_FILE))


def test_statistics_can_be_skipped(tmp_path, figure1_graph):
    path = str(tmp_path / "graph")
    CSVDataSink(path).write_logical_graph(figure1_graph, with_statistics=False)
    assert not os.path.exists(os.path.join(path, STATISTICS_FILE))
    assert CSVDataSource(path).get_statistics() is None


def test_source_reads_statistics(tmp_path, figure1_graph, env):
    path = str(tmp_path / "graph")
    CSVDataSink(path).write_logical_graph(figure1_graph)
    statistics = CSVDataSource(path).get_statistics()
    assert statistics.vertex_count == 5
    assert statistics.edge_count_by_label["knows"] == 4


def test_persisted_statistics_drive_the_runner(tmp_path, figure1_graph, env):
    path = str(tmp_path / "graph")
    CSVDataSink(path).write_logical_graph(figure1_graph)
    source = CSVDataSource(path)
    graph = source.get_logical_graph(env)
    runner = CypherRunner(graph, statistics=source.get_statistics())
    rows = runner.execute_table(
        "MATCH (p:Person)-[s:studyAt]->(u) WHERE s.classYear > 2014 RETURN p.name"
    )
    assert sorted(row["p.name"] for row in rows) == ["Alice", "Eve"]

"""Tests for the DOT exporter."""

from repro.epgm.io.dot import to_dot


def test_contains_all_elements(figure1_graph):
    dot = to_dot(figure1_graph)
    assert dot.startswith("digraph G {")
    assert dot.rstrip().endswith("}")
    assert dot.count(" -> ") == 8
    assert dot.count("[label=") == 5 + 8  # one caption per vertex and edge


def test_vertex_label_key(figure1_graph):
    dot = to_dot(figure1_graph, vertex_label_key="name")
    assert '"Alice:Person"' in dot
    assert '"Uni Leipzig:University"' in dot


def test_properties_included_when_asked(figure1_graph):
    dot = to_dot(figure1_graph, include_properties=True)
    assert "classYear" in dot


def test_quotes_escaped(env):
    from repro.epgm import GradoopId, LogicalGraph, Vertex

    vertex = Vertex(GradoopId(1), label='Weird"Label')
    graph = LogicalGraph.from_collections(env, [vertex], [])
    dot = to_dot(graph)
    assert '\\"' in dot


def test_custom_name(figure1_graph):
    assert to_dot(figure1_graph, name="Community").startswith("digraph Community")

"""GraphRegistry: named graphs with versioned statistics."""

import pytest

from repro.engine import GraphStatistics
from repro.server import GraphRegistry, RegisteredGraph, UnknownGraphError


@pytest.fixture
def registry(figure1_graph):
    registry = GraphRegistry()
    registry.register("fig1", figure1_graph)
    return registry


class TestLookup:
    def test_register_and_get(self, registry, figure1_graph):
        entry = registry.get("fig1")
        assert isinstance(entry, RegisteredGraph)
        assert entry.name == "fig1"
        assert entry.graph is figure1_graph

    def test_unknown_graph_raises_with_known_names(self, registry):
        with pytest.raises(UnknownGraphError) as excinfo:
            registry.get("nope")
        assert "nope" in str(excinfo.value)
        assert "fig1" in str(excinfo.value)  # tells the caller what exists

    def test_unknown_graph_error_is_a_key_error(self):
        assert issubclass(UnknownGraphError, KeyError)

    def test_contains_len_names(self, registry, figure1_graph):
        assert "fig1" in registry
        assert "nope" not in registry
        assert len(registry) == 1
        registry.register("other", figure1_graph)
        assert registry.names() == ["fig1", "other"]

    def test_remove(self, registry):
        registry.remove("fig1")
        assert "fig1" not in registry
        assert registry.remove("fig1") is None  # idempotent


class TestStatisticsVersioning:
    def test_statistics_computed_lazily_from_graph(self, registry):
        entry = registry.get("fig1")
        statistics = entry.statistics
        assert isinstance(statistics, GraphStatistics)
        assert statistics.vertex_count_by_label.get("Person") == 3
        assert entry.statistics is statistics  # computed once, then cached

    def test_fresh_entry_starts_at_version_zero(self, registry):
        assert registry.get("fig1").version == 0

    def test_touch_bumps_version(self, registry):
        entry = registry.get("fig1")
        assert entry.touch() == 1
        assert entry.touch() == 2
        assert entry.version == 2

    def test_reregister_keeps_version_rising(self, registry, figure1_graph):
        entry = registry.get("fig1")
        entry.touch()
        replaced = registry.register("fig1", figure1_graph)
        # same entry object, new graph, version strictly above the old one
        assert replaced is entry
        assert entry.version == 2

    def test_explicit_statistics_are_used_verbatim(self, figure1_graph):
        registry = GraphRegistry()
        statistics = GraphStatistics.from_graph(figure1_graph)
        statistics.version = 7
        entry = registry.register("fig1", figure1_graph, statistics)
        assert entry.statistics is statistics
        assert entry.version == 7

"""Plan/result caching: LRU bounds, eviction, stats-version invalidation."""

import pytest

from repro.cache import LRUCache
from repro.engine import CypherRunner
from repro.server import ResultCache, prepared_cache_key, result_cache_key

QUERIES = [
    "MATCH (p:Person) RETURN p.name",
    "MATCH (c:City) RETURN c.name",
    "MATCH (u:University) RETURN u.name",
]


class TestLRUCache:
    def test_get_miss_returns_default(self):
        cache = LRUCache(maxsize=2)
        assert cache.get("k") is None
        assert cache.get("k", "fallback") == "fallback"
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0

    def test_put_get_roundtrip(self):
        cache = LRUCache(maxsize=2)
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.stats.hits == 1

    def test_evicts_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" — "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_contains_does_not_touch_stats(self):
        # the service probes with `in` for its plan-hit flag; that probe
        # must not double-count against the hit/miss counters
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        assert "a" in cache
        assert "b" not in cache
        assert cache.stats.lookups == 0

    def test_maxsize_zero_disables_storage(self):
        cache = LRUCache(maxsize=0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_invalidate_all_and_by_predicate(self):
        cache = LRUCache(maxsize=8)
        for index in range(4):
            cache.put(("tag", index), index)
        removed = cache.invalidate(lambda key: key[1] % 2 == 0)
        assert removed == 2
        assert len(cache) == 2
        assert cache.stats.invalidations == 2
        cache.clear()
        assert len(cache) == 0


class TestRunnerPlanCache:
    """Satellite: the runner's plan cache is a bounded shared LRU."""

    def test_default_plan_cache_is_bounded(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        assert isinstance(runner.plan_cache, LRUCache)
        assert runner.plan_cache.maxsize > 0

    def test_compile_populates_and_reuses_cache(self, figure1_graph):
        runner = CypherRunner(figure1_graph, plan_cache=LRUCache(maxsize=4))
        handler, root = runner.compile(QUERIES[0])
        assert len(runner.plan_cache) == 1
        handler2, root2 = runner.compile(QUERIES[0])
        assert handler2 is handler
        assert root2 is root
        assert runner.plan_cache.stats.hits == 1

    def test_small_cache_evicts_oldest_plan(self, figure1_graph):
        runner = CypherRunner(figure1_graph, plan_cache=LRUCache(maxsize=2))
        for query in QUERIES:
            runner.compile(query)
        assert len(runner.plan_cache) == 2
        assert runner.plan_cache.stats.evictions == 1
        assert runner.plan_cache_key(QUERIES[0]) not in runner.plan_cache
        assert runner.plan_cache_key(QUERIES[2]) in runner.plan_cache
        # recompiling the evicted query misses, then lands back in cache
        _, root = runner.compile(QUERIES[0])
        assert runner.plan_cache_key(QUERIES[0]) in runner.plan_cache
        assert root is not None

    def test_shared_cache_across_runners(self, figure1_graph):
        shared = LRUCache(maxsize=8)
        first = CypherRunner(figure1_graph, plan_cache=shared)
        second = CypherRunner(figure1_graph, plan_cache=shared)
        handler, root = first.compile(QUERIES[0])
        handler2, root2 = second.compile(QUERIES[0])
        assert root2 is root  # same graph + settings -> same cached plan

    def test_statistics_version_bump_invalidates_by_construction(
        self, figure1_graph
    ):
        runner = CypherRunner(figure1_graph, plan_cache=LRUCache(maxsize=8))
        _, old_root = runner.compile(QUERIES[0])
        old_key = runner.plan_cache_key(QUERIES[0])

        runner.statistics.version += 1  # "the graph changed underneath us"

        new_key = runner.plan_cache_key(QUERIES[0])
        assert new_key != old_key
        _, new_root = runner.compile(QUERIES[0])
        assert new_root is not old_root  # old plan was unreachable
        assert len(runner.plan_cache) == 2  # old entry ages out via LRU

    def test_execution_still_correct_after_version_bump(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        before = runner.execute_table(QUERIES[0])
        runner.statistics.version += 1
        after = runner.execute_table(QUERIES[0])
        assert sorted(row["p.name"] for row in before) == [
            "Alice", "Bob", "Eve",
        ]
        assert before == after


class TestCacheKeys:
    def test_key_families_are_disjoint(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        query = "MATCH (p:Person) WHERE p.name = $name RETURN p.name"
        parameters = {"name": "Alice"}
        plan_key = runner.plan_cache_key(query, parameters)
        prepared_key = prepared_cache_key(runner, query)
        result_key = result_cache_key(runner, query, parameters)
        assert plan_key[0] == "plan"
        assert prepared_key[0] == "prepared"
        assert result_key[0] == "result"
        assert len({plan_key, prepared_key, result_key}) == 3

    def test_prepared_key_ignores_parameters(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        query = "MATCH (p:Person) WHERE p.name = $name RETURN p.name"
        assert prepared_cache_key(runner, query) == prepared_cache_key(
            runner, query
        )

    def test_result_key_depends_on_parameters(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        query = "MATCH (p:Person) WHERE p.name = $name RETURN p.name"
        alice = result_cache_key(runner, query, {"name": "Alice"})
        eve = result_cache_key(runner, query, {"name": "Eve"})
        assert alice != eve


class TestResultCache:
    def test_disabled_cache_never_hits_and_keeps_stats_clean(
        self, figure1_graph
    ):
        runner = CypherRunner(figure1_graph)
        cache = ResultCache(maxsize=0)
        assert not cache.enabled
        hit, rows = cache.get(runner, QUERIES[0], None)
        assert hit is False and rows is None
        cache.put(runner, QUERIES[0], None, [{"x": 1}])
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_enabled_cache_roundtrip(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        cache = ResultCache(maxsize=4)
        hit, _ = cache.get(runner, QUERIES[0], None)
        assert hit is False
        cache.put(runner, QUERIES[0], None, [{"x": 1}])
        hit, rows = cache.get(runner, QUERIES[0], None)
        assert hit is True
        assert rows == [{"x": 1}]

    def test_version_bump_makes_cached_rows_unreachable(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        cache = ResultCache(maxsize=4)
        cache.put(runner, QUERIES[0], None, [{"x": 1}])
        runner.statistics.version += 1
        hit, _ = cache.get(runner, QUERIES[0], None)
        assert hit is False

    def test_invalidate_and_clear(self, figure1_graph):
        runner = CypherRunner(figure1_graph)
        cache = ResultCache(maxsize=4)
        cache.put(runner, QUERIES[0], None, [])
        cache.put(runner, QUERIES[1], None, [])
        assert len(cache) == 2
        cache.invalidate()
        assert len(cache) == 0


class TestCachedEmptyResults:
    def test_empty_row_sets_are_cached_hits(self, figure1_graph):
        # regression guard: the sentinel-based get must distinguish "cached
        # empty list" from "not cached" — `if rows:` would not
        runner = CypherRunner(figure1_graph)
        cache = ResultCache(maxsize=4)
        cache.put(runner, QUERIES[0], None, [])
        hit, rows = cache.get(runner, QUERIES[0], None)
        assert hit is True
        assert rows == []

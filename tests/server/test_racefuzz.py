"""Interleaving-fuzzer coverage of the serving stack's shared state.

Each test drives one concurrency-sensitive subsystem through seeded
adversarial schedules and checks a consistency invariant afterwards:

* ``LRUCache`` — stats snapshots are consistent (hits + misses equals
  the number of lookups performed; no torn snapshot mid-increment);
* ``RegisteredGraph.touch`` — concurrent version bumps are never lost
  and every caller gets a distinct version (the pre-fix code read the
  version, yielded, then wrote the stale bump);
* prepared statements — concurrent rebinding never bleeds one thread's
  parameter values into another's rows (the statement lock serializes
  assign + evaluate);
* ``CancellationToken`` — a cancel is never lost: once any thread
  cancels, every later poll raises.
"""

from collections import Counter

import pytest

from repro.analysis.concurrency import InterleavingFuzzer
from repro.cache import LRUCache
from repro.dataflow.cancellation import CancellationToken, QueryCancelled
from repro.engine import CypherRunner
from repro.server.registry import RegisteredGraph
from tests.conftest import build_figure1_elements
from repro.dataflow import ExecutionEnvironment
from repro.epgm import LogicalGraph

THREADS = 4


def fuzzer(schedules=12, threads=THREADS, **kwargs):
    return InterleavingFuzzer(
        seed=17, schedules=schedules, threads=threads, **kwargs
    )


# LRUCache stats consistency ---------------------------------------------------

LOOKUPS_PER_THREAD = 25


def cache_worker(cache, fuzz):
    rng = fuzz.random()
    for index in range(LOOKUPS_PER_THREAD):
        key = rng.randrange(12)
        fuzz.step()
        if cache.get(key) is None:
            cache.put(key, "value-%d" % key)


def cache_invariant(cache):
    snapshot = cache.stats.snapshot()
    lookups = snapshot["hits"] + snapshot["misses"]
    expected = THREADS * LOOKUPS_PER_THREAD
    if lookups != expected:
        return "lost stats increments: %d lookups recorded, %d performed" % (
            lookups, expected,
        )
    if snapshot["hits"] != 0 and not 0.0 < snapshot["hit_rate"] <= 1.0:
        return "inconsistent hit_rate %r for %r" % (
            snapshot["hit_rate"], snapshot,
        )


def test_lru_cache_stats_consistent_under_fuzz():
    findings = fuzzer().run(
        setup=lambda: LRUCache(8, name="cache.fuzz"),
        worker=cache_worker,
        invariant=cache_invariant,
    )
    assert findings == [], findings[0] if findings else None


# Registry version bumps -------------------------------------------------------

TOUCHES_PER_THREAD = 20


def build_graph():
    environment = ExecutionEnvironment(parallelism=2)
    head, vertices, edges = build_figure1_elements()
    return LogicalGraph.from_collections(
        environment, vertices, edges, graph_head=head
    )


def test_registry_touch_never_loses_a_bump():
    graph = build_graph()

    def setup():
        return RegisteredGraph("fuzz", graph)

    def worker(entry, fuzz):
        for _ in range(TOUCHES_PER_THREAD):
            fuzz.step()
            entry.touch()

    def invariant(entry):
        expected = THREADS * TOUCHES_PER_THREAD
        if entry.version != expected:
            return "lost version bumps: %d != %d" % (entry.version, expected)

    findings = fuzzer(schedules=8).run(
        setup=setup, worker=worker, invariant=invariant,
    )
    assert findings == [], findings[0] if findings else None


def test_registry_touch_versions_are_distinct():
    graph = build_graph()
    entry = RegisteredGraph("fuzz", graph)
    seen = []

    def worker(_state, fuzz):
        local = []
        for _ in range(TOUCHES_PER_THREAD):
            fuzz.step()
            local.append(entry.touch())
        seen.append(local)

    findings = fuzzer(schedules=1).run(setup=lambda: entry, worker=worker)
    assert findings == []
    versions = [v for local in seen for v in local]
    assert len(versions) == len(set(versions)), "duplicate touch() versions"


# Prepared-statement rebinding -------------------------------------------------

NAMES = ["Alice", "Eve", "Bob"]
REBINDS_PER_THREAD = 6


def test_prepared_rebinding_does_not_bleed_bindings():
    graph = build_graph()
    runner = CypherRunner(graph)
    statement = runner.prepare(
        "MATCH (p:Person) WHERE p.name = $name RETURN p.name"
    )

    def worker(stmt, fuzz):
        rng = fuzz.random()
        for _ in range(REBINDS_PER_THREAD):
            name = NAMES[rng.randrange(len(NAMES))]
            fuzz.step()
            rows = stmt.execute_table({"name": name})
            assert [row["p.name"] for row in rows] == [name], (
                "binding bled: asked for %r, got %r" % (name, rows)
            )

    findings = fuzzer(schedules=6, threads=3).run(
        setup=lambda: statement, worker=worker,
    )
    assert findings == [], findings[0] if findings else None
    assert statement.executions == 3 * REBINDS_PER_THREAD * 6


# Fused chain execution --------------------------------------------------------

FUSED_QUERY = (
    "MATCH (a:Person)-[e1:knows]->(b:Person), (b)-[e2:knows]->(c:Person) "
    "RETURN *"
)
FUSED_RUNS_PER_THREAD = 3


def test_concurrent_fused_execution_matches_serial_reference():
    """Concurrent fused queries race on the compiled-template cache.

    Every schedule starts from a cold ``_templates`` cache so the
    compile-then-publish path interleaves adversarially; each thread's
    fused result multiset must equal the serial per-record reference.
    """
    import repro.dataflow.fusion as fusion_module

    graph = build_graph()
    serial = Counter(
        CypherRunner(graph, fused=False).execute_embeddings(FUSED_QUERY)[0]
    )
    assert serial  # the reference must be non-trivial

    def setup():
        with fusion_module._template_lock:
            fusion_module._templates.clear()
        return graph

    def worker(shared_graph, fuzz):
        runner = CypherRunner(shared_graph, fused=True)
        for _ in range(FUSED_RUNS_PER_THREAD):
            fuzz.step()
            with shared_graph.environment.job("fuzz-fused"):
                embeddings, _ = runner.execute_embeddings(FUSED_QUERY)
            assert Counter(embeddings) == serial, "fused result diverged"

    findings = fuzzer(schedules=6).run(setup=setup, worker=worker)
    assert findings == [], findings[0] if findings else None


# CancellationToken ------------------------------------------------------------

def test_no_lost_cancellations_under_fuzz():
    class TokenState:
        def __init__(self):
            self.token = CancellationToken()
            self.raised = []

    def worker(state, fuzz):
        # thread 0 always cancels; the rest poll until they observe it
        cancels = fuzz.thread_index == 0
        for _ in range(30):
            fuzz.step()
            if cancels:
                state.token.cancel("fuzz")
            else:
                try:
                    state.token.poll()
                except QueryCancelled:
                    state.raised.append(True)
                    return

    def invariant(state):
        if not state.token.cancelled:
            return "token lost its cancellation flag"
        try:
            state.token.poll()
        except QueryCancelled:
            return None
        return "poll() after cancel() did not raise"

    findings = fuzzer(schedules=10).run(
        setup=TokenState, worker=worker, invariant=invariant,
    )
    assert findings == [], findings[0] if findings else None


# Long adversarial schedules (stress) ------------------------------------------

@pytest.mark.stress
def test_lru_cache_stats_consistent_long_schedules():
    findings = InterleavingFuzzer(
        seed=41, schedules=40, threads=8, hot_barriers=2,
    ).run(
        setup=lambda: LRUCache(8, name="cache.fuzz"),
        worker=cache_worker,
        invariant=lambda cache: _long_cache_invariant(cache),
    )
    assert findings == [], findings[0] if findings else None


def _long_cache_invariant(cache):
    snapshot = cache.stats.snapshot()
    lookups = snapshot["hits"] + snapshot["misses"]
    expected = 8 * LOOKUPS_PER_THREAD
    if lookups != expected:
        return "lost stats increments: %d != %d" % (lookups, expected)


@pytest.mark.stress
def test_registry_touch_long_schedules():
    graph = build_graph()

    def worker(entry, fuzz):
        for _ in range(TOUCHES_PER_THREAD):
            fuzz.step()
            entry.touch()

    def invariant(entry):
        expected = 8 * TOUCHES_PER_THREAD
        if entry.version != expected:
            return "lost version bumps: %d != %d" % (entry.version, expected)

    findings = InterleavingFuzzer(
        seed=43, schedules=30, threads=8, hot_barriers=2,
    ).run(
        setup=lambda: RegisteredGraph("fuzz", graph),
        worker=worker,
        invariant=invariant,
    )
    assert findings == [], findings[0] if findings else None

"""QueryService: admission control, deadlines, caching, lifecycle."""

import threading

import pytest

from repro.dataflow import QueryTimeout
from repro.engine import CypherRunner
from repro.server import (
    AdmissionError,
    GraphRegistry,
    QueryService,
    ServiceClosedError,
    UnknownGraphError,
)
from repro.server.bench import rows_multiset

PLAIN_QUERY = "MATCH (p:Person) RETURN p.name"
PARAM_QUERY = "MATCH (p:Person) WHERE p.name = $name RETURN p.name"


@pytest.fixture
def registry(figure1_graph):
    registry = GraphRegistry()
    registry.register("fig1", figure1_graph)
    return registry


@pytest.fixture
def service(registry):
    with QueryService(registry, max_concurrency=2, max_queue=4) as service:
        yield service


class TestExecution:
    def test_plain_query_matches_direct_runner(self, service, figure1_graph):
        result = service.execute("fig1", PLAIN_QUERY)
        direct = CypherRunner(figure1_graph).execute_table(PLAIN_QUERY)
        assert rows_multiset(result.rows) == rows_multiset(direct)
        assert result.row_count == 3
        assert result.prepared is False
        assert result.result_cache_hit is False

    def test_plain_query_warm_plan_hit(self, service):
        cold = service.execute("fig1", PLAIN_QUERY)
        warm = service.execute("fig1", PLAIN_QUERY)
        assert cold.plan_cache_hit is False
        assert warm.plan_cache_hit is True

    def test_parameterized_query_routes_through_prepared_plan(self, service):
        alice = service.execute("fig1", PARAM_QUERY, {"name": "Alice"})
        eve = service.execute("fig1", PARAM_QUERY, {"name": "Eve"})
        assert alice.prepared is True
        assert [row["p.name"] for row in alice.rows] == ["Alice"]
        assert [row["p.name"] for row in eve.rows] == ["Eve"]
        # second binding reuses the compiled plan from the shared cache
        assert eve.plan_cache_hit is True

    def test_unknown_graph_raises_through_future(self, service):
        with pytest.raises(UnknownGraphError):
            service.execute("nope", PLAIN_QUERY)

    def test_failed_query_counted_and_service_survives(self, service):
        with pytest.raises(Exception):
            service.execute("fig1", "MATCH (p:Person RETURN")  # syntax error
        assert service.metrics.snapshot()["failed"] == 1
        assert service.execute("fig1", PLAIN_QUERY).row_count == 3

    def test_submit_returns_future(self, service):
        future = service.submit("fig1", PLAIN_QUERY)
        assert future.result(timeout=30).row_count == 3


class TestPreparedStatements:
    def test_prepare_execute_rebind(self, service):
        handle = service.prepare("fig1", PARAM_QUERY)
        assert handle.parameter_names == ("name",)
        alice = service.execute_prepared(handle.statement_id, {"name": "Alice"})
        eve = service.execute_prepared(handle.statement_id, {"name": "Eve"})
        assert [row["p.name"] for row in alice.rows] == ["Alice"]
        assert [row["p.name"] for row in eve.rows] == ["Eve"]

    def test_preparing_twice_shares_the_compiled_plan(self, service):
        first = service.prepare("fig1", PARAM_QUERY)
        second = service.prepare("fig1", PARAM_QUERY)
        assert first.plan_cache_hit is False
        assert second.plan_cache_hit is True
        assert first.statement_id != second.statement_id

    def test_unknown_statement_id(self, service):
        with pytest.raises(KeyError):
            service.execute_prepared("stmt-999", {"name": "Alice"})


class TestResultCache:
    @pytest.fixture
    def caching_service(self, registry):
        with QueryService(registry, result_cache_size=8) as service:
            yield service

    def test_repeat_query_hits_result_cache(self, caching_service):
        cold = caching_service.execute("fig1", PARAM_QUERY, {"name": "Alice"})
        warm = caching_service.execute("fig1", PARAM_QUERY, {"name": "Alice"})
        assert cold.result_cache_hit is False
        assert warm.result_cache_hit is True
        assert warm.rows == cold.rows

    def test_different_bindings_do_not_share_rows(self, caching_service):
        caching_service.execute("fig1", PARAM_QUERY, {"name": "Alice"})
        eve = caching_service.execute("fig1", PARAM_QUERY, {"name": "Eve"})
        assert eve.result_cache_hit is False
        assert [row["p.name"] for row in eve.rows] == ["Eve"]

    def test_touch_invalidates_cached_rows(self, caching_service, registry):
        caching_service.execute("fig1", PARAM_QUERY, {"name": "Alice"})
        registry.get("fig1").touch()  # graph changed -> version bump
        after = caching_service.execute("fig1", PARAM_QUERY, {"name": "Alice"})
        assert after.result_cache_hit is False


class TestAdmissionControl:
    def test_saturated_service_fast_fails(self, registry):
        # one worker, no queue: hold the worker hostage with an event, then
        # the first submission fills the only capacity slot and the second
        # must be rejected immediately (deterministic — occupancy is
        # counted at submit time, before any worker picks the query up)
        release = threading.Event()
        with QueryService(registry, max_concurrency=1, max_queue=0) as service:
            blocker = service._executor.submit(release.wait)
            try:
                queued = service.submit("fig1", PLAIN_QUERY)
                with pytest.raises(AdmissionError):
                    service.submit("fig1", PLAIN_QUERY)
            finally:
                release.set()
            assert queued.result(timeout=30).row_count == 3
            blocker.result(timeout=30)
            # capacity freed: the service accepts work again
            assert service.execute("fig1", PLAIN_QUERY).row_count == 3
            assert service.metrics.snapshot()["rejected"] == 1

    def test_invalid_capacity_configuration(self, registry):
        with pytest.raises(ValueError):
            QueryService(registry, max_concurrency=0)
        with pytest.raises(ValueError):
            QueryService(registry, max_queue=-1)


class TestDeadlines:
    def test_expired_deadline_times_out(self, service):
        with pytest.raises(QueryTimeout):
            service.execute("fig1", PLAIN_QUERY, timeout=0.0)
        assert service.metrics.snapshot()["timeouts"] == 1

    def test_worker_recovers_after_timeout(self, service):
        with pytest.raises(QueryTimeout):
            service.execute("fig1", PLAIN_QUERY, timeout=0.0)
        result = service.execute("fig1", PLAIN_QUERY)
        assert result.row_count == 3

    def test_default_timeout_applies_to_every_query(self, registry):
        with QueryService(registry, default_timeout=0.0) as service:
            with pytest.raises(QueryTimeout):
                service.execute("fig1", PLAIN_QUERY)

    def test_explicit_timeout_overrides_default(self, registry):
        with QueryService(registry, default_timeout=0.0) as service:
            result = service.execute("fig1", PLAIN_QUERY, timeout=60.0)
            assert result.row_count == 3


class TestLifecycle:
    def test_closed_service_rejects_submissions(self, registry):
        service = QueryService(registry)
        service.close()
        assert service.closed
        with pytest.raises(ServiceClosedError):
            service.submit("fig1", PLAIN_QUERY)

    def test_close_is_idempotent(self, registry):
        service = QueryService(registry)
        service.close()
        service.close()

    def test_metrics_snapshot_shape(self, service):
        service.execute("fig1", PLAIN_QUERY)
        snapshot = service.metrics_snapshot()
        assert snapshot["submitted"] == 1
        assert snapshot["completed"] == 1
        assert snapshot["graphs"] == ["fig1"]
        assert snapshot["capacity"] == {"max_concurrency": 2, "max_queue": 4}
        assert "plan_cache" in snapshot
        assert snapshot["latency"]["count"] == 1

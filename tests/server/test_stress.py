"""Concurrent differential stress: N threads vs. a serial baseline.

The satellite ISSUE requirement: run the LDBC workload (Q1-Q6) from many
threads through one :class:`QueryService` and assert every concurrent
result is *identical* (as a row multiset) to what a single-threaded
:class:`CypherRunner` produces — the service adds concurrency, caching
and deadlines, never different answers.
"""

import threading

import pytest

from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner
from repro.ldbc import LDBCGenerator
from repro.server import GraphRegistry, QueryService
from repro.server.bench import build_workload, rows_multiset

SCALE_FACTOR = 0.02
SEED = 11
THREADS = 8
GRAPH = "ldbc"


@pytest.fixture(scope="module")
def ldbc_setup():
    dataset = LDBCGenerator(scale_factor=SCALE_FACTOR, seed=SEED).generate()
    graph = dataset.to_logical_graph(ExecutionEnvironment(parallelism=4))
    workload = build_workload(dataset)
    runner = CypherRunner(graph)
    reference = {
        item.name: rows_multiset(
            runner.execute_table(item.query, item.parameters)
        )
        for item in workload
    }
    return graph, workload, reference


def test_concurrent_results_match_serial_baseline(ldbc_setup):
    graph, workload, reference = ldbc_setup
    registry = GraphRegistry()
    registry.register(GRAPH, graph)
    mismatches = []
    errors = []
    barrier = threading.Barrier(THREADS)

    def client(client_index):
        try:
            barrier.wait(30.0)
            # stagger starting offsets so different queries overlap in time
            for step in range(len(workload)):
                item = workload[(client_index + step) % len(workload)]
                result = service.execute(GRAPH, item.query, item.parameters)
                if rows_multiset(result.rows) != reference[item.name]:
                    mismatches.append((client_index, item.name))
        except Exception as exc:  # noqa: BLE001 — surfaced below
            errors.append((client_index, repr(exc)))

    with QueryService(
        registry, max_concurrency=THREADS, max_queue=THREADS * 2
    ) as service:
        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        snapshot = service.metrics_snapshot()

    assert not errors
    assert not mismatches, "cross-query corruption: %s" % mismatches
    operations = THREADS * len(workload)
    assert snapshot["completed"] == operations
    assert snapshot["failed"] == 0 and snapshot["timeouts"] == 0
    # every query text compiles once; later executions reuse the plan
    assert snapshot["plan_cache"]["hits"] > 0
    assert snapshot["max_in_flight"] >= 2  # work genuinely overlapped


def test_concurrent_rebinding_of_one_prepared_statement(ldbc_setup):
    """Many threads hammer ONE statement with different bindings."""
    graph, workload, reference = ldbc_setup
    parameterized = [item for item in workload if item.parameters]
    template = parameterized[0]
    bindings = [item for item in workload if item.query == template.query]
    assert len(bindings) >= 2

    registry = GraphRegistry()
    registry.register(GRAPH, graph)
    failures = []

    def client(client_index):
        try:
            for step in range(4):
                item = bindings[(client_index + step) % len(bindings)]
                result = service.execute_prepared(
                    handle.statement_id, item.parameters
                )
                if rows_multiset(result.rows) != reference[item.name]:
                    failures.append((client_index, item.name))
        except Exception as exc:  # noqa: BLE001 — surfaced below
            failures.append((client_index, repr(exc)))

    with QueryService(
        registry, max_concurrency=THREADS, max_queue=THREADS * 4
    ) as service:
        handle = service.prepare(GRAPH, template.query)
        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)

    assert not failures, failures

"""The HTTP wire protocol, end to end over a real socket."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.server import GraphRegistry, QueryService, serve_in_thread

PARAM_QUERY = "MATCH (p:Person) WHERE p.name = $name RETURN p.name"


def http(method, url, payload=None):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture
def endpoint(figure1_graph):
    registry = GraphRegistry()
    registry.register("fig1", figure1_graph)
    service = QueryService(registry, max_concurrency=2)
    server, thread = serve_in_thread(service)
    base = "http://%s:%d" % server.address
    yield base, server, thread
    server.stop()
    thread.join(timeout=30)
    assert not thread.is_alive()


class TestEndpoints:
    def test_health(self, endpoint):
        base, _, _ = endpoint
        status, body = http("GET", base + "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["graphs"] == ["fig1"]

    def test_query_roundtrip(self, endpoint):
        base, _, _ = endpoint
        status, body = http("POST", base + "/query", {
            "graph": "fig1", "query": PARAM_QUERY,
            "parameters": {"name": "Alice"},
        })
        assert status == 200
        assert body["row_count"] == 1
        assert body["rows"] == [{"p.name": "Alice"}]

    def test_prepare_then_execute_with_two_bindings(self, endpoint):
        base, _, _ = endpoint
        status, prepared = http("POST", base + "/prepare", {
            "graph": "fig1", "query": PARAM_QUERY,
        })
        assert status == 200
        assert prepared["parameter_names"] == ["name"]
        for name in ("Alice", "Eve"):
            status, body = http("POST", base + "/execute", {
                "statement_id": prepared["statement_id"],
                "parameters": {"name": name},
            })
            assert status == 200
            assert body["rows"] == [{"p.name": name}]

    def test_metrics_reports_progress(self, endpoint):
        base, _, _ = endpoint
        http("POST", base + "/query", {"graph": "fig1", "query": PARAM_QUERY,
                                       "parameters": {"name": "Bob"}})
        status, metrics = http("GET", base + "/metrics")
        assert status == 200
        assert metrics["completed"] >= 1
        assert "plan_cache" in metrics


class TestErrorMapping:
    def test_unknown_graph_is_404(self, endpoint):
        base, _, _ = endpoint
        status, body = http("POST", base + "/query", {
            "graph": "nope", "query": PARAM_QUERY,
        })
        assert status == 404
        assert "nope" in body["error"]

    def test_missing_field_is_400(self, endpoint):
        base, _, _ = endpoint
        status, _ = http("POST", base + "/query", {"graph": "fig1"})
        assert status == 400

    def test_malformed_json_is_400(self, endpoint):
        base, _, _ = endpoint
        request = urllib.request.Request(
            base + "/query", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_syntax_error_is_400(self, endpoint):
        base, _, _ = endpoint
        status, _ = http("POST", base + "/query", {
            "graph": "fig1", "query": "MATCH (p:Person RETURN",
        })
        assert status == 400

    def test_expired_deadline_is_504(self, endpoint):
        base, _, _ = endpoint
        status, body = http("POST", base + "/query", {
            "graph": "fig1", "query": PARAM_QUERY,
            "parameters": {"name": "Alice"}, "timeout": 0.0,
        })
        assert status == 504

    def test_unknown_route_is_404(self, endpoint):
        base, _, _ = endpoint
        status, _ = http("GET", base + "/nope")
        assert status == 404


class TestShutdownEndpoint:
    def test_shutdown_stops_the_server(self, figure1_graph):
        registry = GraphRegistry()
        registry.register("fig1", figure1_graph)
        service = QueryService(registry)
        server, thread = serve_in_thread(service)
        base = "http://%s:%d" % server.address
        status, _ = http("POST", base + "/shutdown")
        assert status == 200
        thread.join(timeout=30)
        assert not thread.is_alive()
        # the stop runs on its own thread: serve loop exit happens first,
        # the service close moments later
        deadline = time.time() + 30
        while not service.closed and time.time() < deadline:
            time.sleep(0.01)
        assert service.closed

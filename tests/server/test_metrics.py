"""Latency histograms and the service metrics lifecycle."""

from repro.cache import LRUCache
from repro.server import LatencyHistogram, ServiceMetrics


class TestLatencyHistogram:
    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(0.5) == 0.0

    def test_records_accumulate(self):
        histogram = LatencyHistogram()
        for seconds in (0.001, 0.002, 0.004):
            histogram.record(seconds)
        assert histogram.count == 3
        assert histogram.max == 0.004
        assert abs(histogram.mean - 0.007 / 3) < 1e-12

    def test_percentiles_are_monotone_and_bounded(self):
        histogram = LatencyHistogram()
        for index in range(100):
            histogram.record(0.0001 * (index + 1))
        p50 = histogram.percentile(0.50)
        p95 = histogram.percentile(0.95)
        p99 = histogram.percentile(0.99)
        assert p50 <= p95 <= p99 <= histogram.max
        # log2 buckets: the estimate is an upper bound within 2x
        assert p50 >= 0.005  # the true median
        assert p50 <= 0.011

    def test_extreme_latency_lands_in_last_bucket(self):
        histogram = LatencyHistogram()
        histogram.record(10_000.0)  # hours — beyond the bucket range
        assert histogram.count == 1
        assert histogram.percentile(0.99) == 10_000.0  # clamped to max

    def test_snapshot_keys(self):
        histogram = LatencyHistogram()
        histogram.record(0.01)
        snapshot = histogram.snapshot()
        assert set(snapshot) == {
            "count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s",
        }


class TestServiceMetrics:
    def test_lifecycle_gauges(self):
        metrics = ServiceMetrics()
        metrics.on_submit()
        metrics.on_submit()
        assert metrics.queue_depth == 2
        metrics.on_start(queue_seconds=0.001)
        assert metrics.queue_depth == 1
        assert metrics.in_flight == 1
        metrics.on_finish(0.01, "completed")
        assert metrics.in_flight == 0
        assert metrics.completed == 1
        assert metrics.max_queue_depth == 2
        assert metrics.max_in_flight == 1

    def test_outcome_routing(self):
        metrics = ServiceMetrics()
        for outcome in ("completed", "failed", "timeout", "timeout"):
            metrics.on_submit()
            metrics.on_start(0.0)
            metrics.on_finish(0.001, outcome)
        snapshot = metrics.snapshot()
        assert snapshot["completed"] == 1
        assert snapshot["failed"] == 1
        assert snapshot["timeouts"] == 2
        assert snapshot["latency"]["count"] == 4

    def test_reject_and_abandon(self):
        metrics = ServiceMetrics()
        metrics.on_reject()
        metrics.on_submit()
        metrics.on_abandon()
        assert metrics.rejected == 1
        assert metrics.queue_depth == 0

    def test_snapshot_merges_cache_stats(self):
        metrics = ServiceMetrics()
        cache = LRUCache(maxsize=4)
        cache.put("k", 1)
        cache.get("k")
        snapshot = metrics.snapshot(plan_cache=cache)
        assert snapshot["plan_cache"]["hits"] == 1
        assert snapshot["plan_cache"]["size"] == 1
        assert "result_cache" not in snapshot

"""Prepared statements: one plan, many bindings, validated at bind time."""

import pytest

from repro.cypher.errors import CypherSemanticError
from repro.engine import CypherRunner
from repro.server.bench import rows_multiset

PARAM_QUERY = "MATCH (p:Person) WHERE p.name = $name RETURN p.name"
VARLEN_QUERY = (
    "MATCH (a:Person)-[e:knows*1..2]->(b:Person) "
    "WHERE a.name = $name RETURN b.name"
)


@pytest.fixture
def runner(figure1_graph):
    return CypherRunner(figure1_graph)


class TestCompilation:
    def test_declares_sorted_parameter_names(self, runner):
        statement = runner.prepare(
            "MATCH (p:Person) WHERE p.name = $who AND p.gender = $g "
            "RETURN p.name"
        )
        assert statement.parameter_names == ("g", "who")

    def test_requires_query_text(self, runner):
        with pytest.raises(TypeError):
            runner.prepare(None)


class TestRebinding:
    def test_one_plan_many_bindings(self, runner):
        statement = runner.prepare(PARAM_QUERY)
        root = statement.root
        alice = statement.execute_table({"name": "Alice"})
        eve = statement.execute_table({"name": "Eve"})
        assert [row["p.name"] for row in alice] == ["Alice"]
        assert [row["p.name"] for row in eve] == ["Eve"]
        assert statement.root is root  # no recompilation between bindings
        assert statement.executions == 2

    def test_binding_generation_advances(self, runner):
        statement = runner.prepare(PARAM_QUERY)
        first = statement.binding_generation
        statement.execute_table({"name": "Alice"})
        assert statement.binding_generation > first

    def test_matches_literal_query_for_every_binding(self, runner):
        statement = runner.prepare(PARAM_QUERY)
        for name in ("Alice", "Eve", "Bob", "Nobody"):
            bound = statement.execute_table({"name": name})
            literal = runner.execute_table(
                PARAM_QUERY.replace("$name", "'%s'" % name)
            )
            assert rows_multiset(bound) == rows_multiset(literal)

    def test_varlength_expansion_rebinds_cleanly(self, runner):
        """Regression: the expansion superstep loop must run lazily.

        An eager bulk iteration freezes the first binding's frontier into
        the plan, so a second binding returns rows from the *first*
        binding's expansion — exactly the cross-query corruption the
        bench's differential check exists to catch.
        """
        statement = runner.prepare(VARLEN_QUERY)
        for name in ("Alice", "Eve", "Alice"):  # rebind back and forth
            bound = statement.execute_table({"name": name})
            literal = runner.execute_table(
                VARLEN_QUERY.replace("$name", "'%s'" % name)
            )
            assert rows_multiset(bound) == rows_multiset(literal)


class TestBindTimeValidation:
    def test_missing_parameter_rejected(self, runner):
        statement = runner.prepare(PARAM_QUERY)
        with pytest.raises(CypherSemanticError, match=r"\$name"):
            statement.execute_table({})

    def test_undeclared_parameter_rejected(self, runner):
        statement = runner.prepare(PARAM_QUERY)
        with pytest.raises(CypherSemanticError, match=r"\$bogus"):
            statement.execute_table({"name": "Alice", "bogus": 1})

    def test_validate_returns_diagnostics_without_executing(self, runner):
        statement = runner.prepare(PARAM_QUERY)
        executions_before = statement.executions
        diagnostics = statement.validate({"name": "Alice"})
        assert isinstance(diagnostics, list)
        assert statement.executions == executions_before

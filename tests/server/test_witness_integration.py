"""The lock-order witness over a real :class:`QueryService` workload.

Drives submissions, prepared statements, registry mutations and metric
snapshots through a service with the witness installed, then asserts the
recorded acquisition graph covers the serving stack's lock roles and is
acyclic — the dynamic counterpart of the static C302 check.
"""

from concurrent.futures import wait

from repro.engine import GraphStatistics
from repro.locks import witness_installed
from repro.server import GraphRegistry, QueryService
from tests.conftest import build_figure1_elements
from repro.dataflow import ExecutionEnvironment
from repro.epgm import LogicalGraph

QUERY = "MATCH (p:Person) RETURN p.name"
PARAM_QUERY = "MATCH (p:Person) WHERE p.name = $name RETURN p.name"


def build_service():
    environment = ExecutionEnvironment(parallelism=2)
    head, vertices, edges = build_figure1_elements()
    graph = LogicalGraph.from_collections(
        environment, vertices, edges, graph_head=head
    )
    registry = GraphRegistry()
    registry.register("fig1", graph, GraphStatistics.from_graph(graph))
    return QueryService(registry, max_concurrency=3, max_queue=8,
                        result_cache_size=16), graph


def test_service_workload_records_acyclic_lock_graph():
    with witness_installed() as witness:
        service, graph = build_service()
        with service:
            futures = [
                service.submit("fig1", QUERY) for _ in range(6)
            ]
            handle = service.prepare("fig1", PARAM_QUERY)
            for name in ("Alice", "Eve", "Bob"):
                service.execute_prepared(
                    handle.statement_id, parameters={"name": name}
                )
            service.registry.get("fig1").touch()
            service.register_graph("fig1", graph)  # replace: version bump
            service.metrics_snapshot()
            assert not service.closed
            wait(futures)
            for future in futures:
                assert future.result().row_count == 3

    names = witness.lock_names()
    # the acceptance bar: a real workload exercises >= 4 distinct lock
    # roles across admission, runner bookkeeping, caching and metrics
    assert len(names) >= 4, names
    for expected in ("service.admission", "service.metrics",
                     "cache.plan", "cache.stats", "registry",
                     "registry.entry", "statement"):
        assert expected in names, (expected, names)
    assert witness.acquisitions > 20
    witness.assert_acyclic()


def test_witness_edges_point_into_the_serving_stack():
    with witness_installed() as witness:
        service, _graph = build_service()
        with service:
            service.execute("fig1", QUERY)
            service.metrics_snapshot()

    edges = witness.edges()
    # LRUCache delegates stats increments to the stats' own leaf lock
    assert ("cache.plan", "cache.stats") in edges
    assert "cache.py" in edges[("cache.plan", "cache.stats")]
    witness.assert_acyclic()

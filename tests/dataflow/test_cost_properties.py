"""Property-based tests for the cluster cost model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import ClusterCostModel, JobMetrics, OperatorRun


def balanced_run(records, workers):
    per_worker = records // workers
    return OperatorRun(
        "op",
        records_in=per_worker * workers,
        worker_records_in=[per_worker] * workers,
    )


class TestMonotonicity:
    @given(
        records=st.integers(1000, 10**6),
        small=st.integers(1, 8),
        factor=st.integers(2, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_more_workers_never_slower_on_balanced_load(
        self, records, small, factor
    ):
        large = small * factor
        base = ClusterCostModel(
            workers=small, job_overhead_seconds=0.0, barrier_overhead_seconds=0.0
        )
        metrics_small = JobMetrics()
        metrics_small.add(balanced_run(records, small))
        metrics_large = JobMetrics()
        metrics_large.add(balanced_run(records, large))
        assert base.with_workers(large).job_seconds(metrics_large) <= (
            base.job_seconds(metrics_small)
        )

    @given(records=st.integers(0, 10**6), extra=st.integers(1, 10**5))
    @settings(max_examples=60, deadline=None)
    def test_more_work_costs_more(self, records, extra):
        model = ClusterCostModel(workers=4)
        low = JobMetrics()
        low.add(balanced_run(records, 4))
        high = JobMetrics()
        high.add(balanced_run(records + extra * 4, 4))
        assert model.job_seconds(high) >= model.job_seconds(low)

    @given(
        worker_records=st.lists(st.integers(0, 10**5), min_size=2, max_size=8)
    )
    @settings(max_examples=60, deadline=None)
    def test_skew_never_cheaper_than_balanced(self, worker_records):
        """Any distribution of the same total work costs at least the
        perfectly balanced one."""
        workers = len(worker_records)
        total = sum(worker_records)
        model = ClusterCostModel(
            workers=workers,
            job_overhead_seconds=0.0,
            barrier_overhead_seconds=0.0,
        )
        skewed = JobMetrics()
        skewed.add(OperatorRun("op", worker_records_in=list(worker_records)))
        balanced = JobMetrics()
        base, remainder = divmod(total, workers)
        balanced.add(
            OperatorRun(
                "op",
                worker_records_in=[
                    base + (1 if i < remainder else 0) for i in range(workers)
                ],
            )
        )
        assert model.job_seconds(skewed) >= model.job_seconds(balanced) - 1e-12

    @given(spilled=st.integers(0, 4))
    @settings(max_examples=30, deadline=None)
    def test_spilling_never_speeds_up(self, spilled):
        model = ClusterCostModel(workers=4)
        clean = JobMetrics()
        clean.add(OperatorRun("op", worker_records_in=[1000] * 4))
        dirty = JobMetrics()
        dirty.add(
            OperatorRun(
                "op", worker_records_in=[1000] * 4, spilled_workers=spilled
            )
        )
        assert model.job_seconds(dirty) >= model.job_seconds(clean)

    @given(bytes_in=st.lists(st.integers(0, 10**8), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_network_term_nonnegative_and_monotone(self, bytes_in):
        model = ClusterCostModel(workers=len(bytes_in))
        quiet = OperatorRun("op", worker_records_in=[0] * len(bytes_in))
        chatty = OperatorRun(
            "op",
            worker_records_in=[0] * len(bytes_in),
            worker_shuffle_bytes_in=list(bytes_in),
        )
        assert model.operator_seconds(chatty) >= model.operator_seconds(quiet)

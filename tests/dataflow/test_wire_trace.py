"""Trace conformance: recorded wire traffic obeys the declared protocol.

``repro.dataflow.workers.messages.set_trace_hook`` taps every parent-
side pipe interaction.  These tests run real pooled jobs — a fused
chain, a forced repartition join, a deadline-cancelled job — record
the traffic, and replay it against the declarations the static
verifier and the model checker reason about:

* every message carries a declared tag with its declared arity on the
  pipe whose sender actually sent it (the Layer 1 schema);
* replaying each worker's request stream through the spec-cache LRU
  discipline never references an evicted spec (the ``spec_cache``
  model's invariant, on real traces);
* replaying each worker's cancel stream never confirms ``done`` for a
  job that was not cancelled first (the ``cancel_done`` model's
  protocol order, on real traces).

If the runtime drifts from the models, this is the test that notices.
"""

import pytest

from repro.dataflow import ExecutionEnvironment
from repro.dataflow.cancellation import CancellationToken, QueryTimeout
from repro.dataflow.operators import JoinStrategy
from repro.dataflow.workers import messages
from repro.dataflow.workers.messages import (
    CANCEL,
    DONE,
    PIPES,
    SHIP,
)


class _TraceRecorder:
    def __init__(self):
        self.events = []  # (direction, worker_index, message-or-batch)

    def __call__(self, direction, worker_index, message):
        self.events.append((direction, worker_index, message))

    def flat(self, direction):
        """(worker, message) pairs; request/response batches unrolled."""
        out = []
        for recorded_direction, worker, payload in self.events:
            if recorded_direction != direction:
                continue
            if direction == "cancel":
                out.append((worker, payload))
            else:
                out.extend((worker, message) for message in payload)
        return out


@pytest.fixture
def traced_env():
    recorder = _TraceRecorder()
    previous = messages.set_trace_hook(recorder)
    environment = ExecutionEnvironment(parallelism=4, workers=2)
    try:
        yield environment, recorder
    finally:
        messages.set_trace_hook(previous)
        environment.shutdown_workers()


def _run_traffic(environment):
    """A chain job, a forced repartition join, and a cancelled job."""
    chain_out = environment.from_collection(range(3000)).map(
        lambda x: x * 2
    ).filter(lambda x: x % 3).collect()
    assert chain_out

    left = environment.from_collection(range(1500)).map(
        lambda x: (x % 53, x)
    )
    right = environment.from_collection(range(1500)).map(
        lambda x: (x % 53, x * 10)
    )
    join_out = left.join(
        right,
        left_key=lambda pair: pair[0],
        right_key=lambda pair: pair[0],
        join_fn=lambda l, r: [(l[0], l[1], r[1])],
        strategy=JoinStrategy.REPARTITION_HASH,
    ).collect()
    assert join_out

    def slow(value):
        total = 0
        for i in range(4000):
            total += i
        return value + (total & 0)

    data = environment.from_collection(range(40_000)).map(slow)
    token = CancellationToken.with_timeout(0.05)
    with environment.job("deadline", cancellation=token):
        with pytest.raises(QueryTimeout):
            data.collect()


def test_recorded_traffic_conforms_to_declared_schema(traced_env):
    environment, recorder = traced_env
    _run_traffic(environment)
    assert recorder.events, "trace hook recorded nothing"

    by_name = {pipe.name: pipe for pipe in PIPES}
    seen_tags = set()
    for direction, pipe in (("request", by_name["request"]),
                            ("response", by_name["response"]),
                            ("cancel", by_name["cancel"])):
        for worker, message in recorder.flat(direction):
            assert isinstance(message, tuple), message
            tag = message[0]
            assert tag in pipe.fields, (
                "undeclared tag %r on the %s pipe" % (tag, pipe.name)
            )
            assert len(message) == pipe.arity(tag), (
                "%r arity %d on the wire, %d declared"
                % (tag, len(message), pipe.arity(tag))
            )
            seen_tags.add(tag)
    # the three workloads exercise the full production request surface
    assert {"ship", "chain", "shuffle", "exchange", "pjoin"} <= seen_tags
    assert {"ok", "cancel", "done"} <= seen_tags


def test_replayed_request_stream_satisfies_spec_cache_model(traced_env):
    environment, recorder = traced_env
    _run_traffic(environment)
    pool = environment.worker_pool()
    limit = pool.spec_cache_limit

    from collections import OrderedDict

    caches = {}
    spec_tags = {"chain", "join", "shuffle", "pjoin"}
    replayed_tasks = 0
    for worker, message in recorder.flat("request"):
        cache = caches.setdefault(worker, OrderedDict())
        tag = message[0]
        if tag == SHIP:
            cache[message[1]] = True
            cache.move_to_end(message[1])
            while len(cache) > limit:
                cache.popitem(last=False)
        elif tag in spec_tags:
            key = message[3]
            assert key in cache, (
                "task on worker %d references spec %r the replayed LRU "
                "already evicted" % (worker, key)
            )
            cache.move_to_end(key)
            replayed_tasks += 1
    assert replayed_tasks, "no spec-keyed tasks recorded"


def test_replayed_cancel_stream_satisfies_cancel_done_model(traced_env):
    environment, recorder = traced_env
    _run_traffic(environment)

    marks = {}
    confirmed = set()
    for worker, message in recorder.flat("cancel"):
        tag, job = message
        worker_marks = marks.setdefault(worker, set())
        if tag == CANCEL:
            worker_marks.add(job)
        else:
            assert tag == DONE
            assert job in worker_marks, (
                "done for job %d on worker %d without a preceding "
                "cancel" % (job, worker)
            )
            worker_marks.discard(job)
            confirmed.add(job)
    assert confirmed, "the deadline job should be cancel/done confirmed"

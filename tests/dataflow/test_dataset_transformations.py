"""Unit tests for the core DataSet transformations."""

import pytest

from repro.dataflow import (
    ExecutionEnvironment,
    JobExecutionError,
    JoinStrategy,
    PlanError,
)


@pytest.fixture
def env():
    return ExecutionEnvironment(parallelism=4)


def test_from_collection_collect_roundtrip(env):
    data = list(range(10))
    assert sorted(env.from_collection(data).collect()) == data


def test_from_collection_preserves_duplicates(env):
    data = [1, 1, 2, 2, 2]
    assert sorted(env.from_collection(data).collect()) == data


def test_map(env):
    result = env.from_collection([1, 2, 3]).map(lambda x: x * 10).collect()
    assert sorted(result) == [10, 20, 30]


def test_filter(env):
    result = env.from_collection(range(10)).filter(lambda x: x % 2 == 0).collect()
    assert sorted(result) == [0, 2, 4, 6, 8]


def test_flat_map_emits_zero_or_more(env):
    result = (
        env.from_collection([0, 1, 2, 3])
        .flat_map(lambda x: [x] * x)
        .collect()
    )
    assert sorted(result) == [1, 2, 2, 3, 3, 3]


def test_map_partition_sees_whole_partition(env):
    sums = (
        env.from_collection(range(100))
        .map_partition(lambda it: [sum(it)])
        .collect()
    )
    assert sum(sums) == sum(range(100))
    assert len(sums) == 4  # one output per worker


def test_union_is_bag_union(env):
    left = env.from_collection([1, 2])
    right = env.from_collection([2, 3])
    assert sorted(left.union(right).collect()) == [1, 2, 2, 3]


def test_union_rejects_foreign_environment(env):
    other_env = ExecutionEnvironment(parallelism=2)
    left = env.from_collection([1])
    right = other_env.from_collection([2])
    with pytest.raises(PlanError):
        left.union(right)


def test_distinct_whole_record(env):
    result = env.from_collection([1, 1, 2, 3, 3, 3]).distinct().collect()
    assert sorted(result) == [1, 2, 3]


def test_distinct_by_key_keeps_one_per_key(env):
    records = [("a", 1), ("a", 2), ("b", 3)]
    result = env.from_collection(records).distinct(key=lambda r: r[0]).collect()
    assert sorted(r[0] for r in result) == ["a", "b"]


def test_group_by_reduce_group(env):
    records = [("a", 1), ("b", 2), ("a", 3)]
    result = (
        env.from_collection(records)
        .group_by(lambda r: r[0])
        .reduce_group(lambda key, rows: [(key, sum(v for _, v in rows))])
        .collect()
    )
    assert sorted(result) == [("a", 4), ("b", 2)]


def test_count_per_group(env):
    records = ["x", "y", "x", "x"]
    result = dict(
        env.from_collection(records).group_by(lambda r: r).count_per_group().collect()
    )
    assert result == {"x": 3, "y": 1}


def test_count(env):
    assert env.from_collection(range(17)).count() == 17


def test_first(env):
    assert len(env.from_collection(range(100)).first(5)) == 5
    assert env.from_collection(range(3)).first(10) == env.from_collection(
        range(3)
    ).collect()[:10]


def test_first_negative_raises(env):
    with pytest.raises(ValueError):
        env.from_collection([1]).first(-1)


def test_rebalance_evens_partitions(env):
    skewed = env.from_partitions([[1] * 40, [], [], []])
    partitions = skewed.rebalance().collect_partitions()
    assert all(len(p) == 10 for p in partitions)


def test_partition_by_colocates_equal_keys(env):
    records = [(i % 3, i) for i in range(30)]
    partitions = (
        env.from_collection(records).partition_by(lambda r: r[0]).collect_partitions()
    )
    for partition in partitions:
        assert len({key for key, _ in partition}) <= 3
    # every key lands in exactly one partition
    placements = {}
    for worker, partition in enumerate(partitions):
        for key, _ in partition:
            placements.setdefault(key, set()).add(worker)
    assert all(len(workers) == 1 for workers in placements.values())


def test_cross_product(env):
    result = env.from_collection([1, 2]).cross(env.from_collection(["a"])).collect()
    assert sorted(result) == [(1, "a"), (2, "a")]


def test_udf_error_is_wrapped_with_operator_name(env):
    ds = env.from_collection([1]).map(lambda x: 1 / 0, name="boom")
    with pytest.raises(JobExecutionError) as excinfo:
        ds.collect()
    assert "boom" in str(excinfo.value)
    assert isinstance(excinfo.value.cause, ZeroDivisionError)


def test_chained_transformations(env):
    result = (
        env.from_collection(range(20))
        .filter(lambda x: x % 2 == 0)
        .map(lambda x: x + 1)
        .flat_map(lambda x: [x, -x])
        .collect()
    )
    assert len(result) == 20
    assert max(result) == 19


def test_shared_subgraph_computed_once_per_run(env):
    calls = []
    base = env.from_collection(range(5)).map(lambda x: calls.append(x) or x)
    left = base.filter(lambda x: x < 3)
    right = base.filter(lambda x: x >= 3)
    assert sorted(left.union(right).collect()) == list(range(5))
    assert len(calls) == 5  # base evaluated once, not twice


@pytest.mark.parametrize("parallelism", [1, 2, 3, 8])
def test_results_independent_of_parallelism(parallelism):
    env = ExecutionEnvironment(parallelism=parallelism)
    data = [(i % 5, i) for i in range(50)]
    result = (
        env.from_collection(data)
        .group_by(lambda r: r[0])
        .reduce_group(lambda key, rows: [(key, sum(v for _, v in rows))])
        .collect()
    )
    expected = {}
    for key, value in data:
        expected[key] = expected.get(key, 0) + value
    assert dict(result) == expected


class TestJoins:
    @pytest.fixture
    def sides(self, env):
        left = env.from_collection([(1, "a"), (2, "b"), (3, "c")])
        right = env.from_collection([(1, "x"), (1, "y"), (3, "z"), (4, "w")])
        return left, right

    @pytest.mark.parametrize(
        "strategy",
        [
            JoinStrategy.REPARTITION_HASH,
            JoinStrategy.BROADCAST_FIRST,
            JoinStrategy.BROADCAST_SECOND,
            JoinStrategy.SORT_MERGE,
            JoinStrategy.AUTO,
        ],
    )
    def test_all_strategies_agree(self, sides, strategy):
        left, right = sides
        result = left.join(
            right, lambda l: l[0], lambda r: r[0], strategy=strategy
        ).collect()
        pairs = sorted((l[1], r[1]) for l, r in result)
        assert pairs == [("a", "x"), ("a", "y"), ("c", "z")]

    def test_flat_join_fn_can_drop_pairs(self, sides):
        left, right = sides
        result = left.join(
            right,
            lambda l: l[0],
            lambda r: r[0],
            join_fn=lambda l, r: [(l[1], r[1])] if r[1] != "y" else [],
        ).collect()
        assert sorted(result) == [("a", "x"), ("c", "z")]

    def test_join_no_matches(self, env):
        left = env.from_collection([(1, "a")])
        right = env.from_collection([(2, "b")])
        assert left.join(right, lambda l: l[0], lambda r: r[0]).collect() == []

    def test_join_with_duplicate_keys_both_sides(self, env):
        left = env.from_collection([(1, i) for i in range(3)])
        right = env.from_collection([(1, i) for i in range(4)])
        result = left.join(right, lambda l: l[0], lambda r: r[0]).collect()
        assert len(result) == 12

    def test_self_join(self, env):
        ds = env.from_collection([(1, "a"), (2, "b")])
        result = ds.join(ds, lambda l: l[0], lambda r: r[0]).collect()
        assert len(result) == 2

    def test_string_keys(self, env):
        left = env.from_collection([("alice", 1), ("bob", 2)])
        right = env.from_collection([("alice", 10)])
        result = left.join(right, lambda l: l[0], lambda r: r[0]).collect()
        assert result == [(("alice", 1), ("alice", 10))]

"""The multi-process worker runtime: channels, shipping, pool dispatch.

Covers the pieces of ``repro.dataflow.workers`` individually (ring
segments, by-value function shipping, the record codec) and the pool
end-to-end through ``ExecutionEnvironment(workers=N)``: result parity
with in-process execution, resident source caching (and its byte-budget
eviction), spec-cache LRU mirroring across the boundary, the in-process
fallback for uncertified chains, deadline cancellation of in-flight
worker chunks (with ``done`` confirmation), remote stage attribution,
and worker-crash containment scoped to the jobs that used the worker.
"""

import os
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro.dataflow import ExecutionEnvironment
from repro.dataflow.cancellation import CancellationToken, QueryTimeout
from repro.dataflow.errors import JobExecutionError
from repro.dataflow.workers import (
    decode_records,
    dump_functions,
    encode_records,
    load_functions,
)
from repro.dataflow.workers.channels import RingSegment
from repro.dataflow.workers.pool import WorkerCrashError


@pytest.fixture
def worker_env():
    environment = ExecutionEnvironment(parallelism=4, workers=2)
    yield environment
    environment.shutdown_workers()


def _pool_started(environment):
    pool = environment.worker_pool()
    return pool is not None and pool._started


# --- ring segments ----------------------------------------------------------


def test_ring_roundtrip_and_attach():
    ring = RingSegment(capacity=256)
    try:
        ref = ring.try_write(b"hello ring")
        assert ref is not None
        attached = RingSegment(name=ring.name, capacity=256)
        try:
            assert attached.read(ref[0], ref[1]) == b"hello ring"
        finally:
            attached.close()
    finally:
        ring.close()


def test_ring_wraps_and_skips_short_tail():
    ring = RingSegment(capacity=64)
    try:
        first = ring.try_write(b"a" * 40)
        assert first == (0, 40)
        assert ring.read(*first) == b"a" * 40
        # 24 bytes of tail remain; a 30-byte payload must skip the tail
        # and wrap to offset 0
        second = ring.try_write(b"b" * 30)
        assert second == (0, 30)
        assert ring.read(*second) == b"b" * 30
    finally:
        ring.close()


def test_ring_overflow_returns_none_instead_of_blocking():
    ring = RingSegment(capacity=64)
    try:
        assert ring.try_write(b"x" * 64) is None  # >= capacity
        ref = ring.try_write(b"x" * 40)
        assert ref is not None
        # 40 bytes unconsumed: no contiguous room for 40 more
        assert ring.try_write(b"y" * 40) is None
        ring.read(*ref)
        # the ring keeps one byte free and a wrapping write also burns
        # the 24-byte tail, so 40 still does not fit — 30 does
        assert ring.try_write(b"y" * 40) is None
        assert ring.try_write(b"y" * 30) is not None
    finally:
        ring.close()


# --- function and record shipping -------------------------------------------


def test_ship_closure_by_value():
    def make_adder(amount):
        return lambda value: value + amount

    rebuilt = load_functions(dump_functions(make_adder(5)))
    assert rebuilt(10) == 15


def test_ship_captured_struct_instance():
    packer = struct.Struct("<I")

    def read_u32(buffer):
        return packer.unpack_from(buffer, 0)[0]

    rebuilt = load_functions(dump_functions(read_u32))
    assert rebuilt(packer.pack(77)) == 77


def test_record_codec_pickle_fallback():
    records = [1, ("two", 2), {"three": 3}]
    fmt, payload = encode_records(records)
    assert fmt == b"P"
    assert decode_records(fmt, payload) == records


def test_record_codec_flat_embeddings():
    from repro.engine.embedding import Embedding

    records = [
        Embedding(b"\x01" * 12, b"", b"\x02\x03"),
        Embedding(b"\x04" * 24, b"\x05", b""),
    ]
    fmt, payload = encode_records(records)
    assert fmt == b"E"
    assert decode_records(fmt, payload) == records


def test_record_codec_columnar_chunks():
    from repro.engine.columnar import ColumnarPartition, chunk_from_embeddings
    from repro.engine.embedding import Embedding

    rows = [
        Embedding(b"\x00" * 9 + b"\x01" * 9, b"\x07" * 12, b""),
        Embedding(b"\x02" * 9 + b"\x03" * 9, b"", b"\x00\x01\x05"),
        Embedding(b"\x04" * 9 + b"\x05" * 9, b"\x08" * 24, b"\x00\x00"),
    ]
    partition = ColumnarPartition(
        [chunk_from_embeddings(rows[:2]), chunk_from_embeddings(rows[2:])]
    )
    fmt, payload = encode_records(partition)
    assert fmt == b"C"
    decoded = decode_records(fmt, payload)
    # stays columnar across the wire: chunk boundaries survive intact
    assert [chunk.count for chunk in decoded.chunks] == [2, 1]
    assert [
        (r.id_data, r.path_data, r.prop_data) for r in decoded
    ] == [(r.id_data, r.path_data, r.prop_data) for r in rows]
    # a round-trip re-encode is byte-identical (id_buf never re-packed)
    assert encode_records(decoded) == (fmt, payload)


def test_record_codec_empty_columnar_partition():
    from repro.engine.columnar import ColumnarPartition

    fmt, payload = encode_records(ColumnarPartition([]))
    assert fmt == b"C"
    decoded = decode_records(fmt, payload)
    assert decoded.chunks == [] and len(decoded) == 0


# --- pooled execution parity ------------------------------------------------


def test_pooled_chain_matches_in_process(worker_env):
    def pipeline(environment):
        return (
            environment.from_collection(range(5000))
            .map(lambda x: x * 3)
            .filter(lambda x: x % 7 != 0)
            .flat_map(lambda x: (x, -x) if x % 100 == 0 else (x,))
            .collect()
        )

    assert pipeline(worker_env) == pipeline(ExecutionEnvironment(parallelism=4))
    assert _pool_started(worker_env)


def test_pool_spawns_from_stdin_main():
    """Regression: a parent fed its script on stdin can still spawn.

    Such a parent's ``__main__.__file__`` is ``"<stdin>"`` — a path no
    child can re-run; without ``_suppress_phantom_main`` the spawn
    preparation data names it and every worker dies on arrival.
    """
    script = (
        "from repro.dataflow import ExecutionEnvironment\n"
        "env = ExecutionEnvironment(parallelism=4, workers=2)\n"
        "out = env.from_collection(range(200)).map(lambda x: x + 1)"
        ".collect()\n"
        "assert sorted(out) == list(range(1, 201)), out\n"
        "pool = env.worker_pool()\n"
        "assert pool is not None and pool._started\n"
        "env.shutdown_workers()\n"
        "print('stdin-main-ok')\n"
    )
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    environ = dict(os.environ)
    environ["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-"],
        input=script,
        capture_output=True,
        text=True,
        env=environ,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "stdin-main-ok" in proc.stdout


def test_pooled_join_matches_in_process(worker_env):
    def query(environment):
        left = environment.from_collection(range(2000)).map(
            lambda x: (x % 97, x)
        )
        right = environment.from_collection(range(2000)).map(
            lambda x: (x % 97, x * 10)
        )
        return left.join(
            right,
            left_key=lambda pair: pair[0],
            right_key=lambda pair: pair[0],
            join_fn=lambda l, r: [(l[0], l[1], r[1])],
        ).collect()

    pooled = query(worker_env)
    local = query(ExecutionEnvironment(parallelism=4))
    assert pooled == local
    assert _pool_started(worker_env)


def test_resident_source_skips_re_shipping(worker_env):
    source = worker_env.from_collection(range(3000))
    first = source.map(lambda x: x + 1).collect()
    pool = worker_env.worker_pool()
    resident = [set(h.resident) for h in pool._handles if h is not None]
    assert any(resident), "warm run should leave source partitions resident"
    second = source.map(lambda x: x + 1).collect()
    assert first == second
    after = [set(h.resident) for h in pool._handles if h is not None]
    assert after == resident  # same source: nothing new shipped


def test_spec_cache_eviction_reships_evicted_specs():
    """Regression: the pool mirrors the worker's spec-cache LRU.

    With a 2-entry cache, two fresh chains evict the first chain's spec
    from the worker; re-running the first chain must re-ship it — a
    stale parent-side ``shipped`` entry would make the worker look up a
    spec it no longer holds and (before the fix) die on a KeyError,
    failing every active job.
    """
    from repro.dataflow.workers.pool import WorkerPool

    environment = ExecutionEnvironment(parallelism=2, workers=1)
    environment._worker_pool = WorkerPool(1, spec_cache_limit=2)
    try:
        first = environment.from_collection(range(500)).map(lambda x: x + 1)
        expected = first.collect()
        environment.from_collection(range(10)).map(lambda x: x * 2).collect()
        environment.from_collection(range(10)).map(lambda x: x * 3).collect()
        handle = environment.worker_pool()._handles[0]
        assert len(handle.shipped) == 2  # the mirror evicted the first spec
        assert first.collect() == expected  # re-shipped, not assumed cached
        assert len(handle.shipped) == 2
    finally:
        environment.shutdown_workers()


def test_resident_budget_evicts_old_sources():
    """Regression: worker scan caches are bounded across ad-hoc queries.

    Every distinct query mints fresh source-operator ids, so without a
    budget each one would permanently pin its scan partitions in worker
    memory.  Past ``resident_bytes`` the pool evicts least-recently-used
    sources (telling the worker to free them) and re-ships on reuse.
    """
    from repro.dataflow.workers.pool import WorkerPool

    environment = ExecutionEnvironment(parallelism=2, workers=1)
    environment._worker_pool = WorkerPool(1, resident_bytes=4096)
    try:
        small = environment.from_collection(range(50))
        expected = sorted(small.map(lambda x: x + 1).collect())
        handle = environment.worker_pool()._handles[0]
        small_keys = set(handle.resident)
        assert small_keys, "scan partitions should go resident"
        # a source far over the 4 KiB budget evicts the small one
        big = environment.from_collection(
            [("pad" * 64, i) for i in range(2000)]
        )
        big.map(lambda pair: pair[1]).collect()
        assert not small_keys & set(handle.resident)
        assert sum(handle.resident.values()) == handle.resident_bytes
        # the evicted source re-ships transparently and still computes
        assert sorted(small.map(lambda x: x + 1).collect()) == expected
    finally:
        environment.shutdown_workers()


def test_uncertified_chain_falls_back_in_process(worker_env):
    lock = threading.Lock()  # P401: captured synchronization primitive

    def touches_lock(value):
        with lock:
            return value + 1

    out = worker_env.from_collection(range(200)).map(touches_lock).collect()
    assert sorted(out) == list(range(1, 201))
    assert not _pool_started(worker_env)


# --- failure semantics across the boundary ----------------------------------


def test_remote_stage_attribution_matches_in_process(worker_env):
    def explode(value):
        if value == 1234:
            raise ValueError("sentinel %d" % value)
        return value

    def run(environment):
        with pytest.raises(JobExecutionError) as info:
            environment.from_collection(range(3000)).map(
                lambda x: x
            ).map(explode, name="explode-stage").collect()
        return info.value

    pooled = run(worker_env)
    local = run(ExecutionEnvironment(parallelism=4))
    assert _pool_started(worker_env)
    assert pooled.operator_name == local.operator_name
    assert type(pooled.cause) is type(local.cause)
    assert str(pooled.cause) == str(local.cause)


def test_deadline_kills_in_flight_worker_chunks(worker_env):
    def slow(value):
        total = 0
        for i in range(4000):
            total += i
        return value + (total & 0)

    data = worker_env.from_collection(range(40_000)).map(slow)
    token = CancellationToken.with_timeout(0.05)
    start = time.perf_counter()
    with worker_env.job("deadline", cancellation=token):
        with pytest.raises(QueryTimeout):
            data.collect()
    elapsed = time.perf_counter() - start
    # the full pipeline takes several seconds of pure compute; a prompt
    # abort proves workers abandoned their queued and in-flight chunks
    assert elapsed < 3.0
    # the pool survives a cancelled job: the next query still works
    assert sorted(
        worker_env.from_collection(range(10)).map(lambda x: x * 2).collect()
    ) == [x * 2 for x in range(10)]


def test_worker_crash_names_failing_stage(worker_env):
    def kamikaze(value):
        if value == 1500:
            os._exit(1)  # simulate a segfault mid-task
        return value

    with pytest.raises(JobExecutionError) as info:
        worker_env.from_collection(range(3000)).map(
            kamikaze, name="kamikaze-map"
        ).collect()
    assert _pool_started(worker_env)
    assert "kamikaze-map" in info.value.operator_name
    assert isinstance(info.value.cause, WorkerCrashError)
    # the pool respawns the dead worker before the next dispatch
    assert sorted(
        worker_env.from_collection(range(100)).map(lambda x: x + 1).collect()
    ) == list(range(1, 101))


def test_collect_ignores_crash_of_unused_worker():
    """Regression: one worker dying only fails jobs placed on it.

    Crash notices are broadcast to every active job; a job whose tasks
    all ran elsewhere must keep collecting instead of failing.
    """
    import queue as queue_module

    from repro.dataflow.workers.pool import WorkerPool

    pool = WorkerPool(2)
    fmt, payload = encode_records([1, 2, 3])
    results_queue = queue_module.SimpleQueue()
    results_queue.put(("crash", 1))  # a worker this job never used
    results_queue.put(("ok", 0, None, fmt, payload))
    state = {"cancel_sent": False, "drained": False}
    results = pool._collect(
        7, results_queue, 1, None, "op", {0}, state
    )
    assert set(results) == {0}
    assert state["drained"]

    # the same notice from a worker the job DID use stays fatal
    results_queue = queue_module.SimpleQueue()
    results_queue.put(("crash", 0))
    with pytest.raises(JobExecutionError) as info:
        pool._collect(8, results_queue, 1, None, "op", {0}, state)
    assert isinstance(info.value.cause, WorkerCrashError)
    assert not state["drained"]


def test_cancel_mark_dropped_after_done_confirmation():
    """Regression: cancelled-job marks are confirmed away, not pruned.

    The parent sends ``("done", job)`` once every dispatched task of a
    cancelled job is accounted for; the worker then drops the mark.  No
    size-based pruning exists any more, so a low-id cancelled job whose
    tasks sit behind a long backlog can never lose its mark and run.
    """
    import multiprocessing

    from repro.dataflow.workers.runtime import _Worker

    recv_end, send_end = multiprocessing.Pipe(duplex=False)
    worker = _Worker(0, None, None, recv_end, None, None, 16, 0.0)
    try:
        send_end.send(("cancel", 5))
        assert worker._job_cancelled(5)
        send_end.send(("done", 5))
        assert not worker._job_cancelled(5)
        assert worker.cancelled == set()
        send_end.send(("cancel", 6))
        assert not worker._job_cancelled(5)  # unrelated job unaffected
        assert worker._job_cancelled(6)
    finally:
        recv_end.close()
        send_end.close()


def test_send_on_closed_handle_raises_worker_crash_error(worker_env):
    """Regression: a handle closed under a dispatcher's feet (respawn or
    shutdown) fails the send with WorkerCrashError, never a raw OSError
    on a closed — or recycled — descriptor."""
    worker_env.from_collection(range(10)).map(lambda x: x).collect()
    pool = worker_env.worker_pool()
    handle = pool._handles[0]
    with handle.send_lock:
        handle.closed = True
    with pytest.raises(WorkerCrashError):
        pool._send_batch(handle, ("stale",), b"", [])


def test_crash_hook_triggers_respawn(worker_env):
    worker_env.from_collection(range(100)).map(lambda x: x).collect()
    pool = worker_env.worker_pool()
    handle = pool._handles[0]
    handle.req_conn.send([("crash",)])
    deadline = time.monotonic() + 10
    while handle.alive and time.monotonic() < deadline:
        time.sleep(0.01)
    assert not handle.alive
    assert sorted(
        worker_env.from_collection(range(50)).map(lambda x: x * 2).collect()
    ) == [x * 2 for x in range(50)]

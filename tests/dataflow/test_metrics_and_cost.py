"""Tests for execution metrics and the simulated cluster cost model."""

import pytest

from repro.dataflow import (
    ClusterCostModel,
    ExecutionEnvironment,
    JobMetrics,
    JoinStrategy,
    OperatorRun,
)


def make_env(workers=4, **overrides):
    model = ClusterCostModel(workers=workers, **overrides)
    return ExecutionEnvironment(cost_model=model)


class TestMetricsCollection:
    def test_map_records_in_out(self):
        env = make_env()
        env.from_collection(range(10)).map(lambda x: x).collect()
        map_runs = env.metrics.runs_named("map")
        assert len(map_runs) == 1
        assert map_runs[0].records_in == 10
        assert map_runs[0].records_out == 10

    def test_filter_records_out_reflects_selectivity(self):
        env = make_env()
        env.from_collection(range(100)).filter(lambda x: x < 10).collect()
        run = env.metrics.runs_named("filter")[0]
        assert run.records_in == 100
        assert run.records_out == 10

    def test_partition_local_ops_do_not_shuffle(self):
        env = make_env()
        (
            env.from_collection(range(50))
            .map(lambda x: x)
            .filter(lambda x: True)
            .flat_map(lambda x: [x])
            .collect()
        )
        assert env.metrics.total_shuffled_records == 0

    def test_repartition_join_shuffles_both_sides(self):
        env = make_env()
        left = env.from_collection(range(100))
        right = env.from_collection(range(100))
        left.join(
            right,
            lambda l: l,
            lambda r: r,
            strategy=JoinStrategy.REPARTITION_HASH,
        ).collect()
        join_run = env.metrics.runs_named("join")[0]
        assert join_run.shuffled_records > 0
        # at most everything moves; with 4 workers about 3/4 of records move
        assert join_run.shuffled_records <= 200

    def test_broadcast_join_shuffle_grows_with_workers(self):
        volumes = {}
        for workers in (2, 8):
            env = make_env(workers=workers)
            small = env.from_collection(range(10))
            big = env.from_collection(range(1000))
            small.join(
                big,
                lambda l: l,
                lambda r: r,
                strategy=JoinStrategy.BROADCAST_FIRST,
            ).collect()
            volumes[workers] = env.metrics.total_shuffled_bytes
        assert volumes[8] > volumes[2]

    def test_auto_join_picks_broadcast_for_tiny_side(self):
        env = make_env()
        small = env.from_collection(range(5))
        big = env.from_collection(range(100_000))
        ds = small.join(big, lambda l: l, lambda r: r, strategy=JoinStrategy.AUTO)
        ds.collect()
        names = [run.name for run in env.metrics.runs_named("join")]
        assert any("broadcast" in name for name in names)

    def test_auto_join_picks_repartition_for_similar_sides(self):
        env = make_env()
        left = env.from_collection(range(1000))
        right = env.from_collection(range(1000))
        left.join(right, lambda l: l, lambda r: r, strategy=JoinStrategy.AUTO).collect()
        names = [run.name for run in env.metrics.runs_named("join")]
        assert any("repartition" in name for name in names)

    def test_skew_reported_for_hot_key(self):
        env = make_env()
        # all records share one key: the whole group lands on one worker
        records = [(7, i) for i in range(100)]
        (
            env.from_collection(records)
            .group_by(lambda r: r[0])
            .reduce_group(lambda key, rows: [len(rows)])
            .collect()
        )
        run = env.metrics.runs_named("group-reduce")[0]
        assert run.skew == pytest.approx(4.0)  # one of four workers does all work

    def test_spill_detected_when_over_memory_budget(self):
        env = make_env(memory_records_per_worker=10)
        records = [(1, i) for i in range(100)]
        left = env.from_collection(records)
        right = env.from_collection(records)
        left.join(
            right,
            lambda l: l[0],
            lambda r: r[0],
            strategy=JoinStrategy.REPARTITION_HASH,
        ).collect()
        assert env.metrics.total_spilled_workers >= 1

    def test_reset_metrics_starts_fresh_scope(self):
        env = make_env()
        env.from_collection(range(10)).collect()
        previous = env.reset_metrics("second")
        assert previous.runs
        assert env.metrics.runs == []
        assert env.metrics.name == "second"

    def test_summary_keys(self):
        env = make_env()
        env.from_collection(range(10)).map(lambda x: x).collect()
        summary = env.metrics.summary()
        assert set(summary) == {
            "operators",
            "records_processed",
            "shuffled_records",
            "shuffled_bytes",
            "spilled_workers",
            "max_skew",
        }


class TestCostModel:
    def test_more_workers_is_faster_on_balanced_load(self):
        runtimes = {}
        for workers in (1, 2, 4, 8):
            env = make_env(workers=workers, job_overhead_seconds=0.0)
            env.from_collection(range(10_000)).map(lambda x: x).collect()
            runtimes[workers] = env.simulated_runtime_seconds()
        assert runtimes[1] > runtimes[2] > runtimes[4] > runtimes[8]

    def test_fixed_overhead_limits_speedup_on_small_data(self):
        runtimes = {}
        for workers in (1, 16):
            env = make_env(workers=workers, job_overhead_seconds=5.0)
            env.from_collection(range(100)).map(lambda x: x).collect()
            runtimes[workers] = env.simulated_runtime_seconds()
        speedup = runtimes[1] / runtimes[16]
        assert speedup < 1.5  # overhead dominates: almost no speedup

    def test_skewed_load_caps_speedup(self):
        """A single hot key keeps one worker busy regardless of cluster size."""

        def run(workers):
            env = make_env(workers=workers, job_overhead_seconds=0.0)
            records = [(1, i) for i in range(5000)]
            (
                env.from_collection(records)
                .group_by(lambda r: r[0])
                .reduce_group(lambda key, rows: [len(rows)])
                .collect()
            )
            return env.simulated_runtime_seconds()

        speedup = run(1) / run(16)
        assert speedup < 3.0  # far from the linear 16x

    def test_spill_penalty_creates_superlinear_speedup(self):
        """More workers -> more aggregate memory -> the spill disappears."""

        def run(workers):
            env = make_env(
                workers=workers,
                memory_records_per_worker=3000,
                job_overhead_seconds=0.0,
                barrier_overhead_seconds=0.0,
                spill_penalty=4.0,
            )
            left = env.from_collection(range(10_000))
            right = env.from_collection(range(10_000))
            left.join(
                right,
                lambda l: l,
                lambda r: r,
                strategy=JoinStrategy.REPARTITION_HASH,
            ).collect()
            return env.simulated_runtime_seconds()

        speedup = run(1) / run(8)
        assert speedup > 8.0  # super-linear, as in paper §4.1

    def test_job_seconds_requires_job_metrics(self):
        model = ClusterCostModel(workers=2)
        with pytest.raises(TypeError):
            model.job_seconds([])

    def test_with_workers_preserves_other_parameters(self):
        model = ClusterCostModel(workers=2, spill_penalty=7.0)
        scaled = model.with_workers(16)
        assert scaled.workers == 16
        assert scaled.spill_penalty == 7.0

    def test_operator_seconds_includes_network_term(self):
        model = ClusterCostModel(workers=2, barrier_overhead_seconds=0.0)
        quiet = OperatorRun("a", worker_records_in=[10, 10])
        chatty = OperatorRun(
            "b", worker_records_in=[10, 10], worker_shuffle_bytes_in=[10**9, 10**9]
        )
        assert model.operator_seconds(chatty) > model.operator_seconds(quiet)

    def test_environment_parallelism_follows_cost_model(self):
        env = ExecutionEnvironment(cost_model=ClusterCostModel(workers=7))
        assert env.parallelism == 7

    def test_environment_parallelism_override(self):
        env = ExecutionEnvironment(
            parallelism=3, cost_model=ClusterCostModel(workers=7)
        )
        assert env.parallelism == 3


class TestOperatorRun:
    def test_skew_of_empty_run_is_one(self):
        assert OperatorRun("x").skew == 1.0

    def test_skew_balanced(self):
        run = OperatorRun("x", worker_records_in=[5, 5, 5, 5])
        assert run.skew == 1.0

    def test_job_metrics_aggregates(self):
        metrics = JobMetrics("test")
        metrics.add(OperatorRun("a", records_in=10, shuffled_records=3))
        metrics.add(OperatorRun("b", records_in=20, shuffled_records=4))
        assert metrics.total_records_processed == 30
        assert metrics.total_shuffled_records == 7

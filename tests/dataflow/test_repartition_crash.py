"""Worker crash during phase 2 of a repartition join.

``run_repartition_join`` re-arms ``state["drained"]`` before phase 2
dispatches its exchange/pjoin batch: new tasks are queued, so the job
is no longer fully accounted for.  A worker dying *inside* the pjoin
(the join function runs there) must therefore

* fail the job with the crash attributed to the join operator,
* NOT send the ``done`` confirmation — queued tasks of the crashed
  job may survive in a respawned worker's backlog, so the cancel mark
  must outlive the failure (the cancel_done model's invariant), and
* leave the pool able to respawn and serve the next query.
"""

import os

import pytest

from repro.dataflow import ExecutionEnvironment
from repro.dataflow.errors import JobExecutionError
from repro.dataflow.operators import JoinStrategy
from repro.dataflow.workers import messages
from repro.dataflow.workers.messages import CANCEL, DONE
from repro.dataflow.workers.pool import WorkerCrashError


@pytest.fixture
def worker_env():
    environment = ExecutionEnvironment(parallelism=4, workers=2)
    yield environment
    environment.shutdown_workers()


def _crashing_join(environment):
    left = environment.from_collection(range(2000)).map(
        lambda x: (x % 97, x)
    )
    right = environment.from_collection(range(2000)).map(
        lambda x: (x % 97, x * 10)
    )

    def kamikaze(l, r):  # noqa: E741 — mirrors the join_fn signature
        if l[0] == 13:
            os._exit(1)  # die mid-pjoin, like a segfault in phase 2
        return [(l[0], l[1], r[1])]

    return left.join(
        right,
        left_key=lambda pair: pair[0],
        right_key=lambda pair: pair[0],
        join_fn=kamikaze,
        strategy=JoinStrategy.REPARTITION_HASH,
    )


def test_phase2_crash_fails_job_without_done_confirmation(worker_env):
    events = []
    previous = messages.set_trace_hook(
        lambda direction, worker, message: (
            events.append((worker, message))
            if direction == "cancel" else None
        )
    )
    try:
        with pytest.raises(JobExecutionError) as info:
            _crashing_join(worker_env).collect()
    finally:
        messages.set_trace_hook(previous)
    assert isinstance(info.value.cause, WorkerCrashError)

    cancelled = {m[1] for _, m in events if m[0] == CANCEL}
    confirmed = {m[1] for _, m in events if m[0] == DONE}
    assert cancelled, "the aborted join should cancel its job"
    # the crash leaves the job un-drained: confirming done would let a
    # respawned worker execute the crashed job's still-queued tasks
    assert not confirmed & cancelled, (
        "done confirmed for crashed job(s) %s" % (confirmed & cancelled)
    )


def test_pool_recovers_after_phase2_crash(worker_env):
    with pytest.raises(JobExecutionError):
        _crashing_join(worker_env).collect()
    pool = worker_env.worker_pool()
    assert pool is not None and pool._started
    # the next queries — chain and repartition join — run on respawned
    # workers and still agree with the in-process path
    out = worker_env.from_collection(range(100)).map(
        lambda x: x + 1
    ).collect()
    assert sorted(out) == list(range(1, 101))

    def query(environment):
        left = environment.from_collection(range(600)).map(
            lambda x: (x % 31, x)
        )
        right = environment.from_collection(range(600)).map(
            lambda x: (x % 31, x * 3)
        )
        return left.join(
            right,
            left_key=lambda pair: pair[0],
            right_key=lambda pair: pair[0],
            join_fn=lambda l, r: [(l[0], l[1], r[1])],
            strategy=JoinStrategy.REPARTITION_HASH,
        ).collect()

    assert query(worker_env) == query(ExecutionEnvironment(parallelism=4))

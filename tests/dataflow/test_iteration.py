"""Tests for Flink-style bulk iteration."""

import pytest

from repro.dataflow import ExecutionEnvironment, IterationError


@pytest.fixture
def env():
    return ExecutionEnvironment(parallelism=4)


def test_iteration_final_working_set(env):
    """Double values each superstep; final working set after 3 iterations."""
    initial = env.from_collection([1, 2, 3])
    result = env.bulk_iterate(
        initial,
        lambda working, i: working.map(lambda x: x * 2),
        max_iterations=3,
        collect_emissions=False,
    )
    assert sorted(result.collect()) == [8, 16, 24]


def test_iteration_collects_emissions_per_superstep(env):
    """Emit the working set at every superstep (paper: union per path length)."""
    initial = env.from_collection([1])

    def step(working, iteration):
        next_working = working.map(lambda x: x + 1)
        return next_working, next_working

    result = env.bulk_iterate(initial, step, max_iterations=4)
    assert sorted(result.collect()) == [2, 3, 4, 5]


def test_iteration_terminates_on_empty_working_set(env):
    initial = env.from_collection(list(range(4)))

    def step(working, iteration):
        shrunk = working.filter(lambda x: x > 90)  # empties immediately
        return shrunk, shrunk

    result = env.bulk_iterate(initial, step, max_iterations=100)
    assert result.collect() == []
    # supersteps recorded: only iteration 1 ran
    iterations = {run.iteration for run in env.metrics.runs if run.iteration}
    assert iterations == {1}


def test_iteration_zero_max_iterations_returns_empty_emissions(env):
    initial = env.from_collection([1, 2])
    result = env.bulk_iterate(initial, lambda w, i: w, max_iterations=0)
    assert result.collect() == []


def test_iteration_negative_max_raises(env):
    initial = env.from_collection([1])
    with pytest.raises(IterationError):
        env.bulk_iterate(initial, lambda w, i: w, max_iterations=-1)


def test_iteration_step_returning_none_raises(env):
    initial = env.from_collection([1])
    with pytest.raises(IterationError):
        env.bulk_iterate(initial, lambda w, i: (None, None), max_iterations=2)


def test_iteration_can_join_against_static_dataset(env):
    """The expand pattern: repeatedly join a frontier with an edge relation."""
    edges = env.from_collection([(1, 2), (2, 3), (3, 4), (4, 5)])
    frontier = env.from_collection([1])

    def step(working, iteration):
        expanded = working.join(
            edges,
            lambda v: v,
            lambda e: e[0],
            join_fn=lambda v, e: [e[1]],
        )
        return expanded, expanded

    result = env.bulk_iterate(frontier, step, max_iterations=3)
    assert sorted(result.collect()) == [2, 3, 4]


def test_iteration_metrics_tag_supersteps(env):
    initial = env.from_collection([1])
    env.bulk_iterate(
        initial, lambda w, i: w.map(lambda x: x), max_iterations=3
    ).collect()
    tagged = [run.iteration for run in env.metrics.runs if run.iteration is not None]
    assert set(tagged) == {1, 2, 3}


def test_iteration_growth_pattern(env):
    """Working set can grow superstep over superstep (path explosion)."""
    initial = env.from_collection([0])

    def step(working, iteration):
        grown = working.flat_map(lambda x: [x, x + 1])
        return grown, None

    result = env.bulk_iterate(
        initial, step, max_iterations=3, collect_emissions=False
    )
    assert len(result.collect()) == 8

"""Batched, fused execution of partition-local operator chains.

The contract under test: fusion is pure plumbing.  For any DAG, a fused
run returns the same partitions AND records the same per-stage
:class:`OperatorRun` metrics (full dataclass equality, same order) as the
per-record evaluator, while errors keep naming the stage that raised and
cancellation still propagates unwrapped.
"""

import pytest

from repro.dataflow import (
    CancellationToken,
    DEFAULT_BATCH_SIZE,
    ExecutionEnvironment,
    FusedChainOperator,
    JobExecutionError,
    QueryCancelled,
    plan_fusion,
)
from repro.dataflow.fusion import _chunk_template
from repro.dataflow.operators import MapOperator


def build_env(**kwargs):
    return ExecutionEnvironment(parallelism=4, **kwargs)


def chain_dataset(env):
    """map → filter → flat-map → map over a modest integer source."""
    data = env.from_collection(list(range(200)), name="source")
    return (
        data.map(lambda x: x * 3, name="triple")
        .filter(lambda x: x % 2 == 0, name="evens")
        .flat_map(lambda x: [x, x + 1] if x % 4 == 0 else [x], name="expand")
        .map(lambda x: x - 1, name="shift")
    )


def mixed_dag(env):
    """Two fusable chains meeting in a join, then a fused tail."""
    left = (
        env.from_collection(list(range(120)), name="left-source")
        .map(lambda x: (x % 10, x), name="left-key")
        .filter(lambda pair: pair[1] % 3 != 0, name="left-filter")
    )
    right = (
        env.from_collection(list(range(60)), name="right-source")
        .flat_map(lambda x: [(x % 10, -x)], name="right-key")
    )
    joined = left.join(right, lambda p: p[0], lambda p: p[0], name="join")
    return joined.map(lambda pair: pair[0][1] + pair[1][1], name="sum").filter(
        lambda value: value % 2 == 0, name="even-sums"
    )


def run_both(make_dataset, **env_kwargs):
    """(fused partitions+runs, per-record partitions+runs) for one DAG."""
    results = []
    for fused in (True, False):
        env = build_env(**env_kwargs)
        dataset = make_dataset(env)
        with env.job("probe") as metrics:
            partitions = dataset.collect_partitions(fused=fused)
        results.append((partitions, metrics.runs))
    return results


class TestFusedEqualsPerRecord:
    def test_linear_chain_partitions_and_metrics_match(self):
        (fused_parts, fused_runs), (plain_parts, plain_runs) = run_both(
            chain_dataset
        )
        assert fused_parts == plain_parts
        assert fused_runs == plain_runs  # full dataclass equality, in order

    def test_dag_with_join_partitions_and_metrics_match(self):
        (fused_parts, fused_runs), (plain_parts, plain_runs) = run_both(
            mixed_dag
        )
        assert fused_parts == plain_parts
        assert fused_runs == plain_runs

    def test_shared_node_diamond_matches_and_runs_once(self):
        def diamond(env):
            shared = env.from_collection(list(range(50)), name="src").map(
                lambda x: x + 1, name="shared-map"
            )
            a = shared.filter(lambda x: x % 2 == 0, name="fa")
            b = shared.filter(lambda x: x % 3 == 0, name="fb")
            return a.union(b, name="union")

        (fused_parts, fused_runs), (plain_parts, plain_runs) = run_both(diamond)
        assert fused_parts == plain_parts
        assert fused_runs == plain_runs
        # the multi-consumer map is a chain terminal, executed exactly once
        assert sum(1 for run in fused_runs if run.name == "shared-map") == 1

    @pytest.mark.parametrize("batch_size", [1, 3, 64, DEFAULT_BATCH_SIZE])
    def test_every_batch_size_chunks_to_the_same_result(self, batch_size):
        env = build_env(batch_size=batch_size)
        reference = chain_dataset(build_env()).collect(fused=False)
        assert chain_dataset(env).collect(fused=True) == reference

    def test_empty_partitions_flow_through_fused_chains(self):
        def empty(env):
            return env.from_collection([], name="empty").map(
                lambda x: x, name="noop"
            )

        (fused_parts, fused_runs), (plain_parts, plain_runs) = run_both(empty)
        assert fused_parts == plain_parts
        assert fused_runs == plain_runs


class TestFusionPlanning:
    def test_chain_collapses_into_one_fused_operator(self):
        env = build_env()
        dataset = chain_dataset(env)
        rewrites = plan_fusion(dataset.operator, env.batch_size)
        assert list(rewrites) == [dataset.operator.id]
        fused = rewrites[dataset.operator.id]
        assert isinstance(fused, FusedChainOperator)
        assert [stage.name for stage in fused.stages] == [
            "triple", "evens", "expand", "shift",
        ]
        assert fused.terminal_id == dataset.operator.id

    def test_multi_consumer_node_breaks_the_chain(self):
        env = build_env()
        shared = env.from_collection(list(range(10))).map(
            lambda x: x, name="shared"
        )
        a = shared.map(lambda x: x + 1, name="a")
        b = shared.map(lambda x: x + 2, name="b")
        union = a.union(b)
        rewrites = plan_fusion(union.operator, env.batch_size)
        # three separate chains: shared (terminal), a, b
        assert len(rewrites) == 3
        shared_chain = rewrites[shared.operator.id]
        assert [stage.name for stage in shared_chain.stages] == ["shared"]

    def test_operator_subclasses_are_not_fused(self):
        class TracingMap(MapOperator):
            pass

        env = build_env()
        source = env.from_collection(list(range(5)))
        custom = TracingMap(env, source.operator, lambda x: x, "custom")
        assert plan_fusion(custom, env.batch_size) == {}

    def test_materialized_nodes_are_boundaries(self):
        env = build_env()
        dataset = chain_dataset(env)
        everything = set()
        node_stack = [dataset.operator]
        while node_stack:
            node = node_stack.pop()
            everything.add(node.id)
            node_stack.extend(node.parents)
        assert plan_fusion(
            dataset.operator, env.batch_size, materialized=everything
        ) == {}

    def test_template_cache_returns_one_function_per_shape(self):
        assert _chunk_template(("map", "filter")) is _chunk_template(
            ("map", "filter")
        )
        assert _chunk_template(("map",)) is not _chunk_template(("filter",))


class TestFusedErrorHandling:
    def test_error_names_the_failing_stage(self):
        env = build_env()
        data = env.from_collection(list(range(40)), name="src")
        bad = (
            data.map(lambda x: x + 1, name="fine")
            .map(lambda x: 1 // (x - 20), name="bad-map")
            .filter(lambda x: True, name="later")
        )
        with pytest.raises(JobExecutionError) as excinfo:
            bad.collect(fused=True)
        assert "bad-map" in str(excinfo.value)

    def test_cancellation_propagates_unwrapped_from_fused_loops(self):
        env = build_env(batch_size=4)
        token = CancellationToken()
        token.cancel("stop")
        data = env.from_collection(list(range(100))).map(
            lambda x: x, name="noop"
        )
        with pytest.raises(QueryCancelled):
            env.run(data.operator, cancellation=token, fused=True)


class TestExecutionModes:
    def test_environment_default_fusion_flag_applies(self):
        for fusion in (True, False):
            env = build_env(fusion=fusion)
            assert chain_dataset(env).collect() == chain_dataset(
                build_env()
            ).collect(fused=False)

    def test_shared_cache_run_materializes_chain_interiors(self):
        env = build_env(fusion=True)
        dataset = chain_dataset(env)
        cache = {}
        env.run(dataset.operator, cache=cache)
        # per-node caching contract: every interior operator has an entry
        node_stack, node_ids = [dataset.operator], set()
        while node_stack:
            node = node_stack.pop()
            node_ids.add(node.id)
            node_stack.extend(node.parents)
        assert node_ids <= set(cache)

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError, match="batch_size"):
            ExecutionEnvironment(parallelism=2, batch_size=0)

    def test_default_batch_size_is_advertised(self):
        assert build_env().batch_size == DEFAULT_BATCH_SIZE

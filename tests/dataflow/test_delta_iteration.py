"""Tests for the delta iteration."""

import pytest

from repro.dataflow import ExecutionEnvironment, IterationError


@pytest.fixture
def env():
    return ExecutionEnvironment(parallelism=4)


def test_converges_to_fixpoint(env):
    """Min-propagation along a chain: 0 spreads to everyone."""
    n = 6
    chain = env.from_collection([(i, i + 1) for i in range(n - 1)])
    initial = env.from_collection([(i, i) for i in range(n)])

    def step(solution, workset, iteration):
        candidates = workset.join(
            chain,
            lambda s: s[0],
            lambda e: e[0],
            join_fn=lambda s, e: [(e[1], s[1])],
        )
        return (
            solution.union(candidates)
            .group_by(lambda r: r[0])
            .reduce_group(lambda key, rows: [(key, min(v for _, v in rows))])
        )

    result = dict(
        env.delta_iterate(initial, lambda r: r[0], step, 50).collect()
    )
    assert result == {i: 0 for i in range(n)}


def test_workset_shrinks_to_frontier(env):
    """Only changed records re-enter the workset: the propagate join's
    input shrinks each superstep on a chain."""
    n = 8
    chain = env.from_collection([(i, i + 1) for i in range(n - 1)])
    initial = env.from_collection([(i, i) for i in range(n)])

    def step(solution, workset, iteration):
        candidates = workset.join(
            chain,
            lambda s: s[0],
            lambda e: e[0],
            join_fn=lambda s, e: [(e[1], s[1])],
            name="delta-propagate",
        )
        return (
            solution.union(candidates)
            .group_by(lambda r: r[0])
            .reduce_group(lambda key, rows: [(key, min(v for _, v in rows))])
        )

    env.reset_metrics()
    env.delta_iterate(initial, lambda r: r[0], step, 50).collect()
    propagate_inputs = [
        run.records_in
        for run in env.metrics.runs
        if run.name.startswith("delta-propagate") and run.iteration is not None
    ]
    assert len(propagate_inputs) >= 3
    # chain min-propagation: after the first full round, only one record
    # changes per superstep, so the workset contribution shrinks
    assert propagate_inputs[-1] < propagate_inputs[0]


def test_stops_when_nothing_changes(env):
    initial = env.from_collection([(i, 0) for i in range(5)])

    def step(solution, workset, iteration):
        return solution  # no changes ever

    env.reset_metrics()
    env.delta_iterate(initial, lambda r: r[0], step, 50).collect()
    iterations = {
        run.iteration for run in env.metrics.runs if run.iteration is not None
    }
    assert iterations == {1}  # one superstep to discover the fixpoint


def test_initial_workset_override(env):
    initial = env.from_collection([(i, i) for i in range(4)])
    workset = env.from_collection([])  # empty: no work at all

    def step(solution, workset_ds, iteration):
        raise AssertionError("step must not run with an empty workset")

    result = env.delta_iterate(
        initial, lambda r: r[0], step, 10, workset=workset
    )
    assert sorted(result.collect()) == [(i, i) for i in range(4)]


def test_unknown_key_rejected(env):
    initial = env.from_collection([(1, 1)])

    def step(solution, workset, iteration):
        return solution.map(lambda r: (999, 0))

    with pytest.raises(IterationError):
        env.delta_iterate(initial, lambda r: r[0], step, 5)


def test_none_step_rejected(env):
    initial = env.from_collection([(1, 1)])
    with pytest.raises(IterationError):
        env.delta_iterate(initial, lambda r: r[0], lambda *a: None, 5)


def test_negative_iterations_rejected(env):
    initial = env.from_collection([(1, 1)])
    with pytest.raises(IterationError):
        env.delta_iterate(initial, lambda r: r[0], lambda *a: initial, -1)

"""Tests for stable hashing, partitioning and size estimation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataflow import (
    estimate_size,
    partition_index,
    round_robin_partitions,
    stable_hash,
)

_keys = st.one_of(
    st.integers(),
    st.text(max_size=30),
    st.booleans(),
    st.none(),
    st.floats(allow_nan=False),
    st.binary(max_size=30),
)


class TestStableHash:
    @given(_keys)
    def test_deterministic(self, key):
        assert stable_hash(key) == stable_hash(key)

    @given(_keys)
    def test_in_64_bit_range(self, key):
        assert 0 <= stable_hash(key) < (1 << 64)

    @given(st.tuples(_keys, _keys))
    def test_tuples_hash(self, key):
        assert stable_hash(key) == stable_hash(key)

    def test_known_values_stay_stable(self):
        """Pin a few hashes: shuffle placement must not drift across runs."""
        assert stable_hash(None) == 0x5CA1AB1E
        assert stable_hash(True) == 0xB001
        assert stable_hash(0) == stable_hash(0)
        # splitmix64 finalizer: low bits must not mirror the key's low bits
        assert [stable_hash(i) % 4 for i in range(8)] != [i % 4 for i in range(8)]

    def test_spread_over_small_ints(self):
        """Sequential ids should not all land on one worker."""
        indexes = {partition_index(i, 8) for i in range(100)}
        assert len(indexes) == 8

    def test_different_strings_differ(self):
        assert stable_hash("alice") != stable_hash("bob")

    @given(st.integers(min_value=0, max_value=10**9), st.integers(1, 64))
    def test_partition_index_in_range(self, key, parallelism):
        assert 0 <= partition_index(key, parallelism) < parallelism


class TestRoundRobin:
    @given(st.lists(st.integers(), max_size=200), st.integers(1, 16))
    def test_partition_sizes_balanced(self, items, parallelism):
        partitions = round_robin_partitions(items, parallelism)
        assert len(partitions) == parallelism
        sizes = [len(p) for p in partitions]
        assert max(sizes) - min(sizes) <= 1

    @given(st.lists(st.integers(), max_size=200), st.integers(1, 16))
    def test_no_records_lost(self, items, parallelism):
        partitions = round_robin_partitions(items, parallelism)
        assert sorted(r for p in partitions for r in p) == sorted(items)

    def test_zero_parallelism_rejected(self):
        with pytest.raises(ValueError):
            round_robin_partitions([1], 0)


class TestEstimateSize:
    def test_bytes_measured_exactly(self):
        assert estimate_size(b"12345") == 5
        assert estimate_size(bytearray(7)) == 7

    def test_serialized_size_hook_wins(self):
        class Sized:
            def serialized_size(self):
                return 123

        assert estimate_size(Sized()) == 123

    def test_scalars(self):
        assert estimate_size(42) == 8
        assert estimate_size(3.14) == 8
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1

    def test_containers_grow_with_content(self):
        assert estimate_size((1, 2, 3)) > estimate_size((1,))
        assert estimate_size({"a": 1, "b": 2}) > estimate_size({"a": 1})

    @given(st.text(max_size=100))
    def test_strings_grow_with_length(self, text):
        assert estimate_size(text) >= len(text)

    def test_unknown_type_has_default(self):
        class Opaque:
            pass

        assert estimate_size(Opaque()) == 64

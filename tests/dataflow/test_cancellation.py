"""Cancellation tokens, deadlines and per-thread job scoping."""

import threading
import time

import pytest

from repro.dataflow import (
    CancellationToken,
    ExecutionEnvironment,
    QueryCancelled,
    QueryTimeout,
)


@pytest.fixture
def env():
    return ExecutionEnvironment(parallelism=4)


class TestCancellationToken:
    def test_fresh_token_polls_clean(self):
        token = CancellationToken()
        token.poll()  # does not raise

    def test_cancel_makes_poll_raise(self):
        token = CancellationToken()
        token.cancel("client went away")
        with pytest.raises(QueryCancelled, match="client went away"):
            token.poll()

    def test_expired_deadline_raises_query_timeout(self):
        token = CancellationToken.with_timeout(0.0)
        with pytest.raises(QueryTimeout):
            token.poll()

    def test_query_timeout_is_a_query_cancelled(self):
        # one except-clause catches both shapes of cooperative stop
        assert issubclass(QueryTimeout, QueryCancelled)

    def test_future_deadline_does_not_fire_early(self):
        token = CancellationToken.with_timeout(60.0)
        token.poll()
        assert token.remaining() > 0

    def test_propagates_unwrapped_through_operators(self, env):
        # the dataflow's JobExecutionError wrapping must not bury the
        # cancellation — callers catch QueryTimeout, not a wrapper
        token = CancellationToken.with_timeout(0.0)
        data = env.from_collection(list(range(100)))
        mapped = data.flat_map(lambda x: [x])
        with pytest.raises(QueryTimeout):
            env.run(mapped.operator, cancellation=token)

    def test_cancel_from_another_thread_stops_the_run(self, env):
        token = CancellationToken()
        started = threading.Event()

        def slow(x):
            started.set()
            time.sleep(0.002)
            return [x]

        data = env.from_collection(list(range(200))).flat_map(slow)
        # several operator executions -> several batch-boundary polls
        chained = data.flat_map(lambda x: [x]).flat_map(lambda x: [x])

        def cancel_soon():
            started.wait(5.0)
            token.cancel("stop")

        killer = threading.Thread(target=cancel_soon)
        killer.start()
        with pytest.raises(QueryCancelled):
            env.run(chained.operator, cancellation=token)
        killer.join()


class TestJobScope:
    def test_job_scope_metrics_do_not_touch_default(self, env):
        data = env.from_collection([1, 2, 3]).map(lambda x: x + 1)
        with env.job("scoped") as metrics:
            assert data.collect() == [2, 3, 4]
        assert metrics.runs  # scoped metrics saw the run
        assert not env.metrics.runs  # shared accumulator stayed clean

    def test_nested_scopes_innermost_wins(self, env):
        data = env.from_collection([1]).map(lambda x: x)
        with env.job("outer") as outer:
            with env.job("inner") as inner:
                data.collect()
            outer_runs = len(outer.runs)
            inner_runs = len(inner.runs)
        assert inner_runs > 0
        assert outer_runs == 0

    def test_scope_installs_cancellation_for_runs(self, env):
        token = CancellationToken.with_timeout(0.0)
        data = env.from_collection([1]).map(lambda x: x)
        with env.job("doomed", cancellation=token):
            with pytest.raises(QueryTimeout):
                data.collect()

    def test_concurrent_jobs_do_not_interleave_metrics(self, env):
        """Two threads on ONE environment each see only their own runs."""
        barrier = threading.Barrier(2)
        sizes = {"a": 100, "b": 37}
        recorded = {}
        errors = []

        def job(name):
            try:
                data = env.from_collection(list(range(sizes[name])))
                pipeline = data.map(lambda x: x).flat_map(lambda x: [x])
                barrier.wait(5.0)
                with env.job(name) as metrics:
                    result = pipeline.collect()
                assert len(result) == sizes[name]
                recorded[name] = metrics
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=job, args=(name,)) for name in sizes
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for name, metrics in recorded.items():
            # every run in this scope belongs to this job: record counts
            # match the job's own dataset size (or 0 for sources), never
            # the other job's
            assert metrics.runs
            for run in metrics.runs:
                assert run.records_in in (0, sizes[name])

    def test_simulated_runtime_uses_active_scope(self, env):
        data = env.from_collection(list(range(50))).map(lambda x: x)
        with env.job("timed") as metrics:
            data.collect()
            scoped_seconds = env.simulated_runtime_seconds()
        assert scoped_seconds == env.simulated_runtime_seconds(metrics)
        assert scoped_seconds > 0
        # outside the scope the default (empty) accumulator is used again
        assert not env.metrics.runs
        assert env.simulated_runtime_seconds() == env.simulated_runtime_seconds(
            env.metrics
        )

"""Model-based property tests: dataflow operators vs plain-Python models.

Random inputs, random parallelism; every operator must agree with the
obvious sequential implementation regardless of partitioning.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import ExecutionEnvironment, JoinStrategy

_records = st.lists(
    st.tuples(st.integers(0, 9), st.integers(-100, 100)), max_size=40
)
_parallelism = st.integers(1, 7)


@settings(max_examples=60, deadline=None)
@given(records=_records, parallelism=_parallelism)
def test_map_filter_flatmap_pipeline(records, parallelism):
    env = ExecutionEnvironment(parallelism=parallelism)
    result = (
        env.from_collection(records)
        .map(lambda r: (r[0], r[1] * 2))
        .filter(lambda r: r[1] >= 0)
        .flat_map(lambda r: [r[1]] * (r[0] % 3))
        .collect()
    )
    expected = []
    for key, value in records:
        doubled = value * 2
        if doubled >= 0:
            expected.extend([doubled] * (key % 3))
    assert sorted(result) == sorted(expected)


@settings(max_examples=60, deadline=None)
@given(left=_records, right=_records, parallelism=_parallelism)
def test_join_matches_nested_loops(left, right, parallelism):
    env = ExecutionEnvironment(parallelism=parallelism)
    result = (
        env.from_collection(left)
        .join(env.from_collection(right), lambda l: l[0], lambda r: r[0])
        .collect()
    )
    expected = [(l, r) for l in left for r in right if l[0] == r[0]]
    assert sorted(result) == sorted(expected)


@settings(max_examples=40, deadline=None)
@given(
    left=_records,
    right=_records,
    parallelism=_parallelism,
    strategy=st.sampled_from(
        [
            JoinStrategy.REPARTITION_HASH,
            JoinStrategy.BROADCAST_FIRST,
            JoinStrategy.BROADCAST_SECOND,
            JoinStrategy.SORT_MERGE,
        ]
    ),
)
def test_all_join_strategies_equivalent(left, right, parallelism, strategy):
    env = ExecutionEnvironment(parallelism=parallelism)
    result = (
        env.from_collection(left)
        .join(
            env.from_collection(right),
            lambda l: l[0],
            lambda r: r[0],
            strategy=strategy,
        )
        .collect()
    )
    expected = [(l, r) for l in left for r in right if l[0] == r[0]]
    assert sorted(result) == sorted(expected)


@settings(max_examples=60, deadline=None)
@given(records=_records, parallelism=_parallelism)
def test_group_reduce_matches_dict(records, parallelism):
    env = ExecutionEnvironment(parallelism=parallelism)
    result = dict(
        env.from_collection(records)
        .group_by(lambda r: r[0])
        .reduce_group(lambda key, rows: [(key, sum(v for _, v in rows))])
        .collect()
    )
    expected = {}
    for key, value in records:
        expected[key] = expected.get(key, 0) + value
    assert result == expected


@settings(max_examples=60, deadline=None)
@given(records=_records, parallelism=_parallelism)
def test_distinct_matches_set(records, parallelism):
    env = ExecutionEnvironment(parallelism=parallelism)
    result = env.from_collection(records).distinct().collect()
    assert sorted(result) == sorted(set(records))


@settings(max_examples=60, deadline=None)
@given(records=_records, parallelism=_parallelism)
def test_union_with_self_doubles(records, parallelism):
    env = ExecutionEnvironment(parallelism=parallelism)
    ds = env.from_collection(records)
    assert ds.union(ds).count() == 2 * len(records)


@settings(max_examples=40, deadline=None)
@given(records=_records, parallelism=_parallelism)
def test_shuffle_conservation(records, parallelism):
    """Partitioning never loses or duplicates records."""
    env = ExecutionEnvironment(parallelism=parallelism)
    result = env.from_collection(records).partition_by(lambda r: r[0]).collect()
    assert sorted(result) == sorted(records)

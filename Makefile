.PHONY: install test check flowcheck livecheck lint typecheck racecheck \
	wirecheck bench bench-micro docs-codes examples reports clean \
	serve-smoke bench-serve

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

# the dynamic analysis battery: sanitized LDBC differential across all
# three planners, corruption fixtures, estimate-audit checks
check:
	pytest tests/analysis/test_sanitizer.py tests/analysis/test_differential.py
	pytest benchmarks/test_microbench_engine.py -k "q1_plain or q1_sanitized" --benchmark-disable

# the static analysis battery: layout-flow verification (S3xx) and UDF
# shippability certification (P4xx) over the LDBC plans and the planted
# violation fixtures
flowcheck:
	pytest tests/analysis/test_flow.py tests/analysis/test_udfcheck.py \
		tests/analysis/test_flow_soundness.py

# the backward analysis battery: liveness (S4xx) and the planted dead-byte
# fixtures, the pruning rewriter's equivalence suite, and the static
# cost-bound/admission-control checks
livecheck:
	pytest tests/analysis/test_liveness.py tests/analysis/test_prune.py \
		tests/analysis/test_costbound.py

lint:
	@command -v ruff >/dev/null 2>&1 || { \
		echo "error: ruff not installed — pip install -e '.[dev]'" >&2; \
		exit 1; }
	ruff check src tests

typecheck:
	@command -v mypy >/dev/null 2>&1 || { \
		echo "error: mypy not installed — pip install -e '.[dev]'" >&2; \
		exit 1; }
	mypy src/repro/analysis src/repro/dataflow src/repro/engine/embedding.py \
		src/repro/engine/columnar.py

# regenerate the diagnostic-code table in docs/analysis.md from the
# CODES registry (tests/analysis/test_docs_codes.py pins the two in sync)
docs-codes:
	python scripts/gen_code_docs.py

# the concurrency battery: static lock-discipline lint over our own
# source, then the server suite under the runtime lock-order witness,
# then the interleaving fuzzer's long (stress-marked) schedules
racecheck:
	python -m repro racecheck src/repro
	REPRO_LOCK_WITNESS=1 pytest tests/server tests/analysis/test_witness.py
	pytest -m stress tests/

# the wire-protocol battery: vocabulary drift between the pool and the
# worker runtime (W501-W505), exhaustive model checking of the
# cancel/done, spec-cache, ring and resident-eviction protocols
# (W506-W508), then the planted-defect fixtures and trace conformance
wirecheck:
	python -m repro wirecheck --verbose
	pytest tests/analysis/test_protocol.py tests/analysis/test_model.py \
		tests/analysis/test_wire_models.py

bench:
	pytest benchmarks/ --benchmark-only

# real CPU-time engine microbenchmarks, columnar vs batched/fused vs
# per-record; appends the next BENCH_<n>.json trajectory file at the
# repo root.  The columnar-vs-batched comparison is informational
# (non-blocking): the target succeeds regardless of the measured ratio
# so noisy machines never fail CI — regressions are caught by eye from
# the BENCH_<n>.json series instead.
bench-micro:
	python -m repro bench-micro

# start `repro serve` as a subprocess, run a parameterized query over the
# wire, prepare/execute with two bindings, shut down cleanly
serve-smoke:
	python scripts/serve_smoke.py

# closed-loop concurrent load (8 clients, Q1-Q6) with differential
# verification, deadline and admission-control checks
bench-serve:
	python -m repro bench-serve --clients 8 --rounds 1 --scale-factor 0.02

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		python $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

reports: bench
	@echo "reports in benchmarks/_reports/"

clean:
	rm -rf build dist *.egg-info src/*.egg-info benchmarks/_reports .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +

#!/usr/bin/env python
"""Smoke test for ``repro serve``: the full lifecycle over a real socket.

Generates a tiny LDBC graph, starts ``python -m repro serve`` as a child
process, waits for its "listening" line, then exercises the wire
protocol — health, a parameterized ad-hoc query, prepare/execute with two
different bindings, metrics — and finally POSTs ``/shutdown`` and asserts
the process exits cleanly with status 0.

Run directly (``python scripts/serve_smoke.py``) or via ``make
serve-smoke``.  Any extra command-line arguments are forwarded to the
``repro serve`` invocation (``python scripts/serve_smoke.py --workers
2`` exercises the multi-process pool).  Exits non-zero on the first
failed assertion.
"""

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

SCALE_FACTOR = 0.01
SEED = 7
STARTUP_TIMEOUT = 60.0
SHUTDOWN_TIMEOUT = 30.0


def http(method, url, payload=None):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main():
    from repro.dataflow import ExecutionEnvironment
    from repro.epgm.io import CSVDataSink
    from repro.ldbc import LDBCGenerator

    failures = []

    def check(condition, message):
        status = "ok" if condition else "FAIL"
        print("  [%s] %s" % (status, message))
        if not condition:
            failures.append(message)

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        graph_dir = os.path.join(tmp, "graph")
        print("generating graph (scale %s) -> %s" % (SCALE_FACTOR, graph_dir))
        dataset = LDBCGenerator(scale_factor=SCALE_FACTOR, seed=SEED).generate()
        graph = dataset.to_logical_graph(ExecutionEnvironment())
        CSVDataSink(graph_dir).write_logical_graph(graph)
        common_name = dataset.first_name("low")
        rare_name = dataset.first_name("high")

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        # extra CLI args (e.g. --workers 2) pass straight through to serve
        extra_args = sys.argv[1:]
        print(
            "starting: python -m repro serve %s --port 0 %s"
            % (graph_dir, " ".join(extra_args))
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", graph_dir,
             "--name", "smoke", "--port", "0", "--max-concurrency", "2"]
            + extra_args,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        try:
            # the serve command prints exactly one listening line first
            deadline = time.time() + STARTUP_TIMEOUT
            line = ""
            while time.time() < deadline:
                line = process.stdout.readline()
                if "listening on" in line:
                    break
                if process.poll() is not None:
                    raise RuntimeError("server exited during startup")
            check("listening on" in line, "server announced its address")
            address = line.strip().rsplit(" ", 1)[-1]
            base = "http://%s" % address
            print("server at %s" % base)

            status, health = http("GET", base + "/health")
            check(status == 200 and health["status"] == "ok", "GET /health")
            check(health["graphs"] == ["smoke"], "graph registered as 'smoke'")

            query = ("MATCH (p:Person) WHERE p.firstName = $name "
                     "RETURN p.firstName, p.lastName")
            status, result = http("POST", base + "/query", {
                "graph": "smoke", "query": query,
                "parameters": {"name": common_name},
            })
            check(status == 200, "POST /query (parameterized)")
            check(result["row_count"] >= 1, "query returned rows")

            status, prepared = http("POST", base + "/prepare", {
                "graph": "smoke", "query": query,
            })
            check(status == 200, "POST /prepare")
            check(prepared["parameter_names"] == ["name"],
                  "statement declares $name")

            rows_by_name = {}
            for name in (common_name, rare_name):
                status, result = http("POST", base + "/execute", {
                    "statement_id": prepared["statement_id"],
                    "parameters": {"name": name},
                })
                check(status == 200, "POST /execute (name=%s)" % name)
                rows_by_name[name] = result["rows"]
            check(
                all(row["p.firstName"] == common_name
                    for row in rows_by_name[common_name]),
                "binding 1 returns only its own matches",
            )
            check(
                all(row["p.firstName"] == rare_name
                    for row in rows_by_name[rare_name]),
                "rebinding returns the new binding's matches",
            )

            status, body = http("POST", base + "/query", {
                "graph": "nope", "query": query,
            })
            check(status == 404, "unknown graph -> 404")

            status, metrics = http("GET", base + "/metrics")
            check(status == 200 and metrics["completed"] >= 3, "GET /metrics")
            check(metrics["plan_cache"]["hits"] >= 1,
                  "plan cache saw warm hits")

            status, body = http("POST", base + "/shutdown")
            check(status == 200, "POST /shutdown acknowledged")
            process.wait(timeout=SHUTDOWN_TIMEOUT)
            remaining = process.stdout.read()
            check(process.returncode == 0, "server exited with status 0")
            check("shut down cleanly" in remaining, "clean shutdown message")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

    if failures:
        print("serve smoke: %d FAILURE(S)" % len(failures))
        return 1
    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Regenerate the diagnostic-code table in docs/analysis.md.

The table between the ``codes:begin`` / ``codes:end`` markers is rendered
from :data:`repro.analysis.diagnostics.CODES` — the authoritative
registry — so the docs can never silently drift from the code.  Run via
``make docs-codes`` after registering a new code; ``--check`` (used by CI
and ``tests/analysis/test_docs_codes.py``) exits non-zero when the
committed table is stale instead of rewriting it.
"""

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis.diagnostics import BLOCKING_CODES, CODES  # noqa: E402

DOC = REPO / "docs" / "analysis.md"
BEGIN = ("<!-- codes:begin — generated from repro.analysis.diagnostics.CODES "
         "by scripts/gen_code_docs.py; edit the registry, then run "
         "`make docs-codes` -->")
END = "<!-- codes:end -->"


def render_table():
    lines = [
        "| Code | Severity | Slug | Summary |",
        "|------|----------|------|---------|",
    ]
    for code in sorted(CODES):
        severity, slug, summary = CODES[code]
        rendered = severity.value
        if code in BLOCKING_CODES:
            rendered += " (blocking)"
        lines.append(
            "| `%s` | %s | `%s` | %s |" % (code, rendered, slug, summary)
        )
    return "\n".join(lines)


def apply(text):
    try:
        head, rest = text.split(BEGIN, 1)
        _stale, tail = rest.split(END, 1)
    except ValueError:
        raise SystemExit(
            "error: %s is missing the %r / %r markers" % (DOC, BEGIN, END)
        )
    return head + BEGIN + "\n" + render_table() + "\n" + END + tail


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="verify the committed table matches the registry; do not write",
    )
    args = parser.parse_args(argv)
    current = DOC.read_text(encoding="utf-8")
    regenerated = apply(current)
    if args.check:
        if current != regenerated:
            print(
                "error: docs/analysis.md diagnostic-code table is out of "
                "date — run `make docs-codes`",
                file=sys.stderr,
            )
            return 1
        print("docs/analysis.md code table matches the registry "
              "(%d codes)" % len(CODES))
        return 0
    if current == regenerated:
        print("docs/analysis.md already up to date (%d codes)" % len(CODES))
        return 0
    DOC.write_text(regenerated, encoding="utf-8")
    print("docs/analysis.md code table regenerated (%d codes)" % len(CODES))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Real-time engine microbenchmarks: columnar vs batched vs per-record.

The experiment runners in :mod:`repro.harness.experiments` report
*simulated* cluster runtimes from the cost model; these benchmarks
measure the actual CPU cost of the Python engine itself — the number the
batched execution mode (docs/architecture.md, "Execution model: batching
and fusion") exists to reduce.  ``repro bench-micro`` and
``make bench-micro`` call :func:`run_microbench` and write the report as
a ``BENCH_<n>.json`` trajectory file at the repo root so successive
changes leave a comparable series of measurements behind.

Methodology, chosen for stability on noisy shared machines:

* ``time.process_time`` (CPU time) rather than wall clock;
* the GC is paused around every timed region and collected between them;
* trials of all modes are interleaved round-robin, so slow drift in
  machine load hits every mode equally;
* one untimed warm-up round per (query, mode) pays plan compilation and
  dataset partitioning up front.
"""

import gc
import json
import os
import platform
import re
import time
from statistics import median, stdev

from repro.dataflow import ExecutionEnvironment
from repro.engine import CypherRunner, GraphStatistics
from repro.ldbc import LDBCGenerator

from .experiments import default_cost_model
from .queries import ALL_QUERIES, instantiate

#: The acceptance pair: an operational one-hop pattern (Q1) and the
#: analytical triangle (Q5) — leaf-dominated and join-dominated work.
DEFAULT_QUERIES = ("Q1", "Q5")

#: Pinned benchmark graph scale.  SF 0.1 medians sit in the
#: single-millisecond range where scheduler noise swamps real deltas;
#: SF 0.2 is the smallest scale at which repeated runs of the same
#: build agree to a few percent, so trajectory files stay comparable.
DEFAULT_SCALE_FACTOR = 0.2

#: Pinned timed trials per (query, mode) after the untimed warm-up.
DEFAULT_REPEATS = 5

#: Execution modes timed by :func:`run_microbench`, in report order:
#: fused/batched (the PR 5 baseline), fused over columnar chunks, and
#: the unfused per-record interpreter.
MICRO_MODES = ("batched", "columnar", "per-record")

#: worker-process counts swept by :func:`run_worker_sweep`
DEFAULT_WORKER_SWEEP = (1, 2, 4, 8)

#: dataflow parallelism pinned across the worker sweep: divisible by
#: every swept worker count, so partition ownership stays balanced
SWEEP_PARALLELISM = 8


def _physical_postorder(root):
    stack = [(root, False)]
    while stack:
        operator, expanded = stack.pop()
        if expanded:
            yield operator
        else:
            stack.append((operator, True))
            for child in reversed(operator.children):
                stack.append((child, False))


def plan_bytes_moved(root):
    """Embedding bytes crossing every operator boundary of one plan.

    Executes the plan once (shared dataflow cache, per-record mode so
    every intermediate is observable) and sums the serialized size of
    each physical operator's output embeddings — the §3.3 bytes a
    distributed runtime would actually move between operators.  This is
    the number liveness-driven pruning (``CypherRunner(prune=True)``)
    exists to reduce.
    """
    cache = {}
    total = 0
    for operator in _physical_postorder(root):
        dataset = operator.evaluate()
        partitions = dataset.environment.run(
            dataset.operator, cache=cache, fused=False
        )
        total += sum(
            embedding.serialized_size()
            for partition in partitions
            for embedding in partition
        )
    return total


def _timed(environment, runner, query):
    """One execution; returns (cpu_seconds, result_count)."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        with environment.job("bench-micro"):
            start = time.process_time()
            embeddings, _ = runner.execute_embeddings(query)
            elapsed = time.process_time() - start
    finally:
        if was_enabled:
            gc.enable()
    gc.collect()
    return elapsed, len(embeddings)


def _timed_wall(environment, runner, query):
    """One execution; returns (wall_seconds, result_count).

    The multi-process sweep must time wall clock: worker processes burn
    their CPU outside the parent, so ``time.process_time`` cannot see
    the work the pool parallelizes.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        with environment.job("bench-micro"):
            start = time.perf_counter()
            embeddings, _ = runner.execute_embeddings(query)
            elapsed = time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()
    gc.collect()
    return elapsed, len(embeddings)


def run_worker_sweep(
    queries=DEFAULT_QUERIES,
    scale_factor=DEFAULT_SCALE_FACTOR,
    seed=42,
    worker_counts=DEFAULT_WORKER_SWEEP,
    repeats=3,
    batch_size=None,
    selectivity="low",
):
    """Wall-clock speedup curves of multi-process sharded execution.

    Every swept point runs the same queries over the same dataset with
    the dataflow parallelism pinned to :data:`SWEEP_PARALLELISM`, so the
    partitioning — and therefore the work — is identical and only the
    process placement changes.  Trials are interleaved across worker
    counts, one untimed warm-up per count pays process spawn, chain
    shipping and resident source caching up front, and ``speedup`` maps
    each query to the per-count wall-clock ratio against the 1-worker
    pool (both sides pay the same shipping overheads, isolating the
    parallelism win).
    """
    dataset = LDBCGenerator(scale_factor, seed).generate()
    points = {}
    for count in worker_counts:
        environment = ExecutionEnvironment(
            parallelism=SWEEP_PARALLELISM,
            batch_size=batch_size,
            workers=count,
        )
        graph = dataset.to_logical_graph(environment)
        statistics = GraphStatistics.from_graph(graph)
        points[count] = (
            environment,
            CypherRunner(graph, statistics=statistics),
        )

    cases = []
    for name in queries:
        template = ALL_QUERIES[name]
        first_name = (
            dataset.first_name(selectivity) if "{firstName}" in template else None
        )
        cases.append((name, instantiate(template, first_name)))

    samples = {(name, count): [] for name, _ in cases for count in points}
    rows = {}
    try:
        for trial in range(-1, repeats):  # trial -1 is the untimed warm-up
            for name, query in cases:
                for count, (environment, runner) in points.items():
                    elapsed, result_count = _timed_wall(
                        environment, runner, query
                    )
                    if trial < 0:
                        rows[name] = result_count
                    else:
                        samples[name, count].append(elapsed)
    finally:
        for environment, _ in points.values():
            environment.shutdown_workers()

    results = []
    for name, _ in cases:
        for count in worker_counts:
            data = samples[name, count]
            results.append(
                {
                    "query": name,
                    "workers": count,
                    "median_seconds": median(data),
                    "stddev_seconds": stdev(data) if len(data) > 1 else 0.0,
                    "min_seconds": min(data),
                    "rows": rows[name],
                    "seconds": data,
                }
            )
    baseline_count = worker_counts[0]
    speedup = {}
    for name, _ in cases:
        baseline = median(samples[name, baseline_count])
        speedup[name] = {
            str(count): (
                baseline / median(samples[name, count])
                if median(samples[name, count])
                else float("inf")
            )
            for count in worker_counts
        }

    try:
        usable_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        usable_cpus = os.cpu_count()
    return {
        "benchmark": "worker-sweep",
        "scale_factor": scale_factor,
        "seed": seed,
        "parallelism": SWEEP_PARALLELISM,
        "worker_counts": list(worker_counts),
        "baseline_workers": baseline_count,
        "repeats": repeats,
        "clock": "perf_counter",
        # wall-clock scaling is bounded above by the CPUs this process
        # may schedule on: on a single-core host every worker count
        # time-slices the same core and the curve stays flat
        "cpu_count": os.cpu_count(),
        "usable_cpus": usable_cpus,
        "results": results,
        "speedup": speedup,
    }


def run_microbench(
    queries=DEFAULT_QUERIES,
    scale_factor=DEFAULT_SCALE_FACTOR,
    seed=42,
    workers=4,
    repeats=DEFAULT_REPEATS,
    batch_size=None,
    selectivity="low",
    worker_sweep=None,
):
    """Time each query under batched, columnar, and per-record execution.

    Returns a JSON-ready report dict whose ``results`` list holds one
    record per (query, mode): ``query``, ``mode`` (one of
    :data:`MICRO_MODES`), ``batched`` (false only for the per-record
    interpreter), ``median_seconds``, ``stddev_seconds``,
    ``min_seconds``, ``rows``, and the raw ``seconds`` samples.
    ``speedup`` maps each query to the per-record / batched median
    ratio; ``columnar_speedup`` maps each query to the batched /
    columnar median ratio — the win of running the same fused chains
    over columnar chunks instead of embedding lists.

    ``worker_sweep`` (a sequence of worker-process counts, or ``True``
    for :data:`DEFAULT_WORKER_SWEEP`) additionally runs
    :func:`run_worker_sweep` and attaches its wall-clock speedup curves
    under ``worker_sweep`` in the report.
    """
    dataset = LDBCGenerator(scale_factor, seed).generate()
    modes = {}
    for mode in MICRO_MODES:
        environment = ExecutionEnvironment(
            cost_model=default_cost_model(workers),
            batch_size=batch_size,
            fusion=mode != "per-record",
            columnar=mode == "columnar",
        )
        graph = dataset.to_logical_graph(environment)
        statistics = GraphStatistics.from_graph(graph)
        modes[mode] = (environment, CypherRunner(graph, statistics=statistics))

    cases = []
    for name in queries:
        template = ALL_QUERIES[name]
        first_name = (
            dataset.first_name(selectivity) if "{firstName}" in template else None
        )
        cases.append((name, instantiate(template, first_name)))

    samples = {(name, mode): [] for name, _ in cases for mode in modes}
    rows = {}
    for trial in range(-1, repeats):  # trial -1 is the untimed warm-up
        for name, query in cases:
            for mode, (environment, runner) in modes.items():
                elapsed, count = _timed(environment, runner, query)
                if trial < 0:
                    rows[name] = count
                else:
                    samples[name, mode].append(elapsed)

    results = []
    for name, _ in cases:
        for mode in MICRO_MODES:
            data = samples[name, mode]
            results.append(
                {
                    "query": name,
                    "mode": mode,
                    "batched": mode != "per-record",
                    "median_seconds": median(data),
                    "stddev_seconds": stdev(data) if len(data) > 1 else 0.0,
                    "min_seconds": min(data),
                    "rows": rows[name],
                    "seconds": data,
                }
            )
    speedup = {}
    columnar_speedup = {}
    for name, _ in cases:
        fused = median(samples[name, "batched"])
        plain = median(samples[name, "per-record"])
        chunked = median(samples[name, "columnar"])
        speedup[name] = plain / fused if fused else float("inf")
        columnar_speedup[name] = (
            fused / chunked if chunked else float("inf")
        )

    # Liveness-pruning win: embedding bytes crossing operator boundaries
    # with and without the dead-byte pruning rewriter.  Measured on the
    # per-record environment so every intermediate is observable; one
    # extra execution per (query, pruned) pair.
    environment, _ = modes["per-record"]
    graph = dataset.to_logical_graph(environment)
    statistics = GraphStatistics.from_graph(graph)
    embedding_bytes = {}
    for name, query in cases:
        measured = {}
        for pruned in (False, True):
            runner = CypherRunner(
                graph, statistics=statistics, prune=pruned
            )
            _, root = runner.compile(query)
            measured["pruned" if pruned else "unpruned"] = plan_bytes_moved(
                root
            )
        unpruned = measured["unpruned"]
        measured["reduction_percent"] = (
            100.0 * (unpruned - measured["pruned"]) / unpruned
            if unpruned else 0.0
        )
        embedding_bytes[name] = measured

    report = {
        "benchmark": "engine-microbench",
        "scale_factor": scale_factor,
        "default_scale_factor": DEFAULT_SCALE_FACTOR,
        "seed": seed,
        "workers": workers,
        "repeats": repeats,
        "default_repeats": DEFAULT_REPEATS,
        "batch_size": modes["batched"][0].batch_size,
        "modes": list(MICRO_MODES),
        "clock": "process_time",
        "python": platform.python_version(),
        "results": results,
        "speedup": speedup,
        "columnar_speedup": columnar_speedup,
        "embedding_bytes": embedding_bytes,
    }
    if worker_sweep:
        counts = (
            DEFAULT_WORKER_SWEEP
            if worker_sweep is True
            else tuple(worker_sweep)
        )
        report["worker_sweep"] = run_worker_sweep(
            queries=queries,
            scale_factor=scale_factor,
            seed=seed,
            worker_counts=counts,
            repeats=repeats,
            batch_size=batch_size,
            selectivity=selectivity,
        )
    return report


def format_microbench(report):
    """Human-readable table for one :func:`run_microbench` report."""
    lines = [
        "engine-microbench: SF %s, %d worker(s), %d repeat(s), "
        "batch size %d, %s clock"
        % (
            report["scale_factor"],
            report["workers"],
            report["repeats"],
            report["batch_size"],
            report["clock"],
        ),
        "%-6s %-12s %12s %12s %12s %8s"
        % ("query", "mode", "median [s]", "stddev [s]", "min [s]", "rows"),
    ]
    for record in report["results"]:
        mode = record.get(
            "mode", "batched" if record["batched"] else "per-record"
        )
        lines.append(
            "%-6s %-12s %12.4f %12.4f %12.4f %8d"
            % (
                record["query"],
                mode,
                record["median_seconds"],
                record["stddev_seconds"],
                record["min_seconds"],
                record["rows"],
            )
        )
    for name in sorted(report["speedup"]):
        lines.append(
            "%-6s batched is %.2fx the per-record median"
            % (name, report["speedup"][name])
        )
    for name in sorted(report.get("columnar_speedup", {})):
        lines.append(
            "%-6s columnar is %.2fx the batched median"
            % (name, report["columnar_speedup"][name])
        )
    for name in sorted(report.get("embedding_bytes", {})):
        record = report["embedding_bytes"][name]
        lines.append(
            "%-6s embedding bytes moved: %d unpruned, %d pruned "
            "(%.1f%% reduction)"
            % (
                name,
                record["unpruned"],
                record["pruned"],
                record["reduction_percent"],
            )
        )
    sweep = report.get("worker_sweep")
    if sweep:
        lines.append(
            "worker sweep: SF %s, parallelism %d, %s clock"
            % (sweep["scale_factor"], sweep["parallelism"], sweep["clock"])
        )
        lines.append(
            "%-6s %8s %12s %12s %10s"
            % ("query", "workers", "median [s]", "min [s]", "speedup")
        )
        for record in sweep["results"]:
            lines.append(
                "%-6s %8d %12.4f %12.4f %9.2fx"
                % (
                    record["query"],
                    record["workers"],
                    record["median_seconds"],
                    record["min_seconds"],
                    sweep["speedup"][record["query"]][str(record["workers"])],
                )
            )
    return "\n".join(lines)


def next_trajectory_path(directory="."):
    """``BENCH_<n>.json`` one past the highest existing index."""
    highest = 0
    for entry in os.listdir(directory):
        match = re.fullmatch(r"BENCH_(\d+)\.json", entry)
        if match:
            highest = max(highest, int(match.group(1)))
    return os.path.join(directory, "BENCH_%d.json" % (highest + 1))


def write_microbench(report, path):
    """Write ``report`` to ``path`` as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path

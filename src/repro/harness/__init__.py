"""Benchmark harness: the paper's queries and experiment runners."""

from .experiments import (
    DatasetCache,
    QueryRun,
    SCALE_FACTOR_LARGE,
    SCALE_FACTOR_SMALL,
    datasize_series,
    default_cost_model,
    format_table,
    intermediate_result_sizes,
    result_cardinalities,
    run_query,
    runtime_grid,
    selectivity_series,
    speedup_series,
)
from .microbench import (
    DEFAULT_QUERIES,
    format_microbench,
    next_trajectory_path,
    run_microbench,
    write_microbench,
)
from .paper_reference import CARDINALITIES, TABLE3, TABLE4, paper_speedup
from .queries import (
    ALL_QUERIES,
    ANALYTICAL_QUERIES,
    OPERATIONAL_QUERIES,
    TABLE3_PATTERNS,
    instantiate,
)

__all__ = [
    "ALL_QUERIES",
    "CARDINALITIES",
    "TABLE3",
    "TABLE4",
    "paper_speedup",
    "ANALYTICAL_QUERIES",
    "DEFAULT_QUERIES",
    "DatasetCache",
    "OPERATIONAL_QUERIES",
    "QueryRun",
    "SCALE_FACTOR_LARGE",
    "SCALE_FACTOR_SMALL",
    "TABLE3_PATTERNS",
    "datasize_series",
    "default_cost_model",
    "format_microbench",
    "format_table",
    "instantiate",
    "intermediate_result_sizes",
    "next_trajectory_path",
    "result_cardinalities",
    "run_microbench",
    "run_query",
    "runtime_grid",
    "selectivity_series",
    "speedup_series",
    "write_microbench",
]

"""Experiment runners regenerating the paper's tables and figures.

Each runner measures *simulated* cluster runtime (the dataflow cost model)
together with real result cardinalities and shuffle metrics.  Absolute
numbers differ from the paper's 16-node cluster; the claims under test are
the *shapes* listed in DESIGN.md §4.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.dataflow import ClusterCostModel, ExecutionEnvironment
from repro.engine import CypherRunner, GraphStatistics
from repro.ldbc import LDBCGenerator

from .queries import ALL_QUERIES, instantiate

#: Laptop-scale stand-ins for the paper's SF 10 / SF 100 (ratio 10x).
SCALE_FACTOR_SMALL = 0.1
SCALE_FACTOR_LARGE = 1.0

#: Cost model matched to the paper's cluster narrative: a fixed job
#: overhead that caps speedup on small inputs, a per-worker memory budget
#: small enough that single-worker joins on the large SF spill.
def default_cost_model(workers):
    # Calibration: our synthetic graphs are ~1000x smaller than the paper's
    # LDBC instances, so per-record and per-byte costs are scaled up by the
    # same factor; the absolute simulated runtimes then land in the same
    # hundreds-of-seconds range as Table 4 and the *shape* claims (speedup,
    # skew stagnation, spill-driven super-linearity, overhead-limited small
    # inputs) are preserved.
    return ClusterCostModel(
        workers=workers,
        cpu_seconds_per_record=4.0e-3,
        network_seconds_per_byte=2.0e-6,
        memory_records_per_worker=20_000,
        spill_penalty=3.0,
        job_overhead_seconds=0.5,
        barrier_overhead_seconds=0.02,
    )


@dataclass
class QueryRun:
    """Outcome of one query execution on a simulated cluster."""

    query: str
    workers: int
    scale_factor: float
    result_count: int
    simulated_seconds: float
    metrics: Dict = field(default_factory=dict)


class DatasetCache:
    """Generate each (scale_factor, seed) dataset once per process."""

    def __init__(self, seed=42):
        self.seed = seed
        self._datasets = {}

    def dataset(self, scale_factor):
        key = scale_factor
        if key not in self._datasets:
            self._datasets[key] = LDBCGenerator(scale_factor, self.seed).generate()
        return self._datasets[key]

    def first_name(self, scale_factor, selectivity):
        return self.dataset(scale_factor).first_name(selectivity)


_GLOBAL_CACHE = DatasetCache()


def run_query(
    query_name,
    scale_factor,
    workers,
    selectivity=None,
    cache=None,
    cost_model_factory=default_cost_model,
    indexed=False,
    planner_cls=None,
):
    """Execute one named paper query on a fresh simulated cluster."""
    cache = cache or _GLOBAL_CACHE
    dataset = cache.dataset(scale_factor)
    environment = ExecutionEnvironment(cost_model=cost_model_factory(workers))
    graph = dataset.to_logical_graph(environment, indexed=indexed)
    template = ALL_QUERIES[query_name]
    first_name = (
        dataset.first_name(selectivity) if "{firstName}" in template else None
    )
    query = instantiate(template, first_name)

    # statistics are pre-computed in Gradoop; exclude them from the metrics
    statistics = GraphStatistics.from_graph(graph)
    environment.reset_metrics(query_name)

    kwargs = {"statistics": statistics}
    if planner_cls is not None:
        kwargs["planner_cls"] = planner_cls
    runner = CypherRunner(graph, **kwargs)
    embeddings, _ = runner.execute_embeddings(query)
    return QueryRun(
        query=query_name,
        workers=workers,
        scale_factor=scale_factor,
        result_count=len(embeddings),
        simulated_seconds=environment.simulated_runtime_seconds(),
        metrics=environment.metrics.summary(),
    )


# Figure 3 / Table 4 -----------------------------------------------------------


def speedup_series(query_name, scale_factor, worker_counts, selectivity=None,
                   cache=None):
    """Runtime and speedup for one query over increasing worker counts."""
    runs = [
        run_query(query_name, scale_factor, workers, selectivity, cache)
        for workers in worker_counts
    ]
    base = runs[0].simulated_seconds
    return [
        {
            "workers": run.workers,
            "seconds": run.simulated_seconds,
            "speedup": base / run.simulated_seconds,
            "results": run.result_count,
        }
        for run in runs
    ]


def runtime_grid(worker_counts, selectivities=("low", "medium", "high"),
                 cache=None, scale_factors=None):
    """The full Table 4 grid: operational queries × selectivity × SF ×
    workers, analytical queries × SF × workers."""
    if scale_factors is None:
        scale_factors = (SCALE_FACTOR_SMALL, SCALE_FACTOR_LARGE)
    grid = []
    for query_name in ("Q1", "Q2", "Q3"):
        for selectivity in selectivities:
            for scale_factor in scale_factors:
                series = speedup_series(
                    query_name, scale_factor, worker_counts, selectivity, cache
                )
                grid.append(
                    {
                        "query": query_name,
                        "selectivity": selectivity,
                        "scale_factor": scale_factor,
                        "series": series,
                    }
                )
    for query_name in ("Q4", "Q5", "Q6"):
        for scale_factor in scale_factors:
            series = speedup_series(query_name, scale_factor, worker_counts,
                                    cache=cache)
            grid.append(
                {
                    "query": query_name,
                    "selectivity": None,
                    "scale_factor": scale_factor,
                    "series": series,
                }
            )
    return grid


# Figure 4 ----------------------------------------------------------------------


def datasize_series(query_names, workers, scale_factors, cache=None):
    """Runtime per query for growing data volumes at fixed workers."""
    table = {}
    for query_name in query_names:
        selectivity = "low" if query_name in ("Q1", "Q2", "Q3") else None
        table[query_name] = [
            {
                "scale_factor": scale_factor,
                "seconds": run_query(
                    query_name, scale_factor, workers, selectivity, cache
                ).simulated_seconds,
            }
            for scale_factor in scale_factors
        ]
    return table


# Figure 5 ----------------------------------------------------------------------


def selectivity_series(query_names, workers, scale_factor, cache=None):
    """Runtime per query for high/medium/low selectivity predicates."""
    table = {}
    for query_name in query_names:
        table[query_name] = {
            selectivity: run_query(
                query_name, scale_factor, workers, selectivity, cache
            )
            for selectivity in ("high", "medium", "low")
        }
    return table


# Table 3 -------------------------------------------------------------------------


def intermediate_result_sizes(scale_factor, cache=None):
    """Result cardinalities of the Table 3 sub-patterns per selectivity."""
    from .queries import TABLE3_PATTERNS

    cache = cache or _GLOBAL_CACHE
    dataset = cache.dataset(scale_factor)
    environment = ExecutionEnvironment(cost_model=default_cost_model(4))
    graph = dataset.to_logical_graph(environment)
    runner = CypherRunner(graph)
    table = {}
    for pattern, template in TABLE3_PATTERNS.items():
        row = {}
        for selectivity in ("high", "medium", "low"):
            query = instantiate(template, dataset.first_name(selectivity))
            embeddings, _ = runner.execute_embeddings(query)
            row[selectivity] = len(embeddings)
        table[pattern] = row
    return table


# Appendix cardinalities --------------------------------------------------------------


def result_cardinalities(scale_factors, cache=None):
    """Per-query result counts (the appendix cardinality tables)."""
    table = {}
    for query_name in ALL_QUERIES:
        rows = {}
        for scale_factor in scale_factors:
            if query_name in ("Q1", "Q2", "Q3"):
                rows[scale_factor] = {
                    selectivity: run_query(
                        query_name, scale_factor, 4, selectivity, cache
                    ).result_count
                    for selectivity in ("high", "medium", "low")
                }
            else:
                rows[scale_factor] = run_query(
                    query_name, scale_factor, 4, cache=cache
                ).result_count
        table[query_name] = rows
    return table


# Rendering helpers ---------------------------------------------------------------------


def format_table(headers, rows):
    """Plain-text table with right-aligned numeric columns."""
    widths = [len(h) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [
            ("%.1f" % value if isinstance(value, float) else str(value))
            for value in row
        ]
        rendered_rows.append(rendered)
        widths = [max(w, len(cell)) for w, cell in zip(widths, rendered)]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for rendered in rendered_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(rendered, widths)))
    return "\n".join(lines)

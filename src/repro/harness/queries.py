"""The six evaluation queries (paper appendix), verbatim modulo whitespace.

Queries 1-3 are *operational*: parameterized by ``firstName`` so their
selectivity can be controlled (high = rare name, low = very common name).
Queries 4-6 are *analytical*: they touch large parts of the graph and
produce large result sets.
"""

#: Query 1 — All messages of a person.
QUERY_1 = """
MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post)
WHERE person.firstName = '{firstName}'
RETURN message.creationDate, message.content
"""

#: Query 2 — Posts to a person's comments.
QUERY_2 = """
MATCH (person:Person)<-[:hasCreator]-(message:Comment|Post),
      (message)-[:replyOf*0..10]->(post:Post)
WHERE person.firstName = '{firstName}'
RETURN message.creationDate, message.content,
       post.creationDate, post.content
"""

#: Query 3 — Friends that replied to a post.
QUERY_3 = """
MATCH (p1:Person)-[:knows]->(p2:Person),
      (p2)<-[:hasCreator]-(comment:Comment),
      (comment)-[:replyOf*1..10]->(post:Post),
      (post)-[:hasCreator]->(p1)
WHERE p1.firstName = '{firstName}'
RETURN p1.firstName, p1.lastName,
       p2.firstName, p2.lastName,
       post.content
"""

#: Query 4 — Person profile.
QUERY_4 = """
MATCH (person:Person)-[:isLocatedIn]->(city:City),
      (person)-[:hasInterest]->(tag:Tag),
      (person)-[:studyAt]->(uni:University),
      (person)<-[:hasMember|hasModerator]-(forum:Forum)
RETURN person.firstName, person.lastName,
       city.name, tag.name, uni.name, forum.title
"""

#: Query 5 — Close friends (triangles).
QUERY_5 = """
MATCH (p1:Person)-[:knows]->(p2:Person),
      (p2)-[:knows]->(p3:Person),
      (p1)-[:knows]->(p3)
RETURN p1.firstName, p1.lastName,
       p2.firstName, p2.lastName,
       p3.firstName, p3.lastName
"""

#: Query 6 — Recommendation (shared interests).
QUERY_6 = """
MATCH (p1:Person)-[:knows]->(p2:Person),
      (p1)-[:hasInterest]->(t1:Tag),
      (p2)-[:hasInterest]->(t1),
      (p2)-[:hasInterest]->(t2:Tag)
RETURN p1.firstName, p1.lastName, t2.name
"""

OPERATIONAL_QUERIES = {"Q1": QUERY_1, "Q2": QUERY_2, "Q3": QUERY_3}
ANALYTICAL_QUERIES = {"Q4": QUERY_4, "Q5": QUERY_5, "Q6": QUERY_6}
ALL_QUERIES = {**OPERATIONAL_QUERIES, **ANALYTICAL_QUERIES}

#: The four sub-patterns of Table 3 (intermediate result sizes), the first
#: three parameterized by firstName like the operational queries.
TABLE3_PATTERNS = {
    "(:Person)": """
        MATCH (p:Person) WHERE p.firstName = '{firstName}' RETURN *
    """,
    "(:Person)<-[:hasCreator]-(:Comment|Post)": """
        MATCH (p:Person)<-[:hasCreator]-(m:Comment|Post)
        WHERE p.firstName = '{firstName}' RETURN *
    """,
    "(:Person)-[:knows]->(:Person)": """
        MATCH (p:Person)-[:knows]->(q:Person)
        WHERE p.firstName = '{firstName}' RETURN *
    """,
    "(:Person)-[:knows]->(:Person)<-[:hasCreator]-(:Comment)": """
        MATCH (p:Person)-[:knows]->(q:Person)<-[:hasCreator]-(c:Comment)
        WHERE p.firstName = '{firstName}' RETURN *
    """,
}


def instantiate(query_template, first_name=None):
    """Fill the ``{firstName}`` parameter if the template has one."""
    if "{firstName}" in query_template:
        if first_name is None:
            raise ValueError("query requires a firstName parameter")
        return query_template.replace("{firstName}", first_name)
    return query_template

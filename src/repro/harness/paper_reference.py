"""The paper's published evaluation numbers (GRADES'17, Table 4 and the
appendix cardinality tables), for side-by-side shape comparison.

Runtimes are seconds on the authors' 16-node cluster; speedups are
relative to one worker.  ``None`` marks cells the paper leaves blank
(SF 100 analytical queries were only run on 16 workers).
"""

#: Table 4 — {(query, selectivity, sf): {workers: (seconds, speedup)}}
#: sf is "small" (paper SF 10) or "large" (paper SF 100).
TABLE4 = {
    ("Q1", "low", "small"): {1: (89, 1.0), 2: (46, 1.9), 4: (25, 3.6), 8: (15, 5.9), 16: (12, 7.4)},
    ("Q1", "low", "large"): {1: (915, 1.0), 2: (445, 2.1), 4: (237, 3.9), 8: (123, 7.4), 16: (91, 10.1)},
    ("Q1", "medium", "small"): {1: (88, 1.0), 2: (46, 1.9), 4: (26, 3.4), 8: (15, 5.9), 16: (11, 8.0)},
    ("Q1", "medium", "large"): {1: (866, 1.0), 2: (447, 1.9), 4: (230, 3.8), 8: (116, 7.5), 16: (87, 10.0)},
    ("Q1", "high", "small"): {1: (88, 1.0), 2: (45, 2.0), 4: (26, 3.4), 8: (15, 5.9), 16: (12, 7.3)},
    ("Q1", "high", "large"): {1: (866, 1.0), 2: (441, 2.0), 4: (238, 3.6), 8: (116, 7.5), 16: (87, 10.0)},
    ("Q2", "low", "small"): {1: (130, 1.0), 2: (69, 1.9), 4: (38, 3.4), 8: (22, 5.9), 16: (17, 7.7)},
    ("Q2", "low", "large"): {1: (1602, 1.0), 2: (757, 2.1), 4: (359, 4.5), 8: (180, 8.9), 16: (115, 13.9)},
    ("Q2", "medium", "small"): {1: (123, 1.0), 2: (64, 1.9), 4: (33, 3.7), 8: (19, 6.6), 16: (14, 8.8)},
    ("Q2", "medium", "large"): {1: (1444, 1.0), 2: (701, 2.1), 4: (327, 4.4), 8: (167, 8.7), 16: (121, 11.9)},
    ("Q2", "high", "small"): {1: (123, 1.0), 2: (64, 1.9), 4: (34, 3.6), 8: (18, 6.8), 16: (14, 8.8)},
    ("Q2", "high", "large"): {1: (1439, 1.0), 2: (701, 2.1), 4: (234, 6.1), 8: (167, 8.6), 16: (115, 12.5)},
    ("Q3", "low", "small"): {1: (178, 1.0), 2: (87, 2.1), 4: (54, 3.3), 8: (30, 5.9), 16: (25, 7.1)},
    ("Q3", "low", "large"): {1: (3012, 1.0), 2: (1554, 1.9), 4: (706, 4.3), 8: (374, 8.1), 16: (294, 10.2)},
    ("Q3", "medium", "small"): {1: (105, 1.0), 2: (54, 1.9), 4: (28, 3.8), 8: (15, 7.0), 16: (11, 9.6)},
    ("Q3", "medium", "large"): {1: (1330, 1.0), 2: (616, 2.2), 4: (289, 4.6), 8: (143, 9.3), 16: (90, 14.8)},
    ("Q3", "high", "small"): {1: (104, 1.0), 2: (52, 2.0), 4: (27, 3.9), 8: (15, 6.9), 16: (11, 9.5)},
    ("Q3", "high", "large"): {1: (1314, 1.0), 2: (609, 2.2), 4: (276, 4.8), 8: (138, 9.5), 16: (84, 15.6)},
    ("Q4", None, "small"): {1: (854, 1.0), 2: (380, 2.3), 4: (250, 3.4), 8: (142, 6.0), 16: (131, 6.5)},
    ("Q4", None, "large"): {16: (1488, None)},
    ("Q5", None, "small"): {1: (315, 1.0), 2: (168, 1.9), 4: (115, 2.7), 8: (66, 4.8), 16: (71, 4.4)},
    ("Q5", None, "large"): {16: (1039, None)},
    ("Q6", None, "small"): {1: (193, 1.0), 2: (104, 1.9), 4: (73, 2.6), 8: (45, 4.3), 16: (42, 4.6)},
    ("Q6", None, "large"): {16: (411, None)},
}

#: Appendix — result cardinalities {(query, sf): {selectivity: count} | count}
CARDINALITIES = {
    ("Q1", "small"): {"high": 63, "medium": 2_704, "low": 784_051},
    ("Q1", "large"): {"high": 6, "medium": 41_634, "low": 7_594_399},
    ("Q2", "small"): {"high": 31, "medium": 4_465, "low": 818_869},
    ("Q2", "large"): {"high": 6, "medium": 32_929, "low": 7_249_529},
    ("Q3", "small"): {"high": 71, "medium": 4_876, "low": 252_344},
    ("Q3", "large"): {"high": 5_138, "medium": 52_404, "low": 2_579_714},
    ("Q4", "small"): 343_871_500,
    ("Q4", "large"): 3_566_155_862,
    ("Q5", "small"): 4_940_388,
    ("Q5", "large"): 66_191_525,
    ("Q6", "small"): 87_382_672,
    ("Q6", "large"): 863_732_154,
}

#: Table 3 — intermediate result sizes at SF 10.
TABLE3 = {
    "(:Person)": {"high": 2, "medium": 39, "low": 1_757},
    "(:Person)<-[:hasCreator]-(:Comment|Post)": {
        "high": 31, "medium": 4_465, "low": 818_869,
    },
    "(:Person)-[:knows]->(:Person)": {"high": 19, "medium": 947, "low": 51_114},
    "(:Person)-[:knows]->(:Person)<-[:hasCreator]-(:Comment)": {
        "high": 18_129, "medium": 636_678, "low": 38_122_006,
    },
}


def paper_speedup(query, selectivity, size, workers):
    """The paper's reported speedup, or ``None`` where not published."""
    cell = TABLE4.get((query, selectivity, size), {}).get(workers)
    return cell[1] if cell else None

"""A stdlib HTTP/JSON front end for :class:`QueryService`.

Deliberately minimal — ``http.server`` + ``json``, no third-party web
framework — because the protocol exists to demonstrate the *service*
semantics (admission control, deadlines, prepared statements) over a
real socket, not to be a production web server.  Each request runs on
its own ``ThreadingHTTPServer`` thread and blocks on the service's
future, so the service's admission control is the real concurrency
limit.

Routes (all bodies JSON):

====== =========== ====================================================
Method Path        Body / response
====== =========== ====================================================
GET    /health     ``{"status": "ok", "graphs": [...]}``
GET    /metrics    the full :meth:`QueryService.metrics_snapshot`
POST   /query      ``{graph, query, parameters?, timeout?}`` → result
POST   /prepare    ``{graph, query}`` → ``{statement_id, ...}``
POST   /execute    ``{statement_id, parameters?, timeout?}`` → result
POST   /shutdown   acknowledges, then stops the listener
====== =========== ====================================================

Error mapping: saturation → 503, deadline → 504, unknown graph or
statement → 404, syntax/semantic/lint/binding errors → 400.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.analysis.diagnostics import QueryLintError
from repro.cypher.errors import CypherError
from repro.dataflow.cancellation import QueryCancelled, QueryTimeout

from .registry import UnknownGraphError
from .service import AdmissionError, ServiceClosedError


def _json_default(value):
    """Rows may hold GradoopIds and other engine objects; stringify them."""
    return str(value)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the owning server's :class:`QueryService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"

    # quiet by default; the smoke test parses stdout for the listen line
    def log_message(self, format, *args):
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def service(self):
        return self.server.service

    # Plumbing ----------------------------------------------------------------

    def _send_json(self, status, payload):
        body = json.dumps(payload, default=_json_default).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest("invalid JSON body: %s" % error)
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        return payload

    def _require(self, payload, *keys):
        missing = [key for key in keys if key not in payload]
        if missing:
            raise _BadRequest("missing field(s): %s" % ", ".join(missing))
        return [payload[key] for key in keys]

    # Routing -----------------------------------------------------------------

    def do_GET(self):
        if self.path == "/health":
            self._send_json(200, {
                "status": "ok",
                "graphs": self.service.registry.names(),
            })
        elif self.path == "/metrics":
            self._send_json(200, self.service.metrics_snapshot())
        else:
            self._send_json(404, {"error": "no such route: %s" % self.path})

    def do_POST(self):
        try:
            payload = self._read_json()
            if self.path == "/query":
                graph, query = self._require(payload, "graph", "query")
                result = self.service.execute(
                    graph, query,
                    parameters=payload.get("parameters"),
                    timeout=payload.get("timeout"),
                )
                self._send_json(200, result.to_dict())
            elif self.path == "/prepare":
                graph, query = self._require(payload, "graph", "query")
                handle = self.service.prepare(graph, query)
                self._send_json(200, handle.to_dict())
            elif self.path == "/execute":
                (statement_id,) = self._require(payload, "statement_id")
                result = self.service.execute_prepared(
                    statement_id,
                    parameters=payload.get("parameters"),
                    timeout=payload.get("timeout"),
                )
                self._send_json(200, result.to_dict())
            elif self.path == "/shutdown":
                self._send_json(200, {"status": "shutting down"})
                # shutdown() must not run on the handler thread: it joins
                # the serve loop, which is waiting on this very request
                threading.Thread(
                    target=self.server.stop, daemon=True
                ).start()
            else:
                self._send_json(404, {
                    "error": "no such route: %s" % self.path
                })
        except _BadRequest as error:
            self._send_json(400, {"error": str(error)})
        except (QueryLintError, CypherError, ValueError, TypeError) as error:
            self._send_json(400, {
                "error": str(error), "kind": type(error).__name__,
            })
        except (UnknownGraphError, KeyError) as error:
            self._send_json(404, {"error": str(error)})
        except AdmissionError as error:
            self._send_json(503, {"error": str(error), "kind": "rejected"})
        except ServiceClosedError as error:
            self._send_json(503, {"error": str(error), "kind": "closed"})
        except QueryTimeout as error:
            self._send_json(504, {"error": str(error), "kind": "timeout"})
        except QueryCancelled as error:
            self._send_json(499, {"error": str(error), "kind": "cancelled"})
        except Exception as error:  # noqa: BLE001 — the wire must answer
            self._send_json(500, {
                "error": str(error), "kind": type(error).__name__,
            })


class _BadRequest(ValueError):
    pass


class QueryHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to one :class:`QueryService`."""

    daemon_threads = True

    def __init__(self, service, host="127.0.0.1", port=0, verbose=False):
        super().__init__((host, port), ServiceRequestHandler)
        self.service = service
        self.verbose = verbose

    @property
    def address(self):
        """``(host, port)`` actually bound (port 0 picks a free one)."""
        return self.server_address[0], self.server_address[1]

    def stop(self, close_service=True):
        """Stop the listener; optionally drain and close the service."""
        self.shutdown()
        self.server_close()
        if close_service:
            self.service.close(wait=True)


def serve_in_thread(service, host="127.0.0.1", port=0, verbose=False):
    """Start a server on a daemon thread; returns ``(server, thread)``.

    The test-friendly entry point: the caller gets the bound address from
    ``server.address`` and stops with ``server.stop()``.
    """
    server = QueryHTTPServer(service, host=host, port=port, verbose=verbose)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server, thread

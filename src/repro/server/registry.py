"""The registry of named graphs a query service executes against.

Gradoop frames pattern matching as one operator inside a long-lived
analytics service; the registry is the serving layer's handle on the
graphs that service owns.  Each entry carries the graph, its (lazily
computed) :class:`~repro.engine.GraphStatistics` and a **statistics
version counter**: every mutation — replacing the graph, or telling the
registry the graph changed underneath it — bumps the version, and because
plan- and result-cache keys embed the version, a bump atomically
invalidates every cached artifact derived from the old graph without the
registry having to know which caches exist.
"""

import threading

from repro.engine import GraphStatistics


class UnknownGraphError(KeyError):
    """Lookup of a graph name the registry does not know."""

    def __init__(self, name, known=()):
        message = "unknown graph %r" % name
        if known:
            message += " (registered: %s)" % ", ".join(sorted(known))
        super().__init__(message)
        self.name = name

    def __str__(self):
        return self.args[0]


class RegisteredGraph:
    """One named graph and its versioned statistics."""

    def __init__(self, name, graph, statistics=None):
        self.name = name
        self.graph = graph
        self._statistics = statistics
        self._lock = threading.Lock()
        if statistics is not None and not hasattr(statistics, "version"):
            statistics.version = 0

    @property
    def environment(self):
        return self.graph.environment

    @property
    def statistics(self):
        """Graph statistics, computed on first use (one graph pass)."""
        with self._lock:
            if self._statistics is None:
                self._statistics = GraphStatistics.from_graph(self.graph)
            return self._statistics

    @property
    def version(self):
        return getattr(self.statistics, "version", 0)

    def touch(self):
        """Record that the graph mutated: bump the statistics version.

        Callers that change the data in place (or learn it changed) must
        call this; cached plans and results keyed on the old version
        become unreachable and age out of their LRU caches.  Returns the
        new version.
        """
        statistics = self.statistics
        statistics.version += 1
        return statistics.version

    def replace(self, graph, statistics=None):
        """Swap in a new graph under the same name (version keeps rising)."""
        with self._lock:
            previous_version = (
                self._statistics.version if self._statistics is not None else 0
            )
            self.graph = graph
            self._statistics = statistics
        # outside the lock: reading .statistics may compute from the graph
        self.statistics.version = previous_version + 1
        return self

    def __repr__(self):
        return "RegisteredGraph(%r, version=%d)" % (
            self.name,
            self._statistics.version if self._statistics is not None else 0,
        )


class GraphRegistry:
    """Thread-safe name → :class:`RegisteredGraph` mapping."""

    def __init__(self):
        self._lock = threading.Lock()
        self._graphs = {}

    def register(self, name, graph, statistics=None):
        """Add ``name``; replaces an existing entry (bumping its version)."""
        with self._lock:
            entry = self._graphs.get(name)
            if entry is None:
                entry = RegisteredGraph(name, graph, statistics)
                self._graphs[name] = entry
                return entry
        return entry.replace(graph, statistics)

    def get(self, name):
        with self._lock:
            entry = self._graphs.get(name)
        if entry is None:
            raise UnknownGraphError(name, known=self.names())
        return entry

    def remove(self, name):
        with self._lock:
            return self._graphs.pop(name, None)

    def names(self):
        with self._lock:
            return sorted(self._graphs)

    def __contains__(self, name):
        with self._lock:
            return name in self._graphs

    def __len__(self):
        with self._lock:
            return len(self._graphs)

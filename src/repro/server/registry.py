"""The registry of named graphs a query service executes against.

Gradoop frames pattern matching as one operator inside a long-lived
analytics service; the registry is the serving layer's handle on the
graphs that service owns.  Each entry carries the graph, its (lazily
computed) :class:`~repro.engine.GraphStatistics` and a **statistics
version counter**: every mutation — replacing the graph, or telling the
registry the graph changed underneath it — bumps the version, and because
plan- and result-cache keys embed the version, a bump atomically
invalidates every cached artifact derived from the old graph without the
registry having to know which caches exist.
"""

from repro.engine import GraphStatistics
from repro.locks import named_lock


class UnknownGraphError(KeyError):
    """Lookup of a graph name the registry does not know."""

    def __init__(self, name, known=()):
        message = "unknown graph %r" % name
        if known:
            message += " (registered: %s)" % ", ".join(sorted(known))
        super().__init__(message)
        self.name = name

    def __str__(self):
        return self.args[0]


class RegisteredGraph:
    """One named graph and its versioned statistics."""

    def __init__(self, name, graph, statistics=None):
        self.name = name  # unsynchronized: immutable after construction
        # replaced atomically under _lock; readers may see the old or the
        # new graph, never a torn one (reference assignment is atomic)
        self.graph = graph  # unsynchronized: atomic reference swap
        self._statistics = statistics  # guarded-by: _lock
        self._lock = named_lock("registry.entry")
        if statistics is not None and not hasattr(statistics, "version"):
            statistics.version = 0

    @property
    def environment(self):
        return self.graph.environment

    def _statistics_locked(self):  # requires-lock: _lock
        """The statistics object, computed on first use (one graph pass)."""
        if self._statistics is None:
            self._statistics = GraphStatistics.from_graph(self.graph)
        return self._statistics

    @property
    def statistics(self):
        """Graph statistics, computed on first use (one graph pass)."""
        with self._lock:
            return self._statistics_locked()

    @property
    def version(self):
        return getattr(self.statistics, "version", 0)

    def touch(self):
        """Record that the graph mutated: bump the statistics version.

        Callers that change the data in place (or learn it changed) must
        call this; cached plans and results keyed on the old version
        become unreachable and age out of their LRU caches.  Returns the
        new version.  The read-bump-return runs under the entry lock, so
        concurrent touches never lose a bump (every caller gets a
        distinct version).
        """
        with self._lock:
            statistics = self._statistics_locked()
            statistics.version += 1
            return statistics.version

    def replace(self, graph, statistics=None):
        """Swap in a new graph under the same name (version keeps rising).

        The swap *and* the version bump happen under one lock: a reader
        that sees the new graph also sees a version newer than any entry
        the old graph ever cached under.
        """
        with self._lock:
            previous_version = (
                self._statistics.version if self._statistics is not None else 0
            )
            self.graph = graph
            self._statistics = statistics
            self._statistics_locked().version = previous_version + 1
        return self

    def __repr__(self):
        with self._lock:
            return "RegisteredGraph(%r, version=%d)" % (
                self.name,
                self._statistics.version
                if self._statistics is not None else 0,
            )


class GraphRegistry:
    """Thread-safe name → :class:`RegisteredGraph` mapping."""

    def __init__(self):
        self._lock = named_lock("registry")
        self._graphs = {}  # guarded-by: _lock

    def register(self, name, graph, statistics=None):
        """Add ``name``; replaces an existing entry (bumping its version)."""
        with self._lock:
            entry = self._graphs.get(name)
            if entry is None:
                entry = RegisteredGraph(name, graph, statistics)
                self._graphs[name] = entry
                return entry
        return entry.replace(graph, statistics)

    def get(self, name):
        with self._lock:
            entry = self._graphs.get(name)
        if entry is None:
            raise UnknownGraphError(name, known=self.names())
        return entry

    def remove(self, name):
        with self._lock:
            return self._graphs.pop(name, None)

    def names(self):
        with self._lock:
            return sorted(self._graphs)

    def __contains__(self, name):
        with self._lock:
            return name in self._graphs

    def __len__(self):
        with self._lock:
            return len(self._graphs)

"""Cache key construction and the optional result cache.

Both service caches ride on :class:`repro.cache.LRUCache`; this module
owns the *keys*.  Every key embeds the graph's cache-identity token and
its statistics **version**, so bumping the version (after a mutation)
makes every stale entry unreachable — invalidation by construction, no
cross-cache bookkeeping.  The stale entries then age out of the LRU.

Three key families share one cache comfortably because each starts with
a distinct tag:

- ``("plan", ...)`` — compiled physical plans (eagerly-bound queries);
  built by :meth:`CypherRunner.plan_cache_key`, parameters included.
- ``("prepared", ...)`` — prepared statements; parameters *excluded*,
  the whole point being one plan for all bindings.
- ``("result", ...)`` — materialized row tables, parameters included.
"""

from repro.cache import LRUCache


def prepared_cache_key(runner, query):
    """Cache key for the prepared statement of ``query`` on ``runner``.

    Reuses the runner's plan-key fields (graph token, statistics version,
    planner, strategies, sanitize/verify flags) but swaps the tag and
    drops the parameter values — a prepared plan serves every binding.
    """
    base = runner.plan_cache_key(query, None)
    return ("prepared",) + base[1:]


def result_cache_key(runner, query, parameters=None):
    """Cache key for the materialized rows of one (query, binding)."""
    base = runner.plan_cache_key(query, parameters)
    return ("result",) + base[1:]


class ResultCache:
    """A bounded LRU of materialized row tables.

    Off by default (``maxsize=0`` stores nothing): result caching only
    pays off for repeated identical read-only queries, and every entry
    pins its full result set in memory.  Rows are returned as-is — the
    engine materializes fresh row dicts per execution, so entries are
    effectively immutable as long as callers treat them as such.
    """

    def __init__(self, maxsize=0):
        self._cache = LRUCache(maxsize)

    @property
    def enabled(self):
        return self._cache.maxsize > 0

    @property
    def stats(self):
        return self._cache.stats

    def get(self, runner, query, parameters=None):
        """``(hit, rows)`` — a miss returns ``(False, None)``."""
        if not self.enabled:
            return False, None
        key = result_cache_key(runner, query, parameters)
        sentinel = object()
        rows = self._cache.get(key, sentinel)
        if rows is sentinel:
            return False, None
        return True, rows

    def put(self, runner, query, parameters, rows):
        if self.enabled:
            self._cache.put(result_cache_key(runner, query, parameters), rows)

    def invalidate(self, predicate=None):
        return self._cache.invalidate(predicate)

    def clear(self):
        self._cache.clear()

    def __len__(self):
        return len(self._cache)

"""Service-level observability: counters, gauges and latency histograms.

Everything here is deliberately stdlib-only and lock-protected — the
query service records into these structures from every worker thread.
The histogram uses logarithmic buckets (powers of two over microseconds)
so percentile estimates stay cheap and bounded regardless of how many
queries the service has seen; the reported percentile is the upper bound
of the bucket the rank falls into, i.e. a conservative (pessimistic)
estimate with <2x resolution error.
"""

from repro.locks import named_lock


class LatencyHistogram:
    """Log₂-bucketed latency histogram over seconds.

    Bucket ``i`` covers latencies in ``[2**(i-1), 2**i)`` microseconds;
    64 buckets reach ~2.9 hours, far beyond any deadline this service
    will enforce.

    Deliberately lock-free: every histogram is owned by a
    :class:`ServiceMetrics`, which records into it and snapshots it
    under its own lock — adding a second lock here would just double the
    acquisitions on the query hot path.
    """

    BUCKETS = 64

    def __init__(self):
        # unsynchronized: owner-serialized — ServiceMetrics mutates and
        # reads every histogram under ServiceMetrics._lock
        self._counts = [0] * self.BUCKETS  # unsynchronized: owner-serialized
        self.count = 0  # unsynchronized: owner-serialized
        self.total = 0.0  # unsynchronized: owner-serialized
        self.max = 0.0  # unsynchronized: owner-serialized

    def record(self, seconds):
        micros = seconds * 1e6
        index = 0
        # smallest i with 2**i > micros, clamped to the last bucket
        while index < self.BUCKETS - 1 and (1 << index) <= micros:
            index += 1
        self._counts[index] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def percentile(self, fraction):
        """Upper-bound estimate of the ``fraction`` percentile, in seconds."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(fraction * self.count + 0.5))
        seen = 0
        for index, bucket in enumerate(self._counts):
            seen += bucket
            if seen >= rank:
                return min((1 << index) / 1e6, self.max)
        return self.max

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def snapshot(self):
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.percentile(0.50),
            "p95_s": self.percentile(0.95),
            "p99_s": self.percentile(0.99),
            "max_s": self.max,
        }


class ServiceMetrics:
    """All counters and gauges one :class:`QueryService` exposes.

    ``queue_depth`` counts admitted queries not yet running; ``in_flight``
    counts queries currently executing on a worker.  Latency is recorded
    from submission to completion, so it includes queueing — that is the
    latency a client observes.
    """

    def __init__(self):
        self._lock = named_lock("service.metrics")
        self.submitted = 0  # guarded-by: _lock
        self.rejected = 0  # guarded-by: _lock
        self.completed = 0  # guarded-by: _lock
        self.failed = 0  # guarded-by: _lock
        self.timeouts = 0  # guarded-by: _lock
        self.queue_depth = 0  # guarded-by: _lock
        self.in_flight = 0  # guarded-by: _lock
        self.max_queue_depth = 0  # guarded-by: _lock
        self.max_in_flight = 0  # guarded-by: _lock
        self.latency = LatencyHistogram()  # guarded-by: _lock
        self.queue_wait = LatencyHistogram()  # guarded-by: _lock

    # Lifecycle hooks (called by the service) --------------------------------

    def on_submit(self):
        with self._lock:
            self.submitted += 1
            self.queue_depth += 1
            if self.queue_depth > self.max_queue_depth:
                self.max_queue_depth = self.queue_depth

    def on_reject(self):
        with self._lock:
            self.rejected += 1

    def on_start(self, queue_seconds):
        with self._lock:
            self.queue_depth -= 1
            self.in_flight += 1
            if self.in_flight > self.max_in_flight:
                self.max_in_flight = self.in_flight
            self.queue_wait.record(queue_seconds)

    def on_finish(self, latency_seconds, outcome):
        """``outcome`` is one of ``"completed"``, ``"failed"``, ``"timeout"``."""
        with self._lock:
            self.in_flight -= 1
            self.latency.record(latency_seconds)
            if outcome == "completed":
                self.completed += 1
            elif outcome == "timeout":
                self.timeouts += 1
            else:
                self.failed += 1

    def on_abandon(self):
        """An admitted query never started (service shut down first)."""
        with self._lock:
            self.queue_depth -= 1

    # Reporting ---------------------------------------------------------------

    def snapshot(self, plan_cache=None, result_cache=None):
        with self._lock:
            data = {
                "submitted": self.submitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "timeouts": self.timeouts,
                "queue_depth": self.queue_depth,
                "in_flight": self.in_flight,
                "max_queue_depth": self.max_queue_depth,
                "max_in_flight": self.max_in_flight,
                "latency": self.latency.snapshot(),
                "queue_wait": self.queue_wait.snapshot(),
            }
        if plan_cache is not None:
            data["plan_cache"] = plan_cache.stats.snapshot()
            data["plan_cache"]["size"] = len(plan_cache)
        if result_cache is not None:
            data["result_cache"] = result_cache.stats.snapshot()
            data["result_cache"]["size"] = len(result_cache)
        return data

"""The serving layer: a concurrent query service over the Cypher engine.

Gradoop's pattern matching runs inside long-lived distributed analytics
jobs; this package reproduces the *service* half of that story on the
simulated runtime — named graphs (:mod:`registry`), prepared statements
and shared plan/result caches (:mod:`cache` + the engine's
:class:`~repro.engine.PreparedStatement`), a thread-pooled executor with
fast-fail admission control and cooperative per-query deadlines
(:mod:`service`), service metrics (:mod:`metrics`), a stdlib HTTP/JSON
front end (:mod:`protocol`) and a differentially-verified load generator
(:mod:`bench`).
"""

from .cache import ResultCache, prepared_cache_key, result_cache_key
from .metrics import LatencyHistogram, ServiceMetrics
from .protocol import QueryHTTPServer, serve_in_thread
from .registry import GraphRegistry, RegisteredGraph, UnknownGraphError
from .service import (
    AdmissionError,
    CostAdmissionError,
    PreparedHandle,
    QueryResult,
    QueryService,
    ServiceClosedError,
)

__all__ = [
    "AdmissionError",
    "CostAdmissionError",
    "GraphRegistry",
    "LatencyHistogram",
    "PreparedHandle",
    "QueryHTTPServer",
    "QueryResult",
    "QueryService",
    "RegisteredGraph",
    "ResultCache",
    "ServiceClosedError",
    "ServiceMetrics",
    "UnknownGraphError",
    "prepared_cache_key",
    "result_cache_key",
    "serve_in_thread",
]

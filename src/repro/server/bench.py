"""Closed-loop multi-client load generator for :class:`QueryService`.

``repro bench-serve`` drives the full LDBC workload (Q1–Q6, the
operational queries as ``$firstName``-parameterized prepared statements)
from N concurrent client threads against one in-process service, and
*differentially verifies* every concurrent result against a serial
:class:`CypherRunner` baseline computed up front: each result's rows are
canonicalized into a multiset and compared — any mismatch is cross-query
corruption and fails the bench.

Besides throughput/latency, the bench demonstrates the two protection
mechanisms end to end: a deliberately slow query with a tiny deadline
must time out (and the worker must come back), and a deliberately
undersized service must fast-fail a submission with
:class:`AdmissionError`.
"""

import threading
import time
from collections import Counter

from repro.dataflow import ExecutionEnvironment, QueryTimeout
from repro.engine import CypherRunner, GraphStatistics
from repro.harness.queries import ANALYTICAL_QUERIES, OPERATIONAL_QUERIES
from repro.ldbc import LDBCGenerator
from repro.locks import named_rlock

from .registry import GraphRegistry
from .service import AdmissionError, QueryService

GRAPH_NAME = "ldbc"

#: the slowest evaluation query (triangle enumeration) — used to provoke
#: a deadline timeout
SLOW_QUERY = ANALYTICAL_QUERIES["Q5"]


def parameterized(template):
    """``'{firstName}'`` harness templates as ``$firstName`` queries."""
    return template.replace("'{firstName}'", "$firstName")


def rows_multiset(rows):
    """Order-independent canonical form of a row table.

    ``repr`` canonicalizes engine values (GradoopIds, lists) the same way
    on both sides of the comparison, so the multisets are directly
    comparable across serial and concurrent executions.
    """
    return Counter(
        tuple(sorted((key, repr(value)) for key, value in row.items()))
        for row in rows
    )


class WorkItem:
    """One (query, binding) pair of the bench workload."""

    __slots__ = ("name", "query", "parameters")

    def __init__(self, name, query, parameters):
        self.name = name
        self.query = query
        self.parameters = parameters


def build_workload(dataset, selectivities=("high", "medium")):
    """Q1–Q3 per selectivity (parameterized) plus Q4–Q6 (constant)."""
    items = []
    for name in sorted(OPERATIONAL_QUERIES):
        query = parameterized(OPERATIONAL_QUERIES[name])
        for selectivity in selectivities:
            items.append(WorkItem(
                "%s/%s" % (name, selectivity),
                query,
                {"firstName": dataset.first_name(selectivity)},
            ))
    for name in sorted(ANALYTICAL_QUERIES):
        items.append(WorkItem(name, ANALYTICAL_QUERIES[name], None))
    return items


class BenchReport:
    """Everything ``repro bench-serve`` measured, with pass/fail flags.

    Client threads record through the ``record_*`` methods, which take
    the report's own (reentrant) lock — the report owns its counters'
    consistency instead of leaning on every caller to wrap accesses in
    an external mutex.  The single-writer phase fields (``clients``,
    ``deadline_enforced``, ...) are set by the main bench thread before
    the clients start or after they join.
    """

    def __init__(self):
        self._lock = named_rlock("bench.report")
        self.clients = 0  # unsynchronized: main bench thread only
        self.rounds = 0  # unsynchronized: main bench thread only
        self.operations = 0  # guarded-by: _lock
        self.duration_seconds = 0.0  # unsynchronized: main bench thread only
        self.corruptions = []  # guarded-by: _lock
        self.errors = []  # guarded-by: _lock
        self.rejected_retries = 0  # guarded-by: _lock
        self.per_query = Counter()  # guarded-by: _lock
        self.deadline_enforced = False  # unsynchronized: main bench thread only
        self.recovered_after_timeout = False  # unsynchronized: main thread only
        self.admission_enforced = False  # unsynchronized: main thread only
        self.service_metrics = {}  # unsynchronized: main bench thread only

    # Recording (called from client threads) ----------------------------------

    def record_rejected_retry(self):
        with self._lock:
            self.rejected_retries += 1

    def record_error(self, message):
        with self._lock:
            self.errors.append(message)

    def record_operation(self, name):
        with self._lock:
            self.operations += 1
            self.per_query[name] += 1

    def record_corruption(self, detail):
        with self._lock:
            self.corruptions.append(detail)

    # Reporting ---------------------------------------------------------------

    @property
    def throughput(self):
        with self._lock:
            if self.duration_seconds <= 0:
                return 0.0
            return self.operations / self.duration_seconds

    @property
    def plan_cache_hits(self):
        return self.service_metrics.get("plan_cache", {}).get("hits", 0)

    @property
    def passed(self):
        with self._lock:
            return (
                not self.corruptions
                and not self.errors
                and self.deadline_enforced
                and self.recovered_after_timeout
                and self.admission_enforced
                and self.plan_cache_hits > 0
            )

    def to_dict(self):
        with self._lock:
            return {
                "clients": self.clients,
                "rounds": self.rounds,
                "operations": self.operations,
                "duration_seconds": round(self.duration_seconds, 3),
                "throughput_qps": round(self.throughput, 2),
                "corruptions": len(self.corruptions),
                "errors": self.errors[:10],
                "rejected_retries": self.rejected_retries,
                "per_query": dict(self.per_query),
                "deadline_enforced": self.deadline_enforced,
                "recovered_after_timeout": self.recovered_after_timeout,
                "admission_enforced": self.admission_enforced,
                "service": self.service_metrics,
                "passed": self.passed,
            }

    def summary(self):
        with self._lock:
            return self._summary_locked()

    def _summary_locked(self):  # requires-lock: _lock
        latency = self.service_metrics.get("latency", {})
        plan = self.service_metrics.get("plan_cache", {})
        lines = [
            "bench-serve: %d clients x %d rounds, %d ops in %.2fs "
            "(%.1f q/s)" % (
                self.clients, self.rounds, self.operations,
                self.duration_seconds, self.throughput,
            ),
            "  latency    p50 %.1f ms   p95 %.1f ms   p99 %.1f ms   "
            "max %.1f ms" % (
                latency.get("p50_s", 0.0) * 1e3,
                latency.get("p95_s", 0.0) * 1e3,
                latency.get("p99_s", 0.0) * 1e3,
                latency.get("max_s", 0.0) * 1e3,
            ),
            "  plan cache %d hits / %d misses (%.0f%% hit rate)" % (
                plan.get("hits", 0), plan.get("misses", 0),
                plan.get("hit_rate", 0.0) * 100,
            ),
            "  correctness: %d corruptions, %d errors (multiset-checked "
            "against serial baseline)" % (
                len(self.corruptions), len(self.errors),
            ),
            "  deadline enforced: %s   recovered after timeout: %s   "
            "admission fast-fail: %s" % (
                self.deadline_enforced, self.recovered_after_timeout,
                self.admission_enforced,
            ),
            "  verdict: %s" % ("PASS" if self.passed else "FAIL"),
        ]
        for name in sorted(self.per_query):
            lines.append("    %-12s %4d ops" % (name, self.per_query[name]))
        return "\n".join(lines)


def run_bench(
    clients=8,
    rounds=2,
    scale_factor=0.03,
    seed=11,
    timeout=60.0,
    result_cache_size=0,
    progress=None,
):
    """Build the dataset, run all phases, return a :class:`BenchReport`."""

    def say(message):
        if progress is not None:
            progress(message)

    report = BenchReport()
    report.clients = clients
    report.rounds = rounds

    say("generating LDBC graph (scale %s, seed %d)..." % (scale_factor, seed))
    dataset = LDBCGenerator(scale_factor=scale_factor, seed=seed).generate()
    environment = ExecutionEnvironment()
    graph = dataset.to_logical_graph(environment)
    statistics = GraphStatistics.from_graph(graph)
    workload = build_workload(dataset)

    say("computing serial baseline (%d workload items)..." % len(workload))
    baseline_runner = CypherRunner(graph, statistics=statistics)
    reference = {}
    for item in workload:
        rows = baseline_runner.execute_table(item.query, item.parameters)
        reference[item.name] = rows_multiset(rows)

    registry = GraphRegistry()
    registry.register(GRAPH_NAME, graph, statistics)
    service = QueryService(
        registry,
        max_concurrency=clients,
        max_queue=clients * 2,
        result_cache_size=result_cache_size,
    )

    # Phase 1: concurrent load with differential verification -----------------
    say("phase 1: %d clients, %d rounds over %d items..." % (
        clients, rounds, len(workload)
    ))

    def client_loop(client_index):
        for round_index in range(rounds):
            for offset in range(len(workload)):
                # stagger the schedule per client so the same query is
                # still executed concurrently by *different* clients at
                # *different* times — more interleavings, same coverage
                item = workload[(offset + client_index) % len(workload)]
                try:
                    result = service.execute(
                        GRAPH_NAME, item.query,
                        parameters=item.parameters, timeout=timeout,
                    )
                except AdmissionError:
                    report.record_rejected_retry()
                    time.sleep(0.005)
                    continue
                except Exception as error:  # noqa: BLE001 — reported
                    report.record_error(
                        "%s: %s: %s" % (
                            item.name, type(error).__name__, error,
                        )
                    )
                    continue
                observed = rows_multiset(result.rows)
                report.record_operation(item.name)
                if observed != reference[item.name]:
                    report.record_corruption({
                        "query": item.name,
                        "client": client_index,
                        "round": round_index,
                        "expected_rows": sum(reference[item.name].values()),
                        "observed_rows": sum(observed.values()),
                    })

    started = time.perf_counter()
    threads = [
        threading.Thread(target=client_loop, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration_seconds = time.perf_counter() - started

    # Phase 2: a slow query under a tiny deadline must time out ---------------
    say("phase 2: deadline enforcement...")
    # measure the slow query warm (its plan is cached from phase 1), then
    # demand a deadline well inside that — scale-independent
    probe_started = time.perf_counter()
    service.execute(GRAPH_NAME, SLOW_QUERY, timeout=timeout)
    warm_seconds = time.perf_counter() - probe_started
    deadline = max(min(warm_seconds / 10.0, 0.005), 0.0002)
    try:
        service.execute(GRAPH_NAME, SLOW_QUERY, timeout=deadline)
    except QueryTimeout:
        report.deadline_enforced = True
    except Exception as error:  # noqa: BLE001 — reported
        report.record_error(
            "deadline phase: %s: %s" % (type(error).__name__, error)
        )
    # ...and the worker it ran on must be usable again afterwards
    try:
        probe = service.execute(
            GRAPH_NAME,
            parameterized(OPERATIONAL_QUERIES["Q1"]),
            parameters={"firstName": dataset.first_name("high")},
            timeout=timeout,
        )
        report.recovered_after_timeout = (
            rows_multiset(probe.rows) == reference["Q1/high"]
        )
    except Exception as error:  # noqa: BLE001 — reported
        report.record_error(
            "recovery probe: %s: %s" % (type(error).__name__, error)
        )

    # Phase 3: a saturated service must fast-fail, not queue unbounded --------
    say("phase 3: admission control...")
    tiny = QueryService(registry, max_concurrency=1, max_queue=0)
    # occupancy is released only when the worker *finishes* a query, so
    # flooding a one-slot service with back-to-back submissions (each a
    # few microseconds apart, each query taking milliseconds) must see a
    # full service within a few attempts — the occasional lucky gap where
    # the worker drains between two submits just means one more try
    pending = []
    try:
        for _ in range(50):
            try:
                pending.append(
                    tiny.submit(GRAPH_NAME, SLOW_QUERY, timeout=timeout)
                )
            except AdmissionError:
                report.admission_enforced = True
                break
        else:
            report.record_error(
                "admission phase: 50 back-to-back submissions were all "
                "admitted by a 1-slot service"
            )
    finally:
        for future in pending:
            try:
                future.result()
            except Exception:  # noqa: BLE001 — drained, not reported
                pass
        tiny.close(wait=True)

    report.service_metrics = service.metrics_snapshot()
    service.close(wait=True)
    return report

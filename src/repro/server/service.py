"""The concurrent query service: admission control, deadlines, caching.

:class:`QueryService` turns the single-threaded engine into a shared
service.  Queries run on a bounded thread pool; admission is *fast-fail*
— when ``max_concurrency`` workers are busy and ``max_queue`` queries
wait, a new submission raises :class:`AdmissionError` immediately
instead of stacking unbounded work (the client sees back-pressure, the
service keeps its latency profile).  Every query runs under its own
:class:`~repro.dataflow.CancellationToken`; operators poll it at batch
boundaries, so a deadline cancels a running query cooperatively within
one batch of work and frees the worker.

Concurrency model, in one paragraph: compiled plans are *immutable* DAG
descriptions — each execution calls ``environment.run`` which builds a
fresh per-run dataset cache and threads a per-job scope (metrics +
cancellation) through thread-local state, so any number of workers can
execute the same cached plan simultaneously without sharing mutable
state.  The two exceptions are serialized explicitly: prepared
statements share one mutable parameter binding (the statement's RLock
serializes executions per statement) and compilation mutates runner
bookkeeping (one compile lock per runner).
"""

import itertools
import time
from concurrent.futures import ThreadPoolExecutor

from repro.cache import LRUCache
from repro.dataflow.cancellation import CancellationToken, QueryTimeout
from repro.engine import CypherRunner, GreedyPlanner
from repro.engine.runner import _graph_cache_token
from repro.locks import named_lock

from .cache import ResultCache, prepared_cache_key
from .metrics import ServiceMetrics
from .registry import GraphRegistry

#: plans are small (operator trees), so the shared default can be generous
DEFAULT_PLAN_CACHE_SIZE = 256


class AdmissionError(RuntimeError):
    """The service is saturated; the query was rejected, not queued."""


class CostAdmissionError(AdmissionError):
    """The query's statically certified cost exceeds the service bound.

    Raised *before any operator executes*: the static cost-bound analyzer
    (:mod:`repro.analysis.costbound`) proved that some operator in the
    plan may emit more rows than the service's ``max_cost_bound`` allows
    for any data consistent with the graph statistics.  Carries the
    :class:`~repro.analysis.CostCertificate` and the ``S405`` diagnostic
    naming the offending operator.
    """

    def __init__(self, certificate, diagnostic):
        super().__init__(str(diagnostic))
        self.certificate = certificate
        self.diagnostic = diagnostic


class ServiceClosedError(RuntimeError):
    """The service has been shut down and accepts no new queries."""


class QueryResult:
    """Everything the service reports about one completed query."""

    __slots__ = (
        "graph",
        "query",
        "parameters",
        "rows",
        "elapsed_seconds",
        "queue_seconds",
        "simulated_seconds",
        "plan_cache_hit",
        "result_cache_hit",
        "prepared",
    )

    def __init__(self, graph, query, parameters, rows, elapsed_seconds,
                 queue_seconds, simulated_seconds, plan_cache_hit,
                 result_cache_hit, prepared):
        self.graph = graph
        self.query = query
        self.parameters = parameters
        self.rows = rows
        self.elapsed_seconds = elapsed_seconds
        self.queue_seconds = queue_seconds
        self.simulated_seconds = simulated_seconds
        self.plan_cache_hit = plan_cache_hit
        self.result_cache_hit = result_cache_hit
        self.prepared = prepared

    @property
    def row_count(self):
        return len(self.rows)

    def to_dict(self):
        return {
            "graph": self.graph,
            "rows": self.rows,
            "row_count": self.row_count,
            "elapsed_seconds": self.elapsed_seconds,
            "queue_seconds": self.queue_seconds,
            "simulated_seconds": self.simulated_seconds,
            "plan_cache_hit": self.plan_cache_hit,
            "result_cache_hit": self.result_cache_hit,
            "prepared": self.prepared,
        }

    def __repr__(self):
        return "QueryResult(%d rows, %.3fs, plan_hit=%s)" % (
            self.row_count, self.elapsed_seconds, self.plan_cache_hit,
        )


class PreparedHandle:
    """What :meth:`QueryService.prepare` returns: id + declared parameters."""

    __slots__ = ("statement_id", "graph", "parameter_names", "plan_cache_hit")

    def __init__(self, statement_id, graph, parameter_names, plan_cache_hit):
        self.statement_id = statement_id
        self.graph = graph
        self.parameter_names = parameter_names
        self.plan_cache_hit = plan_cache_hit

    def to_dict(self):
        return {
            "statement_id": self.statement_id,
            "graph": self.graph,
            "parameter_names": list(self.parameter_names),
            "plan_cache_hit": self.plan_cache_hit,
        }


class QueryService:
    """A thread-pooled Cypher query executor over a graph registry."""

    def __init__(
        self,
        registry=None,
        max_concurrency=4,
        max_queue=16,
        default_timeout=None,
        planner_cls=GreedyPlanner,
        vertex_strategy=None,
        edge_strategy=None,
        plan_cache_size=DEFAULT_PLAN_CACHE_SIZE,
        result_cache_size=0,
        lint=True,
        verify_plans=False,
        max_cost_bound=None,
        prune=False,
        columnar=None,
    ):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.registry = registry if registry is not None else GraphRegistry()
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self.default_timeout = default_timeout
        self.planner_cls = planner_cls
        self.vertex_strategy = vertex_strategy
        self.edge_strategy = edge_strategy
        self.lint = lint
        self.verify_plans = verify_plans
        #: statically certified admission control: a query whose proven
        #: worst-case per-operator output cardinality exceeds this bound
        #: is rejected with :class:`CostAdmissionError` at submit time,
        #: before any operator executes.  ``None`` disables the check.
        self.max_cost_bound = max_cost_bound
        #: liveness-driven dead-byte pruning for every runner's plans
        self.prune = prune
        #: columnar chunk-kernel execution for every runner (``None``
        #: inherits the environment default; sanitized runs stay per-record)
        self.columnar = columnar
        #: one LRU shared by every runner the service creates; holds both
        #: ("plan", ...) entries and ("prepared", ...) statements
        self.plan_cache = LRUCache(plan_cache_size, name="cache.plan")
        #: materialized rows; off unless result_cache_size > 0
        self.result_cache = ResultCache(result_cache_size)
        self.metrics = ServiceMetrics()
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="repro-query"
        )
        self._capacity = max_concurrency + max_queue
        self._admission_lock = named_lock("service.admission")
        self._occupancy = 0  # guarded-by: _admission_lock
        self._closed = False  # guarded-by: _admission_lock
        # (graph name, graph token) -> CypherRunner; a replaced graph gets
        # a new token and therefore a fresh runner
        self._runner_lock = named_lock("service.runner")
        self._runners = {}  # guarded-by: _runner_lock
        self._compile_locks = {}  # guarded-by: _runner_lock
        self._statement_lock = named_lock("service.statement")
        self._statements = {}  # guarded-by: _statement_lock
        # itertools.count.__next__ is atomic under the GIL
        self._statement_ids = itertools.count(1)  # unsynchronized: atomic count

    # Graph management --------------------------------------------------------

    def register_graph(self, name, graph, statistics=None):
        return self.registry.register(name, graph, statistics)

    def _runner(self, entry):
        key = (entry.name, _graph_cache_token(entry.graph))
        with self._runner_lock:
            runner = self._runners.get(key)
            if runner is None:
                runner = CypherRunner(
                    entry.graph,
                    statistics=entry.statistics,
                    planner_cls=self.planner_cls,
                    vertex_strategy=self.vertex_strategy,
                    edge_strategy=self.edge_strategy,
                    lint=self.lint,
                    verify_plans=self.verify_plans,
                    plan_cache=self.plan_cache,
                    prune=self.prune,
                    columnar=self.columnar,
                )
                self._runners[key] = runner
                self._compile_locks[key] = named_lock("service.compile")
            return runner, self._compile_locks[key]

    # Submission --------------------------------------------------------------

    def submit(self, graph, query, parameters=None, timeout=None,
               prepared=False):
        """Admit a query and return its ``Future`` (non-blocking).

        Raises :class:`AdmissionError` *immediately* when
        ``max_concurrency + max_queue`` queries are already in the
        service — fast-fail back-pressure instead of unbounded queueing.
        """
        with self._admission_lock:
            if self._closed:
                raise ServiceClosedError("query service is shut down")
            if self._occupancy >= self._capacity:
                self.metrics.on_reject()
                raise AdmissionError(
                    "service saturated: %d queries in flight or queued "
                    "(capacity %d = %d workers + %d queue slots)"
                    % (self._occupancy, self._capacity,
                       self.max_concurrency, self.max_queue)
                )
            self._occupancy += 1
        self.metrics.on_submit()
        submitted = time.perf_counter()
        try:
            return self._executor.submit(
                self._run, graph, query, parameters, timeout, prepared,
                submitted,
            )
        except BaseException:
            self.metrics.on_abandon()
            with self._admission_lock:
                self._occupancy -= 1
            raise

    def execute(self, graph, query, parameters=None, timeout=None,
                prepared=False):
        """Admit, run and wait: the blocking convenience wrapper."""
        return self.submit(
            graph, query, parameters=parameters, timeout=timeout,
            prepared=prepared,
        ).result()

    # Prepared statements -----------------------------------------------------

    def prepare(self, graph, query):
        """Compile ``query`` once; returns a :class:`PreparedHandle`.

        The statement itself lives in the shared plan cache, so preparing
        the same query on the same graph twice returns a second handle to
        the *same* compiled plan (``plan_cache_hit=True``).
        """
        entry = self.registry.get(graph)
        runner, compile_lock = self._runner(entry)
        statement, hit = self._prepared_statement(runner, compile_lock, query)
        statement_id = "stmt-%d" % next(self._statement_ids)
        with self._statement_lock:
            self._statements[statement_id] = (graph, query)
        return PreparedHandle(
            statement_id, graph, statement.parameter_names, hit
        )

    def execute_prepared(self, statement_id, parameters=None, timeout=None):
        """Run a previously prepared statement with fresh bindings."""
        try:
            with self._statement_lock:
                graph, query = self._statements[statement_id]
        except KeyError:
            raise KeyError("unknown statement id %r" % statement_id)
        return self.execute(
            graph, query, parameters=parameters, timeout=timeout,
            prepared=True,
        )

    def _prepared_statement(self, runner, compile_lock, query):
        """``(statement, was_cached)`` from the shared plan cache."""
        key = prepared_cache_key(runner, query)
        statement = self.plan_cache.get(key)
        if statement is not None:
            return statement, True
        with compile_lock:
            statement = self.plan_cache.get(key)
            if statement is not None:
                return statement, True
            statement = runner.prepare(query)
            self.plan_cache.put(key, statement)
            return statement, False

    # Execution (worker side) -------------------------------------------------

    def _run(self, graph, query, parameters, timeout, prepared, submitted):
        started = time.perf_counter()
        self.metrics.on_start(started - submitted)
        outcome = "failed"
        try:
            result = self._execute_query(
                graph, query, parameters, timeout, prepared, submitted,
                started,
            )
            outcome = "completed"
            return result
        except QueryTimeout:
            outcome = "timeout"
            raise
        finally:
            self.metrics.on_finish(time.perf_counter() - submitted, outcome)
            with self._admission_lock:
                self._occupancy -= 1

    def _execute_query(self, graph, query, parameters, timeout, prepared,
                       submitted, started):
        entry = self.registry.get(graph)
        runner, compile_lock = self._runner(entry)
        if timeout is None:
            timeout = self.default_timeout
        token = (
            CancellationToken.with_timeout(timeout)
            if timeout is not None
            else CancellationToken()
        )
        # the deadline may already have passed while the query queued
        token.poll()
        queue_seconds = started - submitted

        hit, rows = self.result_cache.get(runner, query, parameters)
        if hit:
            return QueryResult(
                graph, query, parameters, rows,
                elapsed_seconds=time.perf_counter() - submitted,
                queue_seconds=queue_seconds,
                simulated_seconds=0.0,
                plan_cache_hit=True,
                result_cache_hit=True,
                prepared=False,
            )

        environment = entry.graph.environment
        use_prepared = bool(prepared or parameters or "$" in query)
        if use_prepared:
            statement, plan_hit = self._prepared_statement(
                runner, compile_lock, query
            )
            self._admit_cost(statement.cost_certificate)
            embeddings, meta, job_metrics = statement.run(
                parameters, cancellation=token
            )
            rows = runner.build_rows(statement.handler, embeddings, meta)
        else:
            # __contains__ does not touch hit/miss stats, so probing here
            # keeps the plan-hit flag accurate without double counting
            plan_hit = runner.plan_cache_key(query, parameters) in (
                self.plan_cache
            )
            with compile_lock:
                handler, root = runner.compile(query, parameters)
            if self.max_cost_bound is not None:
                from repro.analysis.costbound import certify_plan

                self._admit_cost(certify_plan(root, runner.statistics))
            with environment.job(
                "service:%s" % graph, cancellation=token
            ) as job_metrics:
                embeddings = root.evaluate().collect()
            rows = runner.build_rows(handler, embeddings, root.meta)

        self.result_cache.put(runner, query, parameters, rows)
        return QueryResult(
            graph, query, parameters, rows,
            elapsed_seconds=time.perf_counter() - submitted,
            queue_seconds=queue_seconds,
            simulated_seconds=environment.simulated_runtime_seconds(
                job_metrics
            ),
            plan_cache_hit=plan_hit,
            result_cache_hit=False,
            prepared=use_prepared,
        )

    def _admit_cost(self, certificate):
        """Reject a plan whose certified bound exceeds the service limit."""
        if self.max_cost_bound is None or certificate is None:
            return
        diagnostic = certificate.diagnostic(self.max_cost_bound)
        if diagnostic is not None:
            self.metrics.on_reject()
            raise CostAdmissionError(certificate, diagnostic)

    # Introspection / lifecycle ----------------------------------------------

    def metrics_snapshot(self):
        snapshot = self.metrics.snapshot(
            plan_cache=self.plan_cache,
            result_cache=(
                self.result_cache._cache if self.result_cache.enabled else None
            ),
        )
        snapshot["graphs"] = self.registry.names()
        snapshot["capacity"] = {
            "max_concurrency": self.max_concurrency,
            "max_queue": self.max_queue,
        }
        with self._statement_lock:
            snapshot["statements"] = len(self._statements)
        return snapshot

    @property
    def closed(self):
        with self._admission_lock:
            return self._closed

    def close(self, wait=True):
        """Stop admitting queries; optionally wait for in-flight ones."""
        with self._admission_lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=wait)
        # worker-process pools of the served graphs outlive individual
        # queries; tear them down with the service so ``serve`` exits
        # without leaking processes or shared-memory segments
        for name in self.registry.names():
            try:
                entry = self.registry.get(name)
            except Exception:  # racing remove(); nothing left to stop
                continue
            entry.graph.environment.shutdown_workers()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

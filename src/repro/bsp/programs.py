"""Classic vertex-centric programs."""

from .pregel import VertexProgram


class PageRank(VertexProgram):
    """Synchronous PageRank over outgoing edges.

    Runs a fixed number of supersteps (bounded by the runtime); dangling
    vertices distribute nothing, matching the simple Gelly formulation.
    Rank contributions are summed by a combiner before delivery.
    """

    combiner = staticmethod(lambda payloads: [sum(payloads)])

    def __init__(self, damping=0.85, vertex_count=None):
        self.damping = damping
        self.vertex_count = vertex_count

    def initial_state(self, vertex, adjacency):
        return 1.0

    def compute(self, ctx, vertex, adjacency, state, messages):
        if ctx.superstep == 0:
            rank = state
        else:
            incoming = sum(messages) if messages else 0.0
            rank = (1.0 - self.damping) + self.damping * incoming
        out_edges = [entry for entry in adjacency if entry[2]]
        if out_edges:
            share = rank / len(out_edges)
            for _, neighbour, _ in out_edges:
                ctx.send(neighbour, share)
        return rank


class BSPConnectedComponents(VertexProgram):
    """Minimum-label propagation; converges when no labels change."""

    combiner = staticmethod(lambda payloads: [min(payloads)])

    def initial_state(self, vertex, adjacency):
        return vertex.id.value

    def compute(self, ctx, vertex, adjacency, state, messages):
        candidate = min(messages) if messages else state
        if ctx.superstep == 0 or candidate < state:
            new_state = min(state, candidate)
            for _, neighbour, _ in adjacency:
                ctx.send(neighbour, new_state)
            return new_state
        return state


class SingleSourceShortestPaths(VertexProgram):
    """Unweighted SSSP from a source vertex (Pregel's canonical example).

    State is the best known hop distance (``None`` = unreached); vertices
    relax their neighbours whenever their own distance improves.
    """

    combiner = staticmethod(lambda payloads: [min(payloads)])

    def __init__(self, source_id):
        self.source_value = source_id.value

    def initial_state(self, vertex, adjacency):
        return 0 if vertex.id.value == self.source_value else None

    def compute(self, ctx, vertex, adjacency, state, messages):
        candidate = min(messages) if messages else None
        improved = False
        if ctx.superstep == 0:
            improved = state == 0
            new_state = state
        elif candidate is not None and (state is None or candidate < state):
            new_state = candidate
            improved = True
        else:
            new_state = state
        if improved:
            for _, neighbour, outgoing in adjacency:
                if outgoing:
                    ctx.send(neighbour, new_state + 1)
        return new_state

"""A simplified PSgL-style pattern matcher on the Pregel runtime.

PSgL [Shao et al., SIGMOD'14] lists subgraphs by forwarding partial
embeddings between vertices: each superstep expands one query edge, the
partial travelling to the data vertex that owns the edges needed next.
Differences from the join-based engine that make this an interesting
architectural baseline (paper §5 related work):

* intermediate results are *messages*, not relational embeddings — their
  volume shows up as Pregel message traffic;
* predicates on a query vertex are checked by the receiving data vertex;
* there is no planner: query edges are expanded in an order that keeps
  the pattern connected.

Restrictions: connected patterns, fixed-length edges only (variable-length
paths would need nested traversals), same morphism semantics as the
engine.
"""

from repro.cypher.predicates import evaluate_cnf
from repro.cypher.query_graph import QueryHandler
from repro.engine.embedding import ElementBindings
from repro.engine.morphism import (
    DEFAULT_EDGE_STRATEGY,
    DEFAULT_VERTEX_STRATEGY,
    MatchStrategy,
)
from repro.engine.naive import _NaiveBindings, canonical_row

from .pregel import PregelRuntime, VertexProgram


class PSgLError(ValueError):
    pass


def _expansion_order(handler):
    """Order query edges so each one touches an already-bound vertex."""
    edges = list(handler.edges.values())
    if not edges:
        raise PSgLError("PSgL needs at least one query edge")
    if any(edge.is_variable_length for edge in edges):
        raise PSgLError("variable-length paths are not supported by PSgL")
    ordered = [edges[0]]
    bound = {edges[0].source, edges[0].target}
    remaining = edges[1:]
    while remaining:
        for edge in remaining:
            if edge.source in bound or edge.target in bound:
                ordered.append(edge)
                bound.update((edge.source, edge.target))
                remaining.remove(edge)
                break
        else:
            raise PSgLError("pattern is not connected")
    return ordered


class _PSgLProgram(VertexProgram):
    """Partial embeddings travel as messages; one query edge per step.

    A partial is ``(bindings, used_edges)`` with ``bindings`` a tuple over
    the query-vertex order (``None`` = unbound).
    """

    def __init__(self, handler, vertex_strategy, edge_strategy, vertices_by_id):
        self.handler = handler
        self.vertices_by_id = vertices_by_id  # replicated lookup, like
        # PSgL's label index: lets the expanding vertex check the far
        # endpoint's predicate before forwarding the partial
        self.order = _expansion_order(handler)
        self.query_vertices = list(handler.vertices)
        self.vertex_index = {v: i for i, v in enumerate(self.query_vertices)}
        self.anchor = self.order[0].source
        self.vertex_iso = vertex_strategy is MatchStrategy.ISOMORPHISM
        self.edge_iso = edge_strategy is MatchStrategy.ISOMORPHISM

    def initial_state(self, vertex, adjacency):
        return None  # PSgL keeps no per-vertex state

    def _vertex_ok(self, variable, vertex):
        return evaluate_cnf(
            self.handler.vertices[variable].predicates,
            ElementBindings(variable, vertex),
        )

    def _edge_ok(self, variable, edge):
        return evaluate_cnf(
            self.handler.edges[variable].predicates,
            ElementBindings(variable, edge),
        )

    def compute(self, ctx, vertex, adjacency, state, messages):
        if ctx.superstep == 0:
            if self._vertex_ok(self.anchor, vertex):
                bindings = [None] * len(self.query_vertices)
                bindings[self.vertex_index[self.anchor]] = vertex.id.value
                self._advance(ctx, vertex, adjacency, (tuple(bindings), ()), 0)
            return state
        for partial in messages:
            self._advance(ctx, vertex, adjacency, partial, ctx.superstep)
        return state

    # ------------------------------------------------------------------

    def _advance(self, ctx, vertex, adjacency, partial, step):
        """Expand query edge ``step`` from ``vertex`` (its local edges)."""
        if step >= len(self.order):
            ctx.emit(partial)
            return
        query_edge = self.order[step]
        bindings, used_edges = partial
        source_binding = bindings[self.vertex_index[query_edge.source]]
        target_binding = bindings[self.vertex_index[query_edge.target]]

        # the partial must currently sit at a bound endpoint of this edge
        here = vertex.id.value
        for edge, neighbour, outgoing in adjacency:
            if query_edge.undirected:
                if source_binding == here:
                    far_variable = query_edge.target
                elif target_binding == here:
                    far_variable = query_edge.source
                else:
                    continue
            else:
                if source_binding == here and outgoing:
                    far_variable = query_edge.target
                elif target_binding == here and not outgoing:
                    far_variable = query_edge.source
                else:
                    continue
            if not self._edge_ok(query_edge.variable, edge):
                continue
            if self.edge_iso and edge.id.value in used_edges:
                continue
            far_index = self.vertex_index[far_variable]
            existing = bindings[far_index]
            if existing is not None:
                if existing != neighbour:
                    continue
                new_bindings = bindings
            else:
                if self.vertex_iso and neighbour in bindings:
                    continue
                if not self._vertex_ok(
                    far_variable, self.vertices_by_id[neighbour]
                ):
                    continue
                as_list = list(bindings)
                as_list[far_index] = neighbour
                new_bindings = tuple(as_list)
            new_partial = (new_bindings, used_edges + (edge.id.value,))
            # forward to where the next expansion happens
            ctx.send(self._next_location(new_bindings, step + 1), new_partial)

    def _next_location(self, bindings, next_step):
        if next_step >= len(self.order):
            # fully matched: deliver to the anchor for emission
            return bindings[self.vertex_index[self.anchor]]
        next_edge = self.order[next_step]
        source_binding = bindings[self.vertex_index[next_edge.source]]
        if source_binding is not None:
            return source_binding
        return bindings[self.vertex_index[next_edge.target]]


class PSgLMatcher:
    """Vertex-centric pattern matching with engine-compatible semantics."""

    def __init__(self, graph, vertex_strategy=None, edge_strategy=None):
        self.graph = graph
        self.vertex_strategy = vertex_strategy or DEFAULT_VERTEX_STRATEGY
        self.edge_strategy = edge_strategy or DEFAULT_EDGE_STRATEGY
        self._vertices = {v.id: v for v in graph.collect_vertices()}
        self._edges = {e.id: e for e in graph.collect_edges()}

    def match(self, query):
        """All matches as canonical rows (same form as the naive matcher)."""
        handler = query if isinstance(query, QueryHandler) else QueryHandler(query)
        program = _PSgLProgram(
            handler,
            self.vertex_strategy,
            self.edge_strategy,
            {vid.value: vertex for vid, vertex in self._vertices.items()},
        )
        runtime = PregelRuntime(
            self.graph, max_supersteps=len(program.order) + 2
        )
        _, raw_results = runtime.run(program)

        rows = []
        seen = set()
        for bindings, used_edges in raw_results:
            key = (bindings, used_edges)
            if key in seen:
                continue
            seen.add(key)
            row = self._finalize(handler, program, bindings, used_edges)
            if row is not None:
                rows.append(row)
        return rows

    def _finalize(self, handler, program, bindings, used_edges):
        from repro.epgm import GradoopId

        vertex_bind = {}
        for variable, index in program.vertex_index.items():
            if bindings[index] is None:
                return None  # disconnected leftovers cannot occur, but guard
            vertex_bind[variable] = GradoopId(bindings[index])
        edge_bind = {
            edge.variable: GradoopId(edge_id)
            for edge, edge_id in zip(program.order, used_edges)
        }
        if not handler.global_predicates.is_trivial:
            elements = {
                variable: self._vertices[vid]
                for variable, vid in vertex_bind.items()
            }
            elements.update(
                {
                    variable: self._edges[eid]
                    for variable, eid in edge_bind.items()
                }
            )
            if not evaluate_cnf(
                handler.global_predicates, _NaiveBindings(elements)
            ):
                return None
        return canonical_row(vertex_bind, edge_bind, {})

    def count(self, query):
        return len(self.match(query))

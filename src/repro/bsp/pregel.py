"""A Pregel-style runtime on the dataflow substrate.

Vertices hold state and exchange messages in synchronized supersteps; each
superstep is a dataflow job (messages grouped by target, joined with
vertex state, transformed by the vertex program), so message traffic shows
up in the environment's shuffle metrics just like the query engine's
joins do.
"""


class VertexProgram:
    """User code for a vertex-centric computation."""

    #: Optional message combiner: ``staticmethod(list) -> list``.  Applied
    #: per target vertex before delivery, like Pregel/Giraph combiners —
    #: a sum combiner turns k messages into one and cuts traffic.
    combiner = None

    def initial_state(self, vertex, adjacency):
        """The vertex's state before superstep 0."""
        raise NotImplementedError

    def compute(self, ctx, vertex, adjacency, state, messages):
        """One superstep for one vertex; returns the new state.

        Args:
            ctx: :class:`ComputeContext` — ``send``/``emit``/``superstep``.
            vertex: The data vertex.
            adjacency: List of ``(edge, neighbour_id, outgoing)`` for every
                incident edge (both directions, like Giraph's edge list
                plus mirrored in-edges).
            state: State returned by the previous superstep.
            messages: Messages addressed to this vertex (empty list in
                superstep 0 and for silent vertices).
        """
        raise NotImplementedError


class ComputeContext:
    """Per-vertex, per-superstep services."""

    __slots__ = ("superstep", "_outbox", "_results")

    def __init__(self, superstep, outbox, results):
        self.superstep = superstep
        self._outbox = outbox
        self._results = results

    def send(self, target_id, payload):
        """Deliver ``payload`` to ``target_id`` in the next superstep."""
        self._outbox.append((target_id, payload))

    def emit(self, result):
        """Add a final result (collected across all supersteps)."""
        self._results.append(result)


class PregelRuntime:
    """Executes a :class:`VertexProgram` over a logical graph."""

    def __init__(self, graph, max_supersteps=30):
        self.graph = graph
        self.environment = graph.environment
        self.max_supersteps = max_supersteps
        self._vertices = {v.id.value: v for v in graph.collect_vertices()}
        self._adjacency = {vid: [] for vid in self._vertices}
        for edge in graph.collect_edges():
            source, target = edge.source_id.value, edge.target_id.value
            self._adjacency[source].append((edge, target, True))
            if target != source:
                self._adjacency[target].append((edge, source, False))

    def run(self, program):
        """Run to convergence (no messages) or ``max_supersteps``.

        Returns:
            ``(states, results)`` — final state per vertex id (int keys)
            and everything the program emitted.
        """
        environment = self.environment
        vertices = self._vertices
        adjacency = self._adjacency
        results = []
        states = {
            vid: program.initial_state(vertex, adjacency[vid])
            for vid, vertex in vertices.items()
        }

        # messages as (target_vid, payload) records
        inbox = [(vid, None) for vid in vertices]  # wake everyone for step 0
        first = True
        for superstep in range(self.max_supersteps):
            if not inbox:
                break
            inbox_ds = environment.from_collection(inbox, name="pregel-messages")
            # superstep 0's wake-up markers carry no payloads to combine
            combiner = None if first else program.combiner

            def deliver(vid, messages, _combiner=combiner):
                payloads = [payload for _, payload in messages]
                if _combiner is not None:
                    payloads = list(_combiner(payloads))
                return [(vid, payloads)]

            grouped = inbox_ds.group_by(lambda m: m[0]).reduce_group(
                deliver, name="pregel-deliver"
            )

            def superstep_fn(record, _step=superstep, _first=first):
                vid, payloads = record
                outbox = []
                ctx = ComputeContext(_step, outbox, results)
                messages = [] if _first else payloads
                new_state = program.compute(
                    ctx, vertices[vid], adjacency[vid], states[vid], messages
                )
                return [("state", vid, new_state)] + [
                    ("message", target, payload) for target, payload in outbox
                ]

            produced = grouped.flat_map(superstep_fn, name="pregel-compute").collect()
            inbox = []
            for kind, key, value in produced:
                if kind == "state":
                    states[key] = value
                else:
                    if key not in vertices:
                        raise KeyError(
                            "message sent to unknown vertex %r" % key
                        )
                    inbox.append((key, value))
            first = False
        return states, results

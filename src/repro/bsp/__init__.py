"""Vertex-centric BSP processing (Pregel/Giraph style).

The paper's related work singles out PSgL [Shao et al., SIGMOD'14], a
pattern matcher built on the vertex-centric abstraction of Apache Giraph,
as a source of ideas "to improve our implementation".  This package
provides that abstraction on our dataflow substrate — a
:class:`PregelRuntime` with message passing between supersteps — plus two
classic programs (PageRank, connected components) and
:class:`~repro.bsp.psgl.PSgLMatcher`, a simplified PSgL-style pattern
matcher used as an architectural baseline against the join-based engine.
"""

from .pregel import PregelRuntime, VertexProgram
from .programs import BSPConnectedComponents, PageRank, SingleSourceShortestPaths
from .psgl import PSgLMatcher

__all__ = [
    "BSPConnectedComponents",
    "PSgLMatcher",
    "PageRank",
    "PregelRuntime",
    "SingleSourceShortestPaths",
    "VertexProgram",
]

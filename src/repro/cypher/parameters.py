"""Query parameter binding (``$name`` placeholders).

Parameters keep query plans reusable and values out of the query text —
the paper's operational queries 1–3 are parameterized by ``firstName``
exactly for this purpose.  Two binding modes exist:

* **Eager** (:func:`bind_parameters`): every ``$name`` is replaced by a
  :class:`~repro.cypher.ast.Literal` before compilation.  Simple, but a
  new value means a new AST and a new plan.
* **Deferred** (:func:`parameterize`): every ``$name`` is replaced by a
  :class:`ParameterSlot` that reads its value from a shared, mutable
  :class:`ParameterBinding` at *predicate-evaluation* time.  One compiled
  plan can then be re-executed with different bindings — the prepared
  statement mechanism of :mod:`repro.engine.prepared`.

.. code-block:: python

    query = parse("MATCH (p:Person {firstName: $name}) RETURN *")
    bound = bind_parameters(query, {"name": "Jan"})        # eager

    binding = ParameterBinding({"name"})
    slotted = parameterize(query, binding)                  # deferred
    binding.assign({"name": "Jan"})                         # before each run
"""

from .ast import (
    And,
    Comparison,
    Literal,
    Not,
    Or,
    Parameter,
    PathPattern,
    Query,
    ReturnClause,
    Xor,
)
from .errors import CypherSemanticError


class ParameterBinding:
    """The mutable value store shared by a prepared plan's slots.

    One instance backs every :class:`ParameterSlot` of one compiled plan;
    :meth:`assign` swaps the full value set between executions.  The
    ``generation`` counter increments on every assignment so caches can
    tell result sets of different bindings apart.
    """

    __slots__ = ("names", "generation", "_values")

    def __init__(self, names):
        #: the parameter names the query declares; assignment is validated
        #: against this set
        self.names = frozenset(names)
        self.generation = 0
        self._values = {}

    def assign(self, values):
        """Install a complete set of parameter values.

        Raises :class:`CypherSemanticError` for missing or undeclared
        names — prepared statements are strict, unlike the eager binder,
        because a typo here would otherwise silently reuse a stale value.
        """
        values = dict(values or {})
        missing = self.names - set(values)
        if missing:
            raise CypherSemanticError(
                "no value for query parameter(s): %s"
                % ", ".join("$" + name for name in sorted(missing))
            )
        unknown = set(values) - self.names
        if unknown:
            raise CypherSemanticError(
                "unknown query parameter(s): %s"
                % ", ".join("$" + name for name in sorted(unknown))
            )
        self._values = values
        self.generation += 1
        return self

    def value_of(self, name):
        try:
            return self._values[name]
        except KeyError:
            raise CypherSemanticError(
                "parameter $%s read before any binding was assigned" % name
            ) from None

    @property
    def values(self):
        return dict(self._values)

    def __repr__(self):
        return "ParameterBinding(%s, generation=%d)" % (
            sorted(self.names), self.generation
        )


class ParameterSlot:
    """A ``$name`` expression resolved through a :class:`ParameterBinding`.

    Unlike :class:`~repro.cypher.ast.Parameter` (a parse-time placeholder
    that must be eliminated before compilation), a slot is a legal
    comparison side all the way through planning and execution: predicate
    evaluation looks the current value up on every call, so re-executing
    the plan after :meth:`ParameterBinding.assign` sees the new values.
    """

    __slots__ = ("name", "binding")

    def __init__(self, name, binding):
        self.name = name
        self.binding = binding

    def current(self):
        return self.binding.value_of(self.name)

    def __str__(self):
        return "$%s" % self.name

    def __repr__(self):
        return "ParameterSlot($%s)" % self.name


def _transform_query(query, resolve):
    """A structural copy of ``query`` with ``resolve`` applied to every
    expression position that may hold a parameter."""

    def walk(node):
        resolved = resolve(node)
        if resolved is not node:
            return resolved
        if isinstance(node, Comparison):
            return Comparison(node.operator, walk(node.left), walk(node.right))
        if isinstance(node, And):
            return And(walk(node.left), walk(node.right))
        if isinstance(node, Or):
            return Or(walk(node.left), walk(node.right))
        if isinstance(node, Xor):
            return Xor(walk(node.left), walk(node.right))
        if isinstance(node, Not):
            return Not(walk(node.operand))
        return node

    patterns = []
    for path in query.patterns:
        nodes = []
        for node in path.nodes:
            entries = [(key, walk(value)) for key, value in node.properties]
            clone = type(node)(node.variable, list(node.labels), entries)
            nodes.append(clone)
        relationships = []
        for rel in path.relationships:
            entries = [(key, walk(value)) for key, value in rel.properties]
            clone = type(rel)(
                rel.variable,
                list(rel.types),
                rel.direction,
                rel.lower,
                rel.upper,
                entries,
            )
            relationships.append(clone)
        patterns.append(PathPattern(nodes, relationships))

    where = walk(query.where) if query.where is not None else None

    returns = query.returns
    if returns is not None:
        items = [
            type(item)(walk(item.expression), item.alias)
            for item in returns.items
        ]
        order_by = [
            type(order)(walk(order.expression), order.descending)
            for order in returns.order_by
        ]
        returns = ReturnClause(
            star=returns.star,
            items=items,
            distinct=returns.distinct,
            order_by=order_by,
            skip=returns.skip,
            limit=returns.limit,
        )

    return Query(patterns=patterns, where=where, returns=returns)


def bind_parameters(query, parameters=None):
    """A copy of ``query`` with every ``$name`` replaced by its value.

    Raises :class:`CypherSemanticError` for unbound parameters; unused
    parameter values are ignored (like Neo4j).
    """
    parameters = parameters or {}

    def resolve(node):
        if isinstance(node, Parameter):
            if node.name not in parameters:
                raise CypherSemanticError(
                    "no value for query parameter $%s" % node.name
                )
            return Literal(parameters[node.name])
        return node

    return _transform_query(query, resolve)


def parameterize(query, binding):
    """A copy of ``query`` with every ``$name`` replaced by a slot reading
    from ``binding``; raises when the query declares a parameter the
    binding does not know about."""

    def resolve(node):
        if isinstance(node, Parameter):
            if node.name not in binding.names:
                raise CypherSemanticError(
                    "parameter $%s is not declared in the binding" % node.name
                )
            return ParameterSlot(node.name, binding)
        return node

    return _transform_query(query, resolve)


def find_parameters(query):
    """Names of all ``$parameters`` appearing in a parsed query."""
    names = set()

    def walk(node):
        if isinstance(node, Parameter):
            names.add(node.name)
        elif isinstance(node, Comparison):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (And, Or, Xor)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Not):
            walk(node.operand)

    for path in query.patterns:
        for element in list(path.nodes) + list(path.relationships):
            for _, value in element.properties:
                walk(value)
    if query.where is not None:
        walk(query.where)
    if query.returns is not None:
        for item in query.returns.items:
            walk(item.expression)
        for order in query.returns.order_by:
            walk(order.expression)
    return names

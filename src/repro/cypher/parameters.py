"""Query parameter binding (``$name`` placeholders).

Parameters keep query plans reusable and values out of the query text —
the paper's operational queries 1–3 are parameterized by ``firstName``
exactly for this purpose.  Binding happens before compilation:

.. code-block:: python

    query = parse("MATCH (p:Person {firstName: $name}) RETURN *")
    bound = bind_parameters(query, {"name": "Jan"})
"""

from .ast import (
    And,
    Comparison,
    Literal,
    Not,
    Or,
    Parameter,
    PathPattern,
    Query,
    ReturnClause,
    Xor,
)
from .errors import CypherSemanticError


def bind_parameters(query, parameters=None):
    """A copy of ``query`` with every ``$name`` replaced by its value.

    Raises :class:`CypherSemanticError` for unbound parameters; unused
    parameter values are ignored (like Neo4j).
    """
    parameters = parameters or {}

    def resolve(node):
        if isinstance(node, Parameter):
            if node.name not in parameters:
                raise CypherSemanticError(
                    "no value for query parameter $%s" % node.name
                )
            return Literal(parameters[node.name])
        if isinstance(node, Comparison):
            return Comparison(node.operator, resolve(node.left), resolve(node.right))
        if isinstance(node, And):
            return And(resolve(node.left), resolve(node.right))
        if isinstance(node, Or):
            return Or(resolve(node.left), resolve(node.right))
        if isinstance(node, Xor):
            return Xor(resolve(node.left), resolve(node.right))
        if isinstance(node, Not):
            return Not(resolve(node.operand))
        return node

    patterns = []
    for path in query.patterns:
        nodes = []
        for node in path.nodes:
            entries = [(key, resolve(value)) for key, value in node.properties]
            clone = type(node)(node.variable, list(node.labels), entries)
            nodes.append(clone)
        relationships = []
        for rel in path.relationships:
            entries = [(key, resolve(value)) for key, value in rel.properties]
            clone = type(rel)(
                rel.variable,
                list(rel.types),
                rel.direction,
                rel.lower,
                rel.upper,
                entries,
            )
            relationships.append(clone)
        patterns.append(PathPattern(nodes, relationships))

    where = resolve(query.where) if query.where is not None else None

    returns = query.returns
    if returns is not None:
        items = [
            type(item)(resolve(item.expression), item.alias)
            for item in returns.items
        ]
        order_by = [
            type(order)(resolve(order.expression), order.descending)
            for order in returns.order_by
        ]
        returns = ReturnClause(
            star=returns.star,
            items=items,
            distinct=returns.distinct,
            order_by=order_by,
            skip=returns.skip,
            limit=returns.limit,
        )

    return Query(patterns=patterns, where=where, returns=returns)


def find_parameters(query):
    """Names of all ``$parameters`` appearing in a parsed query."""
    names = set()

    def walk(node):
        if isinstance(node, Parameter):
            names.add(node.name)
        elif isinstance(node, Comparison):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (And, Or, Xor)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Not):
            walk(node.operand)

    for path in query.patterns:
        for element in list(path.nodes) + list(path.relationships):
            for _, value in element.properties:
                walk(value)
    if query.where is not None:
        walk(query.where)
    if query.returns is not None:
        for item in query.returns.items:
            walk(item.expression)
        for order in query.returns.order_by:
            walk(order.expression)
    return names

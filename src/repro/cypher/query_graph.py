"""Query graph construction (Definition 2.2).

Translates a parsed :class:`~repro.cypher.ast.Query` into query vertices
and query edges with attached predicate CNFs, splitting the WHERE clause
into element-local predicates (pushed to the leaf operators) and
cross-element predicates (evaluated once all variables are bound).
"""

from dataclasses import dataclass, field
from typing import List, Optional

from .ast import Direction, FunctionCall, PropertyAccess, Query, VariableRef
from .errors import CypherSemanticError
from .parser import parse
from .predicates import CNF, label_predicate, property_map_predicate, to_cnf
from .span import Span

#: Cap applied to variable-length paths declared without an upper bound
#: (``*`` or ``*2..``); Flink's bulk iteration needs a superstep limit.
DEFAULT_UPPER_BOUND = 10


@dataclass
class QueryVertex:
    """A vertex of the query graph and its pushed-down predicates."""

    variable: str
    labels: List[str] = field(default_factory=list)
    predicates: CNF = field(default_factory=CNF.true)
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    @property
    def has_label_predicate(self):
        return bool(self.labels)

    def __repr__(self):
        label = ":" + "|".join(self.labels) if self.labels else ""
        return "QueryVertex(%s%s)" % (self.variable, label)


@dataclass
class QueryEdge:
    """An edge of the query graph (normalized to source -> target).

    For variable-length edges the per-hop predicates (types, properties)
    apply to every traversed edge; ``lower``/``upper`` bound the hop count.
    """

    variable: str
    source: str
    target: str
    types: List[str] = field(default_factory=list)
    predicates: CNF = field(default_factory=CNF.true)
    lower: Optional[int] = None
    upper: Optional[int] = None
    undirected: bool = False
    span: Optional[Span] = field(default=None, compare=False, repr=False)

    @property
    def is_variable_length(self):
        return self.lower is not None

    @property
    def has_label_predicate(self):
        return bool(self.types)

    def __repr__(self):
        rel_type = ":" + "|".join(self.types) if self.types else ""
        span = "*%s..%s" % (self.lower, self.upper) if self.is_variable_length else ""
        return "QueryEdge(%s)-[%s%s%s]->(%s)" % (
            self.source,
            self.variable,
            rel_type,
            span,
            self.target,
        )


class QueryHandler:
    """The compiled form of a Cypher query handed to the planner."""

    def __init__(self, query, parameters=None):
        """Accepts a query string or a parsed :class:`Query`.

        ``parameters`` binds ``$name`` placeholders; a query still holding
        unbound parameters cannot be compiled.
        """
        if isinstance(query, str):
            query = parse(query)
        if not isinstance(query, Query):
            raise TypeError("expected query string or Query AST")
        from .parameters import bind_parameters, find_parameters

        if parameters:
            query = bind_parameters(query, parameters)
        unbound = find_parameters(query)
        if unbound:
            raise CypherSemanticError(
                "unbound query parameters: %s"
                % ", ".join("$" + name for name in sorted(unbound))
            )
        self.ast = query
        self.vertices = {}
        self.edges = {}
        self._anonymous_counter = 0
        self._build_pattern()
        self._attach_predicates()
        self._validate_return()

    # Construction ---------------------------------------------------------------

    def _fresh_variable(self, prefix):
        name = "__%s%d" % (prefix, self._anonymous_counter)
        self._anonymous_counter += 1
        return name

    def _build_pattern(self):
        for path in self.ast.patterns:
            node_vars = []
            for node in path.nodes:
                node_vars.append(self._add_node(node))
            for index, rel in enumerate(path.relationships):
                self._add_relationship(rel, node_vars[index], node_vars[index + 1])

    def _add_node(self, node):
        variable = node.variable or self._fresh_variable("v")
        if variable in self.edges:
            raise CypherSemanticError(
                "used for both a vertex and an edge",
                variable=variable,
                span=node.span,
            )
        existing = self.vertices.get(variable)
        if existing is None:
            existing = QueryVertex(variable, span=node.span)
            self.vertices[variable] = existing
        if node.labels:
            if not existing.labels:
                existing.labels = list(node.labels)
            # every occurrence contributes its own label clause
            existing.predicates = existing.predicates.and_(
                label_predicate(variable, node.labels)
            )
        if node.properties:
            existing.predicates = existing.predicates.and_(
                property_map_predicate(variable, node.properties)
            )
        return existing.variable

    def _add_relationship(self, rel, left_var, right_var):
        variable = rel.variable or self._fresh_variable("e")
        if variable in self.edges:
            raise CypherSemanticError(
                "edge variable bound more than once",
                variable=variable,
                span=rel.span,
            )
        if variable in self.vertices:
            raise CypherSemanticError(
                "used for both a vertex and an edge",
                variable=variable,
                span=rel.span,
            )
        if rel.direction is Direction.INCOMING:
            source, target = right_var, left_var
        else:
            source, target = left_var, right_var
        edge = QueryEdge(
            variable,
            source=source,
            target=target,
            types=list(rel.types),
            undirected=rel.direction is Direction.UNDIRECTED,
            span=rel.span,
        )
        if rel.is_variable_length:
            edge.lower = rel.lower
            edge.upper = rel.upper if rel.upper is not None else DEFAULT_UPPER_BOUND
        if rel.types:
            edge.predicates = edge.predicates.and_(
                label_predicate(variable, rel.types)
            )
        if rel.properties:
            edge.predicates = edge.predicates.and_(
                property_map_predicate(variable, rel.properties)
            )
        self.edges[variable] = edge

    def _attach_predicates(self):
        where_cnf = to_cnf(self.ast.where)
        unknown = where_cnf.variables() - set(self.vertices) - set(self.edges)
        if unknown:
            first = sorted(unknown)[0]
            raise CypherSemanticError(
                "WHERE references unbound variables: %s" % ", ".join(sorted(unknown)),
                variable=first,
                span=_variable_span(where_cnf, first),
            )
        remaining = []
        for clause in where_cnf.clauses:
            variables = clause.variables()
            if len(variables) == 1:
                (variable,) = variables
                if variable in self.vertices:
                    vertex = self.vertices[variable]
                    vertex.predicates = vertex.predicates.and_(CNF([clause]))
                    continue
                edge = self.edges[variable]
                # per-hop push-down is unsound for variable-length edges
                # only when the predicate references the path variable's
                # aggregate; simple property predicates apply to every hop.
                edge.predicates = edge.predicates.and_(CNF([clause]))
                continue
            remaining.append(clause)
        self.global_predicates = CNF(remaining)

    def _validate_return(self):
        returns = self.ast.returns
        if returns is None:
            return
        known = set(self.vertices) | set(self.edges)
        expressions = [] if returns.star else [i.expression for i in returns.items]
        expressions += [order.expression for order in returns.order_by]
        for expression in expressions:
            if isinstance(expression, FunctionCall):
                expression = expression.argument
                if expression is None:  # count(*)
                    continue
            if isinstance(expression, PropertyAccess):
                variable = expression.variable
            elif isinstance(expression, VariableRef):
                variable = expression.name
            else:
                continue
            if variable not in known:
                raise CypherSemanticError(
                    "RETURN references unbound variable",
                    variable=variable,
                    span=getattr(expression, "span", None),
                )

    # Introspection -----------------------------------------------------------------

    @property
    def variables(self):
        return list(self.vertices) + list(self.edges)

    def property_keys(self, variable):
        """Property keys of ``variable`` needed anywhere in the query.

        Drives the projection step of SelectAndProjectVertices/-Edges
        (paper §3.1): only these keys survive into embeddings.
        """
        keys = set()
        element = self.vertices.get(variable) or self.edges.get(variable)
        if element is not None:
            keys |= element.predicates.property_keys().get(variable, set())
        keys |= self.global_predicates.property_keys().get(variable, set())
        returns = self.ast.returns
        if returns is not None:
            expressions = [item.expression for item in returns.items]
            expressions += [order.expression for order in returns.order_by]
            for expression in expressions:
                if isinstance(expression, FunctionCall):
                    expression = expression.argument
                if (
                    isinstance(expression, PropertyAccess)
                    and expression.variable == variable
                ):
                    keys.add(expression.key)
        return keys

    def edges_between(self, source, target):
        return [
            edge
            for edge in self.edges.values()
            if {edge.source, edge.target} == {source, target}
        ]

    def __repr__(self):
        return "QueryHandler(%d vertices, %d edges)" % (
            len(self.vertices),
            len(self.edges),
        )


def _variable_span(cnf, variable):
    """The span of the first predicate atom mentioning ``variable``."""
    for clause in cnf.clauses:
        for atom in clause.atoms:
            for side in (atom.comparison.left, atom.comparison.right):
                if getattr(side, "variable", None) == variable or getattr(
                    side, "name", None
                ) == variable:
                    return getattr(side, "span", None) or getattr(
                        atom.comparison, "span", None
                    )
    return None

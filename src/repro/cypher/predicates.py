"""Predicate normalization (CNF) and three-valued evaluation.

The WHERE expression, inline property maps and label predicates are all
normalized into **conjunctive normal form**: a conjunction of clauses, each
clause a disjunction of (possibly negated) comparisons.  CNF makes
predicate push-down trivial — a clause whose variables are all bound by one
query element can be evaluated at the leaf operator (paper §2.5/§3.1);
everything else waits for :class:`SelectEmbeddings`.

Evaluation follows Cypher's ternary logic: comparisons involving NULL or
incomparable types yield *unknown*; a clause is satisfied only if some atom
is definitely true, and unknown never satisfies a filter.
"""

from dataclasses import dataclass
from typing import Tuple

from repro.epgm.property_value import IncomparableError, PropertyValue

from .ast import (
    And,
    Comparison,
    LabelRef,
    Literal,
    Not,
    Or,
    PropertyAccess,
    VariableRef,
    Xor,
)
from .errors import CypherSemanticError

_NEGATED_OPERATOR = {
    "=": "<>",
    "<>": "=",
    "<": ">=",
    ">=": "<",
    ">": "<=",
    "<=": ">",
    "IS NULL": "IS NOT NULL",
    "IS NOT NULL": "IS NULL",
}


@dataclass(frozen=True)
class Atom:
    """One (possibly negated) comparison inside a clause."""

    comparison: Comparison
    negated: bool = False

    def variables(self):
        return _expression_variables(self.comparison.left) | _expression_variables(
            self.comparison.right
        )

    def property_keys(self):
        """Mapping variable -> set of property keys this atom reads."""
        keys = {}
        for side in (self.comparison.left, self.comparison.right):
            if isinstance(side, PropertyAccess):
                keys.setdefault(side.variable, set()).add(side.key)
        return keys

    def negate(self):
        operator = self.comparison.operator
        if operator in _NEGATED_OPERATOR:
            return Atom(
                Comparison(
                    _NEGATED_OPERATOR[operator],
                    self.comparison.left,
                    self.comparison.right,
                )
            )
        return Atom(self.comparison, negated=not self.negated)

    def __str__(self):
        text = str(self.comparison)
        return "NOT %s" % text if self.negated else text


@dataclass(frozen=True)
class Clause:
    """A disjunction of atoms."""

    atoms: Tuple[Atom, ...]

    def variables(self):
        result = set()
        for atom in self.atoms:
            result |= atom.variables()
        return result

    def property_keys(self):
        keys = {}
        for atom in self.atoms:
            for variable, atom_keys in atom.property_keys().items():
                keys.setdefault(variable, set()).update(atom_keys)
        return keys

    def __str__(self):
        return "(" + " OR ".join(str(atom) for atom in self.atoms) + ")"


class CNF:
    """A conjunction of clauses."""

    def __init__(self, clauses=()):
        self.clauses = list(clauses)

    @classmethod
    def true(cls):
        return cls([])

    @classmethod
    def single(cls, comparison):
        return cls([Clause((Atom(comparison),))])

    def and_(self, other):
        return CNF(self.clauses + other.clauses)

    @property
    def is_trivial(self):
        return not self.clauses

    def variables(self):
        result = set()
        for clause in self.clauses:
            result |= clause.variables()
        return result

    def property_keys(self):
        keys = {}
        for clause in self.clauses:
            for variable, clause_keys in clause.property_keys().items():
                keys.setdefault(variable, set()).update(clause_keys)
        return keys

    def split(self, available_variables):
        """Clauses evaluable with ``available_variables`` vs. the rest."""
        available = set(available_variables)
        now, later = [], []
        for clause in self.clauses:
            (now if clause.variables() <= available else later).append(clause)
        return CNF(now), CNF(later)

    def __len__(self):
        return len(self.clauses)

    def __str__(self):
        if not self.clauses:
            return "TRUE"
        return " AND ".join(str(clause) for clause in self.clauses)


# Normalization ------------------------------------------------------------------


def to_cnf(expression):
    """Convert a WHERE expression tree to CNF."""
    if expression is None:
        return CNF.true()
    return CNF(_distribute(_push_not(expression, negate=False)))


def _push_not(node, negate):
    """Eliminate XOR, push negation down to atoms."""
    if isinstance(node, Xor):
        # a XOR b == (a OR b) AND (NOT a OR NOT b); XOR under NOT flips to XNOR
        rewritten = And(Or(node.left, node.right), Or(Not(node.left), Not(node.right)))
        return _push_not(rewritten, negate)
    if isinstance(node, Not):
        return _push_not(node.operand, not negate)
    if isinstance(node, And):
        combinator = Or if negate else And
        return combinator(
            _push_not(node.left, negate), _push_not(node.right, negate)
        )
    if isinstance(node, Or):
        combinator = And if negate else Or
        return combinator(
            _push_not(node.left, negate), _push_not(node.right, negate)
        )
    if isinstance(node, Comparison):
        atom = Atom(node)
        return atom.negate() if negate else atom
    if isinstance(node, VariableRef):
        raise CypherSemanticError(
            "bare variable %r cannot be used as a boolean predicate" % node.name
        )
    if isinstance(node, Literal):
        if isinstance(node.value, bool):
            truth = node.value != negate
            # TRUE is an empty conjunction; FALSE an unsatisfiable comparison
            if truth:
                return _TRUE
            return Atom(Comparison("<>", Literal(0), Literal(0)))
        raise CypherSemanticError("literal %r is not a boolean predicate" % node.value)
    raise CypherSemanticError("unsupported predicate node %r" % (node,))


class _TrueMarker:
    pass


_TRUE = _TrueMarker()


def _distribute(node):
    """Distribute OR over AND; returns a list of Clauses."""
    if node is _TRUE:
        return []
    if isinstance(node, Atom):
        return [Clause((node,))]
    if isinstance(node, And):
        return _distribute(node.left) + _distribute(node.right)
    if isinstance(node, Or):
        left_clauses = _distribute(node.left)
        right_clauses = _distribute(node.right)
        if not left_clauses or not right_clauses:
            return []  # OR with TRUE is TRUE
        return [
            Clause(tuple(l.atoms) + tuple(r.atoms))
            for l in left_clauses
            for r in right_clauses
        ]
    raise AssertionError("unexpected node in distribution: %r" % (node,))


# Evaluation -----------------------------------------------------------------------


def _expression_variables(side):
    if isinstance(side, (PropertyAccess, LabelRef)):
        return {side.variable}
    if isinstance(side, VariableRef):
        return {side.name}
    return set()


def _resolve(side, bindings):
    """Evaluate one comparison side against a bindings object.

    ``bindings`` must provide ``property_value(variable, key)``,
    ``label(variable)`` and ``element_id(variable)``.
    """
    if isinstance(side, Literal):
        return PropertyValue(side.value)
    if isinstance(side, PropertyAccess):
        return bindings.property_value(side.variable, side.key)
    if isinstance(side, LabelRef):
        return PropertyValue(bindings.label(side.variable))
    if isinstance(side, VariableRef):
        return bindings.element_id(side.name)
    # deferred $parameters: read the current value from the shared binding
    # on every evaluation, so one compiled plan serves many executions
    current = getattr(side, "current", None)
    if current is not None:
        return PropertyValue(current())
    raise CypherSemanticError("unsupported expression %r" % (side,))


def evaluate_comparison(comparison, bindings):
    """Ternary evaluation: True, False, or None for unknown."""
    left = _resolve(comparison.left, bindings)
    operator = comparison.operator
    if operator == "IS NULL":
        return _is_null(left)
    if operator == "IS NOT NULL":
        return not _is_null(left)
    right = _resolve(comparison.right, bindings)
    if operator == "IN":
        return _evaluate_in(left, right)
    if operator in ("STARTS WITH", "ENDS WITH", "CONTAINS"):
        return _evaluate_string_operator(operator, left, right)
    if _is_null(left) or _is_null(right):
        return None
    if operator == "=":
        return left == right
    if operator == "<>":
        return left != right
    try:
        result = left.compare(right)
    except IncomparableError:
        return None
    except AttributeError:
        # VariableRef sides resolve to GradoopIds, which only support =/<>
        return None
    if operator == "<":
        return result < 0
    if operator == "<=":
        return result <= 0
    if operator == ">":
        return result > 0
    if operator == ">=":
        return result >= 0
    raise CypherSemanticError("unknown operator %r" % operator)


def _is_null(value):
    return isinstance(value, PropertyValue) and value.is_null


def _evaluate_string_operator(operator, left, right):
    """Cypher string predicates: unknown unless both sides are strings."""
    if not (
        isinstance(left, PropertyValue)
        and isinstance(right, PropertyValue)
        and left.is_string
        and right.is_string
    ):
        return None
    haystack, needle = left.raw(), right.raw()
    if operator == "STARTS WITH":
        return haystack.startswith(needle)
    if operator == "ENDS WITH":
        return haystack.endswith(needle)
    return needle in haystack


def _evaluate_in(left, right):
    if _is_null(left):
        return None
    values = right.raw() if isinstance(right, PropertyValue) else right
    if not isinstance(values, list):
        return None
    return any(left == PropertyValue(item) for item in values)


def evaluate_atom(atom, bindings):
    result = evaluate_comparison(atom.comparison, bindings)
    if result is None:
        return None
    return (not result) if atom.negated else result


def evaluate_clause(clause, bindings):
    """True iff some atom is definitely true (unknown never satisfies)."""
    unknown = False
    for atom in clause.atoms:
        result = evaluate_atom(atom, bindings)
        if result is True:
            return True
        if result is None:
            unknown = True
    return None if unknown else False


def evaluate_cnf(cnf, bindings):
    """Strict filter semantics: every clause must be definitely true."""
    for clause in cnf.clauses:
        if evaluate_clause(clause, bindings) is not True:
            return False
    return True


# Compilation ----------------------------------------------------------------------
#
# The interpreted evaluator above re-dispatches on the AST node types and
# re-wraps literal values on every record.  ``compile_cnf`` specializes a
# CNF once per operator build into nested closures — literals become bound
# PropertyValue constants, comparison sides become direct accessor calls —
# while keeping the exact ternary semantics (the closures delegate to the
# same operator helpers).  ``$parameter`` slots stay late-bound: their
# resolver reads ``side.current()`` per evaluation, so one compiled plan
# still serves many bindings.


def _compile_side(side):
    """``bindings -> value`` resolver for one comparison side."""
    if isinstance(side, Literal):
        constant = PropertyValue(side.value)
        return lambda bindings: constant
    if isinstance(side, PropertyAccess):
        variable, key = side.variable, side.key
        return lambda bindings: bindings.property_value(variable, key)
    if isinstance(side, LabelRef):
        variable = side.variable
        return lambda bindings: PropertyValue(bindings.label(variable))
    if isinstance(side, VariableRef):
        name = side.name
        return lambda bindings: bindings.element_id(name)
    current = getattr(side, "current", None)
    if current is not None:
        return lambda bindings: PropertyValue(current())
    raise CypherSemanticError("unsupported expression %r" % (side,))


def _compile_label_equality(comparison):
    """Specialized ``label(v) =/<> 'literal'`` check, or None.

    The single most common pushed-down atom; comparing the raw label
    string skips two PropertyValue wrappers per record.  A missing label
    (``None``) stays *unknown*, matching ``PropertyValue(None).is_null``.
    """
    sides = (comparison.left, comparison.right)
    label_side = next((s for s in sides if isinstance(s, LabelRef)), None)
    literal_side = next(
        (s for s in sides
         if isinstance(s, Literal) and isinstance(s.value, str)),
        None,
    )
    if label_side is None or literal_side is None:
        return None
    variable, expected = label_side.variable, literal_side.value
    if comparison.operator == "=":

        def evaluate(bindings):
            label = bindings.label(variable)
            return None if label is None else label == expected

    elif comparison.operator == "<>":

        def evaluate(bindings):
            label = bindings.label(variable)
            return None if label is None else label != expected

    else:
        return None
    return evaluate


def _compile_comparison(comparison):
    """``bindings -> True | False | None`` mirroring evaluate_comparison."""
    specialized = _compile_label_equality(comparison)
    if specialized is not None:
        return specialized
    left = _compile_side(comparison.left)
    operator = comparison.operator
    if operator == "IS NULL":
        return lambda bindings: _is_null(left(bindings))
    if operator == "IS NOT NULL":
        return lambda bindings: not _is_null(left(bindings))
    right = _compile_side(comparison.right)
    if operator == "IN":
        return lambda bindings: _evaluate_in(left(bindings), right(bindings))
    if operator in ("STARTS WITH", "ENDS WITH", "CONTAINS"):
        return lambda bindings: _evaluate_string_operator(
            operator, left(bindings), right(bindings)
        )
    if operator == "=":

        def evaluate(bindings):
            left_value, right_value = left(bindings), right(bindings)
            if _is_null(left_value) or _is_null(right_value):
                return None
            return left_value == right_value

        return evaluate
    if operator == "<>":

        def evaluate(bindings):
            left_value, right_value = left(bindings), right(bindings)
            if _is_null(left_value) or _is_null(right_value):
                return None
            return left_value != right_value

        return evaluate
    if operator not in ("<", "<=", ">", ">="):
        raise CypherSemanticError("unknown operator %r" % operator)
    below = operator in ("<", "<=")
    includes_equal = operator in ("<=", ">=")

    def evaluate(bindings):
        left_value, right_value = left(bindings), right(bindings)
        if _is_null(left_value) or _is_null(right_value):
            return None
        try:
            result = left_value.compare(right_value)
        except IncomparableError:
            return None
        except AttributeError:
            # VariableRef sides resolve to GradoopIds, which only support =/<>
            return None
        if below:
            return result <= 0 if includes_equal else result < 0
        return result >= 0 if includes_equal else result > 0

    return evaluate


def _compile_atom(atom):
    evaluate = _compile_comparison(atom.comparison)
    if not atom.negated:
        return evaluate

    def negated(bindings):
        result = evaluate(bindings)
        if result is None:
            return None
        return not result

    return negated


def _compile_clause(clause):
    atoms = tuple(_compile_atom(atom) for atom in clause.atoms)
    if len(atoms) == 1:
        only = atoms[0]
        return lambda bindings: only(bindings) is True

    def satisfied(bindings):
        for atom in atoms:
            if atom(bindings) is True:
                return True
        return False

    return satisfied


def compile_cnf(cnf):
    """``bindings -> bool`` closure with :func:`evaluate_cnf` semantics.

    Built once per operator, not per record; always agrees with
    ``evaluate_cnf(cnf, bindings)``.
    """
    clauses = tuple(_compile_clause(clause) for clause in cnf.clauses)
    if not clauses:
        return lambda bindings: True
    if len(clauses) == 1:
        return clauses[0]

    def keep(bindings):
        for clause in clauses:
            if not clause(bindings):
                return False
        return True

    return keep


def cnf_signature(cnf):
    """A variable-name-independent fingerprint of a single-variable CNF.

    Two query elements with equal signatures (plus equal labels/projection
    keys) select identical element sets, so their leaf scans can be shared
    — the "recurring subqueries" optimization the paper names as ongoing
    work (§5).  Only meaningful for CNFs over one variable.
    """

    def side(expression):
        if isinstance(expression, Literal):
            return ("lit", repr(expression.value))
        if isinstance(expression, PropertyAccess):
            return ("prop", expression.key)
        if isinstance(expression, LabelRef):
            return ("label",)
        if isinstance(expression, VariableRef):
            return ("var",)
        if hasattr(expression, "binding"):  # ParameterSlot: same name, same
            return ("param", expression.name)  # shared binding, same values
        return ("other", repr(expression))

    clauses = []
    for clause in cnf.clauses:
        atoms = tuple(
            sorted(
                (
                    atom.comparison.operator,
                    side(atom.comparison.left),
                    side(atom.comparison.right),
                    atom.negated,
                )
                for atom in clause.atoms
            )
        )
        clauses.append(atoms)
    return tuple(sorted(clauses))


def label_predicate(variable, labels):
    """CNF clause for a label alternation ``(v:A|B)``."""
    atoms = tuple(
        Atom(Comparison("=", LabelRef(variable), Literal(label))) for label in labels
    )
    return CNF([Clause(atoms)])


def property_map_predicate(variable, entries):
    """CNF for an inline property map ``{key: literal, ...}``."""
    clauses = [
        Clause((Atom(Comparison("=", PropertyAccess(variable, key), literal)),))
        for key, literal in entries
    ]
    return CNF(clauses)

"""Cypher front-end errors."""


class CypherError(Exception):
    """Base class for query language errors."""


class CypherSyntaxError(CypherError):
    """The query text does not conform to the supported Cypher subset."""

    def __init__(self, message, position=None):
        if position is not None:
            message = "%s (at offset %d)" % (message, position)
        super().__init__(message)
        self.position = position


class CypherSemanticError(CypherError):
    """The query parses but is not well-formed (e.g. unbound variable)."""

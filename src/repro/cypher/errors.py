"""Cypher front-end errors."""


class CypherError(Exception):
    """Base class for query language errors."""


class CypherSyntaxError(CypherError):
    """The query text does not conform to the supported Cypher subset."""

    def __init__(self, message, position=None, span=None):
        if span is not None:
            message = "%s (%s)" % (message, span)
            if position is None:
                position = span.offset
        elif position is not None:
            message = "%s (at offset %d)" % (message, position)
        super().__init__(message)
        self.position = position
        self.span = span


class CypherSemanticError(CypherError):
    """The query parses but is not well-formed (e.g. unbound variable).

    ``variable`` names the offending query variable and ``span`` its
    position in the query text, when known; both are folded into the
    message so plain ``str(exc)`` already points at the problem.
    """

    def __init__(self, message, variable=None, span=None):
        details = []
        if variable is not None:
            details.append("variable %r" % variable)
        if span is not None:
            details.append(str(span))
        if details:
            message = "%s [%s]" % (message, ", ".join(details))
        super().__init__(message)
        self.variable = variable
        self.span = span

"""Tokenizer for the supported Cypher subset."""

from .errors import CypherSyntaxError
from .span import Span

KEYWORDS = {
    "MATCH",
    "WHERE",
    "RETURN",
    "AND",
    "OR",
    "XOR",
    "NOT",
    "TRUE",
    "FALSE",
    "NULL",
    "DISTINCT",
    "LIMIT",
    "IN",
    "AS",
    "IS",
    "STARTS",
    "ENDS",
    "WITH",
    "CONTAINS",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "SKIP",
}

# multi-character symbols first so maximal munch applies
_SYMBOLS = ["<=", ">=", "<>", "..", "(", ")", "[", "]", "{", "}", ":", ",",
            ".", "|", "-", ">", "<", "=", "*", "+", "/", "%"]


class Token:
    """A lexical token with its source span for error reporting."""

    __slots__ = ("kind", "text", "value", "position", "span")

    def __init__(self, kind, text, value=None, position=0, span=None):
        self.kind = kind  # 'keyword' | 'ident' | 'int' | 'float' | 'string' | 'symbol' | 'eof'
        self.text = text
        self.value = value
        self.position = position
        self.span = span if span is not None else Span(position, 1, position + 1)

    @property
    def line(self):
        return self.span.line

    @property
    def column(self):
        return self.span.column

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.text)


def tokenize(query):
    """Turn ``query`` into a list of tokens ending with an EOF token.

    Tokens carry a :class:`~repro.cypher.span.Span` with the 1-based
    line/column computed during the scan, so later stages can point at
    the query text without rescanning it.
    """
    tokens = []
    i = 0
    length = len(query)
    line = 1
    line_start = 0

    def span_here(start, token_length):
        return Span(start, line, start - line_start + 1, token_length)

    def advance_lines(start, stop):
        """Update the line bookkeeping for consumed text [start, stop)."""
        nonlocal line, line_start
        newline = query.find("\n", start, stop)
        while newline >= 0:
            line += 1
            line_start = newline + 1
            newline = query.find("\n", newline + 1, stop)

    while i < length:
        char = query[i]
        if char.isspace():
            if char == "\n":
                line += 1
                line_start = i + 1
            i += 1
            continue
        if char == "/" and query.startswith("//", i):
            newline = query.find("\n", i)
            if newline < 0:
                i = length
            else:
                line += 1
                line_start = newline + 1
                i = newline + 1
            continue
        if char in "'\"":
            text, consumed = _read_string(query, i)
            tokens.append(
                Token("string", query[i : i + consumed], text, i,
                      span_here(i, consumed))
            )
            advance_lines(i, i + consumed)
            i += consumed
            continue
        if char.isdigit():
            token, consumed = _read_number(query, i)
            token.span = span_here(i, consumed)
            tokens.append(token)
            i += consumed
            continue
        if char.isalpha() or char == "_":
            j = i + 1
            while j < length and (query[j].isalnum() or query[j] == "_"):
                j += 1
            word = query[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(
                    Token("keyword", word.upper(), position=i,
                          span=span_here(i, j - i))
                )
            else:
                tokens.append(
                    Token("ident", word, position=i, span=span_here(i, j - i))
                )
            i = j
            continue
        if char == "`":
            end = query.find("`", i + 1)
            if end < 0:
                raise CypherSyntaxError("unterminated backtick identifier", i)
            tokens.append(
                Token("ident", query[i + 1 : end], position=i,
                      span=span_here(i, end + 1 - i))
            )
            i = end + 1
            continue
        if char == "$":
            j = i + 1
            while j < length and (query[j].isalnum() or query[j] == "_"):
                j += 1
            if j == i + 1:
                raise CypherSyntaxError("expected parameter name after '$'", i)
            tokens.append(
                Token("param", query[i + 1 : j], position=i,
                      span=span_here(i, j - i))
            )
            i = j
            continue
        symbol = _match_symbol(query, i)
        if symbol is not None:
            tokens.append(
                Token("symbol", symbol, position=i, span=span_here(i, len(symbol)))
            )
            i += len(symbol)
            continue
        raise CypherSyntaxError("unexpected character %r" % char, i)
    tokens.append(Token("eof", "", position=length, span=span_here(length, 0)))
    return tokens


def _match_symbol(query, i):
    for symbol in _SYMBOLS:
        if query.startswith(symbol, i):
            return symbol
    return None


def _read_string(query, i):
    quote = query[i]
    out = []
    j = i + 1
    while j < len(query):
        char = query[j]
        if char == "\\" and j + 1 < len(query):
            escape = query[j + 1]
            out.append({"n": "\n", "t": "\t"}.get(escape, escape))
            j += 2
            continue
        if char == quote:
            return "".join(out), j - i + 1
        out.append(char)
        j += 1
    raise CypherSyntaxError("unterminated string literal", i)


def _read_number(query, i):
    j = i
    length = len(query)
    while j < length and query[j].isdigit():
        j += 1
    # '..' is the range operator in [*1..3]; a single '.' + digit is a float
    if (
        j < length
        and query[j] == "."
        and not query.startswith("..", j)
        and j + 1 < length
        and query[j + 1].isdigit()
    ):
        j += 1
        while j < length and query[j].isdigit():
            j += 1
        text = query[i:j]
        return Token("float", text, float(text), i), j - i
    text = query[i:j]
    return Token("int", text, int(text), i), j - i

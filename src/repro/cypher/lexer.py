"""Tokenizer for the supported Cypher subset."""

from .errors import CypherSyntaxError

KEYWORDS = {
    "MATCH",
    "WHERE",
    "RETURN",
    "AND",
    "OR",
    "XOR",
    "NOT",
    "TRUE",
    "FALSE",
    "NULL",
    "DISTINCT",
    "LIMIT",
    "IN",
    "AS",
    "IS",
    "STARTS",
    "ENDS",
    "WITH",
    "CONTAINS",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "SKIP",
}

# multi-character symbols first so maximal munch applies
_SYMBOLS = ["<=", ">=", "<>", "..", "(", ")", "[", "]", "{", "}", ":", ",",
            ".", "|", "-", ">", "<", "=", "*", "+", "/", "%"]


class Token:
    """A lexical token with its source offset for error reporting."""

    __slots__ = ("kind", "text", "value", "position")

    def __init__(self, kind, text, value=None, position=0):
        self.kind = kind  # 'keyword' | 'ident' | 'int' | 'float' | 'string' | 'symbol' | 'eof'
        self.text = text
        self.value = value
        self.position = position

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.text)


def tokenize(query):
    """Turn ``query`` into a list of tokens ending with an EOF token."""
    tokens = []
    i = 0
    length = len(query)
    while i < length:
        char = query[i]
        if char.isspace():
            i += 1
            continue
        if char == "/" and query.startswith("//", i):
            newline = query.find("\n", i)
            i = length if newline < 0 else newline + 1
            continue
        if char in "'\"":
            text, consumed = _read_string(query, i)
            tokens.append(Token("string", query[i : i + consumed], text, i))
            i += consumed
            continue
        if char.isdigit():
            token, consumed = _read_number(query, i)
            tokens.append(token)
            i += consumed
            continue
        if char.isalpha() or char == "_":
            j = i + 1
            while j < length and (query[j].isalnum() or query[j] == "_"):
                j += 1
            word = query[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("keyword", word.upper(), position=i))
            else:
                tokens.append(Token("ident", word, position=i))
            i = j
            continue
        if char == "`":
            end = query.find("`", i + 1)
            if end < 0:
                raise CypherSyntaxError("unterminated backtick identifier", i)
            tokens.append(Token("ident", query[i + 1 : end], position=i))
            i = end + 1
            continue
        if char == "$":
            j = i + 1
            while j < length and (query[j].isalnum() or query[j] == "_"):
                j += 1
            if j == i + 1:
                raise CypherSyntaxError("expected parameter name after '$'", i)
            tokens.append(Token("param", query[i + 1 : j], position=i))
            i = j
            continue
        symbol = _match_symbol(query, i)
        if symbol is not None:
            tokens.append(Token("symbol", symbol, position=i))
            i += len(symbol)
            continue
        raise CypherSyntaxError("unexpected character %r" % char, i)
    tokens.append(Token("eof", "", position=length))
    return tokens


def _match_symbol(query, i):
    for symbol in _SYMBOLS:
        if query.startswith(symbol, i):
            return symbol
    return None


def _read_string(query, i):
    quote = query[i]
    out = []
    j = i + 1
    while j < len(query):
        char = query[j]
        if char == "\\" and j + 1 < len(query):
            escape = query[j + 1]
            out.append({"n": "\n", "t": "\t"}.get(escape, escape))
            j += 2
            continue
        if char == quote:
            return "".join(out), j - i + 1
        out.append(char)
        j += 1
    raise CypherSyntaxError("unterminated string literal", i)


def _read_number(query, i):
    j = i
    length = len(query)
    while j < length and query[j].isdigit():
        j += 1
    # '..' is the range operator in [*1..3]; a single '.' + digit is a float
    if (
        j < length
        and query[j] == "."
        and not query.startswith("..", j)
        and j + 1 < length
        and query[j + 1].isdigit()
    ):
        j += 1
        while j < length and query[j].isdigit():
            j += 1
        text = query[i:j]
        return Token("float", text, float(text), i), j - i
    text = query[i:j]
    return Token("int", text, int(text), i), j - i

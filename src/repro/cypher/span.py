"""Source spans: where a token or AST node sits in the query text.

Every token records its offset plus the 1-based line/column the lexer
computed while scanning; the parser threads those spans onto the AST
nodes it builds.  Diagnostics (``repro.analysis``) and semantic errors
use them to point at the offending query text instead of describing it.
"""

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Span:
    """A position (and optional extent) in the original query string."""

    offset: int
    line: int
    column: int
    length: int = 0

    def __str__(self):
        return "line %d, column %d" % (self.line, self.column)

    def caret_snippet(self, query_text):
        """The offending source line with a ``^`` caret underneath."""
        lines = query_text.splitlines() or [""]
        index = min(self.line, len(lines)) - 1
        source_line = lines[index]
        caret = " " * (self.column - 1) + "^" * max(self.length, 1)
        return "%s\n%s" % (source_line, caret)

    def excerpt(self, query_text):
        """A rustc-style excerpt: line-number gutter plus caret underline.

        ::

              --> line 1, column 16
               |
             1 | MATCH (a) WHERE ghost.x = 1 RETURN a
               |                 ^^^^^
        """
        lines = query_text.splitlines() or [""]
        index = min(self.line, len(lines)) - 1
        source_line = lines[index]
        number = str(index + 1)
        gutter = " " * len(number)
        caret = " " * (self.column - 1) + "^" * max(self.length, 1)
        return "\n".join([
            "%s --> %s" % (gutter, self),
            "%s |" % gutter,
            "%s | %s" % (number, source_line),
            "%s | %s" % (gutter, caret),
        ])


def span_at(query_text, offset, length=0):
    """Compute the :class:`Span` of ``offset`` within ``query_text``."""
    prefix = query_text[:offset]
    line = prefix.count("\n") + 1
    last_newline = prefix.rfind("\n")
    column = offset - last_newline  # works for -1 too: offset + 1
    return Span(offset=offset, line=line, column=column, length=length)


def format_at(message, span):
    """``message`` suffixed with the span position, if one is known."""
    if span is None:
        return message
    return "%s (%s)" % (message, span)


def _span_of(node) -> Optional[Span]:
    """The span recorded on an AST node, or None."""
    return getattr(node, "span", None)

"""Recursive-descent parser for the supported Cypher subset.

Covers everything the paper's six evaluation queries need — multiple MATCH
path patterns, label alternation (``Comment|Post``), variable-length paths
(``*0..10``), inline property maps, WHERE with boolean connectives and
comparisons, RETURN with ``*``/items — plus small openCypher conveniences
(DISTINCT, LIMIT, IN, IS [NOT] NULL, undirected edges).
"""

from .ast import (
    And,
    Comparison,
    Direction,
    FunctionCall,
    Literal,
    OrderItem,
    Parameter,
    NodePattern,
    Not,
    Or,
    PathPattern,
    PropertyAccess,
    Query,
    RelationshipPattern,
    ReturnClause,
    ReturnItem,
    VariableRef,
    Xor,
)
from .errors import CypherSyntaxError
from .lexer import tokenize

_COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}
_AGGREGATES = {"count", "sum", "min", "max", "avg", "collect"}


def parse(query_text):
    """Parse ``query_text`` into a :class:`~repro.cypher.ast.Query`."""
    return _Parser(tokenize(query_text)).parse_query()


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._index = 0

    # Token helpers ----------------------------------------------------------

    @property
    def _current(self):
        return self._tokens[self._index]

    def _advance(self):
        token = self._current
        if token.kind != "eof":
            self._index += 1
        return token

    def _check(self, kind, text=None):
        token = self._current
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _accept(self, kind, text=None):
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind, text=None):
        token = self._accept(kind, text)
        if token is None:
            raise CypherSyntaxError(
                "expected %s, found %r" % (text or kind, self._current.text or "end of query"),
                self._current.position,
            )
        return token

    # Grammar -------------------------------------------------------------------

    def parse_query(self):
        self._expect("keyword", "MATCH")
        patterns = [self._parse_path_pattern()]
        while self._accept("symbol", ","):
            patterns.append(self._parse_path_pattern())
        where = None
        if self._accept("keyword", "WHERE"):
            where = self._parse_expression()
        returns = None
        if self._accept("keyword", "RETURN"):
            returns = self._parse_return()
        self._expect("eof")
        return Query(patterns=patterns, where=where, returns=returns)

    # Patterns ---------------------------------------------------------------------

    def _parse_path_pattern(self):
        path = PathPattern()
        path.nodes.append(self._parse_node())
        while self._check("symbol", "-") or self._check("symbol", "<"):
            path.relationships.append(self._parse_relationship())
            path.nodes.append(self._parse_node())
        return path

    def _parse_node(self):
        open_token = self._expect("symbol", "(")
        node = NodePattern()
        node.span = open_token.span
        if self._check("ident"):
            node.span = self._current.span
            node.variable = self._advance().text
        if self._accept("symbol", ":"):
            node.labels = self._parse_label_alternation()
        if self._check("symbol", "{"):
            node.properties = self._parse_property_map()
        self._expect("symbol", ")")
        return node

    def _parse_label_alternation(self):
        labels = [self._expect("ident").text]
        while self._accept("symbol", "|"):
            labels.append(self._expect("ident").text)
        return labels

    def _parse_relationship(self):
        start_span = self._current.span
        incoming = False
        if self._accept("symbol", "<"):
            incoming = True
        self._expect("symbol", "-")
        rel = RelationshipPattern()
        rel.span = start_span
        if self._accept("symbol", "["):
            if self._check("ident"):
                rel.span = self._current.span
                rel.variable = self._advance().text
            if self._accept("symbol", ":"):
                rel.types = self._parse_label_alternation()
            if self._accept("symbol", "*"):
                rel.lower, rel.upper = self._parse_length_range()
            if self._check("symbol", "{"):
                rel.properties = self._parse_property_map()
            self._expect("symbol", "]")
        if incoming:
            self._expect("symbol", "-")
            rel.direction = Direction.INCOMING
        else:
            self._expect("symbol", "-")
            if self._accept("symbol", ">"):
                rel.direction = Direction.OUTGOING
            else:
                rel.direction = Direction.UNDIRECTED
        return rel

    def _parse_length_range(self):
        """``*``, ``*n``, ``*l..u``, ``*..u``, ``*l..`` after the star."""
        lower = 1
        upper = None
        if self._check("int"):
            lower = self._advance().value
            upper = lower  # '*n' is exactly n hops unless '..' follows
        if self._accept("symbol", ".."):
            upper = self._advance().value if self._check("int") else None
        if upper is not None and upper < lower:
            raise CypherSyntaxError(
                "path upper bound %d below lower bound %d" % (upper, lower),
                self._current.position,
            )
        return lower, upper

    def _parse_property_map(self):
        self._expect("symbol", "{")
        entries = []
        if not self._check("symbol", "}"):
            while True:
                key = self._expect("ident").text
                self._expect("symbol", ":")
                entries.append((key, self._parse_literal()))
                if not self._accept("symbol", ","):
                    break
        self._expect("symbol", "}")
        return entries

    # Expressions -------------------------------------------------------------------

    def _parse_expression(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_xor()
        while self._accept("keyword", "OR"):
            left = Or(left, self._parse_xor())
        return left

    def _parse_xor(self):
        left = self._parse_and()
        while self._accept("keyword", "XOR"):
            left = Xor(left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self._accept("keyword", "AND"):
            left = And(left, self._parse_not())
        return left

    def _parse_not(self):
        if self._accept("keyword", "NOT"):
            return Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self):
        left = self._parse_primary()
        token = self._current
        span = token.span
        if token.kind == "symbol" and token.text in _COMPARISON_OPS:
            operator = self._advance().text
            return Comparison(operator, left, self._parse_primary(), span=span)
        if self._accept("keyword", "IN"):
            if self._check("param"):
                return Comparison(
                    "IN", left, Parameter(self._advance().text), span=span
                )
            return Comparison("IN", left, self._parse_list_literal(), span=span)
        if self._accept("keyword", "STARTS"):
            self._expect("keyword", "WITH")
            return Comparison("STARTS WITH", left, self._parse_primary(), span=span)
        if self._accept("keyword", "ENDS"):
            self._expect("keyword", "WITH")
            return Comparison("ENDS WITH", left, self._parse_primary(), span=span)
        if self._accept("keyword", "CONTAINS"):
            return Comparison("CONTAINS", left, self._parse_primary(), span=span)
        if self._accept("keyword", "IS"):
            if self._accept("keyword", "NOT"):
                self._expect("keyword", "NULL")
                return Comparison("IS NOT NULL", left, Literal(None), span=span)
            self._expect("keyword", "NULL")
            return Comparison("IS NULL", left, Literal(None), span=span)
        return left

    def _parse_primary(self):
        if self._accept("symbol", "("):
            inner = self._parse_expression()
            self._expect("symbol", ")")
            return inner
        if self._check("ident"):
            span = self._current.span
            name = self._advance().text
            if self._check("symbol", "(") and name.lower() in _AGGREGATES:
                return self._parse_function_call(name.lower(), span)
            if self._accept("symbol", "."):
                key = self._expect("ident").text
                return PropertyAccess(name, key, span=span)
            return VariableRef(name, span=span)
        if self._check("param"):
            span = self._current.span
            return Parameter(self._advance().text, span=span)
        return self._parse_literal()

    def _parse_function_call(self, name, span=None):
        self._expect("symbol", "(")
        if self._accept("symbol", "*"):
            if name != "count":
                raise CypherSyntaxError(
                    "only count(*) may take a star argument", self._current.position
                )
            self._expect("symbol", ")")
            return FunctionCall(name, None, span=span)
        argument = self._parse_primary()
        self._expect("symbol", ")")
        return FunctionCall(name, argument, span=span)

    def _parse_literal(self):
        if self._check("param"):
            span = self._current.span
            return Parameter(self._advance().text, span=span)
        span = self._current.span
        if self._accept("symbol", "-"):
            token = self._current
            if token.kind not in ("int", "float"):
                raise CypherSyntaxError("expected number after '-'", token.position)
            self._advance()
            return Literal(-token.value, span=span)
        token = self._current
        if token.kind in ("int", "float", "string"):
            self._advance()
            return Literal(token.value, span=span)
        if self._accept("keyword", "TRUE"):
            return Literal(True, span=span)
        if self._accept("keyword", "FALSE"):
            return Literal(False, span=span)
        if self._accept("keyword", "NULL"):
            return Literal(None, span=span)
        if self._check("symbol", "["):
            return self._parse_list_literal()
        raise CypherSyntaxError(
            "expected literal, found %r" % (token.text or "end of query"),
            token.position,
        )

    def _parse_list_literal(self):
        span = self._current.span
        self._expect("symbol", "[")
        values = []
        if not self._check("symbol", "]"):
            while True:
                literal = self._parse_literal()
                if isinstance(literal, Parameter):
                    raise CypherSyntaxError(
                        "parameters inside list literals are not supported; "
                        "pass the whole list as one parameter ($%s)"
                        % literal.name,
                        self._current.position,
                    )
                values.append(literal.value)
                if not self._accept("symbol", ","):
                    break
        self._expect("symbol", "]")
        return Literal(values, span=span)

    # RETURN --------------------------------------------------------------------------

    def _parse_return(self):
        clause = ReturnClause()
        if self._accept("keyword", "DISTINCT"):
            clause.distinct = True
        if self._accept("symbol", "*"):
            clause.star = True
        else:
            while True:
                item_span = self._current.span
                expression = self._parse_primary()
                alias = None
                if self._accept("keyword", "AS"):
                    alias = self._expect("ident").text
                clause.items.append(ReturnItem(expression, alias, span=item_span))
                if not self._accept("symbol", ","):
                    break
        if self._accept("keyword", "ORDER"):
            self._expect("keyword", "BY")
            while True:
                expression = self._parse_primary()
                descending = False
                if self._accept("keyword", "DESC"):
                    descending = True
                else:
                    self._accept("keyword", "ASC")
                clause.order_by.append(OrderItem(expression, descending))
                if not self._accept("symbol", ","):
                    break
        if self._accept("keyword", "SKIP"):
            clause.skip = self._expect("int").value
        if self._accept("keyword", "LIMIT"):
            clause.limit = self._expect("int").value
        return clause

"""Render a parsed query back to Cypher text.

``parse(render(parse(q)))`` equals ``parse(q)`` — property-tested — which
makes the renderer safe for logging, EXPLAIN headers and query rewriting.
"""

from .ast import Query


def render_query(query):
    """Cypher text for a :class:`~repro.cypher.ast.Query`."""
    if not isinstance(query, Query):
        raise TypeError("expected a parsed Query")
    parts = ["MATCH " + ", ".join(str(path) for path in query.patterns)]
    if query.where is not None:
        parts.append("WHERE " + str(query.where))
    returns = query.returns
    if returns is not None:
        if returns.star:
            items = "*"
        else:
            items = ", ".join(str(item) for item in returns.items)
        clause = "RETURN "
        if returns.distinct:
            clause += "DISTINCT "
        clause += items
        if returns.order_by:
            rendered = []
            for order in returns.order_by:
                text = str(order.expression)
                if order.descending:
                    text += " DESC"
                rendered.append(text)
            clause += " ORDER BY " + ", ".join(rendered)
        if returns.skip is not None:
            clause += " SKIP %d" % returns.skip
        if returns.limit is not None:
            clause += " LIMIT %d" % returns.limit
        parts.append(clause)
    return "\n".join(parts)

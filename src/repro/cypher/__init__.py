"""Cypher front end: lexer, parser, predicate normalization, query graph."""

from .ast import (
    And,
    Comparison,
    Direction,
    LabelRef,
    Literal,
    NodePattern,
    Not,
    Or,
    PathPattern,
    PropertyAccess,
    Query,
    RelationshipPattern,
    ReturnClause,
    ReturnItem,
    VariableRef,
    Xor,
)
from .errors import CypherError, CypherSemanticError, CypherSyntaxError
from .parameters import bind_parameters, find_parameters
from .parser import parse
from .pretty import render_query
from .predicates import (
    CNF,
    Atom,
    Clause,
    evaluate_cnf,
    evaluate_clause,
    evaluate_comparison,
    label_predicate,
    to_cnf,
)
from .query_graph import DEFAULT_UPPER_BOUND, QueryEdge, QueryHandler, QueryVertex
from .span import Span, span_at

__all__ = [
    "And",
    "Atom",
    "CNF",
    "Clause",
    "Comparison",
    "CypherError",
    "CypherSemanticError",
    "CypherSyntaxError",
    "DEFAULT_UPPER_BOUND",
    "Direction",
    "LabelRef",
    "Literal",
    "NodePattern",
    "Not",
    "Or",
    "PathPattern",
    "PropertyAccess",
    "Query",
    "QueryEdge",
    "QueryHandler",
    "QueryVertex",
    "RelationshipPattern",
    "ReturnClause",
    "ReturnItem",
    "Span",
    "VariableRef",
    "Xor",
    "evaluate_cnf",
    "evaluate_clause",
    "evaluate_comparison",
    "label_predicate",
    "bind_parameters",
    "find_parameters",
    "parse",
    "render_query",
    "span_at",
    "to_cnf",
]

"""Abstract syntax tree for the supported Cypher subset."""

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .span import Span

#: Source-span field shared by AST nodes: excluded from equality/repr so
#: structurally identical nodes from different positions still compare equal.
def _span_field():
    return field(default=None, compare=False, repr=False)


def _render_property_map(entries):
    if not entries:
        return ""
    return " {%s}" % ", ".join(
        "%s: %s" % (key, literal) for key, literal in entries
    )


class Direction(enum.Enum):
    """Edge direction relative to the textual left-hand node."""

    OUTGOING = "outgoing"  # (a)-[e]->(b)
    INCOMING = "incoming"  # (a)<-[e]-(b)
    UNDIRECTED = "undirected"  # (a)-[e]-(b)


# Expressions -----------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: object  # None | bool | int | float | str | list
    span: Optional[Span] = _span_field()

    def __str__(self):
        return _render_literal(self.value)


def _render_literal(value):
    if isinstance(value, str):
        return "'%s'" % value.replace("\\", "\\\\").replace("'", "\\'")
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, list):
        return "[%s]" % ", ".join(_render_literal(item) for item in value)
    return str(value)


@dataclass(frozen=True)
class Parameter:
    """A ``$name`` placeholder resolved at execution time."""

    name: str
    span: Optional[Span] = _span_field()

    def __str__(self):
        return "$%s" % self.name


@dataclass(frozen=True)
class VariableRef:
    """A bare pattern variable in an expression position."""

    name: str
    span: Optional[Span] = _span_field()

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class PropertyAccess:
    variable: str
    key: str
    span: Optional[Span] = _span_field()

    def __str__(self):
        return "%s.%s" % (self.variable, self.key)


@dataclass(frozen=True)
class LabelRef:
    """The type label of a pattern variable (synthesized, not user syntax).

    Label predicates from ``(p:Person)`` are normalized into comparisons
    ``label(p) = 'Person'`` so that the whole WHERE machinery — CNF,
    push-down, evaluation — treats them uniformly (paper §2.5).
    """

    variable: str
    span: Optional[Span] = _span_field()

    def __str__(self):
        return "label(%s)" % self.variable


@dataclass(frozen=True)
class FunctionCall:
    """An aggregate call in RETURN: count/sum/min/max/avg/collect.

    ``argument`` is ``None`` for ``count(*)``.
    """

    name: str
    argument: object = None
    span: Optional[Span] = _span_field()

    def __str__(self):
        return "%s(%s)" % (self.name, self.argument if self.argument else "*")


@dataclass(frozen=True)
class Comparison:
    """A binary predicate: =, <>, <, <=, >, >=, IN, string operators."""

    operator: str
    left: object
    right: object
    span: Optional[Span] = _span_field()

    def __str__(self):
        if self.operator in ("IS NULL", "IS NOT NULL"):
            return "%s %s" % (self.left, self.operator)
        return "%s %s %s" % (self.left, self.operator, self.right)


@dataclass(frozen=True)
class And:
    left: object
    right: object

    def __str__(self):
        return "(%s AND %s)" % (self.left, self.right)


@dataclass(frozen=True)
class Or:
    left: object
    right: object

    def __str__(self):
        return "(%s OR %s)" % (self.left, self.right)


@dataclass(frozen=True)
class Xor:
    left: object
    right: object

    def __str__(self):
        return "(%s XOR %s)" % (self.left, self.right)


@dataclass(frozen=True)
class Not:
    operand: object

    def __str__(self):
        return "NOT (%s)" % (self.operand,)


# Patterns -------------------------------------------------------------------


@dataclass
class NodePattern:
    """``(variable:LabelA|LabelB {key: literal, ...})``."""

    variable: Optional[str] = None
    labels: List[str] = field(default_factory=list)
    properties: List[Tuple[str, object]] = field(default_factory=list)
    span: Optional[Span] = _span_field()

    def __str__(self):
        label = ":" + "|".join(self.labels) if self.labels else ""
        props = _render_property_map(self.properties)
        return "(%s%s%s)" % (self.variable or "", label, props)


@dataclass
class RelationshipPattern:
    """``-[variable:typeA|typeB *lower..upper {..}]->`` and variants.

    ``lower``/``upper`` are ``None`` for fixed-length (single-hop) edges;
    a variable-length edge always has an explicit lower bound and an upper
    bound (``upper`` may be ``None`` meaning "no declared upper bound").
    """

    variable: Optional[str] = None
    types: List[str] = field(default_factory=list)
    direction: Direction = Direction.OUTGOING
    lower: Optional[int] = None
    upper: Optional[int] = None
    properties: List[Tuple[str, object]] = field(default_factory=list)
    span: Optional[Span] = _span_field()

    @property
    def is_variable_length(self):
        return self.lower is not None

    def __str__(self):
        rel_type = ":" + "|".join(self.types) if self.types else ""
        span = ""
        if self.is_variable_length:
            span = "*%d..%s" % (
                self.lower,
                self.upper if self.upper is not None else "",
            )
        props = _render_property_map(self.properties)
        body = "[%s%s%s%s]" % (self.variable or "", rel_type, span, props)
        if self.direction is Direction.OUTGOING:
            return "-%s->" % body
        if self.direction is Direction.INCOMING:
            return "<-%s-" % body
        return "-%s-" % body


@dataclass
class PathPattern:
    """Alternating nodes and relationships: node (rel node)*."""

    nodes: List[NodePattern] = field(default_factory=list)
    relationships: List[RelationshipPattern] = field(default_factory=list)

    def __str__(self):
        parts = [str(self.nodes[0])]
        for rel, node in zip(self.relationships, self.nodes[1:]):
            parts.append(str(rel))
            parts.append(str(node))
        return "".join(parts)


# Clauses ----------------------------------------------------------------------


@dataclass
class ReturnItem:
    expression: object
    alias: Optional[str] = None
    span: Optional[Span] = _span_field()

    def __str__(self):
        if self.alias:
            return "%s AS %s" % (self.expression, self.alias)
        return str(self.expression)


@dataclass
class OrderItem:
    expression: object
    descending: bool = False


@dataclass
class ReturnClause:
    star: bool = False
    items: List[ReturnItem] = field(default_factory=list)
    distinct: bool = False
    order_by: List[OrderItem] = field(default_factory=list)
    skip: Optional[int] = None
    limit: Optional[int] = None

    @property
    def has_aggregates(self):
        return any(isinstance(item.expression, FunctionCall) for item in self.items)


@dataclass
class Query:
    patterns: List[PathPattern] = field(default_factory=list)
    where: Optional[object] = None
    returns: Optional[ReturnClause] = None

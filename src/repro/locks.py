"""Named locks and the runtime lock-order witness.

Every lock in the serving stack is created through :func:`named_lock` /
:func:`named_rlock` instead of ``threading.Lock()`` directly.  The
returned :class:`InstrumentedLock` behaves exactly like the stdlib lock
it wraps — until a :class:`LockOrderWitness` is installed (the *one
import switch*: :func:`install_witness`), at which point every
acquisition records an edge from each lock the thread already holds to
the lock being acquired.  The resulting global acquisition graph is the
witness: a cycle in it is a lock-order inversion, i.e. a potential
deadlock — even one that never actually fired during the run.

The witness also converts two guaranteed-hang bugs into immediate,
debuggable exceptions while it is installed:

* re-acquiring a *non-reentrant* lock the thread already holds
  (self-deadlock) raises :class:`LockOrderError` instead of hanging;
* :meth:`LockOrderWitness.assert_acyclic` raises with the full cycle and
  one example acquisition site per edge.

When no witness is installed the overhead per acquisition is one module
global read and a ``None`` check; the test suite enables the witness via
``REPRO_LOCK_WITNESS=1`` (see ``tests/conftest.py``) and ``make
racecheck`` runs the server suite under it.

This module is deliberately stdlib-only and imports nothing from
``repro`` — the cache, server, dataflow and engine layers all depend on
it, so it must sit below every one of them.
"""

import contextlib
import itertools
import sys
import threading

__all__ = [
    "InstrumentedLock",
    "LockOrderError",
    "LockOrderWitness",
    "current_witness",
    "install_witness",
    "named_lock",
    "named_rlock",
    "uninstall_witness",
    "witness_installed",
]

#: the one import switch: ``None`` (plain locking) or the installed witness
_witness = None

_anonymous = itertools.count(1)


class LockOrderError(RuntimeError):
    """A lock-order violation observed (or provoked) by the witness."""


def named_lock(name=None):
    """A non-reentrant mutex carrying ``name`` in the witness graph."""
    if name is None:
        name = "lock-%d" % next(_anonymous)
    return InstrumentedLock(name, threading.Lock(), reentrant=False)


def named_rlock(name=None):
    """A reentrant mutex carrying ``name`` in the witness graph."""
    if name is None:
        name = "rlock-%d" % next(_anonymous)
    return InstrumentedLock(name, threading.RLock(), reentrant=True)


def install_witness(witness=None):
    """Install (and return) the process-wide lock-order witness.

    All :class:`InstrumentedLock` acquisitions from now on report into
    it, including locks created before the install.
    """
    global _witness
    if witness is None:
        witness = LockOrderWitness()
    _witness = witness
    return witness


def uninstall_witness():
    """Remove the installed witness (if any) and return it."""
    global _witness
    witness = _witness
    _witness = None
    return witness


def current_witness():
    return _witness


@contextlib.contextmanager
def witness_installed(witness=None):
    """Scoped install for tests; restores the previous witness on exit."""
    global _witness
    previous = _witness
    if witness is None:
        witness = LockOrderWitness()
    _witness = witness
    try:
        yield witness
    finally:
        _witness = previous


class InstrumentedLock:
    """A stdlib lock plus a stable name for the acquisition graph.

    Exposes the usual ``acquire``/``release``/context-manager protocol.
    Witness bookkeeping happens *outside* the wrapped lock: the held
    stack is thread-local and the graph updates take the witness's own
    internal (leaf) lock, so instrumentation can never deadlock against
    the locks it observes.
    """

    __slots__ = ("name", "reentrant", "_inner")

    def __init__(self, name, inner=None, reentrant=False):
        self.name = name
        self.reentrant = reentrant
        self._inner = inner if inner is not None else threading.Lock()

    def acquire(self, blocking=True, timeout=-1):
        witness = _witness
        if witness is not None:
            witness.before_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if witness is not None and acquired:
            witness.after_acquire(self)
        return acquired

    def release(self):
        witness = _witness
        if witness is not None:
            witness.on_release(self)
        self._inner.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info):
        self.release()

    def __repr__(self):
        return "InstrumentedLock(%r%s)" % (
            self.name, ", reentrant" if self.reentrant else ""
        )


def _acquisition_site():
    """``file:line (function)`` of the frame that asked for the lock."""
    frame = sys._getframe(2)
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return "%s:%d (%s)" % (
        frame.f_code.co_filename, frame.f_lineno, frame.f_code.co_name
    )


class LockOrderWitness:
    """Records the global lock acquisition graph and detects cycles.

    Nodes are lock *names* (not instances): two locks created for the
    same role — e.g. every ``cache.stats`` — share a node, so the graph
    states the intended order over lock roles and a cycle between roles
    is flagged even when the two runs touched different instances.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._held = threading.local()
        self._edges = {}  # guarded-by: _lock
        self._names = set()  # guarded-by: _lock
        self._acquisitions = 0  # guarded-by: _lock

    # Hooks called by InstrumentedLock ----------------------------------------

    def _stack(self):
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def before_acquire(self, lock):
        stack = self._stack()
        for held in stack:
            if held is lock:
                if lock.reentrant:
                    return
                raise LockOrderError(
                    "self-deadlock: thread %r is re-acquiring non-reentrant "
                    "lock %r it already holds (at %s)"
                    % (threading.current_thread().name, lock.name,
                       _acquisition_site())
                )
        # a same-name pair here is two distinct instances of one role
        # nested inside each other: a self-loop in the role graph, which
        # find_cycles reports as a cycle
        edges = [(held.name, lock.name) for held in stack]
        if not edges:
            return
        with self._lock:
            fresh = [edge for edge in edges if edge not in self._edges]
            if not fresh:
                return
            site = _acquisition_site()
            for edge in fresh:
                self._edges[edge] = site

    def after_acquire(self, lock):
        self._stack().append(lock)
        with self._lock:
            self._names.add(lock.name)
            self._acquisitions += 1

    def on_release(self, lock):
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                return

    # Reporting ---------------------------------------------------------------

    def edges(self):
        """``{(from_name, to_name): example_site}`` snapshot."""
        with self._lock:
            return dict(self._edges)

    def lock_names(self):
        with self._lock:
            return sorted(self._names)

    @property
    def acquisitions(self):
        with self._lock:
            return self._acquisitions

    def find_cycles(self):
        """All elementary lock-order cycles, each as a list of names.

        Returns one representative cycle per strongly connected
        component of size > 1 (plus every self-loop) — enough to name
        the deadlock without enumerating the exponential cycle space.
        """
        edges = self.edges()
        graph = {}
        for source, target in edges:
            graph.setdefault(source, set()).add(target)
            graph.setdefault(target, set())
        cycles = [
            [name, name] for name in graph if name in graph.get(name, ())
        ]
        for component in _strongly_connected(graph):
            if len(component) > 1:
                cycles.append(_component_cycle(graph, component))
        return cycles

    def assert_acyclic(self):
        """Raise :class:`LockOrderError` naming every cycle, or pass."""
        cycles = self.find_cycles()
        if not cycles:
            return
        edges = self.edges()
        lines = [
            "lock-order witness found %d cycle(s) in the acquisition graph:"
            % len(cycles)
        ]
        for cycle in cycles:
            lines.append("  cycle: %s" % " -> ".join(cycle))
            for source, target in zip(cycle, cycle[1:]):
                site = edges.get((source, target), "<unrecorded>")
                lines.append("    %s -> %s   first seen at %s"
                             % (source, target, site))
        raise LockOrderError("\n".join(lines))

    def snapshot(self):
        with self._lock:
            return {
                "locks": sorted(self._names),
                "edges": sorted("%s -> %s" % edge for edge in self._edges),
                "acquisitions": self._acquisitions,
            }

    def format_graph(self):
        """Human-readable edge list with example acquisition sites."""
        edges = self.edges()
        lines = [
            "lock-order witness: %d lock(s), %d edge(s), %d acquisition(s)"
            % (len(self.lock_names()), len(edges), self.acquisitions)
        ]
        for (source, target) in sorted(edges):
            lines.append(
                "  %-24s -> %-24s %s" % (source, target, edges[(source, target)])
            )
        return "\n".join(lines)


def _strongly_connected(graph):
    """Tarjan's SCC over ``{node: set(successors)}`` (iterative)."""
    index_of, low, on_stack = {}, {}, set()
    stack, components = [], []
    counter = itertools.count()
    for root in graph:
        if root in index_of:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index_of[root] = low[root] = next(counter)
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = low[successor] = next(counter)
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph[successor]))))
                    advanced = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _component_cycle(graph, component):
    """One concrete cycle walk inside a strongly connected component."""
    members = set(component)
    start = sorted(component)[0]
    path, seen = [start], {start}
    node = start
    while True:
        successor = next(
            candidate for candidate in sorted(graph[node])
            if candidate in members
        )
        if successor in seen:
            path.append(successor)
            return path[path.index(successor):]
        path.append(successor)
        seen.add(successor)
        node = successor

"""Command-line interface.

.. code-block:: bash

    python -m repro generate --scale-factor 0.1 --output /tmp/sn
    python -m repro query /tmp/sn "MATCH (p:Person) RETURN count(*) AS n"
    python -m repro explain /tmp/sn "MATCH (a:Person)-[:knows]->(b) RETURN *"
    python -m repro lint "MATCH (a) WHERE a.age > 5 AND a.age < 3 RETURN a"
    python -m repro check /tmp/sn "MATCH (a:Person)-[:knows*1..2]->(b) RETURN *"
    python -m repro livecheck /tmp/sn "MATCH (a:Person) RETURN a.firstName"
    python -m repro stats /tmp/sn
    python -m repro bench --experiment fig5
    python -m repro serve /tmp/sn --port 7474
    python -m repro bench-serve --clients 8
"""

import argparse
import sys

from repro.cypher.errors import CypherSyntaxError
from repro.dataflow import (
    ClusterCostModel,
    DEFAULT_BATCH_SIZE,
    ExecutionEnvironment,
)
from repro.engine import CypherRunner, GraphStatistics, MatchStrategy
from repro.epgm.io import CSVDataSink, CSVDataSource
from repro.harness.microbench import (
    DEFAULT_QUERIES as DEFAULT_MICRO_QUERIES,
    DEFAULT_REPEATS as DEFAULT_MICRO_REPEATS,
    DEFAULT_SCALE_FACTOR as DEFAULT_MICRO_SCALE,
)
from repro.ldbc import LDBCGenerator


def _environment(args):
    model = ClusterCostModel(workers=args.workers)
    # --workers on a subcommand (dest process_workers) means real OS
    # worker processes; the global --workers stays the *simulated*
    # cluster size fed to the cost model
    return ExecutionEnvironment(
        cost_model=model,
        batch_size=getattr(args, "batch_size", None),
        workers=getattr(args, "process_workers", None),
        columnar=getattr(args, "columnar", False),
    )


def _load(args):
    import os

    if not os.path.isdir(args.graph):
        raise SystemExit(
            "error: %r is not a graph directory (run 'repro generate' first)"
            % args.graph
        )
    environment = _environment(args)
    source = CSVDataSource(args.graph)
    graph = source.get_logical_graph(environment)
    statistics = source.get_statistics()
    return environment, graph, statistics


def _strategy(text):
    return {
        "homo": MatchStrategy.HOMOMORPHISM,
        "iso": MatchStrategy.ISOMORPHISM,
    }[text]


def cmd_generate(args):
    environment = _environment(args)
    dataset = LDBCGenerator(args.scale_factor, args.seed).generate()
    graph = dataset.to_logical_graph(environment)
    CSVDataSink(args.output).write_logical_graph(graph)
    counts = dataset.counts_by_label()
    print("wrote %s" % args.output)
    for label in sorted(counts):
        print("  %-14s %6d" % (label, counts[label]))
    return 0


def cmd_query(args):
    environment, graph, statistics = _load(args)
    runner = CypherRunner(
        graph,
        vertex_strategy=_strategy(args.vertex_strategy),
        edge_strategy=_strategy(args.edge_strategy),
        statistics=statistics,
    )
    environment.reset_metrics("query")
    rows = runner.execute_table(args.cypher)
    columns = list(rows[0]) if rows else []
    if columns:
        print("\t".join(columns))
        for row in rows:
            print("\t".join(str(row[column]) for column in columns))
    print(
        "-- %d row(s); simulated %.2f s on %d workers; %d records shuffled"
        % (
            len(rows),
            environment.simulated_runtime_seconds(),
            args.workers,
            environment.metrics.total_shuffled_records,
        ),
        file=sys.stderr,
    )
    return 0


def cmd_explain(args):
    _, graph, statistics = _load(args)
    runner = CypherRunner(
        graph, statistics=statistics, verify_plans=args.verify
    )
    if args.analyze:
        print(runner.explain_analyze(args.cypher))
    else:
        print(runner.explain(args.cypher))
    for diagnostic in runner.last_diagnostics:
        print(diagnostic.format(args.cypher), file=sys.stderr)
    if args.verify:
        print("-- plan verified: all structural invariants hold",
              file=sys.stderr)
    return 0


def cmd_lint(args):
    """Static query diagnostics without executing.

    Exit codes: 0 clean, 1 error diagnostics, 2 syntax error,
    3 warnings only (the shared analysis-CLI contract; see
    docs/analysis.md).
    """
    from repro.analysis import lint_query

    statistics = None
    if args.graph is not None:
        import os

        if not os.path.isdir(args.graph):
            raise SystemExit("error: %r is not a graph directory" % args.graph)
        statistics = CSVDataSource(args.graph).get_statistics()
        if statistics is None:
            raise SystemExit(
                "error: %r has no statistics; re-export the graph" % args.graph
            )
    try:
        diagnostics = lint_query(args.cypher, statistics=statistics)
    except CypherSyntaxError as exc:
        print("syntax error: %s" % exc, file=sys.stderr)
        return 2
    for diagnostic in diagnostics:
        print(diagnostic.format(args.cypher))
    errors = sum(1 for d in diagnostics if d.is_error)
    warnings = len(diagnostics) - errors
    print(
        "-- %d error(s), %d warning(s)" % (errors, warnings), file=sys.stderr
    )
    if errors:
        return 1
    return 3 if warnings else 0


def cmd_check(args):
    """Sanitized differential check + estimate audit for one query.

    Exit codes: 0 clean, 1 error diagnostics (lint errors, sanitizer
    findings, planner disagreement), 2 syntax error, 3 warnings only.
    """
    from repro.analysis import differential_check, lint_query

    environment, graph, statistics = _load(args)
    if statistics is None:
        statistics = GraphStatistics.from_graph(graph)
    try:
        lint_diagnostics = lint_query(args.cypher, statistics=statistics)
    except CypherSyntaxError as exc:
        print("syntax error: %s" % exc, file=sys.stderr)
        return 2
    for diagnostic in lint_diagnostics:
        print(diagnostic.format(args.cypher))
    if any(d.is_blocking for d in lint_diagnostics):
        print("-- blocked: fix the binding errors above", file=sys.stderr)
        return 1

    vertex_strategy = _strategy(args.vertex_strategy)
    edge_strategy = _strategy(args.edge_strategy)
    report = differential_check(
        graph,
        args.cypher,
        statistics=statistics,
        vertex_strategy=vertex_strategy,
        edge_strategy=edge_strategy,
    )
    for run in report.runs:
        print(
            "-- %-18s %6d row(s), %6d embedding(s) sanitized, %d finding(s)"
            % (run.planner, run.row_count, run.checked, len(run.diagnostics)),
            file=sys.stderr,
        )
    runner = CypherRunner(
        graph,
        vertex_strategy=vertex_strategy,
        edge_strategy=edge_strategy,
        statistics=statistics,
    )
    audit = runner.audit_estimates(args.cypher, max_q_error=args.max_q_error)
    print(audit.format_table(), file=sys.stderr)
    dynamic_diagnostics = report.diagnostics + audit.diagnostics
    for diagnostic in dynamic_diagnostics:
        print(diagnostic.format())

    diagnostics = lint_diagnostics + dynamic_diagnostics
    errors = sum(1 for d in diagnostics if d.is_error)
    warnings = len(diagnostics) - errors
    verdict = "planners agree" if report.agree else "PLANNERS DISAGREE"
    print(
        "-- check: %s; %d error(s), %d warning(s)" % (verdict, errors, warnings),
        file=sys.stderr,
    )
    if errors:
        return 1
    return 3 if warnings else 0


def cmd_racecheck(args):
    """Static lock-discipline lint (C3xx) over our own Python source.

    Exit codes match ``repro check``: 0 clean, 1 error diagnostics,
    2 un-parseable source, 3 warnings only.
    """
    from repro.analysis.concurrency import racecheck_paths

    try:
        report = racecheck_paths(args.paths)
    except SyntaxError as exc:
        print("syntax error: %s" % exc, file=sys.stderr)
        return 2
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    for diagnostic in report.diagnostics:
        print(diagnostic.format())
    if args.verbose:
        print(report.format_graph(), file=sys.stderr)
    print("-- %s" % report.format_summary(), file=sys.stderr)
    if report.errors:
        return 1
    return 3 if report.warnings else 0


def cmd_wirecheck(args):
    """Wire-protocol verification for the worker runtime (W5xx).

    Layer 1 diffs the message constructors and handler arms extracted
    from the parent/worker sources against the declared pipe
    vocabulary (:mod:`repro.dataflow.workers.messages`); Layer 2
    exhaustively model-checks the cancel/done, spec-cache, ring and
    resident-eviction protocols.  Exit codes match ``repro check``:
    0 clean, 1 error diagnostics, 2 un-parseable source, 3 warnings
    only.
    """
    from repro.analysis.protocol import wirecheck_paths
    from repro.analysis.wire_models import check_all

    try:
        report = wirecheck_paths()
    except SyntaxError as exc:
        print("syntax error: %s" % exc, file=sys.stderr)
        return 2
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    diagnostics = list(report.diagnostics)
    results = check_all(max_states=args.max_states)
    for result in results.values():
        diagnostics.extend(result.diagnostics)
    for diagnostic in diagnostics:
        print(diagnostic.format())
    if args.verbose:
        print(report.format_vocabulary(), file=sys.stderr)
        for result in results.values():
            print(result.format_summary(), file=sys.stderr)
    bounded = [r.model for r in results.values() if not r.complete]
    if bounded:
        print(
            "warning: state cap hit for model(s) %s — absence of "
            "findings is not a proof" % ", ".join(bounded),
            file=sys.stderr,
        )
    states = sum(r.states_explored for r in results.values())
    print(
        "-- %s; %d model(s), %d state(s) explored"
        % (report.format_summary(), len(results), states),
        file=sys.stderr,
    )
    errors = sum(1 for d in diagnostics if d.is_error)
    if errors:
        return 1
    # a capped exploration is a warning: nothing found, nothing proven
    return 3 if len(diagnostics) > errors or bounded else 0


def cmd_flowcheck(args):
    """Static layout-flow verification (S3xx) + UDF shippability (P4xx).

    Compiles the query under all three planners, abstractly interprets
    each physical plan against the §3.3 layout contracts, and classifies
    every dataflow UDF (including the fused chain stages) as
    process-shippable or not.  Exit codes match ``repro check``: 0 proven
    and shippable, 1 error diagnostics, 2 syntax error, 3 warnings only.
    """
    from repro.analysis import lint_query
    from repro.engine.planning import (
        ExhaustivePlanner,
        GreedyPlanner,
        LeftDeepPlanner,
    )

    environment, graph, statistics = _load(args)
    if statistics is None:
        statistics = GraphStatistics.from_graph(graph)
    try:
        lint_diagnostics = lint_query(args.cypher, statistics=statistics)
    except CypherSyntaxError as exc:
        print("syntax error: %s" % exc, file=sys.stderr)
        return 2
    for diagnostic in lint_diagnostics:
        print(diagnostic.format(args.cypher))
    if any(d.is_blocking for d in lint_diagnostics):
        print("-- blocked: fix the binding errors above", file=sys.stderr)
        return 1

    vertex_strategy = _strategy(args.vertex_strategy)
    edge_strategy = _strategy(args.edge_strategy)
    diagnostics = list(lint_diagnostics)
    all_proven = True
    all_shippable = True
    for planner_cls in (GreedyPlanner, ExhaustivePlanner, LeftDeepPlanner):
        runner = CypherRunner(
            graph,
            statistics=statistics,
            planner_cls=planner_cls,
            vertex_strategy=vertex_strategy,
            edge_strategy=edge_strategy,
        )
        flow = runner.flowcheck(args.cypher)
        ship = runner.check_shippable(args.cypher)
        all_proven = all_proven and flow.proven
        all_shippable = all_shippable and ship.shippable
        diagnostics += flow.diagnostics + ship.diagnostics
        print(
            "-- %-18s %s; %s"
            % (planner_cls.__name__, flow.format_summary(),
               ship.format_summary()),
            file=sys.stderr,
        )
    for diagnostic in diagnostics[len(lint_diagnostics):]:
        print(diagnostic.format(args.cypher))

    errors = sum(1 for d in diagnostics if d.is_error)
    warnings = len(diagnostics) - errors
    verdict = []
    verdict.append("layout proven" if all_proven else "layout NOT proven")
    verdict.append("UDFs shippable" if all_shippable else "UDFs NOT shippable")
    print(
        "-- flowcheck: %s; %d error(s), %d warning(s)"
        % ("; ".join(verdict), errors, warnings),
        file=sys.stderr,
    )
    if errors:
        return 1
    return 3 if warnings else 0


def cmd_livecheck(args):
    """Backward liveness + static cost bounds (S4xx) for one query.

    Compiles the query under all three planners, propagates the RETURN
    clause's demand down each physical plan (reporting dead columns,
    dead property bytes and never-read paths), and composes the
    statically certified worst-case cost.  With ``--max-cost-bound`` the
    certificate is checked like the query service's admission control
    would.  Exit codes match ``repro check``: 0 all bytes live and
    admissible, 1 error diagnostics, 2 syntax error, 3 warnings only.
    """
    from repro.analysis import lint_query
    from repro.engine.planning import (
        ExhaustivePlanner,
        GreedyPlanner,
        LeftDeepPlanner,
    )

    environment, graph, statistics = _load(args)
    if statistics is None:
        statistics = GraphStatistics.from_graph(graph)
    try:
        lint_diagnostics = lint_query(args.cypher, statistics=statistics)
    except CypherSyntaxError as exc:
        print("syntax error: %s" % exc, file=sys.stderr)
        return 2
    for diagnostic in lint_diagnostics:
        print(diagnostic.format(args.cypher))
    if any(d.is_blocking for d in lint_diagnostics):
        print("-- blocked: fix the binding errors above", file=sys.stderr)
        return 1

    vertex_strategy = _strategy(args.vertex_strategy)
    edge_strategy = _strategy(args.edge_strategy)
    diagnostics = list(lint_diagnostics)
    for planner_cls in (GreedyPlanner, ExhaustivePlanner, LeftDeepPlanner):
        runner = CypherRunner(
            graph,
            statistics=statistics,
            planner_cls=planner_cls,
            vertex_strategy=vertex_strategy,
            edge_strategy=edge_strategy,
        )
        report = runner.livecheck(args.cypher)
        certificate = runner.certify_cost(args.cypher)
        diagnostics += report.diagnostics
        admission = certificate.diagnostic(args.max_cost_bound)
        if admission is not None:
            diagnostics.append(admission)
        print(
            "-- %-18s %s; %s"
            % (planner_cls.__name__, report.format_summary(),
               certificate.format_summary()),
            file=sys.stderr,
        )
    for diagnostic in diagnostics[len(lint_diagnostics):]:
        print(diagnostic.format(args.cypher))

    errors = sum(1 for d in diagnostics if d.is_error)
    warnings = len(diagnostics) - errors
    print(
        "-- livecheck: %d error(s), %d warning(s)" % (errors, warnings),
        file=sys.stderr,
    )
    if errors:
        return 1
    return 3 if warnings else 0


def cmd_stats(args):
    environment, graph, statistics = _load(args)
    if statistics is None:
        statistics = GraphStatistics.from_graph(graph)
    print("vertices: %d" % statistics.vertex_count)
    for label in sorted(statistics.vertex_count_by_label):
        print("  :%-14s %6d" % (label, statistics.vertex_count_by_label[label]))
    print("edges: %d" % statistics.edge_count)
    for label in sorted(statistics.edge_count_by_label):
        print(
            "  :%-14s %6d  (distinct sources %d, targets %d)"
            % (
                label,
                statistics.edge_count_by_label[label],
                statistics.distinct_source_by_label.get(label, 0),
                statistics.distinct_target_by_label.get(label, 0),
            )
        )
    return 0


def cmd_shell(args):
    environment, graph, statistics = _load(args)
    runner = CypherRunner(graph, statistics=statistics)
    print(
        "repro shell — %d vertices, %d edges; Cypher queries, "
        "':explain <q>', ':lint <q>', ':sanitize [on|off]', ':quit'"
        % (graph.vertex_count(), graph.edge_count())
    )
    while True:
        try:
            line = input("cypher> ").strip()
        except EOFError:
            break
        if not line:
            continue
        if line in (":quit", ":exit", ":q"):
            break
        try:
            if line.startswith(":explain "):
                print(runner.explain(line[len(":explain "):]))
                continue
            if line.startswith(":lint "):
                text = line[len(":lint "):]
                diagnostics = runner.lint(text)
                for diagnostic in diagnostics:
                    print(diagnostic.format(text))
                if not diagnostics:
                    print("-- no findings")
                continue
            if line == ":sanitize" or line.startswith(":sanitize "):
                argument = line[len(":sanitize"):].strip()
                if argument in ("", "toggle"):
                    enable = not runner.sanitize
                elif argument in ("on", "raise", "collect"):
                    enable = argument if argument == "collect" else True
                elif argument == "off":
                    enable = False
                else:
                    print("usage: :sanitize [on|off|collect]")
                    continue
                runner.set_sanitize(enable)
                print(
                    "-- sanitized execution %s"
                    % ("off" if not runner.sanitize else
                       "on (%s mode)" % ("collect" if runner.sanitize ==
                                         "collect" else "raise"))
                )
                continue
            environment.reset_metrics("shell")
            rows = runner.execute_table(line)
            columns = list(rows[0]) if rows else []
            if columns:
                print("\t".join(columns))
                for row in rows:
                    print("\t".join(str(row[c]) for c in columns))
            status = "-- %d row(s), simulated %.2f s" % (
                len(rows), environment.simulated_runtime_seconds()
            )
            if runner.last_sanitizer is not None:
                status += "; %s" % runner.last_sanitizer.summary()
            print(status)
        except Exception as exc:  # noqa: BLE001 — REPL keeps running
            print("error: %s" % exc)
    return 0


def cmd_bench(args):
    from repro.harness import (
        SCALE_FACTOR_LARGE,
        SCALE_FACTOR_SMALL,
        datasize_series,
        format_table,
        intermediate_result_sizes,
        selectivity_series,
        speedup_series,
    )

    if args.experiment == "fig3":
        rows = []
        for query in ("Q1", "Q2", "Q3"):
            for point in speedup_series(query, SCALE_FACTOR_LARGE, [1, 2, 4, 8, 16], "low"):
                rows.append((query, point["workers"], point["seconds"],
                             round(point["speedup"], 1)))
        for query in ("Q4", "Q5", "Q6"):
            for point in speedup_series(query, SCALE_FACTOR_SMALL, [1, 2, 4, 8, 16]):
                rows.append((query, point["workers"], point["seconds"],
                             round(point["speedup"], 1)))
        print(format_table(["query", "workers", "sim s", "speedup"], rows))
    elif args.experiment == "fig4":
        table = datasize_series(
            ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"],
            16,
            [SCALE_FACTOR_SMALL, SCALE_FACTOR_LARGE],
        )
        rows = [
            (query, series[0]["seconds"], series[1]["seconds"])
            for query, series in table.items()
        ]
        print(format_table(["query", "SF-small [s]", "SF-large [s]"], rows))
    elif args.experiment == "fig5":
        table = selectivity_series(["Q1", "Q2", "Q3"], 4, SCALE_FACTOR_LARGE)
        rows = []
        for query, runs in table.items():
            for selectivity in ("high", "medium", "low"):
                run = runs[selectivity]
                rows.append(
                    (query, selectivity, run.simulated_seconds, run.result_count)
                )
        print(format_table(["query", "selectivity", "sim s", "results"], rows))
    elif args.experiment == "table3":
        table = intermediate_result_sizes(SCALE_FACTOR_LARGE)
        rows = [
            (pattern, c["high"], c["medium"], c["low"])
            for pattern, c in table.items()
        ]
        print(format_table(["pattern", "high", "medium", "low"], rows))
    else:
        raise SystemExit("unknown experiment %r" % args.experiment)
    return 0


def cmd_serve(args):
    """Serve one graph over HTTP/JSON via the concurrent query service."""
    from repro.server import GraphRegistry, QueryHTTPServer, QueryService

    environment, graph, statistics = _load(args)
    if statistics is None:
        statistics = GraphStatistics.from_graph(graph)
    registry = GraphRegistry()
    registry.register(args.name, graph, statistics)
    service = QueryService(
        registry,
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        default_timeout=args.default_timeout,
        vertex_strategy=_strategy(args.vertex_strategy),
        edge_strategy=_strategy(args.edge_strategy),
        result_cache_size=args.result_cache,
    )
    server = QueryHTTPServer(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    host, port = server.address
    # the smoke test (scripts/serve_smoke.py) parses this exact line
    print("repro-serve listening on %s:%d" % (host, port), flush=True)
    print(
        "-- graph %r: %d vertices, %d edges; %d workers, queue %d; "
        "POST /query {graph, query, parameters}, POST /shutdown to stop"
        % (args.name, statistics.vertex_count, statistics.edge_count,
           args.max_concurrency, args.max_queue),
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    print("repro-serve: shut down cleanly", flush=True)
    return 0


def cmd_bench_serve(args):
    """Closed-loop concurrent load over the query service (Q1-Q6)."""
    import json

    from repro.server.bench import run_bench

    def progress(message):
        print("-- %s" % message, file=sys.stderr)

    report = run_bench(
        clients=args.clients,
        rounds=args.rounds,
        scale_factor=args.scale_factor,
        seed=args.seed,
        timeout=args.timeout,
        result_cache_size=args.result_cache,
        progress=progress,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.passed else 1


def cmd_bench_micro(args):
    """Real CPU-time microbenchmarks: columnar vs batched vs per-record."""
    from repro.harness.microbench import (
        format_microbench,
        next_trajectory_path,
        run_microbench,
        write_microbench,
    )

    worker_sweep = args.worker_sweep
    if worker_sweep is not None and not worker_sweep:
        worker_sweep = True  # bare --worker-sweep: the default counts
    report = run_microbench(
        queries=tuple(args.queries),
        scale_factor=args.scale_factor,
        seed=args.seed,
        workers=args.workers,
        repeats=args.repeats,
        batch_size=args.batch_size,
        worker_sweep=worker_sweep,
    )
    print(format_microbench(report))
    output = args.output
    if output is None:
        output = next_trajectory_path()
    if output != "-":
        write_microbench(report, output)
        print("-- wrote %s" % output, file=sys.stderr)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cypher pattern matching on a simulated distributed "
        "dataflow engine (Gradoop reproduction)",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="simulated cluster size"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate an LDBC-like graph")
    generate.add_argument("--scale-factor", type=float, default=0.1)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--output", required=True, help="target directory")
    generate.set_defaults(handler=cmd_generate)

    query = commands.add_parser("query", help="run a Cypher query on a CSV graph")
    query.add_argument("graph", help="graph directory (CSV format)")
    query.add_argument("cypher", help="the query text")
    query.add_argument(
        "--vertex-strategy", choices=["homo", "iso"], default="homo"
    )
    query.add_argument("--edge-strategy", choices=["homo", "iso"], default="iso")
    query.set_defaults(handler=cmd_query)

    explain = commands.add_parser("explain", help="show the physical query plan")
    explain.add_argument("graph")
    explain.add_argument("cypher")
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="execute the plan and show actual row counts",
    )
    explain.add_argument(
        "--verify",
        action="store_true",
        help="check the plan against the structural invariants",
    )
    explain.set_defaults(handler=cmd_explain)

    lint = commands.add_parser(
        "lint", help="static query diagnostics without executing"
    )
    lint.add_argument("cypher", help="the query text")
    lint.add_argument(
        "--graph",
        help="graph directory; enables statistics-based warnings "
        "(unknown labels and edge types)",
    )
    lint.set_defaults(handler=cmd_lint)

    check = commands.add_parser(
        "check",
        help="sanitized differential check: lint, run the query under all "
        "three planners with embedding validation, compare result "
        "multisets and audit cardinality estimates",
    )
    check.add_argument("graph")
    check.add_argument("cypher")
    check.add_argument(
        "--vertex-strategy", choices=["homo", "iso"], default="homo"
    )
    check.add_argument("--edge-strategy", choices=["homo", "iso"], default="iso")
    check.add_argument(
        "--max-q-error",
        type=float,
        default=10.0,
        help="estimate q-error above which S211 warnings are emitted",
    )
    check.set_defaults(handler=cmd_check)

    racecheck = commands.add_parser(
        "racecheck",
        help="static lock-discipline lint (C3xx) over Python source: "
        "guarded-by violations, lock-order inversions, blocking calls "
        "under locks, per-call locks",
    )
    racecheck.add_argument(
        "paths", nargs="+",
        help="Python files or directories (e.g. src/repro)",
    )
    racecheck.add_argument(
        "--verbose", action="store_true",
        help="also print the static lock-order graph",
    )
    racecheck.set_defaults(handler=cmd_racecheck)

    wirecheck = commands.add_parser(
        "wirecheck",
        help="wire-protocol verification for the worker runtime: diff "
        "extracted message constructors/handler arms against the "
        "declared pipe vocabulary (W501-W505) and model-check the "
        "cancel/done, spec-cache, ring and resident-eviction "
        "protocols (W506-W508)",
    )
    wirecheck.add_argument(
        "--verbose", action="store_true",
        help="also print the per-pipe vocabulary coverage table and "
        "per-model exploration summaries",
    )
    wirecheck.add_argument(
        "--max-states", type=int, default=100000,
        help="state-space cap per model (absence of findings is not a "
        "proof once hit)",
    )
    wirecheck.set_defaults(handler=cmd_wirecheck)

    flowcheck = commands.add_parser(
        "flowcheck",
        help="static layout-flow verification: abstractly interpret the "
        "physical plan under every planner, proving the §3.3 embedding "
        "layout contracts (S3xx) and certifying every dataflow UDF "
        "process-shippable (P4xx)",
    )
    flowcheck.add_argument("graph")
    flowcheck.add_argument("cypher")
    flowcheck.add_argument(
        "--vertex-strategy", choices=["homo", "iso"], default="homo"
    )
    flowcheck.add_argument(
        "--edge-strategy", choices=["homo", "iso"], default="iso"
    )
    flowcheck.set_defaults(handler=cmd_flowcheck)

    livecheck = commands.add_parser(
        "livecheck",
        help="backward liveness and static cost bounds: propagate the "
        "RETURN clause's demand down every planner's physical plan "
        "(dead columns, dead property bytes, never-read paths — S4xx) "
        "and certify the worst-case output cardinality and bytes moved",
    )
    livecheck.add_argument("graph")
    livecheck.add_argument("cypher")
    livecheck.add_argument(
        "--vertex-strategy", choices=["homo", "iso"], default="homo"
    )
    livecheck.add_argument(
        "--edge-strategy", choices=["homo", "iso"], default="iso"
    )
    livecheck.add_argument(
        "--max-cost-bound", type=float, default=None,
        help="emit S405 when any operator's certified output "
        "cardinality exceeds this bound (the admission-control check)",
    )
    livecheck.set_defaults(handler=cmd_livecheck)

    stats = commands.add_parser("stats", help="show graph statistics")
    stats.add_argument("graph")
    stats.set_defaults(handler=cmd_stats)

    shell = commands.add_parser("shell", help="interactive Cypher shell")
    shell.add_argument("graph")
    shell.set_defaults(handler=cmd_shell)

    bench = commands.add_parser("bench", help="run one paper experiment")
    bench.add_argument(
        "--experiment",
        choices=["fig3", "fig4", "fig5", "table3"],
        default="fig5",
    )
    bench.set_defaults(handler=cmd_bench)

    serve = commands.add_parser(
        "serve",
        help="serve a CSV graph over HTTP/JSON: concurrent queries, "
        "prepared statements, plan caching, admission control and "
        "per-query deadlines",
    )
    serve.add_argument("graph", help="graph directory (CSV format)")
    serve.add_argument("--name", default="default", help="registry name")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    serve.add_argument("--max-concurrency", type=int, default=4)
    serve.add_argument("--max-queue", type=int, default=16)
    serve.add_argument(
        "--default-timeout", type=float, default=None,
        help="per-query deadline in seconds (default: none)",
    )
    serve.add_argument(
        "--result-cache", type=int, default=0,
        help="result cache entries (0 disables result caching)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=None,
        help="chunk length of batched (fused) execution "
        "(default: %d)" % DEFAULT_BATCH_SIZE,
    )
    serve.add_argument(
        "--workers", dest="process_workers", type=int, default=None,
        metavar="N",
        help="run certified fused chains and hash joins on N worker "
        "processes (default: in-process execution); distinct from the "
        "global --workers, which sets the simulated cluster size",
    )
    serve.add_argument(
        "--columnar", action="store_true",
        help="run fused chains over columnar embedding chunks "
        "(vectorized kernels, zero-copy worker transfer); results, "
        "metrics and diagnostics are identical to batched execution",
    )
    serve.add_argument(
        "--vertex-strategy", choices=["homo", "iso"], default="homo"
    )
    serve.add_argument("--edge-strategy", choices=["homo", "iso"], default="iso")
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.set_defaults(handler=cmd_serve)

    bench_serve = commands.add_parser(
        "bench-serve",
        help="closed-loop multi-client load over the query service, "
        "differentially verified against serial execution",
    )
    bench_serve.add_argument("--clients", type=int, default=8)
    bench_serve.add_argument("--rounds", type=int, default=2)
    bench_serve.add_argument("--scale-factor", type=float, default=0.03)
    bench_serve.add_argument("--seed", type=int, default=11)
    bench_serve.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-query deadline during the load phase",
    )
    bench_serve.add_argument(
        "--result-cache", type=int, default=0,
        help="result cache entries for the service under test",
    )
    bench_serve.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    bench_serve.set_defaults(handler=cmd_bench_serve)

    bench_micro = commands.add_parser(
        "bench-micro",
        help="real CPU-time engine microbenchmarks: each query timed "
        "under batched/fused, columnar, and per-record execution; "
        "writes a BENCH_<n>.json trajectory file for regression "
        "tracking",
    )
    bench_micro.add_argument(
        "--queries", nargs="+", default=list(DEFAULT_MICRO_QUERIES),
        choices=["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"],
        help="paper queries to time",
    )
    bench_micro.add_argument(
        "--scale-factor", type=float, default=DEFAULT_MICRO_SCALE,
        help="LDBC graph scale (pinned default: %s, so successive "
        "BENCH_<n>.json files stay comparable)" % DEFAULT_MICRO_SCALE,
    )
    bench_micro.add_argument("--seed", type=int, default=42)
    bench_micro.add_argument(
        "--repeats", type=int, default=DEFAULT_MICRO_REPEATS,
        help="timed trials per (query, mode) after one warm-up "
        "(pinned default: %d)" % DEFAULT_MICRO_REPEATS,
    )
    bench_micro.add_argument(
        "--batch-size", type=int, default=None,
        help="chunk length of batched execution "
        "(default: %d)" % DEFAULT_BATCH_SIZE,
    )
    bench_micro.add_argument(
        "--worker-sweep", nargs="*", type=int, default=None, metavar="N",
        help="also sweep real worker-process counts and record "
        "wall-clock speedup curves (default counts: 1 2 4 8)",
    )
    bench_micro.add_argument(
        "--output", default=None,
        help="JSON report path; default picks the next BENCH_<n>.json "
        "in the current directory, '-' skips the file",
    )
    bench_micro.set_defaults(handler=cmd_bench_micro)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Simulated cluster cost model.

The paper evaluates on a 16-node shared-nothing cluster; we reproduce the
*shape* of its scalability results by translating execution metrics into a
simulated wall-clock time.  The model is deliberately simple and each term
maps to an effect the paper observes:

* per-record CPU cost with a **barrier per operator** — the job is as slow
  as its busiest worker, so skewed partitions (power-law ``knows`` degrees)
  stagnate speedup exactly as in Fig. 3;
* per-byte network cost on the busiest receiver — data shuffling dominates
  analytical queries with large intermediate results;
* a **spill penalty** when a worker's in-memory working set exceeds its
  budget — adding workers adds aggregate memory, which removes the penalty
  and yields the super-linear speedups reported in §4.1;
* a fixed per-job overhead — small datasets stop scaling past a few
  workers (SF 10 in the paper stagnates after 4).
"""

from dataclasses import dataclass

from .metrics import JobMetrics


@dataclass(frozen=True)
class ClusterCostModel:
    """Cost parameters for a simulated shared-nothing cluster.

    Attributes:
        workers: Number of worker machines (= dataflow parallelism).
        cpu_seconds_per_record: Processing cost per input record.
        network_seconds_per_byte: Transfer cost per byte received by the
            busiest worker during a shuffle.
        memory_records_per_worker: In-memory working-set budget per worker;
            operators whose per-worker materialized state exceeds it spill.
        spill_penalty: Multiplier applied to the CPU term of a spilling
            worker (models writing/reading intermediate results to disk).
        job_overhead_seconds: Fixed scheduling/deployment cost per job.
        barrier_overhead_seconds: Fixed cost per operator barrier; grows
            with plan depth, independent of data.
    """

    workers: int = 4
    cpu_seconds_per_record: float = 2.0e-6
    network_seconds_per_byte: float = 1.0e-8
    memory_records_per_worker: int = 2_000_000
    spill_penalty: float = 3.0
    job_overhead_seconds: float = 4.0
    barrier_overhead_seconds: float = 0.05

    def with_workers(self, workers):
        """A copy of this model scaled to a different cluster size."""
        return ClusterCostModel(
            workers=workers,
            cpu_seconds_per_record=self.cpu_seconds_per_record,
            network_seconds_per_byte=self.network_seconds_per_byte,
            memory_records_per_worker=self.memory_records_per_worker,
            spill_penalty=self.spill_penalty,
            job_overhead_seconds=self.job_overhead_seconds,
            barrier_overhead_seconds=self.barrier_overhead_seconds,
        )

    # ----------------------------------------------------------------------

    def operator_seconds(self, run):
        """Simulated time for one operator run (barrier semantics)."""
        worker_cpu = 0.0
        for worker, records in enumerate(run.worker_records_in):
            seconds = records * self.cpu_seconds_per_record
            if worker < run.spilled_workers:
                # spilled_workers counts workers over budget; which specific
                # worker spilled does not change the max, only how many did.
                seconds *= self.spill_penalty
            worker_cpu = max(worker_cpu, seconds)
        if run.spilled_workers and run.worker_records_in:
            # The busiest worker is the most likely to have spilled: charge
            # the penalty against the maximum as well.
            worker_cpu = max(
                worker_cpu,
                max(run.worker_records_in)
                * self.cpu_seconds_per_record
                * self.spill_penalty,
            )
        network = 0.0
        if run.worker_shuffle_bytes_in:
            network = max(run.worker_shuffle_bytes_in) * self.network_seconds_per_byte
        return worker_cpu + network + self.barrier_overhead_seconds

    def job_seconds(self, metrics):
        """Simulated wall-clock runtime of a whole job."""
        if not isinstance(metrics, JobMetrics):
            raise TypeError("expected JobMetrics, got %r" % type(metrics).__name__)
        return self.job_overhead_seconds + sum(
            self.operator_seconds(run) for run in metrics.runs
        )

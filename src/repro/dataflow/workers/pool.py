"""The worker pool: parent-side orchestration of sharded execution.

A :class:`WorkerPool` owns ``workers`` long-lived child processes, each
with its own channel set (request/response pipes, a cancellation pipe
that overtakes queued work, and two shared-memory rings — see
:mod:`.channels`).  Partitions are assigned to workers by the static
:func:`~repro.dataflow.partitioner.assign_partitions` map, Ray-streaming
style: the "execution graph" is the fixed partition→worker placement,
and every task for partition *p* runs on the worker owning *p*, so a
worker's resident-source cache (immutable scan inputs shipped once)
keeps hitting across queries.

Concurrency model, chosen to honor the repository's lock discipline
(no blocking call under a named lock — C303):

* callers dispatch under no lock; per-worker channel *sends* serialize
  on that worker's ``workers.channel`` leaf lock (pipe ``send`` and the
  non-blocking ring write are the only operations inside);
* one daemon **receiver thread** drains every worker's response pipe
  with ``multiprocessing.connection.wait`` and routes each message to
  the dispatching caller's per-job queue — the only cross-thread state,
  the job table, is guarded by the ``workers.pool`` lock and never held
  across a blocking call;
* callers block on their own plain ``queue.SimpleQueue`` (never under a
  lock), polling the run's :class:`CancellationToken` between waits, so
  a deadline turns into ``("cancel", job)`` on every cancel pipe and the
  worker abandons in-flight chunks.

Failure containment: a worker that dies mid-task is detected by the
receiver thread (EOF on its response pipe) and a crash notice goes to
every waiting dispatch — but each dispatch knows which workers its job
was placed on and ignores crashes of workers it never used, so one
death only fails the jobs that actually lost tasks.  For those, the
raised error is a :class:`JobExecutionError` naming the operator whose
task was lost, and the pool respawns the worker (with empty caches)
before its next dispatch; the dead handle is only closed after its
``send_lock`` is held once more, so a dispatcher mid-send can never
write into a recycled descriptor.

Everything shipped is certified first: chains through the ``P4xx``
analyzer's :func:`~repro.analysis.udfcheck.analyze_chain`, join UDFs
through :func:`~repro.analysis.udfcheck.analyze_callables` — an
unshippable plan silently stays on the in-process path.
"""

import atexit
import contextlib
import hashlib
import itertools
import multiprocessing
import os
import queue
import sys
import threading
import time
from collections import OrderedDict
from multiprocessing import connection

from repro.locks import named_lock

from ..errors import JobExecutionError
from ..partitioner import assign_partitions
from .channels import INLINE_LIMIT, RingSegment
from .messages import (
    BLOB_INLINE,
    BLOB_RING,
    CANCEL,
    CANCELLED,
    CHAIN,
    DONE,
    ERROR,
    EXCHANGE,
    FREE,
    JOIN,
    OK,
    PJOIN,
    SHIP,
    SHUFFLE,
    SHUTDOWN,
    SRC_BLOB,
    SRC_CACHED,
    SRC_STORE,
    trace,
)
from .shipping import (
    SPEC_CACHE_LIMIT,
    ChainSpec,
    JoinSpec,
    decode_records,
    dump_functions,
    encode_records,
)

__all__ = ["WorkerPool", "WorkerCrashError", "RemoteWorkerError"]

#: response batching inside the worker (count + seconds); small values
#: favor latency, the ring favors throughput — both are config knobs
DEFAULT_FLUSH_BATCH = 16
DEFAULT_FLUSH_TIMEOUT = 0.002

#: per-worker budget for resident source partitions (encoded bytes).
#: Ad-hoc queries mint fresh source-operator ids, so without a bound a
#: long-lived server would pin one copy of every scanned dataset per
#: distinct query; the pool evicts least-recently-used sources past
#: this budget and tells the worker to free them.
DEFAULT_RESIDENT_BYTES = 128 * 1024 * 1024

#: how long one blocking wait on the caller's result queue lasts before
#: the cancellation token is polled again
_WAIT_SLICE = 0.05


class WorkerCrashError(RuntimeError):
    """A worker process died while executing shipped tasks."""


class RemoteWorkerError(RuntimeError):
    """A worker-side failure whose cause could not be pickled back."""


def _pick_start_method():
    """``forkserver`` where available (fast fork of a clean, preloaded
    process — safe with parent threads), ``spawn`` everywhere else."""
    methods = multiprocessing.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


@contextlib.contextmanager
def _suppress_phantom_main():
    """Hide a ``__main__.__file__`` no child could re-run.

    A parent fed its script on stdin (``python - <<...``) or running
    interactively has ``__main__.__file__`` set to a path that does not
    exist on disk (``"<stdin>"``); multiprocessing's spawn preparation
    would tell every child to re-execute that file and the worker would
    die on arrival.  Workers never need the parent's ``__main__`` —
    ``worker_main`` lives in an importable module and shipped closures
    travel by value — so drop the attribute for the duration of the
    spawn and the preparation data simply omits it.
    """
    main = sys.modules.get("__main__")
    path = getattr(main, "__file__", None)
    if path is None or os.path.exists(path):
        yield
        return
    del main.__file__
    try:
        yield
    finally:
        main.__file__ = path


class _WorkerHandle:
    """Parent-side state of one worker process and its channels."""

    def __init__(self, index, process, req_conn, resp_conn, cancel_conn,
                 req_ring, resp_ring):
        self.index = index
        self.process = process
        self.req_conn = req_conn
        self.resp_conn = resp_conn
        self.cancel_conn = cancel_conn
        self.req_ring = req_ring
        self.resp_ring = resp_ring
        self.send_lock = named_lock("workers.channel")
        #: spec keys shipped and still cached worker-side, in the
        #: worker's exact LRU order — every batch touches its key and
        #: evictions mirror the worker's ``spec_cache_limit`` LRU, so
        #: the pool re-ships precisely the specs the worker dropped
        self.shipped = OrderedDict()  # guarded-by: send_lock
        #: resident source partitions this worker holds, cache key →
        #: encoded size; LRU-evicted past the pool's resident-bytes
        #: budget via ``free`` messages  # guarded-by: send_lock
        self.resident = OrderedDict()
        self.resident_bytes = 0  # guarded-by: send_lock
        #: cache keys referenced by the batch being built — never
        #: evicted in the same batch  # guarded-by: send_lock
        self.pinned = set()
        self.alive = True  # unsynchronized: flipped once by the receiver
        #: set (under send_lock) before the channels are torn down, so a
        #: dispatcher holding a stale handle fails cleanly instead of
        #: writing to a closed or recycled descriptor
        self.closed = False  # guarded-by: send_lock

    def pack_blob(self, payload):
        """Ring placement with inline fallback; caller holds send_lock."""
        if len(payload) > INLINE_LIMIT:
            ref = self.req_ring.try_write(payload)
            if ref is not None:
                return (BLOB_RING, ref[0], ref[1])
        return (BLOB_INLINE, payload)

    # resident-source accounting (callers hold send_lock) -------------------

    def hit_resident(self, cache_key):  # requires-lock: send_lock
        """Touch a resident partition; False when it has been evicted."""
        if cache_key not in self.resident:
            return False
        self.resident.move_to_end(cache_key)
        self.pinned.add(cache_key)
        return True

    def store_resident(self, cache_key, size):  # requires-lock: send_lock
        self.resident[cache_key] = size
        self.resident.move_to_end(cache_key)
        self.resident_bytes += size
        self.pinned.add(cache_key)

    def evict_resident(self, budget):  # requires-lock: send_lock
        """``("free", ...)`` messages for the oldest unpinned sources
        past ``budget`` bytes; appended after the batch's tasks so the
        worker frees only after running them."""
        if self.resident_bytes <= budget:
            return []
        frees = []
        for cache_key in list(self.resident):
            if self.resident_bytes <= budget:
                break
            if cache_key in self.pinned:
                continue
            self.resident_bytes -= self.resident.pop(cache_key)
            frees.append((FREE, cache_key[0], cache_key[1]))
        return frees

    def close(self, kill):
        for conn in (self.req_conn, self.cancel_conn, self.resp_conn):
            try:
                conn.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        if self.process is not None:
            if kill and self.process.is_alive():
                self.process.terminate()
            self.process.join(timeout=5)
            if self.process.is_alive():  # pragma: no cover - stuck child
                self.process.kill()
                self.process.join(timeout=5)
        self.req_ring.close()
        self.resp_ring.close()


class WorkerPool:
    """``workers`` sharded executor processes behind one dispatch API."""

    def __init__(self, workers, ring_bytes=None, flush_batch=None,
                 flush_timeout=None, start_method=None,
                 spec_cache_limit=None, resident_bytes=None):
        if workers < 1:
            raise ValueError("workers must be >= 1, got %r" % (workers,))
        self.workers = workers
        self.ring_bytes = ring_bytes
        self.flush_batch = flush_batch or DEFAULT_FLUSH_BATCH
        self.flush_timeout = (
            DEFAULT_FLUSH_TIMEOUT if flush_timeout is None else flush_timeout
        )
        self.spec_cache_limit = spec_cache_limit or SPEC_CACHE_LIMIT
        self.resident_bytes = (
            DEFAULT_RESIDENT_BYTES if resident_bytes is None
            else resident_bytes
        )
        self._start_method = start_method or _pick_start_method()
        self._lock = named_lock("workers.pool")
        self._handles = [None] * workers  # guarded-by: _lock
        self._active = {}  # job id → caller queue  # guarded-by: _lock
        self._ship_ok = {}  # spec key → bool  # guarded-by: _lock
        self._started = False  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._jobs = itertools.count(1)  # unsynchronized: atomic iterator
        self._receiver = None  # guarded-by: _lock
        self._receiver_stop = threading.Event()
        self._atexit = None  # guarded-by: _lock

    # lifecycle -------------------------------------------------------------

    def _spawn(self, ctx, index):
        req_parent, req_child = ctx.Pipe(duplex=False)
        resp_parent, resp_child = ctx.Pipe(duplex=False)
        cancel_parent, cancel_child = ctx.Pipe(duplex=False)
        req_ring = (
            RingSegment(capacity=self.ring_bytes)
            if self.ring_bytes else RingSegment()
        )
        resp_ring = (
            RingSegment(capacity=self.ring_bytes)
            if self.ring_bytes else RingSegment()
        )
        from .runtime import worker_main

        process = ctx.Process(
            target=worker_main,
            name="repro-worker-%d" % index,
            args=(
                index, req_parent, resp_child, cancel_parent,
                req_ring.descriptor(), resp_ring.descriptor(),
                self.flush_batch, self.flush_timeout,
                self.spec_cache_limit,
            ),
            daemon=True,
        )
        with _suppress_phantom_main():
            process.start()
        # the child inherited its pipe ends; drop ours so EOF propagates
        req_parent.close()
        resp_child.close()
        cancel_parent.close()
        return _WorkerHandle(
            index, process, req_child, resp_parent, cancel_child,
            req_ring, resp_ring,
        )

    def _ensure_started(self):
        """Start (or respawn crashed) workers and the receiver thread."""
        stale = []
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            ctx = multiprocessing.get_context(self._start_method)
            if not self._started:
                if self._start_method == "forkserver":
                    try:
                        multiprocessing.forkserver.set_forkserver_preload(
                            ["repro.dataflow.workers.runtime"]
                        )
                    except Exception:  # pragma: no cover - already running
                        pass
                self._started = True
                self._atexit = self.shutdown
                atexit.register(self._atexit)
            for index in range(self.workers):
                handle = self._handles[index]
                if handle is not None and handle.alive:
                    continue
                if handle is not None:
                    stale.append(handle)
                self._handles[index] = self._spawn(ctx, index)
            if self._receiver is None or not self._receiver.is_alive():
                self._receiver_stop.clear()
                self._receiver = threading.Thread(
                    target=self._receive_loop,
                    name="repro-worker-receiver",
                    daemon=True,
                )
                self._receiver.start()
            handles = list(self._handles)
        for handle in stale:
            # a dispatcher that fetched the old handle list may be
            # mid-send: taking send_lock waits it out, and the closed
            # flag turns any later send on the stale handle into a
            # clean WorkerCrashError instead of an OSError (or a write
            # into a recycled descriptor)
            with handle.send_lock:
                handle.closed = True
            handle.close(kill=True)
        return handles

    def shutdown(self):
        """Stop every worker and release channels; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = [h for h in self._handles if h is not None]
            self._handles = [None] * self.workers
            if self._atexit is not None:
                try:
                    atexit.unregister(self._atexit)
                except Exception:  # pragma: no cover - interpreter exit
                    pass
                self._atexit = None
            receiver = self._receiver
            self._receiver = None
        self._receiver_stop.set()
        for handle in handles:
            # serialize with in-flight dispatches and mark the handle
            # closed so stragglers raise WorkerCrashError, not OSError
            with handle.send_lock:
                handle.closed = True
                try:
                    # a leaf-lock pipe send is the channel design itself:
                    # send_lock only ever guards this worker's descriptor
                    handle.req_conn.send([(SHUTDOWN,)])  # racecheck: ignore[C306]
                except Exception:  # noqa: BLE001 — already dead
                    pass
        if receiver is not None and receiver.is_alive():
            receiver.join(timeout=5)
        for handle in handles:
            handle.close(kill=True)

    # receiver thread -------------------------------------------------------

    def _deliver(self, job, item):
        with self._lock:
            target = self._active.get(job)
        if target is not None:
            target.put(item)

    def _broadcast_crash(self, index):
        with self._lock:
            targets = list(self._active.values())
        for target in targets:
            target.put(("crash", index))

    def _receive_loop(self):
        while not self._receiver_stop.is_set():
            with self._lock:
                handles = [
                    h for h in self._handles if h is not None and h.alive
                ]
            conns = {handle.resp_conn: handle for handle in handles}
            if not conns:
                time.sleep(_WAIT_SLICE)
                continue
            try:
                ready = connection.wait(list(conns), timeout=0.2)
            except OSError:  # pragma: no cover - a conn closed mid-wait
                continue
            for conn in ready:
                handle = conns[conn]
                try:
                    batch = conn.recv()
                except (EOFError, OSError):
                    if self._receiver_stop.is_set():
                        return
                    handle.alive = False
                    self._broadcast_crash(handle.index)
                    continue
                trace("response", handle.index, batch)
                for message in batch:
                    self._route(handle, message)

    def _route(self, handle, message):
        kind = message[0]
        if kind == OK:
            _, job, seq, counts, fmt, blob = message
            if blob[0] == BLOB_RING:
                payload = handle.resp_ring.read(blob[1], blob[2])
            else:
                payload = blob[1]
            self._deliver(job, ("ok", seq, counts, fmt, payload))
        elif kind == CANCELLED:
            self._deliver(message[1], ("cancelled", message[2]))
        elif kind == ERROR:
            _, job, seq, stage, unwrapped, cause_payload, cause_repr = message
            self._deliver(
                job, ("error", seq, stage, unwrapped, cause_payload,
                      cause_repr)
            )

    # shippability gates ----------------------------------------------------

    def chain_shippable(self, chain):
        """True when every stage UDF certifies (``P4xx``-clean); cached
        under the chain's stable stage-id key."""
        key = ("chain-udfs",) + tuple(stage.id for stage in chain.stages)
        with self._lock:
            cached = self._ship_ok.get(key)
        if cached is not None:
            return cached
        from repro.analysis.udfcheck import analyze_chain

        ok = analyze_chain(chain).shippable
        with self._lock:
            self._ship_ok[key] = ok
        return ok

    def join_shippable(self, operator):
        key = ("join-udfs", operator.id)
        with self._lock:
            cached = self._ship_ok.get(key)
        if cached is not None:
            return cached
        from repro.analysis.udfcheck import analyze_callables

        ok = analyze_callables([
            ("%s.left_key" % operator.name, operator.left_key),
            ("%s.right_key" % operator.name, operator.right_key),
            ("%s.join_fn" % operator.name, operator.join_fn),
        ]).shippable
        with self._lock:
            self._ship_ok[key] = ok
        return ok

    # dispatch --------------------------------------------------------------

    @staticmethod
    def _wire_spec(spec):
        """``(wire_key, payload)``: the spec serialized by value, keyed
        by its *content*.

        Closures are shipped by value, so state they read late — e.g. a
        prepared statement's :class:`ParameterBinding`, rebound between
        executions of one cached plan — is frozen into the payload at
        dump time.  Keying the worker-side spec cache on a digest of
        that payload makes every rebinding a new spec (stale closures
        can never be replayed from the cache), while unchanged chains
        still hash identically and ship to each worker at most once
        per residency in the worker's spec LRU.
        """
        payload = dump_functions(spec)
        digest = hashlib.sha1(payload).hexdigest()
        return tuple(spec.key) + (digest,), payload

    def _send_batch(self, handle, wire_key, payload, messages):
        """Ship the spec payload (when missing) and one task batch.

        Mirrors the worker's spec LRU exactly: the batch touches its
        key, a (re-)ship inserts it, and insertion evicts past the
        shared ``spec_cache_limit`` — per-worker sends serialize on
        ``send_lock`` and the worker consumes batches in send order, so
        both sides perform the same touches and evictions in the same
        order and a shipped key is always still cached worker-side.

        Raises :class:`WorkerCrashError` when the worker is dead or the
        handle was closed under a dispatcher's feet (respawn/shutdown).
        """
        with handle.send_lock:
            if handle.closed or not handle.alive:
                raise WorkerCrashError("worker %d is down" % handle.index)
            handle.pinned = set()
            batch = []
            if wire_key in handle.shipped:
                handle.shipped.move_to_end(wire_key)
            else:
                batch.append((SHIP, wire_key, handle.pack_blob(payload)))
                handle.shipped[wire_key] = True
                while len(handle.shipped) > self.spec_cache_limit:
                    handle.shipped.popitem(last=False)
            for build in messages:
                batch.append(build(handle))
            batch.extend(handle.evict_resident(self.resident_bytes))
            trace("request", handle.index, batch)
            try:
                # a leaf-lock pipe send is the channel design itself:
                # send_lock only ever guards this worker's descriptor
                handle.req_conn.send(batch)  # racecheck: ignore[C306]
            except OSError as exc:
                raise WorkerCrashError(
                    "worker %d pipe failed mid-dispatch" % handle.index
                ) from exc

    def _collect(self, job, result_queue, expected, token, op_name, used,
                 state):
        """Drain ``expected`` task responses, honoring cancellation.

        ``used`` holds the worker indexes this job dispatched to: crash
        notices are broadcast to every active job, so ones from workers
        this job never used are ignored instead of failing it.

        ``state`` (``cancel_sent`` / ``drained``) reports back to the
        caller, which confirms a cancelled job with ``done`` once every
        dispatched task is accounted for — never earlier, since a
        still-queued task of a ``done``-confirmed job would execute.
        """
        state["drained"] = False
        results = {}
        failure = None
        while len(results) < expected:
            if (
                token is not None and not state["cancel_sent"]
                and (token.cancelled or token.expired())
            ):
                self._send_cancel(job)
                state["cancel_sent"] = True
            try:
                item = result_queue.get(timeout=_WAIT_SLICE)
            except queue.Empty:
                continue
            kind = item[0]
            if kind == "crash":
                if item[1] not in used:
                    continue  # no task of this job was placed there
                raise JobExecutionError(
                    op_name,
                    WorkerCrashError(
                        "worker %d died while executing shipped tasks"
                        % item[1]
                    ),
                )
            seq = item[1]
            results[seq] = item
            if kind == "error" and failure is None:
                failure = item
        state["drained"] = True
        if token is not None:
            token.poll()  # raises the caller's QueryCancelled/QueryTimeout
        if failure is not None:
            self._raise_remote(failure)
        return results

    def _send_cancel(self, job):
        with self._lock:
            handles = [h for h in self._handles if h is not None and h.alive]
        for handle in handles:
            trace("cancel", handle.index, (CANCEL, job))
            try:
                handle.cancel_conn.send((CANCEL, job))
            except Exception:  # noqa: BLE001 — crash handled via queue
                pass

    def _send_done(self, job):
        """Confirm a cancelled job fully collected: workers drop its mark."""
        with self._lock:
            handles = [h for h in self._handles if h is not None and h.alive]
        for handle in handles:
            trace("cancel", handle.index, (DONE, job))
            try:
                handle.cancel_conn.send((DONE, job))
            except Exception:  # noqa: BLE001 — crash handled via queue
                pass

    @staticmethod
    def _raise_remote(item):
        _, _seq, stage, unwrapped, cause_payload, cause_repr = item
        cause = None
        if cause_payload is not None:
            import pickle

            try:
                cause = pickle.loads(cause_payload)
            except Exception:  # noqa: BLE001 — fall back to the repr
                cause = None
        if cause is None:
            cause = RemoteWorkerError(cause_repr)
        if unwrapped and getattr(cause, "propagate_unwrapped", False):
            raise cause
        raise JobExecutionError(stage, cause) from cause

    def _run_tasks(self, spec, tasks, token, op_name):
        """Ship ``tasks`` (partition-indexed payload builders), gather
        ``(counts, records)`` per task in order."""
        handles = self._ensure_started()
        assignment = assign_partitions(len(tasks), self.workers)
        wire_key, payload = self._wire_spec(spec)
        job = next(self._jobs)
        result_queue = queue.SimpleQueue()
        state = {"cancel_sent": False, "drained": False}
        with self._lock:
            self._active[job] = result_queue
        try:
            per_worker = {}
            for seq, task in enumerate(tasks):
                per_worker.setdefault(assignment[seq], []).append((seq, task))
            for index, seq_tasks in per_worker.items():
                builders = [
                    self._task_builder(job, seq, wire_key, task)
                    for seq, task in seq_tasks
                ]
                try:
                    self._send_batch(handles[index], wire_key, payload,
                                     builders)
                except WorkerCrashError as exc:
                    raise JobExecutionError(op_name, exc) from exc
            results = self._collect(
                job, result_queue, len(tasks), token, op_name,
                set(per_worker), state,
            )
        finally:
            with self._lock:
                self._active.pop(job, None)
            if state["cancel_sent"] and state["drained"]:
                # every dispatched task is accounted for: workers may
                # forget the cancel mark
                self._send_done(job)
        ordered = []
        for seq in range(len(tasks)):
            item = results[seq]
            if item[0] == "cancelled":
                # unreachable without a token (collect re-raises first),
                # kept as a hard stop if a worker mis-reports
                raise JobExecutionError(
                    op_name, RemoteWorkerError("task cancelled remotely")
                )
            _, _seq, counts, fmt, payload = item
            ordered.append((counts, decode_records(fmt, payload)))
        return ordered

    @staticmethod
    def _task_builder(job, seq, spec_key, task):
        """Bind one task message's payload packing to its worker handle."""
        kind = task[0]
        if kind == "chain":
            _, source_key, part_index, records = task

            def build(handle):
                if source_key is not None:
                    cache_key = (source_key, part_index)
                    if handle.hit_resident(cache_key):
                        src = (SRC_CACHED, source_key, part_index)
                        return (CHAIN, job, seq, spec_key, src)
                    fmt, payload = encode_records(records)
                    handle.store_resident(cache_key, len(payload))
                    src = (SRC_STORE, source_key, part_index, fmt,
                           handle.pack_blob(payload))
                    return (CHAIN, job, seq, spec_key, src)
                fmt, payload = encode_records(records)
                src = (SRC_BLOB, fmt, handle.pack_blob(payload))
                return (CHAIN, job, seq, spec_key, src)

            return build
        # ("join", build_records, probe_records, build_is_left)
        _, build_records, probe_records, build_is_left = task

        def build(handle):
            build_fmt, build_payload = encode_records(build_records)
            probe_fmt, probe_payload = encode_records(probe_records)
            return (
                JOIN, job, seq, spec_key,
                (SRC_BLOB, build_fmt, handle.pack_blob(build_payload)),
                (SRC_BLOB, probe_fmt, handle.pack_blob(probe_payload)),
                build_is_left,
            )

        return build

    # public entry points ---------------------------------------------------

    def run_chain(self, chain, partitions, token, source_key=None,
                  columnar=False):
        """Execute a fused chain's partitions on the pool.

        Returns ``(out_partitions, worker_counts)`` shaped exactly like
        the in-process loop's locals, so the caller reconstructs the
        same per-stage ``OperatorRun`` metrics.  ``source_key`` marks the
        input as an immutable source's output: each worker then keeps
        its partitions resident and later executions skip the transfer
        — up to the pool's per-worker ``resident_bytes`` budget, past
        which least-recently-used sources are freed (ad-hoc queries
        mint fresh source ids, so the cache would otherwise grow with
        every distinct query a long-lived server executes).
        ``columnar=True`` ships the chain's chunk kernels with the spec
        so workers run the chunk-level loop and return chunk frames.
        """
        spec = ChainSpec.from_chain(chain, columnar=columnar)
        tasks = [
            ("chain", source_key, part_index, records)
            for part_index, records in enumerate(partitions)
        ]
        gathered = self._run_tasks(spec, tasks, token, chain.name)
        out = [records for _counts, records in gathered]
        worker_counts = [counts for counts, _records in gathered]
        return out, worker_counts

    def run_join(self, operator, pairs, token):
        """Execute co-partitioned hash-join pairs on the pool.

        ``pairs`` holds ``(build, probe, build_is_left)`` per partition —
        the exact inputs ``JoinOperator._hash_join`` would loop over —
        and the result preserves its per-partition emission order.
        """
        spec = JoinSpec.from_operator(operator)
        tasks = [
            ("join", build, probe, build_is_left)
            for build, probe, build_is_left in pairs
        ]
        gathered = self._run_tasks(spec, tasks, token, operator.name)
        return [records for _counts, records in gathered]

    def run_repartition_join(self, operator, left_parts, right_parts,
                             token):
        """One REPARTITION_HASH join — exchange and all — on the pool.

        The hash repartitioning itself runs inside the workers: one
        ``shuffle`` task per non-empty input partition, placed on the
        worker owning that partition.  Splits destined for partitions
        the same worker owns never leave it; cross-worker splits come
        back as *encoded bytes* the parent relays verbatim to the
        owning workers (``exchange`` messages) — the parent never
        decodes, hashes or re-encodes a record on the exchange path.
        A second round of per-partition ``pjoin`` tasks then joins each
        co-partitioned pair where its data already lives.

        Returns ``(out, (moved_records, moved_bytes, bytes_in),
        left_counts, right_counts)``; the caller derives ShuffleStats,
        per-worker work and spill accounting from the counts,
        bit-identical to the in-process path.
        """
        spec = JoinSpec.from_operator(operator)
        parallelism = max(len(left_parts), len(right_parts))
        owners = assign_partitions(parallelism, self.workers)
        handles = self._ensure_started()
        wire_key, payload = self._wire_spec(spec)
        job = next(self._jobs)
        result_queue = queue.SimpleQueue()
        state = {"cancel_sent": False, "drained": False}
        with self._lock:
            self._active[job] = result_queue
        completed = False
        try:
            # phase 1: worker-side shuffle of every non-empty partition
            meta = []  # seq → (side, source partition index)
            per_worker = {}
            for side, parts in (("left", left_parts),
                                ("right", right_parts)):
                for source, records in enumerate(parts):
                    if not records:
                        continue
                    seq = len(meta)
                    meta.append((side, source))
                    per_worker.setdefault(owners[source], []).append(
                        (seq, side, source, records)
                    )
            for index, items in per_worker.items():
                builders = [
                    self._shuffle_builder(job, seq, wire_key, side,
                                          source, owners, records)
                    for seq, side, source, records in items
                ]
                try:
                    self._send_batch(handles[index], wire_key, payload,
                                     builders)
                except WorkerCrashError as exc:
                    raise JobExecutionError(operator.name, exc) from exc
            results = self._collect(
                job, result_queue, len(meta), token, operator.name,
                set(per_worker), state,
            )

            left_counts = [0] * parallelism
            right_counts = [0] * parallelism
            moved_records = 0
            moved_bytes = 0
            bytes_in = [0] * parallelism
            relays = {}  # owner worker → [(side, target, source, fmt, payload)]
            for seq in range(len(meta)):
                item = results[seq]
                if item[0] == "cancelled":
                    raise JobExecutionError(
                        operator.name,
                        RemoteWorkerError("task cancelled remotely"),
                    )
                _, _seq, stats, fmt, payload = item
                counts, task_records, task_bytes, task_bytes_in = stats
                side, source = meta[seq]
                totals = left_counts if side == "left" else right_counts
                for target, count in enumerate(counts):
                    totals[target] += count
                moved_records += task_records
                moved_bytes += task_bytes
                for target, size in enumerate(task_bytes_in):
                    bytes_in[target] += size
                for target, f_fmt, f_payload in decode_records(
                    fmt, payload
                ):
                    relays.setdefault(owners[target], []).append(
                        (side, target, source, f_fmt, f_payload)
                    )

            # phase 2: relay foreign splits, then join where the data is.
            # A target with only one non-empty side still gets a pjoin —
            # its result is empty, but the task drains the exchange state.
            targets = [
                target for target in range(parallelism)
                if left_counts[target] or right_counts[target]
            ]
            target_seq = {}
            join_worker = {}
            next_seq = len(meta)
            for target in targets:
                target_seq[target] = next_seq
                next_seq += 1
                join_worker.setdefault(owners[target], []).append(target)
            # new tasks are about to be queued: the job is no longer
            # fully accounted for until phase 2's collect drains
            state["drained"] = False
            phase2_used = set()
            for index in range(self.workers):
                worker_relays = relays.get(index, [])
                worker_targets = join_worker.get(index, [])
                if not worker_relays and not worker_targets:
                    continue
                phase2_used.add(index)
                builders = [
                    self._exchange_builder(job, relay)
                    for relay in worker_relays
                ] + [
                    self._pjoin_builder(job, target_seq[target], wire_key,
                                        target)
                    for target in worker_targets
                ]
                try:
                    self._send_batch(handles[index], wire_key, payload,
                                     builders)
                except WorkerCrashError as exc:
                    raise JobExecutionError(operator.name, exc) from exc
            results = self._collect(
                job, result_queue, len(targets), token, operator.name,
                phase2_used, state,
            )
            out = [[] for _ in range(parallelism)]
            for target in targets:
                item = results[target_seq[target]]
                if item[0] == "cancelled":
                    raise JobExecutionError(
                        operator.name,
                        RemoteWorkerError("task cancelled remotely"),
                    )
                _, _seq, _counts, fmt, payload = item
                out[target] = decode_records(fmt, payload)
            completed = True
            return (
                out,
                (moved_records, moved_bytes, bytes_in),
                left_counts,
                right_counts,
            )
        finally:
            with self._lock:
                self._active.pop(job, None)
            if not completed and not state["cancel_sent"]:
                # clear worker-resident exchange state the aborted job
                # left behind; job ids are never reused, so cancelling a
                # job some worker never saw is harmless
                self._send_cancel(job)
                state["cancel_sent"] = True
            if state["cancel_sent"] and state["drained"]:
                # every dispatched task is accounted for (and the
                # cancel above precedes this on each cancel pipe), so
                # workers may forget the cancel mark; after a crash the
                # job stays marked — tasks may still be queued
                self._send_done(job)

    @staticmethod
    def _shuffle_builder(job, seq, spec_key, side, source, owners,
                         records):
        def build(handle):
            fmt, payload = encode_records(records)
            return (
                SHUFFLE, job, seq, spec_key, side, source, owners,
                (SRC_BLOB, fmt, handle.pack_blob(payload)),
            )

        return build

    @staticmethod
    def _exchange_builder(job, relay):
        side, target, source, fmt, payload = relay

        def build(handle):
            return (
                EXCHANGE, job, side, target, source, fmt,
                handle.pack_blob(payload),
            )

        return build

    @staticmethod
    def _pjoin_builder(job, seq, spec_key, target):
        def build(handle):
            return (PJOIN, job, seq, spec_key, target)

        return build

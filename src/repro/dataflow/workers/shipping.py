"""Function and record shipping across the process boundary.

Two serialization problems stand between a fused chain and a worker
process, and this module solves both with the standard library only:

* **Functions.**  The chain stages hold compiled closures (predicate
  specializations, merge/morphism accessors) that standard ``pickle``
  refuses to serialize — it ships functions *by reference* and a closure
  has no importable name.  :func:`dump_functions` therefore ships
  unshippable-by-reference functions *by value*, the way cloudpickle
  does: the code object travels via :mod:`marshal`, captured cells and
  defaults are pickled recursively through the same pickler, and the
  rebuilt function re-binds to its defining module's globals (falling
  back to shipped globals when the module is not importable, e.g.
  ``__main__``).  This is exactly the serialization model the ``P4xx``
  shippability analyzer (:mod:`repro.analysis.udfcheck`) certifies
  against.

* **Records.**  Embedding batches are three flat byte arrays per record
  (§3.3), so :func:`encode_records` packs a homogeneous Embedding batch
  as one length-prefixed byte buffer — a codec that moves through a
  shared-memory ring without touching ``pickle`` on the hot path — and
  falls back to pickling for any other record type (EPGM elements at
  scan leaves, tuples, ...).  Columnar partitions
  (:class:`repro.engine.columnar.ColumnarPartition`) ship as *chunk
  frames*: each chunk's raw column buffers — id entries, offset tables,
  path/prop payloads — are concatenated behind a fixed header, so a
  chunk crosses the ring as a single frame with no per-record object,
  no per-record length walk, and no pickle byte on either side.

The three record-batch formats (``FORMAT_EMBEDDINGS`` /
``FORMAT_CHUNK`` / ``FORMAT_PICKLE``) are declared in
:data:`repro.dataflow.workers.messages.FRAMES`; the wire checker
(``W509``) keeps the constants here in lockstep with that declaration.

Both directions assume the *same interpreter version* on both ends,
which holds by construction: workers are spawned from this process.
"""

import importlib
import io
import marshal
import pickle
import struct
import types

__all__ = [
    "ChainSpec",
    "JoinSpec",
    "SPEC_CACHE_LIMIT",
    "dump_functions",
    "load_functions",
    "encode_records",
    "decode_records",
]

#: default cap on a worker's decoded-spec cache.  Part of the wire
#: contract: the worker evicts least-recently-used specs at this bound
#: and the pool mirrors every eviction in the handle's ``shipped`` map,
#: so both sides always agree on which specs are resident — a desync
#: would make the pool skip re-shipping a spec the worker no longer has.
SPEC_CACHE_LIMIT = 128

#: record-batch formats (declared in ``messages.FRAMES``): flat §3.3
#: embedding buffer, columnar chunk frame, or pickled list
FORMAT_EMBEDDINGS = b"E"
FORMAT_CHUNK = b"C"
FORMAT_PICKLE = b"P"

_LENGTHS = struct.Struct("<III")
_CHUNK_COUNT = struct.Struct("<I")
_CHUNK_HEADER = struct.Struct("<IIII")


# --- function shipping ------------------------------------------------------


def _rebuild_function(code_bytes, module, qualname, defaults, kwdefaults,
                      closure_values, shipped_globals):
    """Reverse of the ``reducer_override`` below (runs in the worker)."""
    code = marshal.loads(code_bytes)
    if shipped_globals is None:
        try:
            namespace = importlib.import_module(module).__dict__
        except Exception:  # pragma: no cover - defensive: module vanished
            namespace = {"__builtins__": __builtins__}
    else:
        namespace = dict(shipped_globals)
        namespace.setdefault("__builtins__", __builtins__)
    closure = None
    if closure_values is not None:
        closure = tuple(types.CellType(value) for value in closure_values)
    fn = types.FunctionType(
        code, namespace, code.co_name, tuple(defaults) if defaults else None,
        closure,
    )
    if kwdefaults:
        fn.__kwdefaults__ = dict(kwdefaults)
    fn.__qualname__ = qualname
    fn.__module__ = module
    return fn


def _ships_by_reference(fn):
    """True when standard pickle can find ``fn`` under its dotted name."""
    if fn.__module__ is None or fn.__module__ == "__main__":
        return False
    try:
        module = importlib.import_module(fn.__module__)
        found = module
        for part in fn.__qualname__.split("."):
            found = getattr(found, part)
    except Exception:
        return False
    return found is fn


def _module_importable(module):
    if not module or module == "__main__":
        return False
    try:
        importlib.import_module(module)
    except Exception:
        return False
    return True


class _FunctionPickler(pickle.Pickler):
    """Pickler shipping closures/lambdas by value, everything else as usual."""

    def reducer_override(self, obj):
        if isinstance(obj, struct.Struct):
            # compiled embedding accessors close over Struct instances,
            # which pickle refuses; the format string rebuilds them
            return (struct.Struct, (obj.format,))
        if not isinstance(obj, types.FunctionType):
            return NotImplemented
        if _ships_by_reference(obj):
            return NotImplemented
        code = obj.__code__
        closure_values = None
        if obj.__closure__ is not None:
            closure_values = tuple(
                cell.cell_contents for cell in obj.__closure__
            )
        shipped_globals = None
        if not _module_importable(obj.__module__):
            # the defining module will not exist in the worker: ship the
            # globals the code object actually names (recursively, through
            # this same pickler, so nested local functions travel too)
            shipped_globals = {}
            fn_globals = obj.__globals__
            for name in code.co_names:
                if name in fn_globals:
                    shipped_globals[name] = fn_globals[name]
        return (
            _rebuild_function,
            (
                marshal.dumps(code),
                obj.__module__ or "__main__",
                obj.__qualname__,
                obj.__defaults__,
                obj.__kwdefaults__,
                closure_values,
                shipped_globals,
            ),
        )


def dump_functions(obj):
    """Pickle ``obj`` (any structure containing functions) by value."""
    buffer = io.BytesIO()
    _FunctionPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buffer.getvalue()


def load_functions(payload):
    """Reverse of :func:`dump_functions` (plain unpickle)."""
    return pickle.loads(payload)


# --- shipped work specs -----------------------------------------------------


class ChainSpec:
    """A fused chain, flattened to what a worker needs to run it.

    ``key`` identifies the chain *structurally* across executions: fused
    operators are rebuilt per run by the fusion pass, but their *stages*
    come from the cached physical plan, so the stage ids are stable.
    The pool extends it with a digest of the serialized payload before
    shipping (``WorkerPool._wire_spec``), so state a closure captures by
    value — a prepared statement's parameter binding, say — re-ships
    whenever its content changes while unchanged chains still ship to
    each worker at most once.
    """

    __slots__ = ("key", "shape", "names", "fns", "batch_size", "chain_name",
                 "kernels", "leaf_index", "leaf")

    def __init__(self, key, shape, names, fns, batch_size, chain_name,
                 kernels=None, leaf_index=None, leaf=None):
        self.key = key
        self.shape = tuple(shape)
        self.names = tuple(names)
        self.fns = tuple(fns)
        self.batch_size = batch_size
        self.chain_name = chain_name
        # columnar kernels ride on the stage closures as plain function
        # *attributes*, which by-value function shipping does not carry —
        # a columnar spec therefore ships them as explicit fields
        self.kernels = tuple(kernels) if kernels is not None else None
        self.leaf_index = leaf_index
        self.leaf = leaf

    @classmethod
    def from_chain(cls, chain, columnar=False):
        """Build the spec of one ``FusedChainOperator``.

        ``columnar=True`` additionally ships the chain's chunk kernels
        (``kernels``/``leaf_index``/``leaf``) so the worker runs the same
        chunk-level loop the in-process columnar path runs.  A
        non-columnar spec carries no kernels, so the two variants have
        distinct content digests and cache independently — toggling the
        environment's columnar flag re-ships rather than mis-hits.
        """
        kernels = leaf_index = leaf = None
        if columnar:
            kernels = chain._kernels
            leaf_index = chain._leaf_index
            leaf = chain._leaf_kernel
        return cls(
            key=("chain",) + tuple(stage.id for stage in chain.stages),
            shape=chain._shape,
            names=tuple(stage.name for stage in chain.stages),
            fns=chain._fns,
            batch_size=chain.batch_size,
            chain_name=chain.name,
            kernels=kernels,
            leaf_index=leaf_index,
            leaf=leaf,
        )


class JoinSpec:
    """One hash-join's shipped side: key extractors and the flat-join fn."""

    __slots__ = ("key", "left_key", "right_key", "join_fn", "name",
                 "columnar")

    def __init__(self, key, left_key, right_key, join_fn, name,
                 columnar=None):
        self.key = key
        self.left_key = left_key
        self.right_key = right_key
        self.join_fn = join_fn
        self.name = name
        # the compiled ColumnarJoinSpec rides on ``join_fn`` as a plain
        # function attribute, which by-value shipping drops — shipped
        # explicitly so workers can join chunk pairs without decoding
        self.columnar = columnar

    @classmethod
    def from_operator(cls, operator):
        return cls(
            key=("join", operator.id),
            left_key=operator.left_key,
            right_key=operator.right_key,
            join_fn=operator.join_fn,
            name=operator.name,
            columnar=getattr(operator.join_fn, "columnar_join", None),
        )


# --- record batch codec -----------------------------------------------------


def _encode_chunks(partition):
    """Pack a columnar partition as one contiguous chunk frame.

    ``<u32 nchunks>`` then per chunk ``<u32 count><u32 columns><u32
    path_len><u32 prop_len>`` followed by the chunk's raw column buffers
    in order: the §3.3 id entry block (``count * columns *
    ENTRY_WIDTH`` bytes), the packed path offset table (``count + 1``
    little-endian u32), the path buffer, the packed prop offset table,
    the prop buffer.  No per-record object is touched — the frame is a
    concatenation of buffers the chunk already holds.
    """
    from repro.engine.columnar import offset_struct  # lazy: layering

    chunks = partition.chunks
    pieces = [_CHUNK_COUNT.pack(len(chunks))]
    append = pieces.append
    for chunk in chunks:
        count = chunk.count
        path_buf = chunk.path_buf
        prop_buf = chunk.prop_buf
        append(_CHUNK_HEADER.pack(
            count, chunk.columns, len(path_buf), len(prop_buf)
        ))
        append(chunk.id_buf())
        offsets = offset_struct(count + 1)
        append(offsets.pack(*chunk.path_offsets))
        append(path_buf)
        append(offsets.pack(*chunk.prop_offsets))
        append(prop_buf)
    return b"".join(pieces)


def _decode_chunks(payload):
    """Reverse of :func:`_encode_chunks`; returns a ColumnarPartition.

    The decoded chunks arrive with their id buffer pre-populated (it is
    the frame's entry block verbatim), so re-encoding — a relay, or the
    response leg of a worker task — never re-packs the entries.
    """
    from repro.engine.columnar import (  # lazy: layering
        ColumnarPartition,
        EmbeddingChunk,
        entry_struct,
        offset_struct,
    )
    from repro.engine.embedding import ENTRY_WIDTH  # lazy: layering

    view = memoryview(payload)
    (nchunks,) = _CHUNK_COUNT.unpack_from(view, 0)
    cursor = _CHUNK_COUNT.size
    header = _CHUNK_HEADER.unpack_from
    header_width = _CHUNK_HEADER.size
    chunks = []
    append = chunks.append
    for _ in range(nchunks):
        count, columns, path_len, prop_len = header(view, cursor)
        cursor += header_width
        entries = count * columns
        id_end = cursor + entries * ENTRY_WIDTH
        id_buf = bytes(view[cursor:id_end])
        flat = entry_struct(entries).unpack(id_buf)
        cursor = id_end
        offsets = offset_struct(count + 1)
        offsets_width = offsets.size
        path_offsets = offsets.unpack_from(view, cursor)
        cursor += offsets_width
        path_buf = bytes(view[cursor:cursor + path_len])
        cursor += path_len
        prop_offsets = offsets.unpack_from(view, cursor)
        cursor += offsets_width
        prop_buf = bytes(view[cursor:cursor + prop_len])
        cursor += prop_len
        append(EmbeddingChunk(
            count,
            columns,
            flat[0::2],
            flat[1::2],
            path_buf,
            path_offsets,
            prop_buf,
            prop_offsets,
            id_buf=id_buf,
        ))
    return ColumnarPartition(chunks)


def encode_records(records):
    """Encode one partition/batch of records; returns ``(fmt, payload)``.

    A columnar partition (recognized, like everywhere in the dataflow
    layer, by its ``chunks`` attribute) ships as a chunk frame — raw
    column buffers behind fixed headers, no decode.  A batch that is
    entirely §3.3 embeddings uses the flat buffer format: ``<u32
    count>`` then per record ``<u32 id_len><u32 path_len><u32
    prop_len>`` followed by the three byte arrays.  Anything else —
    EPGM elements at scan leaves, tuples, mixed batches — pickles.
    """
    from repro.engine.embedding import Embedding  # lazy: layering

    if getattr(records, "chunks", None) is not None:
        return FORMAT_CHUNK, _encode_chunks(records)
    if records and all(type(r) is Embedding for r in records):
        pieces = [struct.pack("<I", len(records))]
        pack = _LENGTHS.pack
        append = pieces.append
        for record in records:
            id_data = record.id_data
            path_data = record.path_data
            prop_data = record.prop_data
            append(pack(len(id_data), len(path_data), len(prop_data)))
            append(id_data)
            append(path_data)
            append(prop_data)
        return FORMAT_EMBEDDINGS, b"".join(pieces)
    return FORMAT_PICKLE, pickle.dumps(
        list(records), protocol=pickle.HIGHEST_PROTOCOL
    )


def decode_records(fmt, payload):
    """Reverse of :func:`encode_records`."""
    if fmt == FORMAT_PICKLE:
        return pickle.loads(payload)
    if fmt == FORMAT_CHUNK:
        return _decode_chunks(payload)
    from repro.engine.embedding import Embedding  # lazy: layering

    view = memoryview(payload)
    (count,) = struct.unpack_from("<I", view, 0)
    cursor = 4
    unpack = _LENGTHS.unpack_from
    lengths_width = _LENGTHS.size
    records = []
    append = records.append
    for _ in range(count):
        id_len, path_len, prop_len = unpack(view, cursor)
        cursor += lengths_width
        id_end = cursor + id_len
        path_end = id_end + path_len
        prop_end = path_end + prop_len
        append(
            Embedding(
                bytes(view[cursor:id_end]),
                bytes(view[id_end:path_end]),
                bytes(view[path_end:prop_end]),
            )
        )
        cursor = prop_end
    return records

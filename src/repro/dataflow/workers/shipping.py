"""Function and record shipping across the process boundary.

Two serialization problems stand between a fused chain and a worker
process, and this module solves both with the standard library only:

* **Functions.**  The chain stages hold compiled closures (predicate
  specializations, merge/morphism accessors) that standard ``pickle``
  refuses to serialize — it ships functions *by reference* and a closure
  has no importable name.  :func:`dump_functions` therefore ships
  unshippable-by-reference functions *by value*, the way cloudpickle
  does: the code object travels via :mod:`marshal`, captured cells and
  defaults are pickled recursively through the same pickler, and the
  rebuilt function re-binds to its defining module's globals (falling
  back to shipped globals when the module is not importable, e.g.
  ``__main__``).  This is exactly the serialization model the ``P4xx``
  shippability analyzer (:mod:`repro.analysis.udfcheck`) certifies
  against.

* **Records.**  Embedding batches are three flat byte arrays per record
  (§3.3), so :func:`encode_records` packs a homogeneous Embedding batch
  as one length-prefixed byte buffer — a codec that moves through a
  shared-memory ring without touching ``pickle`` on the hot path — and
  falls back to pickling for any other record type (EPGM elements at
  scan leaves, tuples, ...).

Both directions assume the *same interpreter version* on both ends,
which holds by construction: workers are spawned from this process.
"""

import importlib
import io
import marshal
import pickle
import struct
import types

__all__ = [
    "ChainSpec",
    "JoinSpec",
    "SPEC_CACHE_LIMIT",
    "dump_functions",
    "load_functions",
    "encode_records",
    "decode_records",
]

#: default cap on a worker's decoded-spec cache.  Part of the wire
#: contract: the worker evicts least-recently-used specs at this bound
#: and the pool mirrors every eviction in the handle's ``shipped`` map,
#: so both sides always agree on which specs are resident — a desync
#: would make the pool skip re-shipping a spec the worker no longer has.
SPEC_CACHE_LIMIT = 128

#: record-batch formats: flat §3.3 embedding buffer, or pickled list
FORMAT_EMBEDDINGS = b"E"
FORMAT_PICKLE = b"P"

_LENGTHS = struct.Struct("<III")


# --- function shipping ------------------------------------------------------


def _rebuild_function(code_bytes, module, qualname, defaults, kwdefaults,
                      closure_values, shipped_globals):
    """Reverse of the ``reducer_override`` below (runs in the worker)."""
    code = marshal.loads(code_bytes)
    if shipped_globals is None:
        try:
            namespace = importlib.import_module(module).__dict__
        except Exception:  # pragma: no cover - defensive: module vanished
            namespace = {"__builtins__": __builtins__}
    else:
        namespace = dict(shipped_globals)
        namespace.setdefault("__builtins__", __builtins__)
    closure = None
    if closure_values is not None:
        closure = tuple(types.CellType(value) for value in closure_values)
    fn = types.FunctionType(
        code, namespace, code.co_name, tuple(defaults) if defaults else None,
        closure,
    )
    if kwdefaults:
        fn.__kwdefaults__ = dict(kwdefaults)
    fn.__qualname__ = qualname
    fn.__module__ = module
    return fn


def _ships_by_reference(fn):
    """True when standard pickle can find ``fn`` under its dotted name."""
    if fn.__module__ is None or fn.__module__ == "__main__":
        return False
    try:
        module = importlib.import_module(fn.__module__)
        found = module
        for part in fn.__qualname__.split("."):
            found = getattr(found, part)
    except Exception:
        return False
    return found is fn


def _module_importable(module):
    if not module or module == "__main__":
        return False
    try:
        importlib.import_module(module)
    except Exception:
        return False
    return True


class _FunctionPickler(pickle.Pickler):
    """Pickler shipping closures/lambdas by value, everything else as usual."""

    def reducer_override(self, obj):
        if isinstance(obj, struct.Struct):
            # compiled embedding accessors close over Struct instances,
            # which pickle refuses; the format string rebuilds them
            return (struct.Struct, (obj.format,))
        if not isinstance(obj, types.FunctionType):
            return NotImplemented
        if _ships_by_reference(obj):
            return NotImplemented
        code = obj.__code__
        closure_values = None
        if obj.__closure__ is not None:
            closure_values = tuple(
                cell.cell_contents for cell in obj.__closure__
            )
        shipped_globals = None
        if not _module_importable(obj.__module__):
            # the defining module will not exist in the worker: ship the
            # globals the code object actually names (recursively, through
            # this same pickler, so nested local functions travel too)
            shipped_globals = {}
            fn_globals = obj.__globals__
            for name in code.co_names:
                if name in fn_globals:
                    shipped_globals[name] = fn_globals[name]
        return (
            _rebuild_function,
            (
                marshal.dumps(code),
                obj.__module__ or "__main__",
                obj.__qualname__,
                obj.__defaults__,
                obj.__kwdefaults__,
                closure_values,
                shipped_globals,
            ),
        )


def dump_functions(obj):
    """Pickle ``obj`` (any structure containing functions) by value."""
    buffer = io.BytesIO()
    _FunctionPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buffer.getvalue()


def load_functions(payload):
    """Reverse of :func:`dump_functions` (plain unpickle)."""
    return pickle.loads(payload)


# --- shipped work specs -----------------------------------------------------


class ChainSpec:
    """A fused chain, flattened to what a worker needs to run it.

    ``key`` identifies the chain *structurally* across executions: fused
    operators are rebuilt per run by the fusion pass, but their *stages*
    come from the cached physical plan, so the stage ids are stable.
    The pool extends it with a digest of the serialized payload before
    shipping (``WorkerPool._wire_spec``), so state a closure captures by
    value — a prepared statement's parameter binding, say — re-ships
    whenever its content changes while unchanged chains still ship to
    each worker at most once.
    """

    __slots__ = ("key", "shape", "names", "fns", "batch_size", "chain_name")

    def __init__(self, key, shape, names, fns, batch_size, chain_name):
        self.key = key
        self.shape = tuple(shape)
        self.names = tuple(names)
        self.fns = tuple(fns)
        self.batch_size = batch_size
        self.chain_name = chain_name

    @classmethod
    def from_chain(cls, chain):
        """Build the spec of one ``FusedChainOperator``."""
        return cls(
            key=("chain",) + tuple(stage.id for stage in chain.stages),
            shape=chain._shape,
            names=tuple(stage.name for stage in chain.stages),
            fns=chain._fns,
            batch_size=chain.batch_size,
            chain_name=chain.name,
        )


class JoinSpec:
    """One hash-join's shipped side: key extractors and the flat-join fn."""

    __slots__ = ("key", "left_key", "right_key", "join_fn", "name")

    def __init__(self, key, left_key, right_key, join_fn, name):
        self.key = key
        self.left_key = left_key
        self.right_key = right_key
        self.join_fn = join_fn
        self.name = name

    @classmethod
    def from_operator(cls, operator):
        return cls(
            key=("join", operator.id),
            left_key=operator.left_key,
            right_key=operator.right_key,
            join_fn=operator.join_fn,
            name=operator.name,
        )


# --- record batch codec -----------------------------------------------------


def encode_records(records):
    """Encode one partition/batch of records; returns ``(fmt, payload)``.

    A batch that is entirely §3.3 embeddings uses the flat buffer format:
    ``<u32 count>`` then per record ``<u32 id_len><u32 path_len><u32
    prop_len>`` followed by the three byte arrays.  Anything else —
    EPGM elements at scan leaves, tuples, mixed batches — pickles.
    """
    from repro.engine.embedding import Embedding  # lazy: layering

    if records and all(type(r) is Embedding for r in records):
        pieces = [struct.pack("<I", len(records))]
        pack = _LENGTHS.pack
        append = pieces.append
        for record in records:
            id_data = record.id_data
            path_data = record.path_data
            prop_data = record.prop_data
            append(pack(len(id_data), len(path_data), len(prop_data)))
            append(id_data)
            append(path_data)
            append(prop_data)
        return FORMAT_EMBEDDINGS, b"".join(pieces)
    return FORMAT_PICKLE, pickle.dumps(
        list(records), protocol=pickle.HIGHEST_PROTOCOL
    )


def decode_records(fmt, payload):
    """Reverse of :func:`encode_records`."""
    if fmt == FORMAT_PICKLE:
        return pickle.loads(payload)
    from repro.engine.embedding import Embedding  # lazy: layering

    view = memoryview(payload)
    (count,) = struct.unpack_from("<I", view, 0)
    cursor = 4
    unpack = _LENGTHS.unpack_from
    lengths_width = _LENGTHS.size
    records = []
    append = records.append
    for _ in range(count):
        id_len, path_len, prop_len = unpack(view, cursor)
        cursor += lengths_width
        id_end = cursor + id_len
        path_end = id_end + path_len
        prop_end = path_end + prop_len
        append(
            Embedding(
                bytes(view[cursor:id_end]),
                bytes(view[id_end:path_end]),
                bytes(view[path_end:prop_end]),
            )
        )
        cursor = prop_end
    return records

"""The parent↔worker wire vocabulary — the protocol, in one place.

PR 8's review pass found three protocol bugs by hand (spec-cache
desync, crash mis-scoping, cancellation-mark leaks), all of the same
species: the message vocabulary lived as duplicated string literals in
:mod:`.pool` and :mod:`.runtime`, so the two sides could drift.  This
module makes drift impossible by construction — every wire message is
built and matched through the constants below, and the declarative
:data:`PIPES` table is the contract the static wire checker
(:mod:`repro.analysis.protocol`, ``repro wirecheck``) verifies both
sides against.

Three pipes connect the parent to each worker:

* the **request pipe** (parent → worker) carries spec shipping, task
  dispatch, exchange relays and resident-source eviction, batched as
  lists of messages;
* the **response pipe** (worker → parent) carries task results,
  failures and cancellation acknowledgements, batched by the worker's
  flush policy;
* the **cancel pipe** (parent → worker) carries only the
  cancel/``done`` confirmation protocol, on its own descriptor so it
  overtakes queued work.

Every message is a flat tuple ``(TAG, field, ...)``.  The field tuples
in :data:`PIPES` are the authoritative arities: a send site or match
arm that disagrees is a wire bug (``W503``).  The rule that keeps the
static extraction sound: **wire messages are always constructed and
matched through these constants** — a tuple headed by a plain string
literal is internal bookkeeping (pool-side queue items, cache keys) and
never crosses a pipe.

Shared numeric constants that both sides must agree on (the spec-cache
LRU bound, the inline-payload threshold) are part of the same contract:
they are defined once (here or in :mod:`.shipping`/:mod:`.channels`)
and *imported* by both sides; a side defining its own copy is flagged
as ``W505``.

Record batches travelling inside blob payloads carry a one-byte format
tag; :data:`FRAMES` declares the admissible formats and the checker
(``W509``) keeps the ``FORMAT_*`` codec constants in :mod:`.shipping`
in lockstep with the declaration.
"""

__all__ = [
    "SHIP", "CHAIN", "JOIN", "SHUFFLE", "EXCHANGE", "PJOIN", "FREE",
    "SHUTDOWN", "CRASH", "OK", "ERROR", "CANCELLED", "CANCEL", "DONE",
    "BLOB_RING", "BLOB_INLINE", "SRC_BLOB", "SRC_CACHED", "SRC_STORE",
    "PipeSpec", "PIPES", "FrameSpec", "FRAMES", "SHARED_CONSTANTS",
    "set_trace_hook", "trace",
]

# --- request pipe (parent → worker) ----------------------------------------

#: cache one serialized spec under its wire key (content-digest keyed)
SHIP = "ship"
#: run one partition through a fused chain's compiled chunk loop
CHAIN = "chain"
#: one co-partitioned hash-join pair (build/probe already co-located)
JOIN = "join"
#: hash-partition one input partition of a repartition join
SHUFFLE = "shuffle"
#: relay one foreign shuffle split (opaque bytes) to its owning worker
EXCHANGE = "exchange"
#: join one co-partitioned pair out of the worker's exchange table
PJOIN = "pjoin"
#: drop one resident source partition (parent-driven byte budget)
FREE = "free"
#: drain buffered responses and exit the worker loop
SHUTDOWN = "shutdown"
#: test hook: die mid-protocol like a segfault (never sent by the pool)
CRASH = "crash"

# --- response pipe (worker → parent) ---------------------------------------

#: one task's result: per-stage counts and the produced record batch
OK = "ok"
#: one task failed: failing stage name plus the (picklable) cause
ERROR = "error"
#: one task abandoned because its job was cancelled
CANCELLED = "cancelled"

# --- cancel pipe (parent → worker) -----------------------------------------

#: mark a job cancelled; the worker abandons its queued/in-flight tasks
CANCEL = "cancel"
#: every dispatched task of the cancelled job is accounted for — the
#: worker may forget the cancel mark (never sent earlier: a still-queued
#: task of a ``done``-confirmed job would execute)
DONE = "done"

# --- payload sub-markers (inside blob/src fields, never top-level) ---------

BLOB_RING = "r"       #: ``("r", offset, length)`` — payload in the ring
BLOB_INLINE = "i"     #: ``("i", bytes)`` — payload inline in the message
SRC_BLOB = "blob"     #: ``("blob", fmt, blob)`` — one-shot task input
SRC_CACHED = "cached"  #: ``("cached", source_key, part)`` — resident hit
SRC_STORE = "store"   #: ``("store", source_key, part, fmt, blob)`` — fill


class PipeSpec:
    """One pipe's declared vocabulary: who sends, and which shapes.

    ``fields`` maps each tag to the tuple of payload field names that
    follow it — the wire arity of a message is ``len(fields[tag]) + 1``.
    ``test_only`` tags are part of the protocol the *receiver* must
    handle but that production senders never emit (the ``crash`` hook);
    the wire checker exempts them from W502.
    """

    __slots__ = ("name", "sender", "fields", "test_only")

    def __init__(self, name, sender, fields, test_only=()):
        self.name = name
        self.sender = sender  # "parent" | "worker"
        self.fields = dict(fields)
        self.test_only = frozenset(test_only)

    @property
    def receiver(self):
        return "worker" if self.sender == "parent" else "parent"

    def arity(self, tag):
        """Total tuple length of ``tag``'s messages, tag included."""
        return len(self.fields[tag]) + 1


#: the authoritative pipe table the wire checker verifies both sides
#: against; field names double as documentation of each payload slot
PIPES = (
    PipeSpec("request", sender="parent", fields={
        SHIP: ("key", "blob"),
        CHAIN: ("job", "seq", "spec", "src"),
        JOIN: ("job", "seq", "spec", "build_src", "probe_src",
               "build_is_left"),
        SHUFFLE: ("job", "seq", "spec", "side", "source", "owners", "src"),
        EXCHANGE: ("job", "side", "target", "source", "fmt", "blob"),
        PJOIN: ("job", "seq", "spec", "target"),
        FREE: ("source_key", "part"),
        SHUTDOWN: (),
        CRASH: (),
    }, test_only=(CRASH,)),
    PipeSpec("response", sender="worker", fields={
        OK: ("job", "seq", "counts", "fmt", "blob"),
        ERROR: ("job", "seq", "stage", "unwrapped", "cause_payload",
                "cause_repr"),
        CANCELLED: ("job", "seq"),
    }),
    PipeSpec("cancel", sender="parent", fields={
        CANCEL: ("job",),
        DONE: ("job",),
    }),
)

class FrameSpec:
    """One record-batch payload format the ``fmt`` fields may carry.

    ``tag`` is the one-byte wire discriminator; ``constant`` the name of
    the defining ``FORMAT_*`` constant in :mod:`.shipping`.  The wire
    checker (``W509``) verifies the shipping module defines exactly the
    declared constants with exactly the declared tags — a new payload
    format that is not declared here, or a declared format whose tag
    drifted, is a wire bug.
    """

    __slots__ = ("tag", "constant", "description")

    def __init__(self, tag, constant, description):
        self.tag = tag
        self.constant = constant
        self.description = description


#: the authoritative record-batch format table: every ``fmt`` value a
#: blob-bearing message (``ok``/``exchange``/``src`` payloads) may carry
FRAMES = (
    FrameSpec(b"E", "FORMAT_EMBEDDINGS", "flat §3.3 embedding buffer"),
    FrameSpec(b"C", "FORMAT_CHUNK",
              "columnar chunk frame: raw column buffers, no decode"),
    FrameSpec(b"P", "FORMAT_PICKLE", "pickled record list (fallback)"),
)

#: numeric constants both sides of the wire read; each must have exactly
#: one defining module that both sides import (W505 otherwise)
SHARED_CONSTANTS = ("SPEC_CACHE_LIMIT", "INLINE_LIMIT")


# --- trace hook -------------------------------------------------------------

#: when set, every pipe send/receive on the parent side reports
#: ``(direction, worker_index, message)`` here — the conformance tests
#: replay recorded traces against the protocol models.  One ``is None``
#: check per *batch* when unset, so the hot path pays nothing.
_trace_hook = None


def set_trace_hook(hook):
    """Install (or with ``None`` remove) the trace hook; returns the
    previous hook so tests can restore it."""
    global _trace_hook
    previous = _trace_hook
    _trace_hook = hook
    return previous


def trace(direction, worker_index, message):
    """Report one wire event to the installed hook, if any.

    ``direction`` is the pipe name (``"request"``/``"response"``/
    ``"cancel"``); ``message`` is one message tuple for the cancel pipe
    and the full batch (a list of message tuples) for the other two.
    """
    if _trace_hook is not None:
        _trace_hook(direction, worker_index, message)

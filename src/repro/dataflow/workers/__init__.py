"""Multi-process sharded execution (docs/architecture.md,
"Multi-process execution").

``ExecutionEnvironment(workers=N)`` attaches a :class:`WorkerPool` of
``N`` long-lived worker processes to fused execution: certified-
shippable fused chains and co-partitioned hash-join pairs run inside
the workers — real parallelism, outside the GIL — while uncertified
chains, sanitized runs and shared-cache runs transparently stay on the
in-process path.  Results, per-stage metrics counters, cancellation and
error attribution all cross the process boundary, so everything built
on top (service deadlines, admission control, the simulated cost
model) behaves identically in both modes.
"""

from . import messages
from .pool import RemoteWorkerError, WorkerCrashError, WorkerPool
from .shipping import (
    ChainSpec,
    JoinSpec,
    decode_records,
    dump_functions,
    encode_records,
    load_functions,
)

__all__ = [
    "messages",
    "WorkerPool",
    "WorkerCrashError",
    "RemoteWorkerError",
    "ChainSpec",
    "JoinSpec",
    "dump_functions",
    "load_functions",
    "encode_records",
    "decode_records",
]

"""The worker process: a long-lived executor of shipped partition tasks.

``worker_main`` is the child-process entry point.  It owns one end of
the per-worker channel set (request/response pipes + shared-memory
rings, see :mod:`.channels`) and loops over batched request messages:

* ``("ship", key, blob)`` — decode a :class:`~.shipping.ChainSpec` /
  :class:`~.shipping.JoinSpec` and cache it under ``key``.  The cache
  is an LRU bounded at the pool-chosen ``spec_cache_limit``; the pool
  mirrors the same LRU in each handle's ``shipped`` map, so it re-ships
  exactly the specs this side has evicted and never references a spec
  the worker no longer holds.
* ``("free", source_key, part_index)`` — drop one resident source
  partition.  The pool tracks per-worker resident bytes and appends
  these eviction notices to task batches, so worker memory for scan
  inputs is bounded even across unrelated ad-hoc queries.
* ``("chain", job, seq, key, src)`` — run one partition through a fused
  chain's compiled chunk loop (the same ``_chunk_template`` codegen the
  in-process path uses), returning the produced records and the
  per-stage counter totals the parent needs to reconstruct bit-identical
  ``OperatorRun`` metrics.  A columnar-enabled spec additionally carries
  the chain's chunk kernels: when the kernels fit the input shape the
  worker runs the same chunk-level loop the in-process columnar path
  runs and the result returns as a chunk frame (raw column buffers,
  no per-record decode on either side of the ring); otherwise it falls
  back to the per-record loop transparently.
* ``("join", job, seq, key, build_src, probe_src, build_is_left)`` —
  one co-partitioned hash-join pair, mirroring
  ``JoinOperator._hash_join`` exactly (build/probe roles and emission
  order included, so results are order-identical to in-process runs).
* ``("shuffle", job, seq, key, side, source, owners, src)`` — hash-
  partition one input partition of a repartition join by its join key.
  Splits whose target partition this worker owns stay *resident* in the
  worker's exchange table; foreign splits return to the parent as
  encoded bytes it relays verbatim (never decoding a record) to the
  owning workers as ``("exchange", job, side, target, source, fmt,
  blob)`` messages.  The response carries the per-target counts and the
  moved-record/byte tallies the parent needs to rebuild the exact
  ``ShuffleStats`` the in-process ``hash_shuffle`` computes.  Columnar
  inputs split by slicing chunk columns (the engine's ``shuffle_split``,
  shared with the in-process kernel) and foreign splits travel as chunk
  frames the parent still relays verbatim.
* ``("pjoin", job, seq, key, target)`` — join one co-partitioned pair
  out of the exchange table, concatenating each side's splits in source
  -partition order so record order matches the in-process shuffle.
* ``("shutdown",)`` — drain buffered responses and exit.

Every tag above is a constant from :mod:`.messages`, the single wire
vocabulary both sides import — construction or matching through a raw
string literal is a wirecheck (W5xx) finding.

Cancellation arrives on a dedicated pipe so it overtakes queued work:
the worker polls it between chunks and every ``POLL_INTERVAL`` probe
records, abandons in-flight tasks of cancelled jobs, and acknowledges
each with a ``("cancelled", job, seq)`` response so the parent can
account for every dispatched task.  The pipe carries ``("cancel",
job)`` / ``("done", job)`` pairs: once the parent has collected every
dispatched task of a cancelled job it confirms with ``done`` and the
worker drops the cancel mark — the cancelled set never needs a size-
based prune that could forget a job whose tasks are still queued.

A failing chunk is replayed record-by-record against the chain's stage
functions — the same re-attribution the in-process path performs — and
the failing stage's *name* plus the (pickled, when possible) cause
cross back to the parent, which re-raises the exact
:class:`~repro.dataflow.errors.JobExecutionError` in-process execution
would have raised.
"""

import pickle
import time
from collections import OrderedDict

from ..cancellation import POLL_INTERVAL
from ..operators import _hashable
from .channels import INLINE_LIMIT, RingSegment
from .messages import (
    BLOB_INLINE,
    BLOB_RING,
    CANCEL,
    CANCELLED,
    CHAIN,
    CRASH,
    DONE,
    ERROR,
    EXCHANGE,
    FREE,
    JOIN,
    OK,
    PJOIN,
    SHIP,
    SHUFFLE,
    SHUTDOWN,
    SRC_BLOB,
    SRC_CACHED,
)
from .shipping import (
    FORMAT_PICKLE,
    SPEC_CACHE_LIMIT,
    decode_records,
    dump_functions,
    encode_records,
    load_functions,
)

__all__ = ["worker_main"]

_POLL_MASK = POLL_INTERVAL - 1


class _Cancelled(Exception):
    """In-flight task abandoned because its job was cancelled."""


class _StageError(Exception):
    """A task failed; carries the failing stage's name and the cause."""

    def __init__(self, stage, cause, unwrapped=False):
        super().__init__(stage)
        self.stage = stage
        self.cause = cause
        self.unwrapped = unwrapped


class _PollToken:
    """Adapts the cancel-pipe poll to the ``token.poll()`` the columnar
    join kernel expects at its chunk boundaries."""

    __slots__ = ("worker", "job")

    def __init__(self, worker, job):
        self.worker = worker
        self.job = job

    def poll(self):
        if self.worker._job_cancelled(self.job):
            raise _Cancelled()


def _lru_put(cache, key, value, limit):
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > limit:
        cache.popitem(last=False)


class _Worker:
    def __init__(self, index, req_conn, resp_conn, cancel_conn,
                 req_ring, resp_ring, flush_batch, flush_timeout,
                 spec_cache_limit=SPEC_CACHE_LIMIT):
        self.index = index
        self.req_conn = req_conn
        self.resp_conn = resp_conn
        self.cancel_conn = cancel_conn
        self.req_ring = req_ring
        self.resp_ring = resp_ring
        self.flush_batch = flush_batch
        self.flush_timeout = flush_timeout
        self.spec_cache_limit = spec_cache_limit
        #: decoded-spec LRU; the pool mirrors its eviction order, so the
        #: two sides always agree on which keys are resident
        self.specs = OrderedDict()
        #: resident source partitions; membership is parent-driven (the
        #: pool sends ``store`` to fill and ``free`` to evict under its
        #: per-worker byte budget), so it never desynchronizes
        self.resident = {}
        #: cancelled job ids not yet ``done``-confirmed by the parent
        self.cancelled = set()
        #: repartition-exchange table: (job, side, target) → {source:
        #: records}.  Filled by shuffle/exchange messages, drained by the
        #: job's pjoin tasks; cancellation clears a job's leftovers.
        self.exchange = {}
        self._out = []
        self._first_buffered = None

    # blob transport --------------------------------------------------------

    def _resolve_blob(self, blob):
        """Inline bytes, or copy a referenced payload out of the ring."""
        if blob[0] == BLOB_INLINE:
            return blob[1]
        return self.req_ring.read(blob[1], blob[2])

    def _pack_blob(self, payload):
        if len(payload) > INLINE_LIMIT:
            ref = self.resp_ring.try_write(payload)
            if ref is not None:
                return (BLOB_RING, ref[0], ref[1])
        return (BLOB_INLINE, payload)

    def _resolve_source(self, src):
        """Decode one task input; ``store`` variants feed the resident
        cache so later executions of the same immutable source partition
        skip the payload transfer entirely."""
        kind = src[0]
        if kind == SRC_BLOB:
            return decode_records(src[1], self._resolve_blob(src[2]))
        if kind == SRC_CACHED:
            return self.resident[(src[1], src[2])]
        # ("store", cache_key, part_index, fmt, blob)
        records = decode_records(src[3], self._resolve_blob(src[4]))
        self.resident[(src[1], src[2])] = records
        return records

    # response batching -----------------------------------------------------

    def _emit(self, message):
        self._out.append(message)
        if self._first_buffered is None:
            self._first_buffered = time.monotonic()

    def _flush(self, force):
        if not self._out:
            return
        if (
            force
            or len(self._out) >= self.flush_batch
            or time.monotonic() - self._first_buffered >= self.flush_timeout
        ):
            self.resp_conn.send(self._out)
            self._out = []
            self._first_buffered = None

    # cancellation ----------------------------------------------------------

    def _job_cancelled(self, job):
        while self.cancel_conn.poll():
            try:
                kind, stale = self.cancel_conn.recv()
            except EOFError:  # pragma: no cover - parent died mid-cancel
                break
            if kind == CANCEL:
                self.cancelled.add(stale)
                self._forget_job(stale)
            elif kind == DONE:
                # the parent collected every dispatched task of the
                # cancelled job, so nothing of it can still be queued —
                # the mark can be dropped.  Jobs aborted by a worker
                # crash get no confirmation and keep their mark (job
                # ids are never reused, so a stale mark is only a few
                # bytes, never a correctness hazard).
                self.cancelled.discard(stale)
        return job in self.cancelled

    def _forget_job(self, job):
        """Drop a cancelled/aborted job's resident exchange state."""
        if self.exchange:
            for key in [k for k in self.exchange if k[0] == job]:
                del self.exchange[key]

    # task execution --------------------------------------------------------

    def _run_chain(self, job, spec, records):
        if spec.kernels is not None:
            result = self._run_chain_columnar(job, spec, records)
            if result is not None:
                return result
        from ..fusion import _chunk_template

        chunk_fn = _chunk_template(spec.shape)
        batch = spec.batch_size
        fns = spec.fns
        zeros = (0,) * sum(1 for kind in spec.shape if kind != "map")
        produced = []
        append = produced.append
        totals = zeros
        for start in range(0, len(records), batch):
            if self._job_cancelled(job):
                raise _Cancelled()
            chunk = (
                records
                if start == 0 and len(records) <= batch
                else records[start:start + batch]
            )
            try:
                counts = chunk_fn(chunk, append, *fns)
            except Exception as exc:  # noqa: BLE001 — re-attributed below
                self._replay_chunk(spec, chunk, exc)
            totals = tuple(a + b for a, b in zip(totals, counts))
        return produced, totals

    def _run_chain_columnar(self, job, spec, records):
        """Run a columnar-enabled chain as chunk kernels, or ``None``.

        The worker-side mirror of
        ``FusedChainOperator._execute_columnar``: chunk input needs a
        kernel at every stage, a plain record list needs the leaf builder
        (element-level prefix stages run per element); stage totals count
        rows after each non-map stage.  ``None`` means the input shape
        does not fit the shipped kernels and the caller falls back to the
        compiled per-record chunk loop — the same transparent per-record
        fallback the in-process path takes.  A failing source batch is
        decoded and replayed per record for stage attribution.
        """
        from repro.engine.columnar import ColumnarPartition  # lazy: layering

        kernels = spec.kernels
        chunks_in = getattr(records, "chunks", None)
        if chunks_in is not None:
            if not all(kernel is not None for kernel in kernels):
                return None
            sources = chunks_in
            leaf_index = None
        else:
            leaf_index = spec.leaf_index
            if leaf_index is None:
                return None
            batch = spec.batch_size
            if len(records) <= batch:
                sources = [records]
            else:
                sources = [
                    records[start:start + batch]
                    for start in range(0, len(records), batch)
                ]
        shape = spec.shape
        fns = spec.fns
        leaf = spec.leaf
        totals = list(
            (0,) * sum(1 for kind in shape if kind != "map")
        )
        produced = []
        for source in sources:
            # one cancellation poll per source chunk, like the fused loop
            if self._job_cancelled(job):
                raise _Cancelled()
            current = source
            counter = 0
            try:
                for index, (kind, kernel) in enumerate(zip(shape, kernels)):
                    if leaf_index is not None and index < leaf_index:
                        # element-level prefix (e.g. the label scan):
                        # per-element, exactly like the per-record loop
                        fn = fns[index]
                        if kind == "map":
                            current = [fn(element) for element in current]
                        elif kind == "filter":
                            current = [
                                element for element in current
                                if fn(element)
                            ]
                            totals[counter] += len(current)
                            counter += 1
                        else:
                            flattened = []
                            for element in current:
                                flattened.extend(fn(element))
                            current = flattened
                            totals[counter] += len(current)
                            counter += 1
                        continue
                    if index == leaf_index:
                        current = leaf(current)
                    else:
                        current = kernel(current)
                    if kind != "map":
                        totals[counter] += current.count
                        counter += 1
            except _Cancelled:
                raise
            except Exception as exc:  # noqa: BLE001 — re-attributed below
                source_records = (
                    list(source) if leaf_index is not None
                    else source.to_embeddings()
                )
                self._replay_chunk(spec, source_records, exc)
            if current.count:
                produced.append(current)
        return ColumnarPartition(produced), tuple(totals)

    def _replay_chunk(self, spec, chunk, original):
        """Per-record replay for stage attribution, like the fused path."""
        if getattr(original, "propagate_unwrapped", False):
            raise _StageError(spec.chain_name, original, unwrapped=True)
        records = list(chunk)
        for name, kind, fn in zip(spec.names, spec.shape, spec.fns):
            produced = []
            try:
                if kind == "map":
                    for record in records:
                        produced.append(fn(record))
                elif kind == "filter":
                    for record in records:
                        if fn(record):
                            produced.append(record)
                else:
                    for record in records:
                        produced.extend(fn(record))
            except Exception as exc:  # noqa: BLE001 — the failing stage
                if getattr(exc, "propagate_unwrapped", False):
                    raise _StageError(name, exc, unwrapped=True) from exc
                raise _StageError(name, exc) from exc
            records = produced
        # replay did not fail (nondeterministic UDF?) — attribute to the
        # whole chain, like FusedChainOperator._replay_chunk
        raise _StageError(spec.chain_name, original)

    def _run_shuffle(self, job, spec, side, source, owners, records):
        """Hash-partition one input partition by its join key.

        Mirrors ``ExecutionContext.hash_shuffle`` per record — same
        ``partition_index`` routing, same moved-record/byte accounting
        via ``estimate_size`` — so the parent can reconstruct the exact
        ShuffleStats.  Splits for targets this worker owns go straight
        into the exchange table; non-empty foreign splits are encoded
        and returned for the parent to relay.
        """
        from ..partitioner import partition_index
        from ..sizing import estimate_size

        if (
            spec.columnar is not None
            and getattr(records, "chunks", None) is not None
        ):
            return self._run_shuffle_columnar(
                job, spec, side, source, owners, records
            )
        key_fn = spec.left_key if side == "left" else spec.right_key
        parallelism = len(owners)
        splits = [[] for _ in range(parallelism)]
        moved_records = 0
        moved_bytes = 0
        bytes_in = [0] * parallelism
        try:
            for index, record in enumerate(records):
                if index & _POLL_MASK == 0 and self._job_cancelled(job):
                    raise _Cancelled()
                target = partition_index(key_fn(record), parallelism)
                splits[target].append(record)
                if target != source:
                    size = estimate_size(record)
                    moved_records += 1
                    moved_bytes += size
                    bytes_in[target] += size
        except _Cancelled:
            raise
        except Exception as exc:  # noqa: BLE001 — rewrap with context
            if getattr(exc, "propagate_unwrapped", False):
                raise _StageError(spec.name, exc, unwrapped=True) from exc
            raise _StageError(spec.name, exc) from exc
        counts = [len(split) for split in splits]
        foreign = []
        for target, split in enumerate(splits):
            if not split:
                continue
            if owners[target] == self.index:
                self.exchange.setdefault(
                    (job, side, target), {}
                )[source] = split
            else:
                fmt, payload = encode_records(split)
                foreign.append((target, fmt, payload))
        return (counts, moved_records, moved_bytes, bytes_in), foreign

    def _run_shuffle_columnar(self, job, spec, side, source, owners,
                              records):
        """Chunk-sliced hash-partition of one columnar input partition.

        Shares :func:`repro.engine.columnar.shuffle_split` with the
        in-process shuffle kernel, so routing and moved-record/byte
        accounting are bit-identical to the per-record loop.  Owned
        splits enter the exchange table as columnar partitions; foreign
        splits leave as chunk frames the parent relays verbatim —
        repartitioned rows cross worker boundaries without a single
        record being decoded.
        """
        from repro.engine.columnar import (  # lazy: layering
            ColumnarPartition,
            shuffle_split,
        )

        key_columns = (
            spec.columnar.left_columns
            if side == "left"
            else spec.columnar.right_columns
        )
        if self._job_cancelled(job):
            raise _Cancelled()
        try:
            splits, moved_records, moved_bytes, bytes_in = shuffle_split(
                records.chunks, key_columns, len(owners), source
            )
        except Exception as exc:  # noqa: BLE001 — rewrap with context
            if getattr(exc, "propagate_unwrapped", False):
                raise _StageError(spec.name, exc, unwrapped=True) from exc
            raise _StageError(spec.name, exc) from exc
        counts = [
            sum(chunk.count for chunk in chunks) for chunks in splits
        ]
        foreign = []
        for target, chunks in enumerate(splits):
            if not counts[target]:
                continue
            split = ColumnarPartition(chunks)
            if owners[target] == self.index:
                self.exchange.setdefault(
                    (job, side, target), {}
                )[source] = split
            else:
                fmt, payload = encode_records(split)
                foreign.append((target, fmt, payload))
        return (counts, moved_records, moved_bytes, bytes_in), foreign

    def _run_join(self, job, spec, build, probe, build_is_left):
        """``JoinOperator._hash_join`` verbatim, with pipe-based polling."""
        if (
            spec.columnar is not None
            and getattr(build, "chunks", None) is not None
            and getattr(probe, "chunks", None) is not None
        ):
            return self._run_join_columnar(
                job, spec, build, probe, build_is_left
            )
        build_key = spec.left_key if build_is_left else spec.right_key
        probe_key = spec.right_key if build_is_left else spec.left_key
        join_fn = spec.join_fn
        table = {}
        setdefault = table.setdefault
        produced = []
        extend = produced.extend
        try:
            for record in build:
                setdefault(_hashable(build_key(record)), []).append(record)
            get = table.get
            if build_is_left:
                for index, probe_record in enumerate(probe):
                    if index & _POLL_MASK == 0 and self._job_cancelled(job):
                        raise _Cancelled()
                    matches = get(_hashable(probe_key(probe_record)))
                    if not matches:
                        continue
                    for build_record in matches:
                        extend(join_fn(build_record, probe_record))
            else:
                for index, probe_record in enumerate(probe):
                    if index & _POLL_MASK == 0 and self._job_cancelled(job):
                        raise _Cancelled()
                    matches = get(_hashable(probe_key(probe_record)))
                    if not matches:
                        continue
                    for build_record in matches:
                        extend(join_fn(probe_record, build_record))
        except (_Cancelled, _StageError):
            raise
        except Exception as exc:  # noqa: BLE001 — rewrap with context
            if getattr(exc, "propagate_unwrapped", False):
                raise _StageError(spec.name, exc, unwrapped=True) from exc
            raise _StageError(spec.name, exc) from exc
        return produced

    def _run_join_columnar(self, job, spec, build, probe, build_is_left):
        """``JoinOperator._columnar_hash_join``, with pipe-based polling.

        The engine-compiled join spec joins the chunk lists directly —
        output rows in the exact probe-order × build-order of the
        per-record loop — and the result goes back to the parent as a
        chunk frame without materializing a single record.
        """
        from repro.engine.columnar import ColumnarPartition  # lazy: layering

        try:
            chunks = spec.columnar.hash_join(
                build.chunks,
                probe.chunks,
                build_is_left,
                _PollToken(self, job),
            )
        except _Cancelled:
            raise
        except Exception as exc:  # noqa: BLE001 — rewrap with context
            if getattr(exc, "propagate_unwrapped", False):
                raise _StageError(spec.name, exc, unwrapped=True) from exc
            raise _StageError(spec.name, exc) from exc
        return ColumnarPartition(chunks)

    def _concat_splits(self, split_map):
        """Concatenate one pjoin side's splits in source-partition order.

        All-columnar splits concatenate by chunk list — no decode, same
        row order as the in-process shuffle; mixed or per-record splits
        fall back to the flat record list.
        """
        splits = [split_map[index] for index in sorted(split_map)]
        if splits and all(
            getattr(split, "chunks", None) is not None for split in splits
        ):
            from repro.engine.columnar import (  # lazy: layering
                ColumnarPartition,
            )

            return ColumnarPartition(
                [chunk for split in splits for chunk in split.chunks]
            )
        return [record for split in splits for record in split]

    # message handling ------------------------------------------------------

    def _spec_for(self, key, job, seq):
        """The cached spec under ``key``, touched for LRU order.

        The pool mirrors this cache's eviction, so a miss should be
        impossible; if one ever happens it must fail the *task* — a
        bare ``KeyError`` here would kill the process and, through the
        crash broadcast, every job placed on it.
        """
        spec = self.specs.get(key)
        if spec is None:
            self._emit((
                ERROR, job, seq, "worker-spec-cache", False, None,
                "spec %r missing from worker %d's cache "
                "(ship/evict desync)" % (key, self.index),
            ))
            return None
        self.specs.move_to_end(key)
        return spec

    def _respond_result(self, job, seq, counts, records):
        fmt, payload = encode_records(records)
        self._emit((OK, job, seq, counts, fmt, self._pack_blob(payload)))

    def _respond_failure(self, job, seq, error):
        if isinstance(error, _Cancelled):
            self._emit((CANCELLED, job, seq))
            return
        cause = error.cause
        try:
            cause_payload = pickle.dumps(cause)
            pickle.loads(cause_payload)
        except Exception:  # noqa: BLE001 — unpicklable cause: ship repr
            cause_payload = None
        self._emit((
            ERROR, job, seq, error.stage, error.unwrapped,
            cause_payload, repr(cause),
        ))

    def handle(self, message):
        """Process one request; returns False on shutdown."""
        kind = message[0]
        if kind == CHAIN:
            _, job, seq, key, src = message
            spec = self._spec_for(key, job, seq)
            if spec is None:
                return True
            records = self._resolve_source(src)
            if self._job_cancelled(job):
                self._emit((CANCELLED, job, seq))
                return True
            try:
                produced, totals = self._run_chain(job, spec, records)
            except (_Cancelled, _StageError) as error:
                self._respond_failure(job, seq, error)
            else:
                self._respond_result(job, seq, totals, produced)
            return True
        if kind == JOIN:
            _, job, seq, key, build_src, probe_src, build_is_left = message
            spec = self._spec_for(key, job, seq)
            if spec is None:
                return True
            build = self._resolve_source(build_src)
            probe = self._resolve_source(probe_src)
            if self._job_cancelled(job):
                self._emit((CANCELLED, job, seq))
                return True
            try:
                produced = self._run_join(job, spec, build, probe,
                                          build_is_left)
            except (_Cancelled, _StageError) as error:
                self._respond_failure(job, seq, error)
            else:
                self._respond_result(job, seq, None, produced)
            return True
        if kind == SHUFFLE:
            _, job, seq, key, side, source, owners, src = message
            spec = self._spec_for(key, job, seq)
            if spec is None:
                return True
            records = self._resolve_source(src)
            if self._job_cancelled(job):
                self._emit((CANCELLED, job, seq))
                return True
            try:
                stats, foreign = self._run_shuffle(
                    job, spec, side, source, owners, records
                )
            except (_Cancelled, _StageError) as error:
                self._respond_failure(job, seq, error)
            else:
                payload = pickle.dumps(
                    foreign, protocol=pickle.HIGHEST_PROTOCOL
                )
                self._emit((
                    OK, job, seq, stats, FORMAT_PICKLE,
                    self._pack_blob(payload),
                ))
            return True
        if kind == EXCHANGE:
            _, job, side, target, source, fmt, blob = message
            records = decode_records(fmt, self._resolve_blob(blob))
            self.exchange.setdefault((job, side, target), {})[source] = (
                records
            )
            return True
        if kind == PJOIN:
            _, job, seq, key, target = message
            # pop state before the spec/cancellation checks so a failed
            # or cancelled job's splits never linger in the exchange
            # table
            left_map = self.exchange.pop((job, "left", target), {})
            right_map = self.exchange.pop((job, "right", target), {})
            spec = self._spec_for(key, job, seq)
            if spec is None:
                return True
            if self._job_cancelled(job):
                self._emit((CANCELLED, job, seq))
                return True
            left = self._concat_splits(left_map)
            right = self._concat_splits(right_map)
            if len(left) <= len(right):
                build, probe, build_is_left = left, right, True
            else:
                build, probe, build_is_left = right, left, False
            try:
                produced = (
                    []
                    if not build or not probe
                    else self._run_join(job, spec, build, probe,
                                        build_is_left)
                )
            except (_Cancelled, _StageError) as error:
                self._respond_failure(job, seq, error)
            else:
                self._respond_result(job, seq, None, produced)
            return True
        if kind == SHIP:
            _, key, blob = message
            _lru_put(
                self.specs, key, load_functions(self._resolve_blob(blob)),
                self.spec_cache_limit,
            )
            return True
        if kind == FREE:
            # parent-driven resident-source eviction (byte budget)
            self.resident.pop((message[1], message[2]), None)
            return True
        if kind == CRASH:  # test hook: die mid-protocol, like a segfault
            import os

            os._exit(1)
        return kind != SHUTDOWN

    def loop(self):
        while True:
            try:
                batch = self.req_conn.recv()
            except (EOFError, OSError):  # parent died: exit quietly
                return
            if not isinstance(batch, list):
                batch = [batch]
            for message in batch:
                if not self.handle(message):
                    self._flush(force=True)
                    return
                # hold small responses back while more work is queued
                self._flush(force=not self.req_conn.poll())


def worker_main(worker_index, req_conn, resp_conn, cancel_conn,
                req_ring_descriptor, resp_ring_descriptor,
                flush_batch, flush_timeout,
                spec_cache_limit=SPEC_CACHE_LIMIT):
    """Child-process entry point (must stay importable for spawn)."""
    req_ring = RingSegment(
        name=req_ring_descriptor[0], capacity=req_ring_descriptor[1]
    )
    resp_ring = RingSegment(
        name=resp_ring_descriptor[0], capacity=resp_ring_descriptor[1]
    )
    worker = _Worker(
        worker_index, req_conn, resp_conn, cancel_conn, req_ring,
        resp_ring, flush_batch, flush_timeout,
        spec_cache_limit=spec_cache_limit,
    )
    try:
        worker.loop()
    finally:
        req_ring.close()
        resp_ring.close()
        for conn in (req_conn, resp_conn, cancel_conn):
            try:
                conn.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass


# re-exported for the pool: shipping a spec means dumping it by value
ship_payload = dump_functions

"""Shared-memory ring channels between the parent and one worker.

Each worker gets two single-producer/single-consumer rings over
``multiprocessing.shared_memory`` — one per direction — plus a pair of
pipes for control messages.  Large record-batch payloads are written
into the ring and referenced from the control message as ``(offset,
length)``; small payloads (or payloads the ring cannot currently hold)
travel inline in the control message instead, so the ring is a fast
path, never a correctness requirement, and **no side ever blocks
waiting for ring space**.

Layout of one ring segment::

    [0:4)   read cursor  (u32, written by the consumer only)
    [4:8)   write cursor (u32, written by the producer only)
    [8:8+C) data region of ``capacity`` bytes

Cursors are 4-byte aligned u32 stores, which CPython performs as single
``memcpy`` calls into the mapped page — each cursor has exactly one
writer, so torn reads cannot occur and no lock is needed.  Payloads are
always contiguous: when the tail is too short the producer skips it and
wraps to offset 0 (consumers advance their cursor to ``offset + length``
of each consumed payload in FIFO order, which steps over skipped tails
automatically because the *next* consumed offset restarts at 0).
"""

import struct
from multiprocessing import shared_memory

__all__ = ["RingSegment", "DEFAULT_RING_BYTES", "INLINE_LIMIT"]

#: per-direction ring capacity; payloads that do not fit travel inline
#: over the (64 KiB, blocking) pipe, so the ring is sized generously —
#: shared memory is virtual until touched, and one exchange round can
#: stage several partitions' worth of batches before the consumer
#: catches up
DEFAULT_RING_BYTES = 32 * 1024 * 1024

#: payloads at or below this size skip the ring — a pipe send of a few
#: KiB is cheaper than two cursor round-trips through shared memory
INLINE_LIMIT = 16 * 1024

_HEADER = 8
_CURSOR = struct.Struct("<I")


class RingSegment:
    """One SPSC byte ring over a named shared-memory segment.

    The creating side owns the segment's lifetime (``unlink=True`` on
    :meth:`close`); the attaching side only closes its mapping.  Exactly
    one process calls :meth:`try_write` (the producer) and exactly one
    calls :meth:`read` / the consumer cursor update — which side plays
    which role differs between the request and response rings.
    """

    def __init__(self, name=None, capacity=DEFAULT_RING_BYTES):
        if name is None:
            self._shm = shared_memory.SharedMemory(
                create=True, size=_HEADER + capacity
            )
            self._owner = True
            self._shm.buf[:_HEADER] = b"\x00" * _HEADER
        else:
            # the resource tracker process is shared across the whole
            # process tree, and its registration cache is a set — the
            # attach-side register is idempotent with the creator's, and
            # the creator's explicit unlink() is the single unregister.
            # (Unregistering here instead would strip the creator's entry
            # and make its unlink() double-unregister.)
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False
        self.capacity = capacity
        # producer-local mirror of the write cursor (the shm copy exists
        # for debuggability; only this mirror is read on the hot path)
        self._write = self._read_cursor(4)

    @property
    def name(self):
        return self._shm.name

    def descriptor(self):
        """Picklable ``(name, capacity)`` to attach from the worker."""
        return (self.name, self.capacity)

    # cursor accessors ------------------------------------------------------

    def _read_cursor(self, offset):
        return _CURSOR.unpack_from(self._shm.buf, offset)[0]

    def _store_cursor(self, offset, value):
        _CURSOR.pack_into(self._shm.buf, offset, value)

    # producer side ---------------------------------------------------------

    def try_write(self, payload):
        """Copy ``payload`` into the ring; returns ``(offset, length)``.

        Returns ``None`` when the ring currently lacks contiguous space —
        the caller sends the payload inline instead of waiting.
        """
        size = len(payload)
        if size == 0 or size >= self.capacity:
            return None
        read = self._read_cursor(0)
        write = self._write
        free = (read - write - 1) % self.capacity
        tail = self.capacity - write
        if size <= tail:
            if size > free:
                return None
            offset = write
            new_write = (write + size) % self.capacity
        else:
            # skip the short tail and wrap; the tail counts as used until
            # the consumer's cursor passes it
            if tail + size > free:
                return None
            offset = 0
            new_write = size
        start = _HEADER + offset
        self._shm.buf[start:start + size] = payload
        self._write = new_write
        self._store_cursor(4, new_write)
        return (offset, size)

    # consumer side ---------------------------------------------------------

    def read(self, offset, length):
        """Copy one referenced payload out and release its ring space.

        Must be called in the order the references were produced (the
        control pipe preserves it); advancing the read cursor to the
        payload's end frees everything up to it, including skipped tails.
        """
        start = _HEADER + offset
        payload = bytes(self._shm.buf[start:start + length])
        self._store_cursor(0, (offset + length) % self.capacity)
        return payload

    # lifecycle -------------------------------------------------------------

    def close(self):
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass

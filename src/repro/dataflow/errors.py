"""Exceptions raised by the dataflow substrate."""


class DataflowError(Exception):
    """Base class for all dataflow errors."""


class JobExecutionError(DataflowError):
    """A user-defined function raised inside an operator.

    The original exception is chained; the message names the operator so
    failures in deep plans remain diagnosable.
    """

    def __init__(self, operator_name: str, cause: BaseException) -> None:
        super().__init__(
            "operator %r failed: %s: %s" % (operator_name, type(cause).__name__, cause)
        )
        self.operator_name = operator_name
        self.cause = cause


class PlanError(DataflowError):
    """The transformation DAG is structurally invalid (e.g. mixed environments)."""


class IterationError(DataflowError):
    """A bulk iteration was mis-configured or failed to converge."""

"""A deterministic, partition-parallel dataflow engine.

This package is the project's stand-in for Apache Flink (see DESIGN.md §2):
lazy :class:`DataSet` DAGs, hash/broadcast join strategies, bulk iteration
and a :class:`ClusterCostModel` that converts execution metrics into
simulated cluster runtimes.
"""

from .cancellation import CancellationToken, QueryCancelled, QueryTimeout
from .cost import ClusterCostModel
from .dataset import DataSet, GroupedDataSet
from .environment import ExecutionEnvironment, JobScope
from .errors import DataflowError, IterationError, JobExecutionError, PlanError
from .fusion import DEFAULT_BATCH_SIZE, FusedChainOperator, plan_fusion
from .metrics import JobMetrics, OperatorRun
from .operators import JoinStrategy
from .partitioner import partition_index, round_robin_partitions, stable_hash
from .sizing import estimate_size

__all__ = [
    "CancellationToken",
    "ClusterCostModel",
    "DEFAULT_BATCH_SIZE",
    "DataSet",
    "DataflowError",
    "ExecutionEnvironment",
    "FusedChainOperator",
    "GroupedDataSet",
    "IterationError",
    "JobExecutionError",
    "JobMetrics",
    "JobScope",
    "JoinStrategy",
    "OperatorRun",
    "PlanError",
    "QueryCancelled",
    "QueryTimeout",
    "estimate_size",
    "partition_index",
    "plan_fusion",
    "round_robin_partitions",
    "stable_hash",
]

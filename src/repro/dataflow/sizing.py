"""Record size estimation for shuffle accounting.

The simulated cluster charges network cost per byte moved between workers.
Records that know their own wire size (anything exposing a
``serialized_size()`` method, e.g. :class:`repro.engine.embedding.Embedding`)
are measured exactly; for plain Python values we use a small structural
estimate that is stable across runs.
"""

from typing import Any

_BASE_OVERHEAD = 16


def estimate_size(record: Any) -> int:
    """Return the estimated serialized size of ``record`` in bytes.

    The estimate is deterministic and cheap; it is used only for cost
    accounting, never for correctness.
    """
    sizer = getattr(record, "serialized_size", None)
    if sizer is not None:
        return sizer() if callable(sizer) else int(sizer)
    if isinstance(record, (bytes, bytearray, memoryview)):
        return len(record)
    if isinstance(record, str):
        return _BASE_OVERHEAD + len(record)
    if isinstance(record, bool) or record is None:
        return 1
    if isinstance(record, int):
        return 8
    if isinstance(record, float):
        return 8
    if isinstance(record, (tuple, list)):
        return _BASE_OVERHEAD + sum(estimate_size(part) for part in record)
    if isinstance(record, dict):
        return _BASE_OVERHEAD + sum(
            estimate_size(k) + estimate_size(v) for k, v in record.items()
        )
    return 64
